#!/usr/bin/env python3
"""Quickstart: run the baseline and LLBP on one server workload.

Generates the NodeApp synthetic server trace, simulates the paper's
64K TAGE-SC-L baseline, LLBP backing it, and the 512K TSL reference,
then prints MPKI and the Fig 9-style reductions.

Usage:  python examples/quickstart.py [instructions]
"""

import sys
import time

from repro.llbp import LLBPConfig, LLBPTageScL
from repro.predictors import tsl_64k, tsl_scaled
from repro.sim import run_simulation
from repro.workloads import generate_workload


def main() -> None:
    instructions = int(sys.argv[1]) if len(sys.argv) > 1 else 400_000
    print(f"Generating NodeApp trace ({instructions} instructions)...")
    trace = generate_workload("NodeApp", instructions)
    print(f"  {len(trace)} branches, {trace.num_conditional} conditional\n")

    configs = [
        ("64K TSL (baseline)", tsl_64k),
        ("LLBP", lambda: LLBPTageScL(LLBPConfig())),
        ("LLBP-0Lat", lambda: LLBPTageScL(LLBPConfig().zero_latency())),
        ("512K TSL", lambda: tsl_scaled(8)),
    ]

    baseline = None
    for name, factory in configs:
        start = time.time()
        result = run_simulation(trace, factory())
        elapsed = time.time() - start
        line = f"{name:20s} MPKI={result.mpki:6.3f}  ({elapsed:4.1f}s)"
        if baseline is None:
            baseline = result
        else:
            line += f"  reduction vs baseline: {result.mpki_reduction_vs(baseline):5.1f}%"
        print(line)

    print("\nPaper (Fig 9): LLBP reduces MPKI by 8.9% on average; "
          "512K TSL by 27.3%.")


if __name__ == "__main__":
    main()
