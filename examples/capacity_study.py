#!/usr/bin/env python3
"""Capacity study: how far can more TAGE storage go? (paper §II-C/D)

Runs the capacity ladder — 64K to 1M TSL plus the infinite-capacity
limit — on one workload and reports MPKI, the misprediction share of
the hottest branches, and useful patterns per branch (Fig 2 + Fig 3).

Usage:  python examples/capacity_study.py [workload] [instructions]
"""

import sys

from repro.analysis.working_set import (
    baseline_order,
    top_branch_share,
    useful_patterns_study,
)
from repro.predictors import tage_infinite, tsl_64k, tsl_scaled
from repro.sim import run_simulation
from repro.workloads import generate_workload


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "Tomcat"
    instructions = int(sys.argv[2]) if len(sys.argv) > 2 else 400_000
    trace = generate_workload(workload, instructions)
    print(f"Workload {workload}: {len(trace)} branches\n")

    ladder = [
        ("64K TSL", tsl_64k),
        ("128K TSL", lambda: tsl_scaled(2)),
        ("256K TSL", lambda: tsl_scaled(4)),
        ("512K TSL", lambda: tsl_scaled(8)),
        ("1M TSL", lambda: tsl_scaled(16)),
        ("Inf TAGE", tage_infinite),
    ]

    baseline = None
    order = None
    for name, factory in ladder:
        result = run_simulation(trace, factory(), collect_per_pc=True)
        if baseline is None:
            baseline = result
            order = baseline_order(baseline)
        top = max(1, len(order) // 125)  # the paper's "top 0.8%"
        share = top_branch_share(result, order, top)
        reduction = result.mpki_reduction_vs(baseline)
        print(f"{name:10s} MPKI={result.mpki:6.3f}  "
              f"reduction={reduction:5.1f}%  "
              f"top-0.8%-branches share={share:5.1%}")

    print("\nUseful patterns per branch under infinite capacity (Fig 3b):")
    study = useful_patterns_study(trace, baseline,
                                  warmup_instructions=instructions // 3)
    print(f"  mean = {study.mean:.1f}   "
          f"top-100 most-mispredicted = {study.top_n_mean(100):.1f}")
    print("Paper: mean ~14, top-100 >100 — the skew that motivates "
          "context-keyed storage.")


if __name__ == "__main__":
    main()
