#!/usr/bin/env python3
"""Context locality: why per-context pattern sets work (paper §IV, Fig 5).

Traces useful patterns of the most-mispredicted branches and attributes
them to program contexts of increasing depth W; prints the distribution
of patterns per (branch, context) pair.

Usage:  python examples/context_locality.py [workload] [instructions]
"""

import sys

from repro.analysis.contexts import patterns_per_context_study
from repro.predictors import tsl_64k
from repro.sim import run_simulation
from repro.workloads import generate_workload


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "Tomcat"
    instructions = int(sys.argv[2]) if len(sys.argv) > 2 else 400_000
    trace = generate_workload(workload, instructions)

    print("Measuring the 64K TSL baseline (to rank branches)...")
    baseline = run_simulation(trace, tsl_64k(), collect_per_pc=True)

    print("Tracing useful patterns per context (Inf TAGE)...\n")
    results = patterns_per_context_study(
        trace, baseline,
        windows=(0, 2, 4, 8, 16, 32),
        top_branches=128,
        warmup_instructions=instructions // 3,
    )

    print(f"{'W':>3} {'contexts':>9} {'p50':>6} {'p95':>6} {'max':>7}")
    for res in results:
        print(f"{res.window:>3} {len(res.counts):>9} "
              f"{res.p50:>6} {res.p95:>6} "
              f"{max(res.counts) if res.counts else 0:>7}")

    print("\nPaper (Fig 5): W=0 p50/p95 = 298/2384; W=8 = 2/25; W=32 = 1/9.")
    print("Deep contexts localise even the hardest branches to a handful "
          "of patterns — a 16-pattern set per context suffices.")


if __name__ == "__main__":
    main()
