#!/usr/bin/env python3
"""Build a custom synthetic program by hand and study it.

Shows the program-model API: functions, statements, behaviours.  The
program has one shared helper called from three services under two
request handlers; its branch is context-correlated — the population the
paper's capacity and context studies revolve around.

Usage:  python examples/custom_workload.py
"""

from repro.llbp import LLBPConfig, LLBPTageScL
from repro.predictors import tage_infinite, tsl_64k
from repro.sim import run_simulation
from repro.workloads import (
    BiasedBehavior,
    CallStmt,
    ComputeStmt,
    CondStmt,
    ContextCorrelatedBehavior,
    GlobalCorrelatedBehavior,
    IfStmt,
    LoopStmt,
    LoopTripBehavior,
    generate_trace,
)
from repro.workloads.program import Function, Program, assign_branch_ids


def build_program() -> Program:
    # Function ids: 0 entry, 1-2 handlers, 3-5 services, 6 shared helper.
    helper = Function(6, [
        ComputeStmt(3),
        # The complex branch: outcome depends on (caller chain, recent
        # outcomes) — many patterns globally, few per context.
        CondStmt(ContextCorrelatedBehavior(local_bits=2, path_depth=2)),
        CondStmt(BiasedBehavior(0.98)),
    ])

    def service(fid: int) -> Function:
        return Function(fid, [
            CondStmt(BiasedBehavior(0.995)),
            IfStmt(BiasedBehavior(0.3), [ComputeStmt(4)]),
            CallStmt([6]),                       # everyone uses the helper
            CondStmt(GlobalCorrelatedBehavior(depth=4)),
            ComputeStmt(5),
        ])

    def handler(fid: int, services) -> Function:
        return Function(fid, [
            ComputeStmt(4),
            LoopStmt(LoopTripBehavior(base=3, spread=2),
                     [CondStmt(BiasedBehavior(0.99))]),
            CallStmt(services, weights=[3, 1]),
            CallStmt(services[::-1]),
            ComputeStmt(3),
        ])

    entry = Function(0, [
        ComputeStmt(2),
        CallStmt([1, 2], weights=[2, 1]),  # request dispatch
    ])
    program = Program([
        entry,
        handler(1, [3, 4]),
        handler(2, [4, 5]),
        service(3), service(4), service(5),
        helper,
    ], entry_function=0)
    assign_branch_ids(program)
    return program


def main() -> None:
    program = build_program()
    print(f"Program: {len(program.functions)} functions, "
          f"{program.num_static_branches} static branches")
    trace = generate_trace(program, 300_000, seed=11, name="custom")
    print(f"Trace: {len(trace)} branches, "
          f"{trace.num_instructions} instructions\n")

    for name, factory in [
        ("64K TSL", tsl_64k),
        ("Inf TAGE", tage_infinite),
        ("LLBP-0Lat", lambda: LLBPTageScL(LLBPConfig().zero_latency())),
    ]:
        result = run_simulation(trace, factory())
        print(f"{name:10s} MPKI={result.mpki:6.3f}")


if __name__ == "__main__":
    main()
