#!/usr/bin/env python3
"""Explore LLBP's design space (paper §VII-E/F flavour).

Sweeps the pattern-buffer size, the context window W and the prefetch
distance D on one workload, printing MPKI reduction and pattern-set
traffic for each point — the trade-offs behind the paper's chosen
configuration (W=8, D=4, 64-entry PB).

Usage:  python examples/design_space.py [workload] [instructions]
"""

import dataclasses
import sys

from repro.llbp import LLBPConfig, LLBPTageScL
from repro.predictors import tsl_64k
from repro.sim import run_simulation
from repro.workloads import generate_workload


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "NodeApp"
    instructions = int(sys.argv[2]) if len(sys.argv) > 2 else 300_000
    trace = generate_workload(workload, instructions)
    base = run_simulation(trace, tsl_64k())
    print(f"{workload}: 64K TSL baseline MPKI = {base.mpki:.3f}\n")

    print("Pattern-buffer size (Fig 11's trade-off):")
    for pb_entries in (16, 64, 256):
        config = dataclasses.replace(LLBPConfig(), pb_entries=pb_entries)
        result = run_simulation(trace, LLBPTageScL(config))
        bits = (result.extra["read_bits"] + result.extra["write_bits"])
        per_instr = bits / (result.instructions + result.warmup_instructions)
        print(f"  PB={pb_entries:3d}  reduction={result.mpki_reduction_vs(base):5.1f}%"
              f"  traffic={per_instr:5.2f} bits/instr")

    print("\nContext window W and prefetch distance D (Fig 13's knobs):")
    for window in (4, 8, 16):
        for distance in (0, 4):
            config = dataclasses.replace(
                LLBPConfig(), context_window=window, prefetch_distance=distance)
            result = run_simulation(trace, LLBPTageScL(config))
            print(f"  W={window:2d} D={distance}  "
                  f"reduction={result.mpki_reduction_vs(base):5.1f}%")

    print("\nThe paper settles on W=8, D=4, 64-entry PB — enough context "
          "to localise patterns, enough distance to hide the fetch latency, "
          "and a PB small enough to stay cheap.")


if __name__ == "__main__":
    main()
