"""Override arbitration policy, unit-tested with crafted state."""

import dataclasses

from repro.llbp.config import LLBPConfig
from repro.llbp.predictor import LLBPTageScL


def predictor_with_pattern(weak: bool, guard: bool = True):
    """Install a pattern for the current context by hand."""
    config = dataclasses.replace(
        LLBPConfig(), simulate_timing=False, weak_override_guard=guard)
    predictor = LLBPTageScL(config)
    ccid = predictor.rcr.ccid
    pattern_set, _ = predictor.directory.insert(ccid)
    predictor.buffer.fill(ccid, pattern_set, predictor.directory)
    tags = predictor.compute_slot_tags(0x400)
    slot = pattern_set.allocate(hash_slot=10, tag=tags[10], taken=False)
    if not weak:
        for _ in range(4):
            pattern_set.update_counter(slot, False)
    return predictor


def strengthen_tage(predictor, pc=0x400):
    """Give TAGE a confident short-history provider for ``pc``."""
    tage = predictor.tsl.tage
    res = tage.lookup(pc)
    table = 0
    idx = res.indices[table]
    tage.tags[table][idx] = res.tags[table]
    tage._valid[table][idx] = True
    tage.ctrs[table][idx] = 3  # strongly taken
    tage.useful[table][idx] = 1


def test_confident_pattern_overrides():
    predictor = predictor_with_pattern(weak=False)
    strengthen_tage(predictor)
    meta = predictor.predict(0x400)
    assert meta.slot >= 0
    assert meta.overrode
    assert meta.llbp_pred is False
    assert meta.tsl.base_pred is False


def test_weak_pattern_defers_to_confident_tage():
    predictor = predictor_with_pattern(weak=True)
    strengthen_tage(predictor)
    meta = predictor.predict(0x400)
    assert meta.slot >= 0
    assert not meta.overrode          # the guard kicks in
    assert meta.tsl.base_pred is True  # TAGE's direction survives


def test_weak_pattern_overrides_without_guard():
    predictor = predictor_with_pattern(weak=True, guard=False)
    strengthen_tage(predictor)
    meta = predictor.predict(0x400)
    assert meta.overrode


def test_weak_pattern_overrides_weak_tage():
    """With no established TAGE provider the weak pattern still provides."""
    predictor = predictor_with_pattern(weak=True)
    meta = predictor.predict(0x400)
    assert meta.overrode  # bimodal provider (rank 0) never blocks LLBP


def test_longer_history_rank_wins():
    predictor = predictor_with_pattern(weak=False)
    strengthen_tage(predictor)
    meta = predictor.predict(0x400)
    # Hash slot 10 = length 161+ -> rank far above TAGE table 0's rank 1.
    assert meta.llbp_rank > meta.tsl.tage.provider_length_rank
