"""LLBP context-source and timing behaviour on structured streams."""

import dataclasses

from repro.llbp.config import ContextSource, LLBPConfig
from repro.llbp.predictor import LLBPTageScL
from repro.sim.engine import run_simulation
from repro.traces.trace import TraceBuilder
from repro.traces.types import BranchType


def make(**overrides):
    config = dataclasses.replace(LLBPConfig(), **overrides)
    return LLBPTageScL(config)


def context_switch_trace(n_rounds=400):
    """Two alternating call contexts; a branch whose outcome depends on
    which context it runs in — the minimal LLBP-friendly stream."""
    builder = TraceBuilder("ctx")
    for i in range(n_rounds):
        ctx = i % 2
        call_pc = 0x1000 + ctx * 0x100
        callee = 0x8000 + ctx * 0x1000
        builder.append(call_pc, BranchType.CALL, True, callee, 3)
        # Filler unconditional branches shape the RCR window.
        for j in range(4):
            builder.append(callee + 0x10 + 4 * j, BranchType.JUMP, True,
                           callee + 0x20 + 4 * j, 2)
        # The context-dependent branch (same PC in both contexts).
        builder.append(0x9000, BranchType.COND, ctx == 0, 0x9010, 3)
        builder.append(callee + 0x80, BranchType.RET, True, call_pc + 4, 2)
    return builder.build()


def test_all_sources_run_clean():
    trace = context_switch_trace()
    for source in ContextSource:
        result = run_simulation(
            trace, make(context_source=source, simulate_timing=False))
        assert result.cond_branches > 0


def test_context_switch_stream_is_predictable():
    """With context information the alternating branch is easy."""
    trace = context_switch_trace()
    result = run_simulation(trace, make(simulate_timing=False))
    assert result.accuracy > 0.9


def test_prefetch_engine_consulted_when_timed():
    """Every context-forming branch consults the prefetcher; on this tiny
    stream every context ends up PB-resident, so consultations show up as
    directory misses (pre-creation) rather than issued fetches."""
    trace = context_switch_trace()
    predictor = make()
    run_simulation(trace, predictor)
    engine = predictor.prefetcher
    assert engine.issued + engine.directory_misses > 0


def test_cd_accesses_track_context_changes():
    trace = context_switch_trace()
    predictor = make(simulate_timing=False)
    run_simulation(trace, predictor)
    counts = predictor.access_counts()
    # The CID changes on (almost) every unconditional branch here.
    assert counts["cd_accesses"] > 100
    assert counts["pb_accesses"] == predictor.counts["predictions"]


def test_callret_source_sees_fewer_context_changes():
    trace = context_switch_trace()
    uncond = make(simulate_timing=False)
    callret = make(simulate_timing=False,
                   context_source=ContextSource.CALL_RET)
    run_simulation(trace, uncond)
    run_simulation(trace, callret)
    assert (callret.access_counts()["cd_accesses"]
            <= uncond.access_counts()["cd_accesses"])
