"""Pattern buffer."""

import dataclasses

import pytest

from repro.llbp.config import LLBPConfig
from repro.llbp.pattern_buffer import PatternBuffer
from repro.llbp.storage import ContextDirectory


def tiny_config(**overrides):
    defaults = dict(pb_entries=4, pb_ways=2)
    defaults.update(overrides)
    return dataclasses.replace(LLBPConfig(), **defaults)


@pytest.fixture
def setup():
    config = tiny_config()
    cd = ContextDirectory(config)
    pb = PatternBuffer(config)
    return config, cd, pb


def test_geometry_validated():
    with pytest.raises(ValueError):
        PatternBuffer(tiny_config(pb_entries=5, pb_ways=2))


def test_fill_and_get(setup):
    _, cd, pb = setup
    ps, _ = cd.insert(4)
    pb.fill(4, ps, cd)
    assert pb.get(4) is ps
    assert pb.fills == 1
    assert pb.hits == 1


def test_miss_counted(setup):
    _, cd, pb = setup
    assert pb.get(9) is None
    assert pb.misses == 1


def test_duplicate_fill_ignored(setup):
    _, cd, pb = setup
    ps, _ = cd.insert(4)
    pb.fill(4, ps, cd)
    pb.fill(4, ps, cd)
    assert pb.fills == 1


def test_lru_eviction(setup):
    _, cd, pb = setup
    for cid in (0, 2, 4):  # all even -> same PB set (2 ways)
        ps, _ = cd.insert(cid)
        pb.fill(cid, ps, cd)
    assert 0 not in pb
    assert 2 in pb and 4 in pb


def test_get_refreshes_lru(setup):
    _, cd, pb = setup
    for cid in (0, 2):
        ps, _ = cd.insert(cid)
        pb.fill(cid, ps, cd)
    pb.get(0)
    ps, _ = cd.insert(4)
    pb.fill(4, ps, cd)
    assert 0 in pb and 2 not in pb


def test_dirty_eviction_counts_writeback(setup):
    _, cd, pb = setup
    ps0, _ = cd.insert(0)
    ps0.allocate(hash_slot=1, tag=0x5, taken=True)  # dirty
    pb.fill(0, ps0, cd)
    for cid in (2, 4):
        ps, _ = cd.insert(cid)
        pb.fill(cid, ps, cd)
    assert pb.writebacks == 1
    assert not ps0.dirty  # cleared by the writeback


def test_clean_eviction_no_writeback(setup):
    _, cd, pb = setup
    for cid in (0, 2, 4):
        ps, _ = cd.insert(cid)
        pb.fill(cid, ps, cd)
    assert pb.writebacks == 0


def test_writeback_dropped_for_dead_context(setup):
    _, cd, pb = setup
    ps0, _ = cd.insert(0)
    ps0.allocate(hash_slot=1, tag=0x5, taken=True)
    pb.fill(0, ps0, cd)
    cd.remove(0)  # the directory evicted the context meanwhile
    for cid in (2, 4):
        ps, _ = cd.insert(cid)
        pb.fill(cid, ps, cd)
    assert pb.writebacks == 0


def test_flush(setup):
    _, cd, pb = setup
    ps, _ = cd.insert(0)
    ps.allocate(hash_slot=1, tag=0x5, taken=True)
    pb.fill(0, ps, cd)
    pb.flush(cd)
    assert len(pb) == 0
    assert pb.writebacks == 1


def test_peek_does_not_count(setup):
    _, cd, pb = setup
    ps, _ = cd.insert(0)
    pb.fill(0, ps, cd)
    hits_before = pb.hits
    assert pb.peek(0) is ps
    assert pb.hits == hits_before
