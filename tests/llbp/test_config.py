"""LLBP configuration."""

import dataclasses

import pytest

from repro.llbp.config import LLBP_SLOT_LENGTHS, ContextSource, LLBPConfig


def test_paper_geometry():
    config = LLBPConfig()
    assert config.patterns_per_set == 16
    assert config.buckets == 4
    assert config.bucket_size == 4
    assert len(config.slot_lengths) == 16
    assert config.pattern_bits == 18          # 3b ctr + 13b tag + 2b length
    assert config.pattern_set_bits == 288     # §VI
    assert config.cd_ways == 7


def test_slot_lengths_match_paper():
    distinct = sorted(set(LLBP_SLOT_LENGTHS))
    assert distinct == [12, 26, 54, 78, 112, 161, 232, 336, 482, 695, 1444, 3000]
    # Four starred duplicates.
    assert len(LLBP_SLOT_LENGTHS) - len(distinct) == 4


def test_capacity_scaled_from_paper():
    config = LLBPConfig()
    # Paper: 14K pattern sets / ~504KiB; we scale by CAPACITY_SCALE=4.
    assert config.num_pattern_sets == 14336 // 4
    assert abs(config.storage_bits / 8 / 1024 - 126) < 1.0  # ~504/4 KiB


def test_zero_latency_variant():
    config = LLBPConfig()
    zero = config.zero_latency()
    assert config.simulate_timing and not zero.simulate_timing
    assert zero.prefetch_latency_instructions == 0
    assert config.prefetch_latency_instructions > 0


def test_bucket_validation():
    with pytest.raises(ValueError):
        dataclasses.replace(LLBPConfig(), patterns_per_set=15)


def test_slot_lengths_must_be_sorted():
    bad = tuple(reversed(LLBP_SLOT_LENGTHS))
    with pytest.raises(ValueError):
        dataclasses.replace(LLBPConfig(), slot_lengths=bad)


def test_slot_lengths_must_exist_in_tage_ladder():
    bad = LLBP_SLOT_LENGTHS[:-1] + (2999,)
    with pytest.raises(ValueError):
        dataclasses.replace(LLBPConfig(), slot_lengths=bad)


def test_unbucketed_allows_any_size():
    config = dataclasses.replace(LLBPConfig(), bucketed=False, patterns_per_set=13)
    assert config.bucket_size == 13


def test_replacement_policy_validated():
    with pytest.raises(ValueError):
        dataclasses.replace(LLBPConfig(), cd_replacement="random")


def test_context_source_enum():
    assert ContextSource("uncond") is ContextSource.UNCONDITIONAL
    config = dataclasses.replace(LLBPConfig(), context_source=ContextSource.ALL)
    assert config.context_source is ContextSource.ALL


def test_cd_bits_positive():
    assert LLBPConfig().cd_bits > 0
