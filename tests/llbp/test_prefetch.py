"""Prefetch engine."""

import dataclasses

from repro.llbp.config import LLBPConfig
from repro.llbp.pattern_buffer import PatternBuffer
from repro.llbp.prefetch import PrefetchEngine
from repro.llbp.storage import ContextDirectory


def make(latency_cycles=6, timing=True):
    config = dataclasses.replace(
        LLBPConfig(),
        prefetch_latency_cycles=latency_cycles,
        simulate_timing=timing,
        pb_entries=8, pb_ways=2,
    )
    cd = ContextDirectory(config)
    pb = PatternBuffer(config)
    return config, cd, pb, PrefetchEngine(config, cd, pb)


def test_directory_miss_does_not_issue():
    _, cd, pb, engine = make()
    engine.issue(5, now=0)
    assert engine.issued == 0
    assert engine.directory_misses == 1


def test_latency_delays_delivery():
    config, cd, pb, engine = make()
    cd.insert(5)
    engine.issue(5, now=100)
    assert 5 not in pb
    engine.drain(now=100 + engine.latency - 1)
    assert 5 not in pb
    engine.drain(now=100 + engine.latency)
    assert 5 in pb


def test_zero_latency_immediate():
    _, cd, pb, engine = make(timing=False)
    cd.insert(5)
    engine.issue(5, now=0)
    assert 5 in pb
    assert engine.inflight_count() == 0


def test_already_buffered_not_reissued():
    _, cd, pb, engine = make()
    ps, _ = cd.insert(5)
    pb.fill(5, ps, cd)
    engine.issue(5, now=0)
    assert engine.issued == 0


def test_squash_drops_inflight():
    _, cd, pb, engine = make()
    cd.insert(5)
    cd.insert(6)
    engine.issue(5, now=0)
    engine.issue(6, now=0)
    engine.squash()
    assert engine.squashed == 2
    engine.drain(now=10_000)
    assert 5 not in pb and 6 not in pb


def test_delivery_skips_contexts_evicted_meanwhile():
    _, cd, pb, engine = make()
    cd.insert(5)
    engine.issue(5, now=0)
    cd.remove(5)
    engine.drain(now=10_000)
    assert 5 not in pb


def test_fifo_order_preserved():
    _, cd, pb, engine = make()
    for cid in (1, 2, 3):
        cd.insert(cid)
        engine.issue(cid, now=cid)
    engine.drain(now=2 + engine.latency)
    assert 1 in pb and 2 in pb and 3 not in pb


def test_latency_in_instructions():
    config, *_ = make(latency_cycles=6)
    assert config.prefetch_latency_instructions == round(6 * config.instructions_per_cycle)
