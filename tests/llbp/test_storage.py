"""Context directory + backing storage."""

import dataclasses

from repro.llbp.config import LLBPConfig
from repro.llbp.storage import ContextDirectory


def tiny_config(**overrides):
    defaults = dict(cd_set_bits=1, cd_ways=2)
    defaults.update(overrides)
    return dataclasses.replace(LLBPConfig(), **defaults)


def test_insert_and_lookup():
    cd = ContextDirectory(tiny_config())
    ps, evicted = cd.insert(4)
    assert evicted is None
    assert cd.lookup(4) is ps
    assert 4 in cd


def test_insert_existing_returns_same_set():
    cd = ContextDirectory(tiny_config())
    ps, _ = cd.insert(4)
    again, evicted = cd.insert(4)
    assert again is ps and evicted is None
    assert cd.insertions == 1


def test_lookup_miss():
    cd = ContextDirectory(tiny_config())
    assert cd.lookup(9) is None


def test_eviction_when_set_full():
    cd = ContextDirectory(tiny_config())
    cd.insert(0)
    cd.insert(2)   # same set (cid % 2 == 0)
    _, evicted = cd.insert(4)
    assert evicted in (0, 2)
    assert len(cd) == 2
    assert cd.evictions == 1


def test_sets_are_independent():
    cd = ContextDirectory(tiny_config())
    cd.insert(0)
    cd.insert(2)
    cd.insert(1)   # odd set: no eviction
    assert len(cd) == 3


def test_confidence_replacement_prefers_weak_sets():
    cd = ContextDirectory(tiny_config())
    strong, _ = cd.insert(0)
    weak, _ = cd.insert(2)
    slot = strong.allocate(hash_slot=1, tag=0x5, taken=True)
    for _ in range(5):
        strong.update_counter(slot, True)
    weak.allocate(hash_slot=1, tag=0x6, taken=True)  # stays weak
    _, evicted = cd.insert(4)
    assert evicted == 2  # the weak set goes


def test_lru_replacement_mode():
    cd = ContextDirectory(tiny_config(cd_replacement="lru"))
    cd.insert(0)
    cd.insert(2)
    cd.lookup(0)  # touch 0 -> 2 is LRU
    _, evicted = cd.insert(4)
    assert evicted == 2


def test_remove():
    cd = ContextDirectory(tiny_config())
    cd.insert(4)
    cd.remove(4)
    assert cd.lookup(4) is None
    cd.remove(4)  # idempotent


def test_occupancy():
    cd = ContextDirectory(tiny_config())
    assert cd.occupancy() == 0.0
    cd.insert(0)
    assert 0 < cd.occupancy() <= 1.0


def test_default_capacity_is_scaled_14k():
    cd = ContextDirectory(LLBPConfig())
    assert cd.num_sets * cd.ways == 14336 // 4
