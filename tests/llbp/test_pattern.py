"""Patterns and pattern sets."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.llbp.pattern import PatternSet


def make_set(size=16, bucket=4):
    return PatternSet(size=size, bucket_size=bucket)


class TestValidation:
    def test_bucket_divides_size(self):
        with pytest.raises(ValueError):
            PatternSet(size=16, bucket_size=5)
        with pytest.raises(ValueError):
            PatternSet(size=0, bucket_size=1)


class TestAllocateAndFind:
    def test_allocate_then_match(self):
        ps = make_set()
        slot = ps.allocate(hash_slot=5, tag=0x1AB, taken=True)
        tags = [0] * 16
        tags[5] = 0x1AB
        found = ps.find_longest(tags)
        assert found == slot
        assert ps.taken(found) is True

    def test_no_match_returns_minus_one(self):
        ps = make_set()
        ps.allocate(hash_slot=5, tag=0x1AB, taken=True)
        assert ps.find_longest([0x999] * 16) == -1

    def test_longest_match_wins(self):
        ps = make_set()
        ps.allocate(hash_slot=2, tag=0x11, taken=True)    # bucket 0
        ps.allocate(hash_slot=9, tag=0x22, taken=False)   # bucket 2
        tags = [0] * 16
        tags[2] = 0x11
        tags[9] = 0x22
        found = ps.find_longest(tags)
        assert ps.hash_slot(found) == 9  # longer history wins
        assert ps.taken(found) is False

    def test_new_pattern_starts_weak(self):
        ps = make_set()
        slot = ps.allocate(hash_slot=1, tag=0x5, taken=True)
        assert ps.counter(slot) == 0
        slot = ps.allocate(hash_slot=2, tag=0x6, taken=False)
        assert ps.counter(slot) == -1

    def test_allocation_marks_dirty(self):
        ps = make_set()
        assert not ps.dirty
        ps.allocate(hash_slot=1, tag=0x5, taken=True)
        assert ps.dirty


class TestVictimSelection:
    def test_invalid_slots_preferred(self):
        ps = make_set()
        for i in range(3):
            ps.allocate(hash_slot=i, tag=0x10 + i, taken=True)
        assert ps.num_valid() == 3

    def test_least_confident_evicted_when_bucket_full(self):
        ps = make_set()
        # Fill bucket 0 (hash slots 0-3).
        for i in range(4):
            slot = ps.allocate(hash_slot=i, tag=0x10 + i, taken=True)
        # Strengthen all but the slot holding hash slot 2.
        for slot in range(4):
            if ps.hash_slot(slot) != 2:
                for _ in range(3):
                    ps.update_counter(slot, True)
        # Next allocation into bucket 0 must evict the weak pattern (hs 2).
        ps.allocate(hash_slot=1, tag=0x99, taken=True)
        hslots_tags = {(ps.hash_slot(s), ps.tags[s]) for s in range(4) if ps.valid[s]}
        assert (2, 0x12) not in hslots_tags
        assert (1, 0x99) in hslots_tags


class TestSortedInvariant:
    def test_initial_sorted(self):
        assert make_set().is_sorted()

    @given(st.lists(st.tuples(st.integers(0, 15), st.integers(0, 0x1FFF),
                              st.booleans()),
                    max_size=60))
    @settings(max_examples=60)
    def test_allocation_keeps_sorted(self, allocations):
        ps = make_set()
        for hash_slot, tag, taken in allocations:
            ps.allocate(hash_slot, tag, taken)
            assert ps.is_sorted()

    @given(st.lists(st.tuples(st.integers(0, 15), st.integers(0, 0x1FFF),
                              st.booleans()),
                    max_size=60))
    @settings(max_examples=30)
    def test_unbucketed_allocation_keeps_sorted(self, allocations):
        ps = PatternSet(size=8, bucket_size=8)
        for hash_slot, tag, taken in allocations:
            ps.allocate(hash_slot, tag, taken)
            assert ps.is_sorted()

    def test_find_longest_respects_sorted_order(self):
        """With two same-bucket matches the longer hash slot must win."""
        ps = make_set()
        ps.allocate(hash_slot=0, tag=0x1, taken=True)
        ps.allocate(hash_slot=3, tag=0x2, taken=False)
        tags = [0x999] * 16
        tags[0] = 0x1
        tags[3] = 0x2
        found = ps.find_longest(tags)
        assert ps.hash_slot(found) == 3


class TestCounters:
    def test_update_saturates(self):
        ps = make_set()
        slot = ps.allocate(hash_slot=1, tag=0x5, taken=True)
        for _ in range(10):
            ps.update_counter(slot, True)
        assert ps.counter(slot) == ps.ctr_hi
        for _ in range(20):
            ps.update_counter(slot, False)
        assert ps.counter(slot) == ps.ctr_lo

    def test_high_confidence_count(self):
        ps = make_set()
        assert ps.high_confidence_count() == 0
        slot = ps.allocate(hash_slot=1, tag=0x5, taken=True)
        for _ in range(5):
            ps.update_counter(slot, True)
        assert ps.high_confidence_count() == 1

    def test_high_confidence_saturates_at_cap(self):
        ps = make_set()
        for i in range(6):
            slot = ps.allocate(hash_slot=i % 16, tag=0x10 + i, taken=True)
            for _ in range(5):
                ps.update_counter(slot, True)
        assert ps.high_confidence_count(cap=3) == 3

    def test_pattern_view(self):
        ps = make_set()
        slot = ps.allocate(hash_slot=7, tag=0x42, taken=False)
        view = ps.pattern(slot)
        assert view.valid and view.tag == 0x42 and view.hash_slot == 7
        assert view.taken is False
        assert view.confidence == 1
