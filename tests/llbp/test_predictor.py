"""The composite LLBP + TAGE-SC-L predictor."""

import dataclasses

from repro.llbp.config import LLBPConfig
from repro.llbp.predictor import LLBPTageScL
from repro.predictors.presets import TAGE_HISTORY_LENGTHS, tsl_64k
from repro.sim.engine import run_simulation
from repro.traces.types import BranchType


def make(**overrides):
    config = dataclasses.replace(LLBPConfig(), **overrides)
    return LLBPTageScL(config)


def drive(predictor, pc, taken, branch_type=0, target=0):
    predictor.advance(2)
    meta = None
    if branch_type == 0:
        meta = predictor.predict(pc)
        predictor.train(pc, taken, meta)
    predictor.update_history(pc, branch_type, taken, target)
    return meta


class TestBasics:
    def test_names(self):
        assert make().name == "llbp"
        assert make(simulate_timing=False).name == "llbp-0lat"

    def test_slot_ranks_match_tage_ladder(self):
        predictor = make()
        for h, length in enumerate(predictor.config.slot_lengths):
            rank = predictor._slot_rank[h]
            assert TAGE_HISTORY_LENGTHS[rank - 1] == length

    def test_slot_tags_fit_width(self):
        predictor = make()
        for pc in range(0, 2000, 4):
            drive(predictor, pc, True)
        tags = predictor.compute_slot_tags(0x1234)
        assert len(tags) == 16
        assert all(0 <= t < (1 << 13) for t in tags)

    def test_starred_slots_differ(self):
        """Duplicate lengths use different hash salts (§VI)."""
        predictor = make()
        for pc in range(0, 4000, 4):
            drive(predictor, pc, pc % 8 == 0)
        tags = predictor.compute_slot_tags(0x1234)
        # Slots 2 and 3 share length 54 but must not always collide.
        assert tags[2] != tags[3]

    def test_storage_bits_include_all_structures(self):
        predictor = make()
        assert predictor.storage_bits() > tsl_64k().storage_bits()


class TestPredictionFlow:
    def test_prediction_works_cold(self):
        predictor = make()
        meta = predictor.predict(0x100)
        assert meta.pred in (True, False)
        assert meta.pattern_set is None
        predictor.train(0x100, True, meta)

    def test_context_created_on_provider_mispredict(self):
        predictor = make(simulate_timing=False)
        # Teach the bimodal taken, then surprise it -> LLBP allocates.
        for i in range(30):
            drive(predictor, 0x100, True)
            drive(predictor, 0x200, True, branch_type=int(BranchType.CALL),
                  target=0x300)
            drive(predictor, 0x300, True, branch_type=int(BranchType.RET),
                  target=0x204)
        before = predictor.counts["context_creations"]
        for i in range(10):
            drive(predictor, 0x100, False)
            drive(predictor, 0x200, True, branch_type=int(BranchType.CALL),
                  target=0x300)
            drive(predictor, 0x300, True, branch_type=int(BranchType.RET),
                  target=0x204)
        assert predictor.counts["context_creations"] > before
        assert predictor.counts["allocations"] > 0

    def test_finalize_stats_exports_counters(self):
        predictor = make()
        drive(predictor, 0x100, True)
        predictor.finalize_stats()
        for key in ("predictions", "llbp_provided", "pb_accesses",
                    "cd_accesses", "llbp_accesses", "read_bits", "write_bits"):
            assert key in predictor.stats.extra


class TestEndToEnd:
    def test_llbp_not_much_worse_than_baseline(self, tiny_workload_trace):
        base = run_simulation(tiny_workload_trace, tsl_64k())
        llbp = run_simulation(tiny_workload_trace,
                              make(simulate_timing=False))
        assert llbp.mpki <= base.mpki * 1.10

    def test_breakdown_counters_consistent(self, tiny_workload_trace):
        result = run_simulation(tiny_workload_trace, make(simulate_timing=False))
        e = result.extra
        overrides = (e["override_good"] + e["override_bad"]
                     + e["override_both_correct"] + e["override_both_wrong"])
        assert e["llbp_provided"] == overrides + e["no_override"]
        assert e["predictions"] >= e["llbp_provided"]

    def test_timed_vs_zero_latency(self, tiny_workload_trace):
        timed = run_simulation(tiny_workload_trace, make())
        zero = run_simulation(tiny_workload_trace, make(simulate_timing=False))
        # Timing can only delay pattern sets, so coverage must not grow by
        # a large amount (allow simulation noise).
        assert timed.extra["llbp_provided"] <= zero.extra["llbp_provided"] * 1.1

    def test_bandwidth_counters(self, tiny_workload_trace):
        result = run_simulation(tiny_workload_trace, make(simulate_timing=False))
        assert result.extra["read_bits"] % 288 == 0
        assert result.extra["write_bits"] % 288 == 0
        assert result.extra["read_bits"] > 0

    def test_exclusive_training_mode_runs(self, tiny_workload_trace):
        result = run_simulation(
            tiny_workload_trace,
            make(simulate_timing=False, exclusive_provider_training=True),
        )
        assert result.cond_branches > 0

    def test_deterministic(self, tiny_workload_trace):
        a = run_simulation(tiny_workload_trace, make())
        b = run_simulation(tiny_workload_trace, make())
        assert a.mispredictions == b.mispredictions
        assert a.extra == b.extra
