"""Rolling context register."""

import dataclasses

from repro.llbp.config import ContextSource, LLBPConfig
from repro.llbp.rcr import RollingContextRegister
from repro.traces.types import BranchType


def config(**overrides):
    return dataclasses.replace(LLBPConfig(), **overrides)


def test_qualifies_uncond_source():
    rcr = RollingContextRegister(config())
    assert not rcr.qualifies(int(BranchType.COND))
    for bt in (BranchType.JUMP, BranchType.CALL, BranchType.RET,
               BranchType.IND_JUMP, BranchType.IND_CALL):
        assert rcr.qualifies(int(bt))


def test_qualifies_callret_source():
    rcr = RollingContextRegister(config(context_source=ContextSource.CALL_RET))
    assert rcr.qualifies(int(BranchType.CALL))
    assert rcr.qualifies(int(BranchType.RET))
    assert rcr.qualifies(int(BranchType.IND_CALL))
    assert not rcr.qualifies(int(BranchType.JUMP))
    assert not rcr.qualifies(int(BranchType.COND))


def test_qualifies_all_source():
    rcr = RollingContextRegister(config(context_source=ContextSource.ALL))
    assert rcr.qualifies(int(BranchType.COND))
    assert rcr.qualifies(int(BranchType.JUMP))


def test_ccid_lags_prefetch_by_distance():
    """After D more pushes the old prefetch CID becomes the CCID (Fig 8)."""
    cfg = config(context_window=4, prefetch_distance=2)
    rcr = RollingContextRegister(cfg)
    for pc in range(0x1000, 0x1000 + 40 * 4, 4):
        rcr.push(pc)
    expected = rcr.prefetch_cid
    rcr.push(0x9000)
    rcr.push(0x9100)
    assert rcr.ccid == expected


def test_cid_at_endpoints():
    cfg = config(context_window=4, prefetch_distance=3)
    rcr = RollingContextRegister(cfg)
    for pc in range(0x2000, 0x2000 + 30 * 4, 4):
        rcr.push(pc)
    assert rcr.cid_at(0) == rcr.ccid
    assert rcr.cid_at(3) == rcr.prefetch_cid


def test_cid_at_range_checked():
    import pytest

    rcr = RollingContextRegister(config())
    with pytest.raises(ValueError):
        rcr.cid_at(-1)
    with pytest.raises(ValueError):
        rcr.cid_at(99)


def test_position_shift_distinguishes_repeats():
    """Repeated PCs must not cancel (the §V-E3 loop-iteration case)."""
    cfg = config(context_window=4, prefetch_distance=0)
    a = RollingContextRegister(cfg)
    b = RollingContextRegister(cfg)
    # Same multiset of PCs, different order.
    for pc in (0x100, 0x100, 0x200, 0x200):
        a.push(pc)
    for pc in (0x100, 0x200, 0x100, 0x200):
        b.push(pc)
    assert a.ccid != b.ccid


def test_plain_xor_would_cancel_repeats():
    """Sanity for the motivation: without shifting, AABB == ABAB."""
    xor_a = (0x100 >> 2) ^ (0x100 >> 2) ^ (0x200 >> 2) ^ (0x200 >> 2)
    xor_b = (0x100 >> 2) ^ (0x200 >> 2) ^ (0x100 >> 2) ^ (0x200 >> 2)
    assert xor_a == xor_b  # motivates the position shift


def test_push_reports_context_change():
    rcr = RollingContextRegister(config(context_window=2, prefetch_distance=0))
    changed = rcr.push(0x5000)
    assert changed
    # Pushing the exact same window content keeps a stable CID eventually;
    # at minimum the return value is a bool.
    assert isinstance(rcr.push(0x5000), bool)


def test_snapshot_restore():
    rcr = RollingContextRegister(config())
    for pc in range(0x100, 0x100 + 64, 4):
        rcr.push(pc)
    snap = rcr.snapshot()
    ccid = rcr.ccid
    rcr.push(0xDEAD)
    rcr.push(0xBEEF)
    assert rcr.ccid != ccid or rcr.prefetch_cid != ccid
    rcr.restore(snap)
    assert rcr.ccid == ccid


def test_restore_depth_checked():
    import pytest

    rcr = RollingContextRegister(config())
    with pytest.raises(ValueError):
        rcr.restore([1, 2, 3])


def test_cid_fits_bits():
    cfg = config(cid_bits=14)
    rcr = RollingContextRegister(cfg)
    for pc in range(0, 10_000, 4):
        rcr.push(pc * 7919)
        assert 0 <= rcr.ccid < (1 << 14)
        assert 0 <= rcr.prefetch_cid < (1 << 14)
