"""SRAM latency/energy model: must reproduce Table III at the anchors."""

import pytest

from repro.energy.sram import SramModel, SramStructure, anchors


@pytest.fixture
def model():
    return SramModel()


TABLE3 = [
    # name, capacity, width, rel_latency, cycles, rel_energy
    ("64K TSL", 64 * 1024, 42, 1.00, 2, 1.00),
    ("512K TSL", 512 * 1024, 42, 2.55, 4, 4.58),
    ("LLBP", 504 * 1024, 36, 2.68, 4, 4.44),
    ("CD", 8.75 * 1024, 1, 0.80, 1, 0.30),
    ("PB", 2.25 * 1024, 36, 0.62, 1, 0.25),
]


@pytest.mark.parametrize("name,cap,width,lat,cycles,energy", TABLE3)
def test_anchor_values_exact(model, name, cap, width, lat, cycles, energy):
    structure = SramStructure(name, cap, width)
    assert model.relative_latency(structure) == pytest.approx(lat, rel=1e-6)
    assert model.latency_cycles(structure) == cycles
    assert model.relative_energy(structure) == pytest.approx(energy, rel=1e-6)


def test_energy_monotone_in_capacity(model):
    small = SramStructure("s", 1024, 36)
    large = SramStructure("l", 1024 * 1024, 36)
    assert model.relative_energy(small) < model.relative_energy(large)


def test_latency_monotone_in_capacity(model):
    small = SramStructure("s", 64 * 1024, 42)
    large = SramStructure("l", 2 * 1024 * 1024, 42)
    assert model.relative_latency(small) < model.relative_latency(large)


def test_pb_scaling_interpolates(model):
    """The 16- and 256-entry PBs of Fig 12 scale off the PB anchor."""
    pb16 = SramStructure("pb16", 16 * 36, 36)
    pb64 = SramStructure("pb64", 64 * 36, 36)
    pb256 = SramStructure("pb256", 256 * 36, 36)
    e16 = model.relative_energy(pb16)
    e64 = model.relative_energy(pb64)
    e256 = model.relative_energy(pb256)
    assert e16 < e64 < e256
    assert e64 == pytest.approx(0.25, rel=1e-6)


def test_structure_validation():
    with pytest.raises(ValueError):
        SramStructure("x", 0, 1)
    with pytest.raises(ValueError):
        SramStructure("x", 1, 0)


def test_anchors_exported():
    assert len(anchors()) == 5
