"""Structure inventory and Fig 12 energy weighting."""

import pytest

from repro.energy.model import (
    EnergyModel,
    TABLE3_STRUCTURES,
    pb_structure,
    table3_rows,
)


def test_table3_rows_cover_paper_structures():
    rows = {r.name: r for r in table3_rows()}
    assert set(rows) == set(TABLE3_STRUCTURES)
    assert rows["64KiB TSL"].relative_energy == pytest.approx(1.0)
    assert rows["512KiB TSL"].relative_energy == pytest.approx(4.58)
    assert rows["LLBP"].relative_energy == pytest.approx(4.44)
    assert rows["CD"].relative_energy == pytest.approx(0.30)
    assert rows["PB (64-entries)"].relative_energy == pytest.approx(0.25)


def test_table3_cycles():
    rows = {r.name: r for r in table3_rows()}
    assert rows["64KiB TSL"].latency_cycles == 2
    assert rows["512KiB TSL"].latency_cycles == 4
    assert rows["LLBP"].latency_cycles == 4
    assert rows["CD"].latency_cycles == 1
    assert rows["PB (64-entries)"].latency_cycles == 1


def test_pb_structure_geometry():
    pb = pb_structure(64)
    assert pb.capacity_bytes == 64 * 36
    assert pb.ways == 4


def test_tsl_design_unit_energy():
    model = EnergyModel()
    assert model.tsl_design("64KiB TSL").total == pytest.approx(1.0)
    assert model.tsl_design("512KiB TSL", capacity_kib=512).total == pytest.approx(4.58)


def test_llbp_design_weighting():
    """Paper access rates: CD every ~6.3 cycles, LLBP every ~7.7 cycles
    with a 64-entry PB -> total ~1.5x over the baseline."""
    model = EnergyModel()
    predictions = 1_000_000
    breakdown = model.llbp_design(
        predictions=predictions,
        cd_accesses=predictions // 6,
        llbp_accesses=predictions // 8,
        pb_entries=64,
    )
    assert breakdown.components["TAGE-SC-L"] == pytest.approx(1.0)
    assert 1.3 < breakdown.total < 2.2


def test_llbp_design_validates_predictions():
    with pytest.raises(ValueError):
        EnergyModel().llbp_design(0, 1, 1)


def test_rare_llbp_access_is_cheap():
    """Accessing the big array rarely must cost less than scaling TSL."""
    model = EnergyModel()
    predictions = 1_000_000
    llbp = model.llbp_design(predictions, predictions // 6, predictions // 8)
    scaled = model.tsl_design("512KiB TSL", capacity_kib=512)
    assert llbp.total < scaled.total


def test_normalise():
    model = EnergyModel()
    base = model.tsl_design("64KiB TSL")
    scaled = model.tsl_design("512KiB TSL", capacity_kib=512)
    normed = EnergyModel.normalise([base, scaled], base)
    assert normed[0].total == pytest.approx(1.0)
    assert normed[1].total == pytest.approx(4.58)
