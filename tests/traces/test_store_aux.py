"""Format-v2 aux sections: round-trip, degradation, in-place upgrade.

Aux sections carry *derived* data (the array engine's precomputed hash
columns), so the failure contract differs from the main trace: a corrupt
or alien aux section must never fail the trace load — it degrades to "the
columns are missing, recompute and republish", surfaced through
``trace.store_stale`` telemetry.  Only an unreadable *container* (future
format version) fails, and the cache turns even that into a regenerating
miss.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor

import numpy as np
import pytest

from repro import telemetry
from repro.traces import store
from repro.traces.store import (
    TraceStoreError,
    TraceStoreVersionError,
    append_aux,
    read_packed,
    write_packed,
)


def _aux_arrays():
    return {
        "cols/tsl:deadbeef": np.arange(24, dtype=np.uint16).reshape(6, 4),
        "cols/gshare:14:14": np.arange(6, dtype=np.uint32),
    }


def _assert_aux_equal(actual, expected):
    assert sorted(actual) == sorted(expected)
    for key in expected:
        assert actual[key].dtype == expected[key].dtype
        assert actual[key].shape == expected[key].shape
        assert np.array_equal(actual[key], expected[key])


class TestAuxRoundTrip:
    def test_columns_survive_pack_cycle(self, mixed_trace, tmp_path):
        mixed_trace.aux.update(_aux_arrays())
        path = tmp_path / "t.rpt"
        write_packed(mixed_trace, path)
        _assert_aux_equal(read_packed(path).aux, _aux_arrays())

    def test_no_aux_reads_back_empty(self, mixed_trace, tmp_path):
        path = tmp_path / "t.rpt"
        write_packed(mixed_trace, path)
        assert read_packed(path).aux == {}

    def test_mmap_and_copy_agree(self, mixed_trace, tmp_path):
        mixed_trace.aux.update(_aux_arrays())
        path = tmp_path / "t.rpt"
        write_packed(mixed_trace, path)
        _assert_aux_equal(read_packed(path, use_mmap=True).aux,
                          read_packed(path, use_mmap=False).aux)

    def test_unsupported_dtype_rejected(self, mixed_trace, tmp_path):
        mixed_trace.aux["bad"] = np.zeros(4, dtype=np.float64)
        with pytest.raises(ValueError, match="unsupported dtype"):
            write_packed(mixed_trace, tmp_path / "t.rpt")


class TestVersionCompatibility:
    def test_v1_file_reads_with_empty_aux(self, mixed_trace, tmp_path,
                                          monkeypatch):
        monkeypatch.setattr(store, "_FORMAT_VERSION", 1)
        path = tmp_path / "v1.rpt"
        write_packed(mixed_trace, path)
        monkeypatch.undo()
        trace = read_packed(path)
        assert trace.aux == {}
        assert np.array_equal(trace.pcs, mixed_trace.pcs)

    def test_v1_rejects_trailing_bytes(self, mixed_trace, tmp_path,
                                       monkeypatch):
        """v1 predates aux sections: any trailing bytes are corruption."""
        monkeypatch.setattr(store, "_FORMAT_VERSION", 1)
        path = tmp_path / "v1.rpt"
        write_packed(mixed_trace, path)
        monkeypatch.undo()
        path.write_bytes(path.read_bytes() + b"\x00" * 64)
        with pytest.raises(TraceStoreError, match="truncated"):
            read_packed(path)

    def test_future_version_raises_version_error(self, mixed_trace,
                                                 tmp_path):
        path = tmp_path / "t.rpt"
        write_packed(mixed_trace, path)
        data = bytearray(path.read_bytes())
        data[4:6] = (99).to_bytes(2, "little")
        path.write_bytes(bytes(data))
        with pytest.raises(TraceStoreVersionError):
            read_packed(path)

    def test_cache_degrades_future_version_to_stale_miss(
            self, mixed_trace, tmp_path, monkeypatch):
        trace_store = store.TraceStore(tmp_path / "root")
        path = trace_store.store(mixed_trace, "mixed", seed=1,
                                 instructions=100)
        data = bytearray(path.read_bytes())
        data[4:6] = (99).to_bytes(2, "little")
        path.write_bytes(bytes(data))
        monkeypatch.setenv("REPRO_TELEMETRY", str(tmp_path / "events"))
        try:
            assert trace_store.load("mixed", seed=1, instructions=100) is None
        finally:
            telemetry.reset()
        assert not path.exists()  # dropped, so the caller regenerates
        events = {e["event"]: e
                  for e in telemetry.load_events(tmp_path / "events")}
        assert events["trace.store_stale"]["reason"] == "version"
        assert events["trace.store_miss"]["reason"] == "version"


class TestAuxDegradation:
    def test_corrupt_aux_keeps_trace_drops_columns(self, mixed_trace,
                                                   tmp_path, monkeypatch):
        mixed_trace.aux.update(_aux_arrays())
        path = tmp_path / "t.rpt"
        write_packed(mixed_trace, path)
        data = bytearray(path.read_bytes())
        data[-10] ^= 0xFF  # inside the last aux section
        path.write_bytes(bytes(data))
        monkeypatch.setenv("REPRO_TELEMETRY", str(tmp_path / "events"))
        try:
            trace = read_packed(path)
        finally:
            telemetry.reset()
        assert np.array_equal(trace.pcs, mixed_trace.pcs)
        # sections are ordered by key; the first verified one is kept
        first_key = sorted(_aux_arrays())[0]
        assert sorted(trace.aux) == [first_key]
        events = [e for e in telemetry.load_events(tmp_path / "events")
                  if e["event"] == "trace.store_stale"]
        assert events and events[0]["reason"] == "aux-corrupt"

    def test_truncated_aux_keeps_trace(self, mixed_trace, tmp_path):
        mixed_trace.aux.update(_aux_arrays())
        path = tmp_path / "t.rpt"
        write_packed(mixed_trace, path)
        data = path.read_bytes()
        path.write_bytes(data[:-7])
        trace = read_packed(path)
        assert np.array_equal(trace.takens, mixed_trace.takens)
        assert len(trace.aux) < len(_aux_arrays())


class TestAppendAux:
    def test_upgrades_file_in_place(self, mixed_trace, tmp_path):
        path = tmp_path / "t.rpt"
        write_packed(mixed_trace, path)
        assert append_aux(path, _aux_arrays())
        _assert_aux_equal(read_packed(path).aux, _aux_arrays())

    def test_merges_with_existing_columns(self, mixed_trace, tmp_path):
        mixed_trace.aux["cols/llbp:cafe"] = np.arange(8, dtype=np.uint16)
        path = tmp_path / "t.rpt"
        write_packed(mixed_trace, path)
        assert append_aux(path, _aux_arrays())
        merged = read_packed(path).aux
        assert sorted(merged) == sorted(
            list(_aux_arrays()) + ["cols/llbp:cafe"])

    def test_unreadable_file_returns_false(self, tmp_path):
        assert not append_aux(tmp_path / "absent.rpt", _aux_arrays())
        bad = tmp_path / "bad.rpt"
        bad.write_bytes(b"NOPE" * 20)
        assert not append_aux(bad, _aux_arrays())


def _hammer_aux(path, tag, rounds):
    """Subprocess body: repeatedly merge a distinctly-named column."""
    wrote = 0
    for i in range(rounds):
        column = np.full(16, i, dtype=np.uint32)
        if append_aux(path, {f"cols/{tag}:{i % 4}": column}):
            wrote += 1
    return wrote


class TestAppendAuxConcurrency:
    def test_two_processes_never_corrupt_the_file(self, mixed_trace,
                                                  tmp_path):
        """Concurrent appenders are allowed to lose each other's
        *columns* (the loser recomputes), but never to corrupt the
        container: after the storm the file must still read back with
        valid checksums and untouched base columns."""
        path = tmp_path / "t.rpt"
        write_packed(mixed_trace, path)
        with ProcessPoolExecutor(max_workers=2) as pool:
            counts = [f.result(timeout=120) for f in [
                pool.submit(_hammer_aux, str(path), "a", 25),
                pool.submit(_hammer_aux, str(path), "b", 25),
            ]]
        # Both processes made progress and none saw an unreadable file.
        assert counts == [25, 25]
        trace = read_packed(path, use_mmap=False)
        assert np.array_equal(trace.pcs, mixed_trace.pcs)
        assert np.array_equal(trace.takens, mixed_trace.takens)
        # At least the last writer's column survived, intact.
        assert any(key.startswith("cols/") for key in trace.aux)
        for array in trace.aux.values():
            assert array.dtype == np.uint32 and array.shape == (16,)
