"""Trace container and builder."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.traces.trace import Trace, TraceBuilder
from repro.traces.types import BranchRecord, BranchType

record_strategy = st.tuples(
    st.integers(min_value=0, max_value=2**40),        # pc
    st.sampled_from(list(BranchType)),                # type
    st.booleans(),                                    # taken (cond only)
    st.integers(min_value=0, max_value=2**40),        # target
    st.integers(min_value=1, max_value=30),           # gap
)


def build(records):
    builder = TraceBuilder("t")
    for pc, bt, taken, target, gap in records:
        if bt != BranchType.COND:
            taken = True
        builder.append(pc, bt, taken, target, gap)
    return builder.build()


def test_builder_roundtrip():
    trace = build([(0x10, BranchType.COND, True, 0x20, 2),
                   (0x30, BranchType.CALL, True, 0x40, 5)])
    assert len(trace) == 2
    rec = trace.record(0)
    assert rec == BranchRecord(0x10, BranchType.COND, True, 0x20, 2)
    assert trace.record(1).branch_type == BranchType.CALL


def test_num_instructions_is_gap_sum():
    trace = build([(0, BranchType.COND, True, 0, 3),
                   (4, BranchType.COND, False, 0, 7)])
    assert trace.num_instructions == 10


def test_num_conditional():
    trace = build([(0, BranchType.COND, True, 0, 1),
                   (4, BranchType.JUMP, True, 8, 1),
                   (8, BranchType.COND, False, 0, 1)])
    assert trace.num_conditional == 2


def test_iter_tuples_matches_records():
    records = [(0x10, BranchType.COND, False, 0x20, 2),
               (0x30, BranchType.RET, True, 0x40, 4)]
    trace = build(records)
    out = list(trace.iter_tuples())
    assert out[0] == (0x10, 0, 0, 0x20, 2)
    assert out[1] == (0x30, 3, 1, 0x40, 4)


def test_slice():
    trace = build([(i * 4, BranchType.COND, True, 0, 1) for i in range(10)])
    sub = trace.slice(2, 5)
    assert len(sub) == 3
    assert sub.record(0).pc == 8


def test_truncate_to_instructions():
    trace = build([(i, BranchType.COND, True, 0, 5) for i in range(10)])
    sub = trace.truncate_to_instructions(12)
    assert len(sub) == 2
    assert sub.num_instructions == 10


def test_truncate_longer_than_trace():
    trace = build([(0, BranchType.COND, True, 0, 5)])
    assert len(trace.truncate_to_instructions(1000)) == 1


def test_mismatched_arrays_rejected():
    with pytest.raises(ValueError):
        Trace(np.zeros(2), np.zeros(1), np.zeros(2), np.zeros(2), np.ones(2))


def test_builder_rejects_bad_gap():
    builder = TraceBuilder()
    with pytest.raises(ValueError):
        builder.append(0, BranchType.COND, True, 0, 0)


def test_append_record():
    builder = TraceBuilder()
    builder.append_record(BranchRecord(0x10, BranchType.COND, True, 0, 2))
    trace = builder.build()
    assert trace.record(0).pc == 0x10


@given(st.lists(record_strategy, min_size=1, max_size=60))
@settings(max_examples=40)
def test_roundtrip_property(records):
    trace = build(records)
    assert len(trace) == len(records)
    assert trace.num_instructions == sum(r[4] for r in records)
    for i, (pc, bt, taken, target, gap) in enumerate(records):
        rec = trace.record(i)
        assert rec.pc == pc
        assert rec.branch_type == bt
        assert rec.target == target
        assert rec.instr_gap == gap
