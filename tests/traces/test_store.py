"""Packed-binary trace store: round-trip, corruption, mmap, caching.

The store is a *cache* of deterministic generator output, so its
correctness bar is: a hit must be indistinguishable from regenerating
(bit-identical columns), and anything less than a perfect file — short,
truncated, bit-flipped, wrong magic or version — must read as a miss
that triggers regeneration, never as data.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import telemetry
from repro.traces import store
from repro.traces.io import load_trace, save_trace
from repro.traces.store import (
    TraceStore,
    TraceStoreError,
    pack_trace,
    read_packed,
    write_packed,
)
from repro.traces.trace import Trace
from repro.workloads.catalog import generate_workload

COLUMNS = ("pcs", "types", "takens", "targets", "gaps")


def _assert_traces_equal(a: Trace, b: Trace) -> None:
    assert a.name == b.name
    assert len(a) == len(b)
    for column in COLUMNS:
        left, right = getattr(a, column), getattr(b, column)
        assert left.dtype == right.dtype
        assert np.array_equal(left, right)


class TestRoundTrip:
    def test_packed_matches_original(self, mixed_trace, tmp_path):
        path = tmp_path / "mixed.rpt"
        write_packed(mixed_trace, path)
        _assert_traces_equal(read_packed(path), mixed_trace)

    def test_agrees_with_npz_reference(self, tiny_workload_trace, tmp_path):
        """The packed format and the legacy ``.npz`` interchange format
        must describe the same trace byte for byte, column for column."""
        save_trace(tiny_workload_trace, tmp_path / "ref.npz")
        write_packed(tiny_workload_trace, tmp_path / "t.rpt")
        _assert_traces_equal(read_packed(tmp_path / "t.rpt"),
                             load_trace(tmp_path / "ref.npz"))

    def test_empty_trace(self, tmp_path):
        empty = Trace(np.array([], dtype=np.uint64),
                      np.array([], dtype=np.uint8),
                      np.array([], dtype=np.uint8),
                      np.array([], dtype=np.uint64),
                      np.array([], dtype=np.uint16), name="empty")
        path = tmp_path / "empty.rpt"
        write_packed(empty, path)
        _assert_traces_equal(read_packed(path), empty)

    def test_pack_is_deterministic(self, mixed_trace):
        assert pack_trace(mixed_trace) == pack_trace(mixed_trace)

    def test_long_name_rejected(self, mixed_trace):
        mixed_trace.name = "x" * 70_000
        with pytest.raises(ValueError, match="name too long"):
            pack_trace(mixed_trace)


class TestCorruptionDetection:
    def test_truncated_file_rejected(self, mixed_trace, tmp_path):
        path = tmp_path / "t.rpt"
        write_packed(mixed_trace, path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(TraceStoreError, match="truncated"):
            read_packed(path)

    def test_flipped_payload_byte_rejected(self, mixed_trace, tmp_path):
        path = tmp_path / "t.rpt"
        write_packed(mixed_trace, path)
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(TraceStoreError, match="digest mismatch"):
            read_packed(path)

    def test_bad_magic_rejected(self, mixed_trace, tmp_path):
        path = tmp_path / "t.rpt"
        write_packed(mixed_trace, path)
        data = bytearray(path.read_bytes())
        data[:4] = b"NOPE"
        path.write_bytes(bytes(data))
        with pytest.raises(TraceStoreError, match="bad magic"):
            read_packed(path)

    def test_future_version_rejected(self, mixed_trace, tmp_path):
        path = tmp_path / "t.rpt"
        write_packed(mixed_trace, path)
        data = bytearray(path.read_bytes())
        data[4:6] = (99).to_bytes(2, "little")
        path.write_bytes(bytes(data))
        with pytest.raises(TraceStoreError, match="version"):
            read_packed(path)

    def test_tiny_file_rejected(self, tmp_path):
        path = tmp_path / "t.rpt"
        path.write_bytes(b"RPTB")
        with pytest.raises(TraceStoreError, match="truncated"):
            read_packed(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(TraceStoreError, match="unreadable"):
            read_packed(tmp_path / "nope.rpt")

    def test_store_treats_corruption_as_miss(self, mixed_trace, tmp_path):
        """A corrupt cache entry is dropped and reported as a miss so
        the caller regenerates over it — never trusted, never fatal."""
        trace_store = TraceStore(tmp_path)
        path = trace_store.store(mixed_trace, "mixed", seed=1,
                                 instructions=100)
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF
        path.write_bytes(bytes(data))
        assert trace_store.load("mixed", seed=1, instructions=100) is None
        assert not path.exists()  # poisoned bytes may not answer again


class TestMemoryMapping:
    def test_mmap_and_copy_reads_identical(self, tiny_workload_trace,
                                           tmp_path):
        path = tmp_path / "t.rpt"
        write_packed(tiny_workload_trace, path)
        mapped = read_packed(path, use_mmap=True)
        copied = read_packed(path, use_mmap=False)
        _assert_traces_equal(mapped, copied)
        assert list(mapped.iter_tuples()) == list(copied.iter_tuples())

    def test_mmap_views_are_readonly(self, mixed_trace, tmp_path):
        """Zero-copy views over a shared mapping must not be writable:
        a worker scribbling on them would corrupt every sibling."""
        path = tmp_path / "t.rpt"
        write_packed(mixed_trace, path)
        mapped = read_packed(path, use_mmap=True)
        for column in COLUMNS:
            assert not getattr(mapped, column).flags.writeable


class TestTraceStoreCache:
    def test_content_address_covers_request(self):
        base = TraceStore.key("Kafka", seed=1, instructions=1000)
        assert TraceStore.key("Kafka", seed=2, instructions=1000) != base
        assert TraceStore.key("Kafka", seed=1, instructions=2000) != base
        assert TraceStore.key("TPCC", seed=1, instructions=1000) != base
        assert TraceStore.key("Kafka", seed=1, instructions=1000) == base

    def test_generate_workload_hits_store(self, isolated_caches):
        first = generate_workload("Kafka", 60_000)
        second = generate_workload("Kafka", 60_000)
        _assert_traces_equal(first, second)
        # The second call answered from the packed store: the columns
        # are mmap-backed views, not freshly generated arrays.
        assert not second.pcs.flags.writeable

    def test_corrupt_store_entry_regenerates(self, isolated_caches):
        clean = generate_workload("Kafka", 60_000)
        (path,) = (isolated_caches / "cache" / "traces").glob("*.rpt")
        data = bytearray(path.read_bytes())
        data[len(data) // 3] ^= 0xFF
        path.write_bytes(bytes(data))
        regenerated = generate_workload("Kafka", 60_000)
        _assert_traces_equal(regenerated, clean)

    def test_env_disables_store(self, isolated_caches, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_STORE", "0")
        assert not store.enabled()
        trace = generate_workload("Kafka", 60_000)
        cache = isolated_caches / "cache"
        assert list(cache.glob("*.npz"))  # legacy backend took over
        assert not list(cache.glob("traces/*.rpt"))
        monkeypatch.delenv("REPRO_TRACE_STORE")
        _assert_traces_equal(generate_workload("Kafka", 60_000), trace)

    def test_hit_and_miss_telemetry(self, isolated_caches, tmp_path,
                                    monkeypatch):
        monkeypatch.setenv("REPRO_TELEMETRY", str(tmp_path / "events"))
        try:
            generate_workload("Kafka", 60_000)
            generate_workload("Kafka", 60_000)
        finally:
            telemetry.reset()
        events = [e["event"]
                  for e in telemetry.load_events(tmp_path / "events")
                  if e["event"].startswith("trace.store_")]
        assert events == ["trace.store_miss", "trace.store_hit"]
