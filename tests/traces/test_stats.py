"""Trace statistics."""

from repro.traces.stats import compute_stats
from repro.traces.trace import TraceBuilder
from repro.traces.types import BranchType


def make_trace():
    builder = TraceBuilder("stats")
    # 6 conditionals (4 taken), 1 call, 1 ret, 1 jump, 1 indirect call.
    for i in range(6):
        builder.append(0x100 + 4 * (i % 2), BranchType.COND, i < 4, 0x200, 2)
    builder.append(0x300, BranchType.CALL, True, 0x400, 3)
    builder.append(0x400, BranchType.RET, True, 0x304, 1)
    builder.append(0x310, BranchType.JUMP, True, 0x320, 2)
    builder.append(0x320, BranchType.IND_CALL, True, 0x500, 2)
    return builder.build()


def test_counts():
    stats = compute_stats(make_trace())
    assert stats.num_branches == 10
    assert stats.num_conditional == 6
    assert stats.num_unconditional == 4
    assert stats.num_calls == 2       # direct + indirect
    assert stats.num_returns == 1
    assert stats.num_indirect == 1
    assert stats.num_instructions == 6 * 2 + 3 + 1 + 2 + 2


def test_ratios():
    stats = compute_stats(make_trace())
    assert stats.cond_per_uncond == 6 / 4
    assert stats.uncond_fraction == 0.4
    assert stats.call_ret_fraction == 0.3
    assert abs(stats.taken_rate - 4 / 6) < 1e-12
    assert stats.branches_per_instruction == 10 / 20


def test_unique_pcs():
    stats = compute_stats(make_trace())
    assert stats.unique_conditional_pcs == 2
    assert stats.unique_pcs == 6


def test_per_type_table():
    stats = compute_stats(make_trace())
    assert stats.per_type[BranchType.COND] == 6
    assert stats.per_type[BranchType.IND_JUMP] == 0


def test_empty_uncond_inf_ratio():
    builder = TraceBuilder()
    builder.append(0, BranchType.COND, True, 0, 1)
    stats = compute_stats(builder.build())
    assert stats.cond_per_uncond == float("inf")
