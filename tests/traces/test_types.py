"""Branch record model."""

import pytest

from repro.traces.types import (
    BranchRecord,
    BranchType,
    is_call,
    is_indirect,
    is_return,
    is_unconditional,
)


def test_type_classification():
    assert not is_unconditional(BranchType.COND)
    for bt in (BranchType.JUMP, BranchType.CALL, BranchType.RET,
               BranchType.IND_JUMP, BranchType.IND_CALL):
        assert is_unconditional(bt)
    assert is_call(BranchType.CALL) and is_call(BranchType.IND_CALL)
    assert not is_call(BranchType.RET)
    assert is_return(BranchType.RET)
    assert is_indirect(BranchType.IND_JUMP) and is_indirect(BranchType.IND_CALL)
    assert not is_indirect(BranchType.CALL)


def test_record_properties():
    record = BranchRecord(0x100, BranchType.COND, False, 0x200, 3)
    assert record.is_conditional and not record.is_unconditional


def test_unconditional_must_be_taken():
    with pytest.raises(ValueError):
        BranchRecord(0x100, BranchType.JUMP, False, 0x200)


def test_gap_must_be_positive():
    with pytest.raises(ValueError):
        BranchRecord(0x100, BranchType.COND, True, 0x200, 0)


def test_types_are_stable_ints():
    """Trace files depend on these values; they must never change."""
    assert [int(bt) for bt in BranchType] == [0, 1, 2, 3, 4, 5]
