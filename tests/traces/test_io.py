"""Trace persistence."""

import numpy as np
import pytest

from repro.traces.io import load_trace, save_trace
from repro.traces.trace import TraceBuilder
from repro.traces.types import BranchType


def make_trace(n=50):
    builder = TraceBuilder("io-test")
    for i in range(n):
        bt = BranchType.COND if i % 3 else BranchType.CALL
        builder.append(0x1000 + 4 * i, bt, True, 0x2000 + i, 1 + i % 5)
    return builder.build()


def test_roundtrip(tmp_path):
    trace = make_trace()
    path = tmp_path / "t.npz"
    save_trace(trace, path)
    loaded = load_trace(path)
    assert loaded.name == trace.name
    assert len(loaded) == len(trace)
    assert np.array_equal(loaded.pcs, trace.pcs)
    assert np.array_equal(loaded.types, trace.types)
    assert np.array_equal(loaded.takens, trace.takens)
    assert np.array_equal(loaded.targets, trace.targets)
    assert np.array_equal(loaded.gaps, trace.gaps)


def test_creates_parent_dirs(tmp_path):
    path = tmp_path / "a" / "b" / "t.npz"
    save_trace(make_trace(5), path)
    assert path.exists()


def test_no_tmp_file_left_behind(tmp_path):
    path = tmp_path / "t.npz"
    save_trace(make_trace(5), path)
    assert list(tmp_path.iterdir()) == [path]


def test_bad_version_rejected(tmp_path):
    path = tmp_path / "t.npz"
    trace = make_trace(5)
    with open(path, "wb") as fh:
        np.savez_compressed(
            fh, version=np.array([99]), name=np.array(["x"]),
            pcs=trace.pcs, types=trace.types, takens=trace.takens,
            targets=trace.targets, gaps=trace.gaps,
        )
    with pytest.raises(ValueError):
        load_trace(path)
