"""Folded-history machinery: the incremental fold must equal the
reference fold for every update sequence — TAGE's correctness rests on it."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.bitops import FoldedHistory, HistoryBuffer, fold_bits, mix_pc


class TestFoldBits:
    def test_zero_width_rejected(self):
        assert fold_bits(0b1011, 4, 0) == 0

    def test_identity_when_width_covers_length(self):
        assert fold_bits(0b1011, 4, 8) == 0b1011

    def test_simple_fold(self):
        # 6 bits folded into 3: 0b101110 -> 0b110 ^ 0b101
        assert fold_bits(0b101110, 6, 3) == (0b110 ^ 0b101)

    def test_masks_bits_beyond_length(self):
        assert fold_bits(0b111100, 2, 4) == 0

    @given(st.integers(min_value=0, max_value=(1 << 40) - 1),
           st.integers(min_value=1, max_value=40),
           st.integers(min_value=1, max_value=16))
    def test_result_fits_width(self, bits, length, width):
        assert 0 <= fold_bits(bits, length, width) < (1 << width)


class TestHistoryBuffer:
    def test_push_and_read(self):
        buf = HistoryBuffer(capacity=8)
        for bit in (1, 0, 1, 1):
            buf.push(bit)
        assert buf.bit(0) == 1
        assert buf.bit(1) == 1
        assert buf.bit(2) == 0
        assert buf.bit(3) == 1

    def test_value_reconstructs_bits(self):
        buf = HistoryBuffer(capacity=16)
        for bit in (1, 0, 1, 1, 0):
            buf.push(bit)
        # newest at bit position 0: ages 0..4 = 0,1,1,0,1
        assert buf.value(5) == 0b10110

    def test_wraparound(self):
        buf = HistoryBuffer(capacity=4)
        for bit in (1, 1, 1, 1, 0, 0):
            buf.push(bit)
        assert buf.bit(0) == 0
        assert buf.bit(1) == 0
        assert buf.bit(2) == 1
        assert buf.bit(3) == 1

    def test_age_out_of_range(self):
        buf = HistoryBuffer(capacity=4)
        with pytest.raises(IndexError):
            buf.bit(4)
        with pytest.raises(IndexError):
            buf.bit(-1)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            HistoryBuffer(capacity=0)

    def test_clear(self):
        buf = HistoryBuffer(capacity=4)
        buf.push(1)
        buf.clear()
        assert buf.bit(0) == 0
        assert len(buf) == 0


class TestFoldedHistory:
    @given(st.lists(st.integers(min_value=0, max_value=1),
                    min_size=1, max_size=400),
           st.integers(min_value=1, max_value=64),
           st.integers(min_value=2, max_value=14))
    @settings(max_examples=60)
    def test_incremental_matches_reference(self, bits, length, width):
        """The O(1) incremental fold equals folding the window from scratch."""
        buf = HistoryBuffer(capacity=max(length + 1, 8))
        folded = FoldedHistory(length, width)
        for bit in bits:
            old = buf.bit(length - 1)
            buf.push(bit)
            folded.update(bit, old)
        assert folded.value == fold_bits(buf.value(length), length, width)

    def test_reset(self):
        folded = FoldedHistory(8, 4)
        folded.update(1, 0)
        assert folded.value != 0
        folded.reset()
        assert folded.value == 0

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            FoldedHistory(-1, 4)
        with pytest.raises(ValueError):
            FoldedHistory(8, 0)


def test_mix_pc_drops_alignment():
    assert mix_pc(0x1000) == mix_pc(0x1000)
    assert mix_pc(0x1000) != mix_pc(0x2000)
