"""Saturating counter semantics."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.counters import SaturatingCounter, WidthCounter, ctr_update


class TestSaturatingCounter:
    def test_range_3bit(self):
        c = SaturatingCounter(bits=3)
        assert (c.lo, c.hi) == (-4, 3)

    def test_taken_threshold(self):
        assert SaturatingCounter(3, 0).taken
        assert not SaturatingCounter(3, -1).taken

    def test_saturates_high(self):
        c = SaturatingCounter(3, 3)
        c.update(True)
        assert c.value == 3

    def test_saturates_low(self):
        c = SaturatingCounter(3, -4)
        c.update(False)
        assert c.value == -4

    def test_set_weak(self):
        c = SaturatingCounter(3)
        c.set_weak(True)
        assert c.value == 0 and c.taken and c.is_weak()
        c.set_weak(False)
        assert c.value == -1 and not c.taken and c.is_weak()

    def test_high_confidence(self):
        assert SaturatingCounter(3, 3).is_high_confidence()
        assert SaturatingCounter(3, 2).is_high_confidence()
        assert not SaturatingCounter(3, 1).is_high_confidence()
        assert SaturatingCounter(3, -4).is_high_confidence()
        assert SaturatingCounter(3, -3).is_high_confidence()

    def test_invalid(self):
        with pytest.raises(ValueError):
            SaturatingCounter(0)
        with pytest.raises(ValueError):
            SaturatingCounter(3, 9)

    @given(st.lists(st.booleans(), max_size=100))
    def test_stays_in_range(self, outcomes):
        c = SaturatingCounter(3)
        for taken in outcomes:
            c.update(taken)
            assert c.lo <= c.value <= c.hi


class TestCtrUpdate:
    @given(st.integers(min_value=-4, max_value=3), st.booleans())
    def test_matches_object_counter(self, value, taken):
        c = SaturatingCounter(3, value)
        c.update(taken)
        assert ctr_update(value, taken, -4, 3) == c.value


class TestWidthCounter:
    def test_range(self):
        c = WidthCounter(bits=2)
        assert c.hi == 3

    def test_saturation(self):
        c = WidthCounter(2, 3)
        c.increment()
        assert c.value == 3 and c.saturated

    def test_floor(self):
        c = WidthCounter(2, 0)
        c.decrement()
        assert c.value == 0

    def test_reset(self):
        c = WidthCounter(2, 2)
        c.reset()
        assert c.value == 0

    def test_invalid(self):
        with pytest.raises(ValueError):
            WidthCounter(0)
        with pytest.raises(ValueError):
            WidthCounter(2, 4)
