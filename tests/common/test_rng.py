"""Deterministic PRNG behaviour."""

import pytest

from repro.common.rng import XorShift32


def test_deterministic_sequence():
    a = XorShift32(seed=42)
    b = XorShift32(seed=42)
    assert [a.next() for _ in range(100)] == [b.next() for _ in range(100)]


def test_different_seeds_diverge():
    a = XorShift32(seed=1)
    b = XorShift32(seed=2)
    assert [a.next() for _ in range(10)] != [b.next() for _ in range(10)]


def test_zero_seed_is_fixed_up():
    rng = XorShift32(seed=0)
    assert rng.state != 0
    assert rng.next() != 0


def test_below_range():
    rng = XorShift32(seed=3)
    for _ in range(1000):
        assert 0 <= rng.below(7) < 7


def test_below_invalid():
    with pytest.raises(ValueError):
        XorShift32().below(0)


def test_chance_extremes():
    rng = XorShift32(seed=5)
    assert all(rng.chance(1, 1) for _ in range(50))
    assert not any(rng.chance(0, 10) for _ in range(50))


def test_chance_roughly_calibrated():
    rng = XorShift32(seed=9)
    hits = sum(rng.chance(1, 4) for _ in range(20000))
    assert 0.22 < hits / 20000 < 0.28


def test_32bit_outputs():
    rng = XorShift32(seed=123)
    for _ in range(100):
        assert 0 <= rng.next() < (1 << 32)
