"""Statistics helpers."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.stats import (
    cumulative_fraction,
    geomean,
    histogram,
    mean,
    mpki,
    percentile,
)


class TestPercentile:
    def test_nearest_rank(self):
        values = list(range(1, 101))
        assert percentile(values, 50) == 50
        assert percentile(values, 95) == 95
        assert percentile(values, 100) == 100

    def test_single_element(self):
        assert percentile([7], 50) == 7

    def test_zero_percentile_gives_first(self):
        assert percentile([1, 2, 3], 0) == 1

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            percentile([1], 101)

    @given(st.lists(st.integers(0, 1000), min_size=1, max_size=50),
           st.floats(min_value=0, max_value=100))
    def test_result_is_member(self, values, p):
        values.sort()
        assert percentile(values, p) in values


class TestGeomean:
    def test_known_value(self):
        assert math.isclose(geomean([1, 100]), 10.0)

    def test_requires_positive(self):
        with pytest.raises(ValueError):
            geomean([1, 0])
        with pytest.raises(ValueError):
            geomean([])

    @given(st.lists(st.floats(min_value=0.01, max_value=100), min_size=1, max_size=20))
    def test_between_min_and_max(self, values):
        g = geomean(values)
        assert min(values) - 1e-9 <= g <= max(values) + 1e-9


class TestMean:
    def test_simple(self):
        assert mean([1, 2, 3]) == 2.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            mean([])


class TestCumulativeFraction:
    def test_monotone_and_ends_at_one(self):
        fractions = cumulative_fraction([5, 3, 2])
        assert fractions == [0.5, 0.8, 1.0]

    def test_zero_total(self):
        assert cumulative_fraction([0, 0]) == [0.0, 0.0]

    @given(st.lists(st.integers(0, 100), min_size=1, max_size=30))
    def test_monotone_nondecreasing(self, values):
        values.sort(reverse=True)
        fractions = cumulative_fraction(values)
        assert all(a <= b + 1e-12 for a, b in zip(fractions, fractions[1:]))


def test_histogram():
    assert histogram([1, 1, 2]) == {1: 2, 2: 1}


class TestMpki:
    def test_value(self):
        assert mpki(5, 1000) == 5.0

    def test_invalid(self):
        with pytest.raises(ValueError):
            mpki(1, 0)
