"""Set-associative container semantics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.assoc import SetAssociative


def test_insert_and_get():
    cache = SetAssociative(num_sets=2, ways=2)
    cache.insert(0, "a")
    assert cache.get(0) == "a"
    assert 0 in cache


def test_miss_returns_none():
    cache = SetAssociative(num_sets=2, ways=2)
    assert cache.get(5) is None


def test_lru_eviction_order():
    cache = SetAssociative(num_sets=1, ways=2)
    cache.insert(1, "a")
    cache.insert(2, "b")
    cache.get(1)  # touch 1 -> 2 becomes LRU
    evicted = cache.insert(3, "c")
    assert evicted == (2, "b")
    assert 1 in cache and 3 in cache


def test_peek_does_not_touch():
    cache = SetAssociative(num_sets=1, ways=2)
    cache.insert(1, "a")
    cache.insert(2, "b")
    cache.peek(1)  # no LRU refresh: 1 stays LRU
    evicted = cache.insert(3, "c")
    assert evicted == (1, "a")


def test_reinsert_updates_value_without_eviction():
    cache = SetAssociative(num_sets=1, ways=2)
    cache.insert(1, "a")
    cache.insert(2, "b")
    assert cache.insert(1, "a2") is None
    assert cache.get(1) == "a2"


def test_set_partitioning():
    cache = SetAssociative(num_sets=2, ways=1)
    cache.insert(0, "even")
    cache.insert(1, "odd")
    assert cache.get(0) == "even" and cache.get(1) == "odd"
    # key 2 maps to set 0 and evicts only there
    evicted = cache.insert(2, "even2")
    assert evicted == (0, "even")
    assert cache.get(1) == "odd"


def test_custom_victim_picker():
    # Always evict way index 1 (second-oldest entry).
    cache = SetAssociative(num_sets=1, ways=3, victim_picker=lambda items: 1)
    for key in (1, 2, 3):
        cache.insert(key, key)
    evicted = cache.insert(4, 4)
    assert evicted == (2, 2)


def test_victim_picker_out_of_range():
    cache = SetAssociative(num_sets=1, ways=1, victim_picker=lambda items: 5)
    cache.insert(1, "a")
    with pytest.raises(IndexError):
        cache.insert(2, "b")


def test_remove_and_len():
    cache = SetAssociative(num_sets=2, ways=2)
    cache.insert(1, "a")
    cache.insert(2, "b")
    assert len(cache) == 2
    assert cache.remove(1) == "a"
    assert cache.remove(1) is None
    assert len(cache) == 1


def test_clear_and_items():
    cache = SetAssociative(num_sets=2, ways=2)
    cache.insert(1, "a")
    cache.insert(2, "b")
    assert dict(cache.items()) == {1: "a", 2: "b"}
    cache.clear()
    assert len(cache) == 0


def test_invalid_geometry():
    with pytest.raises(ValueError):
        SetAssociative(0, 1)
    with pytest.raises(ValueError):
        SetAssociative(1, 0)


@given(st.lists(st.tuples(st.integers(0, 30), st.integers(0, 100)), max_size=200))
@settings(max_examples=50)
def test_capacity_never_exceeded(ops):
    cache = SetAssociative(num_sets=4, ways=2)
    for key, value in ops:
        cache.insert(key, value)
        assert len(cache) <= 8
        for s in cache._sets:
            assert len(s) <= 2


@given(st.lists(st.integers(0, 15), min_size=1, max_size=100))
@settings(max_examples=50)
def test_most_recent_insert_always_present(keys):
    cache = SetAssociative(num_sets=2, ways=2)
    for key in keys:
        cache.insert(key, key * 10)
        assert cache.get(key) == key * 10
