"""The telemetry write side: opt-in, JSONL sink, zero overhead when off.

The contract under test: with ``REPRO_TELEMETRY`` unset the whole layer
is inert (no events, no files, no behavioural difference in the engine);
with it set, every emit lands as one JSON line in a per-pid file.
"""

from __future__ import annotations

import json

import pytest

from repro import telemetry
from repro.predictors.bimodal import Bimodal
from repro.sim.engine import run_simulation


@pytest.fixture(autouse=True)
def clean_collector(monkeypatch):
    """Start disabled, and drop any collector state the test created."""
    monkeypatch.delenv(telemetry.ENV_VAR, raising=False)
    telemetry.reset()
    yield
    telemetry.reset()


class TestDisabled:
    def test_disabled_by_default(self):
        assert not telemetry.enabled()
        telemetry.emit("anything", value=1)
        assert telemetry.events() == []

    @pytest.mark.parametrize("value", ["", "0", "off", "false", "no", "OFF"])
    def test_off_values(self, monkeypatch, value):
        monkeypatch.setenv(telemetry.ENV_VAR, value)
        assert not telemetry.enabled()

    def test_no_files_written_when_off(self, tmp_path, pattern_trace):
        run_simulation(pattern_trace, Bimodal())
        assert telemetry.events() == []
        assert list(tmp_path.iterdir()) == []

    def test_phase_still_runs_body_when_off(self):
        ran = []
        with telemetry.phase("x"):
            ran.append(True)
        assert ran == [True]
        assert telemetry.events() == []


class TestEnabled:
    def test_emit_writes_jsonl(self, monkeypatch, tmp_path):
        monkeypatch.setenv(telemetry.ENV_VAR, str(tmp_path))
        assert telemetry.enabled()
        telemetry.emit("unit.test", value=42, label="x")

        files = list(tmp_path.glob("events-*.jsonl"))
        assert len(files) == 1
        (record,) = [json.loads(line) for line in
                     files[0].read_text().splitlines()]
        assert record["event"] == "unit.test"
        assert record["value"] == 42
        assert record["label"] == "x"
        assert isinstance(record["ts"], float)
        assert isinstance(record["pid"], int)

    def test_events_accumulate_in_memory(self, monkeypatch, tmp_path):
        monkeypatch.setenv(telemetry.ENV_VAR, str(tmp_path))
        telemetry.emit("a")
        telemetry.emit("b")
        assert [e["event"] for e in telemetry.events()] == ["a", "b"]

    def test_phase_records_seconds(self, monkeypatch, tmp_path):
        monkeypatch.setenv(telemetry.ENV_VAR, str(tmp_path))
        with telemetry.phase("timed.block", step="s1"):
            pass
        (event,) = telemetry.events()
        assert event["event"] == "timed.block"
        assert event["step"] == "s1"
        assert event["seconds"] >= 0.0

    def test_env_change_swaps_sink(self, monkeypatch, tmp_path):
        a, b = tmp_path / "a", tmp_path / "b"
        monkeypatch.setenv(telemetry.ENV_VAR, str(a))
        telemetry.emit("first")
        monkeypatch.setenv(telemetry.ENV_VAR, str(b))
        telemetry.emit("second")
        assert len(list(a.glob("*.jsonl"))) == 1
        assert len(list(b.glob("*.jsonl"))) == 1

    def test_configure_and_disable(self, monkeypatch, tmp_path):
        monkeypatch.setenv(telemetry.ENV_VAR, "0")  # restored on teardown
        telemetry.configure(tmp_path)
        assert telemetry.enabled()
        telemetry.disable()
        assert not telemetry.enabled()


class TestEngineInstrumentation:
    def test_results_identical_on_and_off(self, monkeypatch, tmp_path,
                                          pattern_trace):
        """Telemetry must observe the simulation, never perturb it."""
        off = run_simulation(pattern_trace, Bimodal())
        monkeypatch.setenv(telemetry.ENV_VAR, str(tmp_path))
        on = run_simulation(pattern_trace, Bimodal())
        assert on == off

    def test_engine_emits_phase_events(self, monkeypatch, tmp_path,
                                       pattern_trace):
        monkeypatch.setenv(telemetry.ENV_VAR, str(tmp_path))
        result = run_simulation(pattern_trace, Bimodal())
        by_event = {}
        for e in telemetry.events():
            by_event.setdefault(e["event"], []).append(e)
        warmup, measure = by_event["sim.phase"]
        assert warmup["phase"] == "warmup"
        assert measure["phase"] == "measure"
        assert measure["mispredictions"] == result.mispredictions
        assert warmup["branches"] + measure["branches"] == len(pattern_trace)
        (run,) = by_event["sim.run"]
        assert run["workload"] == pattern_trace.name
        assert run["seconds"] == pytest.approx(
            warmup["seconds"] + measure["seconds"])
