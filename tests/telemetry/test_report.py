"""The telemetry read side: merging, summarizing, and the report CLI."""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro import parallel, telemetry
from repro.experiments import runner
from repro.telemetry import format_summary, load_events, summarize

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture(autouse=True)
def clean_collector(monkeypatch):
    monkeypatch.delenv(telemetry.ENV_VAR, raising=False)
    telemetry.reset()
    yield
    telemetry.reset()


class TestLoadEvents:
    def test_merges_files_and_sorts_by_timestamp(self, tmp_path):
        """Per-process files interleave into one time-ordered stream."""
        (tmp_path / "events-100.jsonl").write_text(
            '{"event":"a","ts":2.0,"pid":100}\n'
            '{"event":"c","ts":4.0,"pid":100}\n')
        (tmp_path / "events-200.jsonl").write_text(
            '{"event":"b","ts":3.0,"pid":200}\n')
        events = load_events(tmp_path)
        assert [e["event"] for e in events] == ["a", "b", "c"]

    def test_skips_corrupt_and_blank_lines(self, tmp_path):
        (tmp_path / "events-1.jsonl").write_text(
            '{"event":"ok","ts":1.0,"pid":1}\n'
            "\n"
            '{"event":"trunc', )
        assert [e["event"] for e in load_events(tmp_path)] == ["ok"]

    def test_single_file_path(self, tmp_path):
        file = tmp_path / "events-1.jsonl"
        file.write_text('{"event":"x","ts":1.0,"pid":1}\n')
        assert len(load_events(file)) == 1


class TestSummarize:
    def test_cache_and_worker_math(self):
        events = [
            {"event": "runner.result", "ts": 1.0, "pid": 1, "source": "memory"},
            {"event": "runner.result", "ts": 2.0, "pid": 1, "source": "disk"},
            {"event": "runner.result", "ts": 3.0, "pid": 1,
             "source": "simulated", "seconds": 2.0},
            {"event": "runner.result", "ts": 4.0, "pid": 1,
             "source": "simulated", "seconds": 1.0},
            {"event": "trace.cache", "ts": 1.5, "pid": 1, "hit": True},
            {"event": "trace.cache", "ts": 1.6, "pid": 1, "hit": False,
             "seconds": 0.5},
            {"event": "parallel.run_jobs", "ts": 5.0, "pid": 1,
             "requested": 6, "unique": 4, "cache_hits": 2, "coalesced": 0,
             "dispatched": 2, "workers": 2, "seconds": 10.0},
            {"event": "parallel.job", "ts": 4.5, "pid": 7, "seconds": 8.0},
            {"event": "parallel.job", "ts": 4.6, "pid": 8, "seconds": 4.0},
        ]
        summary = summarize(events)
        result = summary["caches"]["result"]
        assert result["memory_hits"] == 1
        assert result["disk_hits"] == 1
        assert result["misses"] == 2
        assert result["hit_rate"] == 0.5
        assert result["simulation_seconds"] == 3.0
        assert summary["caches"]["trace"]["hit_rate"] == 0.5

        par = summary["parallel"]
        assert par["jobs_requested"] == 6
        assert par["cache_hits"] == 2
        assert par["dispatched"] == 2
        # 12s busy over 2 workers x 10s capacity.
        assert par["worker_utilization"] == pytest.approx(0.6)
        assert par["workers"]["7"]["busy_seconds"] == 8.0

    def test_empty_stream(self):
        summary = summarize([])
        assert summary["events"] == 0
        assert summary["caches"]["result"]["hit_rate"] is None
        assert summary["parallel"]["worker_utilization"] is None
        # The formatter copes with an all-empty summary too.
        assert "0 events" in format_summary(summary)


class TestRoundTrip:
    def test_runner_roundtrip_through_report(self, isolated_caches,
                                             monkeypatch):
        """A cached-runner session produces a summarizable JSONL log."""
        tdir = isolated_caches / "telemetry"
        monkeypatch.setenv(telemetry.ENV_VAR, str(tdir))

        runner.get_result("Kafka", "bimodal")   # miss: trace gen + simulate
        runner.get_result("Kafka", "bimodal")   # memory hit
        runner.clear_memory_cache()
        runner.get_result("Kafka", "bimodal")   # disk hit

        summary = summarize(load_events(tdir))
        result = summary["caches"]["result"]
        assert result["memory_hits"] == 1
        assert result["disk_hits"] == 1
        assert result["misses"] == 1
        assert result["hit_rate"] == pytest.approx(2 / 3, abs=1e-4)
        assert summary["caches"]["trace"]["misses"] == 1
        phases = summary["simulation"]["phases"]
        assert set(phases) == {"warmup", "measure"}
        assert phases["measure"]["branches"] > 0
        assert summary["simulation"]["runs"] == 1

        text = format_summary(summary)
        assert "result cache" in text
        assert "warmup" in text and "measure" in text

    def test_llbp_counters_surface(self, isolated_caches, monkeypatch):
        tdir = isolated_caches / "telemetry"
        monkeypatch.setenv(telemetry.ENV_VAR, str(tdir))
        runner.get_result("Kafka", "llbp")
        llbp = summarize(load_events(tdir))["llbp"]
        assert llbp["runs"] == 1
        assert llbp["pb_hits"] + llbp["pb_misses"] > 0
        assert 0.0 <= llbp["pb_hit_rate"] <= 1.0
        assert llbp["prefetch_issued"] >= llbp["prefetch_delivered"] >= 0
        assert "pattern-buffer hit rate" in format_summary(
            summarize(load_events(tdir)))


class TestParallelMerging:
    def test_worker_events_merge_into_one_report(self, isolated_caches,
                                                 monkeypatch):
        """Pool workers write their own files; the report unifies them."""
        tdir = isolated_caches / "telemetry"
        parallel.shutdown()  # fresh pool so workers inherit the telemetry env
        monkeypatch.setenv(telemetry.ENV_VAR, str(tdir))
        try:
            jobs = parallel.make_jobs(
                [("Kafka", "bimodal"), ("Kafka", "gshare")])
            parallel.run_jobs(jobs, max_workers=2)
        finally:
            parallel.shutdown()

        events = load_events(tdir)
        summary = summarize(events)
        assert summary["processes"] >= 2  # parent + at least one worker
        par = summary["parallel"]
        assert par["batches"] == 1
        assert par["jobs_requested"] == 2
        assert par["dispatched"] == 2
        assert sum(w["jobs"] for w in par["workers"].values()) == 2
        assert par["worker_utilization"] is not None
        assert 0.0 < par["worker_utilization"] <= 1.0


class TestReportScript:
    def test_cli_writes_summary_json(self, isolated_caches, monkeypatch,
                                     tmp_path):
        tdir = isolated_caches / "telemetry"
        monkeypatch.setenv(telemetry.ENV_VAR, str(tdir))
        runner.get_result("Kafka", "bimodal")
        telemetry.reset()  # flush/close before another process reads

        out = tmp_path / "telemetry_summary.json"
        proc = subprocess.run(
            [sys.executable, str(REPO_ROOT / "scripts" / "report.py"),
             str(tdir), "-o", str(out)],
            capture_output=True, text=True, cwd=REPO_ROOT)
        assert proc.returncode == 0, proc.stderr
        assert "simulation" in proc.stdout
        written = json.loads(out.read_text())
        assert written["simulation"]["runs"] == 1
        assert written["caches"]["result"]["misses"] == 1

    def test_cli_rejects_missing_dir(self, tmp_path):
        proc = subprocess.run(
            [sys.executable, str(REPO_ROOT / "scripts" / "report.py"),
             str(tmp_path / "nope")],
            capture_output=True, text=True, cwd=REPO_ROOT)
        assert proc.returncode == 2


class TestExperimentsCLI:
    def test_telemetry_flag_records_figure_events(self, isolated_caches,
                                                  monkeypatch):
        from repro.experiments.__main__ import main

        tdir = isolated_caches / "telemetry"
        monkeypatch.setenv(telemetry.ENV_VAR, "0")  # restored on teardown
        assert main(["table3", "--telemetry", str(tdir)]) == 0

        events = load_events(tdir)
        kinds = {e["event"] for e in events}
        assert "experiment.heartbeat" in kinds
        assert "experiment.figure" in kinds
        assert "experiment.run" in kinds
        summary = summarize(events)
        assert "table3" in summary["figures"]


class TestRobustnessSummary:
    def test_clean_run_is_all_zero_and_unreported(self):
        summary = summarize([{"event": "sim.run", "ts": 1.0, "pid": 1,
                              "seconds": 1.0}])
        robust = summary["robustness"]
        assert robust["retries"] == 0
        assert robust["pool_rebuilds"] == 0
        assert robust["resume"] is None
        assert "robustness" not in format_summary(summary)

    def test_recovery_events_are_counted(self):
        events = [
            {"event": "parallel.retry", "ts": 1.0, "pid": 1,
             "error": "FaultInjected", "delay": 0.5, "attempt": 1},
            {"event": "parallel.retry", "ts": 2.0, "pid": 1,
             "error": "worker_lost", "delay": 1.0, "attempt": 2},
            {"event": "parallel.timeout", "ts": 3.0, "pid": 1,
             "timeout": 5.0},
            {"event": "parallel.worker_lost", "ts": 4.0, "pid": 1},
            {"event": "parallel.pool_rebuild", "ts": 5.0, "pid": 1,
             "rebuilds": 1},
            {"event": "parallel.degraded", "ts": 6.0, "pid": 1,
             "remaining": 2},
            {"event": "parallel.fault", "ts": 7.0, "pid": 9,
             "mode": "kill"},
            {"event": "parallel.cache_corrupt", "ts": 8.0, "pid": 1},
            {"event": "experiment.resume", "ts": 9.0, "pid": 1,
             "journaled": 3, "total": 7},
        ]
        robust = summarize(events)["robustness"]
        assert robust["retries"] == 2
        assert robust["retry_errors"] == {"FaultInjected": 1,
                                          "worker_lost": 1}
        assert robust["backoff_seconds"] == 1.5
        assert robust["timeouts"] == 1
        assert robust["workers_lost"] == 1
        assert robust["pool_rebuilds"] == 1
        assert robust["degraded_to_serial"] == 1
        assert robust["faults_injected"] == 1
        assert robust["cache_corrupt"] == 1
        assert robust["resume"] == {"journaled": 3, "total": 7}

    def test_bumpy_run_renders_robustness_section(self):
        events = [
            {"event": "parallel.retry", "ts": 1.0, "pid": 1,
             "error": "timeout", "delay": 0.25, "attempt": 1},
            {"event": "parallel.timeout", "ts": 2.0, "pid": 1,
             "timeout": 5.0},
            {"event": "experiment.resume", "ts": 3.0, "pid": 1,
             "journaled": 2, "total": 4},
        ]
        text = format_summary(summarize(events))
        assert "robustness" in text
        assert "timeout x1" in text
        assert "resumed: 2/4" in text
