"""Interpreter edge cases: depth limits, indirect types, behavior reset."""

from repro.traces.types import BranchType
from repro.workloads.behaviors import BiasedBehavior, LocalPatternBehavior
from repro.workloads.generator import generate_trace
from repro.workloads.program import (
    CallStmt,
    ComputeStmt,
    CondStmt,
    Function,
    Program,
    assign_branch_ids,
)


def test_recursive_calls_bounded():
    """Self-recursive programs terminate via the call-depth cap."""
    f = Function(0, [CallStmt([0]), ComputeStmt(1)])
    program = Program([f], 0)
    assign_branch_ids(program)
    trace = generate_trace(program, 5_000, seed=1)
    # The stack unwinds: returns appear and depth never explodes.
    depth = 0
    max_depth = 0
    for i in range(len(trace)):
        bt = trace.record(i).branch_type
        if bt in (BranchType.CALL, BranchType.IND_CALL):
            depth += 1
        elif bt == BranchType.RET:
            depth -= 1
        max_depth = max(max_depth, depth)
    assert max_depth <= 64


def test_indirect_call_type_emitted():
    entry = Function(0, [CallStmt([1, 2])])
    program = Program([entry, Function(1, [ComputeStmt(1)]),
                       Function(2, [ComputeStmt(1)])], 0)
    assign_branch_ids(program)
    trace = generate_trace(program, 1_000, seed=1)
    types = {trace.record(i).branch_type for i in range(len(trace))}
    assert BranchType.IND_CALL in types
    assert BranchType.CALL not in types


def test_direct_call_type_emitted():
    entry = Function(0, [CallStmt([1])])
    program = Program([entry, Function(1, [ComputeStmt(1)])], 0)
    assign_branch_ids(program)
    trace = generate_trace(program, 1_000, seed=1)
    types = {trace.record(i).branch_type for i in range(len(trace))}
    assert BranchType.CALL in types
    assert BranchType.IND_CALL not in types


def test_behaviors_reset_between_generations():
    """Two generations from the same program are identical — stateful
    behaviours (pattern positions) must be reset."""
    pattern = LocalPatternBehavior("TTNTN")
    entry = Function(0, [CondStmt(pattern), ComputeStmt(2)])
    program = Program([entry], 0)
    assign_branch_ids(program)
    a = generate_trace(program, 2_000, seed=9)
    b = generate_trace(program, 2_000, seed=9)
    assert list(a.takens) == list(b.takens)


def test_entry_loops_forever():
    """The request loop restarts the entry function until the budget."""
    entry = Function(0, [CondStmt(BiasedBehavior(1.0)), ComputeStmt(4)])
    program = Program([entry], 0)
    assign_branch_ids(program)
    trace = generate_trace(program, 3_000, seed=1)
    # The single branch executes hundreds of times.
    assert len(trace) > 400
    assert len(set(trace.pcs.tolist())) == 1
