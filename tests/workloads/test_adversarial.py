"""Adversarial stressors: grammar, determinism, targeted degradation.

The degradation tests are the module's reason to exist: each stressor
must actually defeat its target family (high MPKI) while a control —
the same family with the defeated parameter widened, or a family with
a different structure — stays healthy.  Absolute thresholds are
generous; the measured gaps are an order of magnitude.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.predictors.registry import make_predictor
from repro.sim.engine import run_simulation
from repro.workloads import catalog
from repro.workloads.adversarial import (
    AdversarialSpec,
    adversarial_names,
    canonical_adv_name,
    generate_adversarial,
    is_adversarial,
    parse_adv_name,
)

INSTRUCTIONS = 60_000


def _mpki(workload: str, key: str) -> float:
    trace = generate_adversarial(parse_adv_name(workload), INSTRUCTIONS)
    return run_simulation(trace, make_predictor(key)).mpki


class TestGrammar:
    def test_canonical_names_round_trip(self):
        for name in adversarial_names():
            spec = parse_adv_name(name)
            assert spec.name == name
            assert canonical_adv_name(spec) == name

    def test_defaults_drop_from_canonical_name(self):
        assert parse_adv_name("adv:hist,l=14").name == "adv:hist"
        assert parse_adv_name("adv:alias,bits=13,n=64").name == "adv:alias"
        assert parse_adv_name("adv:alias,n=32").name == "adv:alias,n=32"
        assert parse_adv_name("adv:xor, k=7").name == "adv:xor,k=7"

    def test_unknown_kind_is_keyerror(self):
        with pytest.raises(KeyError):
            parse_adv_name("adv:nope")
        with pytest.raises(KeyError):
            parse_adv_name("gshare")  # not an adv: name at all

    def test_bad_tokens_are_valueerror(self):
        for bad in ("adv:hist,zz=3", "adv:hist,l", "adv:hist,bits=10",
                    "adv:xor,k=0", "adv:hist,l=99", "adv:alias,n=1"):
            with pytest.raises(ValueError):
                parse_adv_name(bad)

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            AdversarialSpec(kind="nope")
        with pytest.raises(ValueError):
            AdversarialSpec(kind="alias", table_bits=3)

    def test_seed_is_stable_per_name(self):
        a = parse_adv_name("adv:xor")
        b = parse_adv_name("adv:xor,k=5")  # same canonical name
        assert a.seed == b.seed
        assert a.seed != parse_adv_name("adv:xor,k=7").seed


class TestCatalogIntegration:
    def test_get_spec_dispatches(self):
        spec = catalog.get_spec("adv:hist,l=8")
        assert isinstance(spec, AdversarialSpec)
        assert spec.history_length == 8
        assert is_adversarial(spec.name)

    def test_catalog_proper_stays_fourteen(self):
        assert len(catalog.workload_names()) == 14
        assert not any(is_adversarial(n) for n in catalog.workload_names())

    def test_generate_workload_canonicalizes_spelling(self, tmp_path,
                                                      monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        a = catalog.generate_workload("adv:xor,k=5", 4_000)
        b = catalog.generate_workload("adv:xor", 4_000)
        assert a.name == b.name == "adv:xor"
        assert np.array_equal(a.pcs, b.pcs)
        assert np.array_equal(a.takens, b.takens)

    def test_unknown_workload_error_mentions_stressors(self):
        with pytest.raises(KeyError, match="adv:"):
            catalog.get_spec("NoSuchWorkload")


class TestDeterminism:
    @pytest.mark.parametrize("name", adversarial_names())
    def test_regeneration_is_bit_identical(self, name):
        spec = parse_adv_name(name)
        a = generate_adversarial(spec, 20_000)
        b = generate_adversarial(spec, 20_000)
        for field in ("pcs", "types", "takens", "targets", "gaps"):
            assert np.array_equal(getattr(a, field), getattr(b, field)), field

    @pytest.mark.parametrize("name", adversarial_names())
    def test_budget_is_respected(self, name):
        trace = generate_adversarial(parse_adv_name(name), 20_000)
        assert trace.num_instructions >= 20_000
        assert trace.num_conditional > 0


class TestDegradation:
    def test_hist_defeats_short_history(self):
        """The de Bruijn stream blinds gshare's 14-bit window; the same
        stressor at l=4 is fully learnable by the same predictor."""
        assert _mpki("adv:hist", "gshare") > 50.0
        assert _mpki("adv:hist,l=4", "gshare") < 5.0

    def test_alias_defeats_table_geometry(self):
        """64 opposite-bias branches folded onto one 13-bit index thrash
        Bi-Mode; widening the tables past the collision stride fixes it."""
        assert _mpki("adv:alias", "bimode") > 50.0
        assert _mpki("adv:alias", "bimode:c=16,d=16") < 10.0

    def test_xor_defeats_additive_weights(self):
        """Cross-segment parity is inseparable for summed per-segment
        weights: the perceptron sits at the coin-flip floor while
        gshare's per-window counters memorise the parity table."""
        assert _mpki("adv:xor", "percep") > 1.3 * _mpki("adv:xor", "gshare")
