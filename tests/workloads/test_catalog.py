"""Workload catalog and trace caching."""

import pytest

from repro.traces.stats import compute_stats
from repro.workloads.catalog import (
    WORKLOADS,
    generate_workload,
    get_spec,
    workload_names,
)

PAPER_WORKLOADS = [
    "NodeApp", "PHPWiki", "TPCC", "Twitter", "Wikipedia", "Kafka", "Spring",
    "Tomcat", "Chirper", "HTTP", "Charlie", "Delta", "Merced", "Whiskey",
]


def test_all_fourteen_paper_workloads_present():
    assert workload_names() == PAPER_WORKLOADS


def test_specs_have_unique_seeds():
    seeds = [spec.seed for spec in WORKLOADS.values()]
    assert len(seeds) == len(set(seeds))


def test_get_spec_unknown():
    with pytest.raises(KeyError):
        get_spec("nope")


def test_generate_without_cache():
    trace = generate_workload("Kafka", 30_000, use_cache=False)
    assert trace.name == "Kafka"
    assert trace.num_instructions >= 30_000


def test_cache_roundtrip(tmp_path):
    first = generate_workload("Kafka", 30_000, cache_dir=tmp_path)
    assert any(tmp_path.iterdir())
    second = generate_workload("Kafka", 30_000, cache_dir=tmp_path)
    assert list(first.pcs) == list(second.pcs)
    assert list(first.takens) == list(second.takens)


def test_trace_shape_is_server_like():
    """The catalog must produce the branch mix §IV measures."""
    stats = compute_stats(generate_workload("Tomcat", 60_000, use_cache=False))
    assert 2.0 < stats.cond_per_uncond < 8.0        # paper: ~3.89
    assert 0.10 < stats.uncond_fraction < 0.35      # paper: ~20%
    assert stats.branches_per_instruction < 0.35
    assert stats.unique_conditional_pcs > 300       # large working set


def test_workloads_differ():
    a = generate_workload("Kafka", 30_000, use_cache=False)
    b = generate_workload("Tomcat", 30_000, use_cache=False)
    sa, sb = compute_stats(a), compute_stats(b)
    assert sa.unique_conditional_pcs != sb.unique_conditional_pcs
