"""Branch behaviour models."""

import pytest

from repro.common.rng import XorShift32
from repro.workloads.behaviors import (
    BiasedBehavior,
    ContextCorrelatedBehavior,
    ExecContext,
    GlobalCorrelatedBehavior,
    LocalPatternBehavior,
    LoopTripBehavior,
    RandomBehavior,
    splitmix64,
)


def fresh_ctx(seed=1):
    return ExecContext(XorShift32(seed))


class TestSplitmix:
    def test_deterministic(self):
        assert splitmix64(42) == splitmix64(42)

    def test_64bit(self):
        for x in (0, 1, 2**63, 2**64 - 1):
            assert 0 <= splitmix64(x) < 2**64

    def test_avalanche(self):
        a, b = splitmix64(1), splitmix64(2)
        assert bin(a ^ b).count("1") > 16


class TestExecContext:
    def test_call_stack(self):
        ctx = fresh_ctx()
        assert ctx.call_depth == 0
        base = ctx.path_hash
        ctx.push_call(3)
        assert ctx.call_depth == 1
        assert ctx.path_hash != base
        inner = ctx.path_hash
        ctx.push_call(5)
        ctx.pop_call()
        assert ctx.path_hash == inner
        ctx.pop_call()
        assert ctx.path_hash == base

    def test_underflow(self):
        with pytest.raises(RuntimeError):
            fresh_ctx().pop_call()

    def test_path_depends_on_order(self):
        a, b = fresh_ctx(), fresh_ctx()
        a.push_call(1)
        a.push_call(2)
        b.push_call(2)
        b.push_call(1)
        assert a.path_hash != b.path_hash

    def test_partial_path_ignores_deep_frames(self):
        a, b = fresh_ctx(), fresh_ctx()
        for ctx, leaf in ((a, 1), (b, 2)):
            ctx.push_call(leaf)
            ctx.push_call(7)
            ctx.push_call(8)
        assert a.partial_path(2) == b.partial_path(2)
        assert a.partial_path(3) != b.partial_path(3)
        assert a.path_hash != b.path_hash

    def test_record_outcome_shifts(self):
        ctx = fresh_ctx()
        ctx.record_outcome(True)
        ctx.record_outcome(False)
        assert ctx.global_hist & 0b11 == 0b10


class TestBiased:
    def test_extremes(self):
        ctx = fresh_ctx()
        always = BiasedBehavior(1.0)
        never = BiasedBehavior(0.0)
        assert all(always.evaluate(0, ctx) for _ in range(100))
        assert not any(never.evaluate(0, ctx) for _ in range(100))

    def test_calibration(self):
        ctx = fresh_ctx()
        b = BiasedBehavior(0.9)
        hits = sum(b.evaluate(0, ctx) for _ in range(5000))
        assert 0.85 < hits / 5000 < 0.95

    def test_invalid(self):
        with pytest.raises(ValueError):
            BiasedBehavior(1.5)


class TestLocalPattern:
    def test_cycles(self):
        b = LocalPatternBehavior("TTN")
        ctx = fresh_ctx()
        out = [b.evaluate(0, ctx) for _ in range(6)]
        assert out == [True, True, False, True, True, False]

    def test_reset(self):
        b = LocalPatternBehavior("TN")
        ctx = fresh_ctx()
        b.evaluate(0, ctx)
        b.reset()
        assert b.evaluate(0, ctx) is True

    def test_invalid(self):
        with pytest.raises(ValueError):
            LocalPatternBehavior("TX")
        with pytest.raises(ValueError):
            LocalPatternBehavior("")


class TestGlobalCorrelated:
    def test_copies_history_bit(self):
        b = GlobalCorrelatedBehavior(depth=3)
        ctx = fresh_ctx()
        for bit in (True, False, True):  # hist (newest first): 1,0,1
            ctx.record_outcome(bit)
        # depth=3 -> third most recent = True
        assert b.evaluate(0, ctx) is True
        ctx.record_outcome(False)  # now third most recent = False
        assert b.evaluate(0, ctx) is False

    def test_invert(self):
        ctx = fresh_ctx()
        ctx.record_outcome(True)
        assert GlobalCorrelatedBehavior(1, invert=True).evaluate(0, ctx) is False

    def test_noise_flips_sometimes(self):
        ctx = fresh_ctx()
        ctx.record_outcome(True)
        b = GlobalCorrelatedBehavior(1, noise=0.5)
        outcomes = {b.evaluate(0, ctx) for _ in range(100)}
        assert outcomes == {True, False}

    def test_invalid_depth(self):
        with pytest.raises(ValueError):
            GlobalCorrelatedBehavior(0)


class TestContextCorrelated:
    def test_deterministic_per_context(self):
        b = ContextCorrelatedBehavior(local_bits=2)
        a, c = fresh_ctx(), fresh_ctx(99)
        for ctx in (a, c):
            ctx.push_call(4)
            ctx.push_call(9)
            ctx.global_hist = 0b01
        assert b.evaluate(7, a) == b.evaluate(7, c)

    def test_depends_on_path(self):
        b = ContextCorrelatedBehavior(local_bits=1)
        outcomes = set()
        for leaf in range(30):
            ctx = fresh_ctx()
            ctx.push_call(leaf)
            ctx.push_call(1)
            outcomes.add(b.evaluate(7, ctx))
        assert outcomes == {True, False}

    def test_depends_on_recent_outcomes(self):
        b = ContextCorrelatedBehavior(local_bits=4)
        seen = set()
        for hist in range(16):
            ctx = fresh_ctx()
            ctx.push_call(1)
            ctx.global_hist = hist
            seen.add(b.evaluate(7, ctx))
        assert seen == {True, False}

    def test_path_depth_limits_sensitivity(self):
        b = ContextCorrelatedBehavior(local_bits=1, path_depth=2)
        a, c = fresh_ctx(), fresh_ctx()
        for ctx, leaf in ((a, 1), (c, 2)):
            ctx.push_call(leaf)
            ctx.push_call(5)
            ctx.push_call(6)
        assert b.evaluate(7, a) == b.evaluate(7, c)

    def test_invalid(self):
        with pytest.raises(ValueError):
            ContextCorrelatedBehavior(local_bits=0)
        with pytest.raises(ValueError):
            ContextCorrelatedBehavior(path_depth=0)


class TestRandom:
    def test_probability(self):
        ctx = fresh_ctx()
        b = RandomBehavior(0.25)
        hits = sum(b.evaluate(0, ctx) for _ in range(8000))
        assert 0.2 < hits / 8000 < 0.3


class TestLoopTrip:
    def test_fixed(self):
        trip = LoopTripBehavior(base=5, spread=0)
        assert trip.trip_count(1, fresh_ctx()) == 5

    def test_context_dependent_is_stable_per_path(self):
        trip = LoopTripBehavior(base=3, spread=6, context_dependent=True)
        ctx = fresh_ctx()
        ctx.push_call(4)
        counts = {trip.trip_count(9, ctx) for _ in range(10)}
        assert len(counts) == 1
        assert 3 <= counts.pop() <= 9

    def test_random_spread_varies(self):
        trip = LoopTripBehavior(base=3, spread=6, context_dependent=False)
        ctx = fresh_ctx()
        counts = {trip.trip_count(9, ctx) for _ in range(50)}
        assert len(counts) > 1

    def test_invalid(self):
        with pytest.raises(ValueError):
            LoopTripBehavior(base=0)
        with pytest.raises(ValueError):
            LoopTripBehavior(base=1, spread=-1)
