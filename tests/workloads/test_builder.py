"""Synthetic program builder."""

import pytest

from repro.workloads.behaviors import ContextCorrelatedBehavior
from repro.workloads.builder import WorkloadSpec, build_program
from repro.workloads.program import CallStmt, CondStmt, IfStmt


def small_spec(**overrides):
    defaults = dict(
        name="t", seed=3,
        num_handlers=3, num_services=8, num_leaves=16,
        num_complex=8,
    )
    defaults.update(overrides)
    return WorkloadSpec(**defaults)


def collect_stmts(program, kind):
    found = []

    def walk(body):
        for stmt in body:
            if isinstance(stmt, kind):
                found.append(stmt)
            inner = getattr(stmt, "body", None)
            if inner is not None:
                walk(inner)

    for fn in program.functions:
        walk(fn.body)
    return found


class TestSpecValidation:
    def test_bad_stmt_range(self):
        with pytest.raises(ValueError):
            small_spec(min_stmts=1)
        with pytest.raises(ValueError):
            small_spec(min_stmts=8, max_stmts=4)

    def test_tiers_required(self):
        with pytest.raises(ValueError):
            small_spec(num_handlers=0)

    def test_weights_required(self):
        with pytest.raises(ValueError):
            small_spec(behavior_weights={})

    def test_num_functions(self):
        assert small_spec().num_functions == 1 + 3 + 8 + 16


class TestBuild:
    def test_deterministic(self):
        a = build_program(small_spec())
        b = build_program(small_spec())
        assert len(a.functions) == len(b.functions)
        assert a.num_static_branches == b.num_static_branches
        assert [f.entry for f in a.functions] == [f.entry for f in b.functions]

    def test_seed_changes_program(self):
        a = build_program(small_spec(seed=1))
        b = build_program(small_spec(seed=2))
        assert a.num_static_branches != b.num_static_branches or (
            [f.entry for f in a.functions] != [f.entry for f in b.functions]
        )

    def test_complex_budget_placed_in_hot_leaves(self):
        spec = small_spec()
        program = build_program(spec)
        complex_stmts = [
            s for s in collect_stmts(program, (CondStmt, IfStmt))
            if isinstance(s.behavior, ContextCorrelatedBehavior)
        ]
        assert len(complex_stmts) >= spec.num_complex * 0.8
        # All complex branches live in leaf-tier functions.
        leaf_lo = program.function(1 + spec.num_handlers + spec.num_services).entry
        assert all(s.pc >= leaf_lo for s in complex_stmts)

    def test_entry_dispatches_to_handlers(self):
        spec = small_spec()
        program = build_program(spec)
        entry_calls = [s for s in program.function(0).body if isinstance(s, CallStmt)]
        assert len(entry_calls) == 1
        assert set(entry_calls[0].callees) == set(range(1, 1 + spec.num_handlers))

    def test_handlers_call_services_only(self):
        spec = small_spec()
        program = build_program(spec)
        service_range = range(1 + spec.num_handlers,
                              1 + spec.num_handlers + spec.num_services)
        for hid in range(1, 1 + spec.num_handlers):
            for call in collect_stmts_in(program.function(hid).body, CallStmt):
                assert all(c in service_range for c in call.callees)

    def test_leaves_make_no_calls(self):
        spec = small_spec()
        program = build_program(spec)
        leaf_start = 1 + spec.num_handlers + spec.num_services
        for fid in range(leaf_start, spec.num_functions):
            assert not collect_stmts_in(program.function(fid).body, CallStmt)

    def test_branch_working_set_scales_with_functions(self):
        small = build_program(small_spec())
        large = build_program(small_spec(num_leaves=64, num_services=24))
        assert large.num_static_branches > small.num_static_branches


def collect_stmts_in(body, kind):
    found = []

    def walk(b):
        for stmt in b:
            if isinstance(stmt, kind):
                found.append(stmt)
            inner = getattr(stmt, "body", None)
            if inner is not None:
                walk(inner)

    walk(body)
    return found
