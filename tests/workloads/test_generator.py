"""Trace interpreter."""

import pytest

from repro.traces.types import BranchType
from repro.workloads.behaviors import BiasedBehavior, LoopTripBehavior
from repro.workloads.generator import generate_trace
from repro.workloads.program import (
    CallStmt,
    ComputeStmt,
    CondStmt,
    Function,
    IfStmt,
    JumpStmt,
    LoopStmt,
    Program,
    assign_branch_ids,
)


def simple_program():
    leaf = Function(1, [CondStmt(BiasedBehavior(1.0)), ComputeStmt(2)])
    entry = Function(0, [
        ComputeStmt(3),
        CondStmt(BiasedBehavior(0.0)),
        CallStmt([1]),
        JumpStmt(),
    ])
    program = Program([entry, leaf], entry_function=0)
    assign_branch_ids(program)
    return program


def test_budget_respected():
    trace = generate_trace(simple_program(), 5_000, seed=1)
    assert trace.num_instructions >= 5_000
    # Overshoot is bounded by one branch gap.
    assert trace.num_instructions < 5_000 + 64


def test_determinism():
    a = generate_trace(simple_program(), 3_000, seed=5)
    b = generate_trace(simple_program(), 3_000, seed=5)
    assert len(a) == len(b)
    assert list(a.pcs) == list(b.pcs)
    assert list(a.takens) == list(b.takens)


def test_seed_changes_trace():
    program = Program([Function(0, [CondStmt(BiasedBehavior(0.5))])], 0)
    assign_branch_ids(program)
    a = generate_trace(program, 3_000, seed=1)
    b = generate_trace(program, 3_000, seed=2)
    assert list(a.takens) != list(b.takens)


def test_call_ret_pairing():
    trace = generate_trace(simple_program(), 4_000, seed=1)
    depth = 0
    for i in range(len(trace)):
        rec = trace.record(i)
        if rec.branch_type in (BranchType.CALL, BranchType.IND_CALL):
            depth += 1
        elif rec.branch_type == BranchType.RET:
            depth -= 1
        assert depth >= 0
    assert depth in (0, 1)  # the budget may cut inside one call


def test_call_targets_callee_entry():
    program = simple_program()
    trace = generate_trace(program, 2_000, seed=1)
    callee_entry = program.function(1).entry
    for i in range(len(trace)):
        rec = trace.record(i)
        if rec.branch_type == BranchType.CALL:
            assert rec.target == callee_entry


def test_ret_returns_after_call_site():
    program = simple_program()
    trace = generate_trace(program, 2_000, seed=1)
    call_pc = None
    for i in range(len(trace)):
        rec = trace.record(i)
        if rec.branch_type == BranchType.CALL:
            call_pc = rec.pc
        elif rec.branch_type == BranchType.RET and call_pc is not None:
            assert rec.target == call_pc + 4
            call_pc = None


def test_biased_behaviors_drive_directions():
    trace = generate_trace(simple_program(), 2_000, seed=1)
    program = simple_program()
    entry_cond_pc = program.function(0).body[1].pc
    leaf_cond_pc = program.function(1).body[0].pc
    for i in range(len(trace)):
        rec = trace.record(i)
        if rec.pc == entry_cond_pc and rec.is_conditional:
            assert rec.taken is False
        if rec.pc == leaf_cond_pc and rec.is_conditional:
            assert rec.taken is True


def test_loop_trip_counts():
    loop = LoopStmt(LoopTripBehavior(3, spread=0), [ComputeStmt(1)])
    program = Program([Function(0, [loop])], 0)
    assign_branch_ids(program)
    trace = generate_trace(program, 600, seed=1)
    # Per loop execution: back-edge taken twice then not-taken once.
    takens = [trace.record(i).taken for i in range(len(trace))]
    for j in range(0, len(takens) - 3, 3):
        assert takens[j:j + 3] == [True, True, False]


def test_if_skips_body_when_taken():
    body = [IfStmt(BiasedBehavior(1.0), [CondStmt(BiasedBehavior(1.0))])]
    program = Program([Function(0, body)], 0)
    assign_branch_ids(program)
    trace = generate_trace(program, 500, seed=1)
    # Only the guard executes; the inner branch never appears.
    inner_pc = body[0].body[0].pc
    assert all(trace.record(i).pc != inner_pc for i in range(len(trace)))


def test_weighted_dispatch_prefers_heavy_callee():
    f1 = Function(1, [ComputeStmt(1)])
    f2 = Function(2, [ComputeStmt(1)])
    entry = Function(0, [CallStmt([1, 2], weights=[9, 1])])
    program = Program([entry, f1, f2], 0)
    assign_branch_ids(program)
    trace = generate_trace(program, 5_000, seed=3)
    calls = [trace.record(i).target for i in range(len(trace))
             if trace.record(i).branch_type == BranchType.IND_CALL]
    heavy = sum(1 for t in calls if t == program.function(1).entry)
    assert heavy / len(calls) > 0.75


def test_invalid_budget():
    with pytest.raises(ValueError):
        generate_trace(simple_program(), 0)


def test_gap_accounting():
    trace = generate_trace(simple_program(), 2_000, seed=1)
    assert all(int(g) >= 1 for g in trace.gaps)
    # Entry body: 3 compute instrs before the first cond -> gap 4.
    assert int(trace.gaps[0]) == 4
