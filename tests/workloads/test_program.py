"""Program model and address layout."""

import pytest

from repro.workloads.behaviors import BiasedBehavior, LoopTripBehavior
from repro.workloads.program import (
    INSTR_BYTES,
    CallStmt,
    ComputeStmt,
    CondStmt,
    Function,
    IfStmt,
    JumpStmt,
    LoopStmt,
    Program,
    assign_branch_ids,
)


def behavior():
    return BiasedBehavior(0.5)


def make_program():
    body0 = [
        ComputeStmt(3),
        CondStmt(behavior()),
        IfStmt(behavior(), [ComputeStmt(2), CondStmt(behavior())]),
        CallStmt([1]),
        LoopStmt(LoopTripBehavior(2), [ComputeStmt(1)]),
        JumpStmt(),
    ]
    body1 = [CondStmt(behavior())]
    return Program([Function(0, body0), Function(1, body1)], entry_function=0)


class TestStatements:
    def test_compute_validation(self):
        with pytest.raises(ValueError):
            ComputeStmt(0)

    def test_call_validation(self):
        with pytest.raises(ValueError):
            CallStmt([])
        with pytest.raises(ValueError):
            CallStmt([1, 2], weights=[1])

    def test_call_indirect(self):
        assert CallStmt([1, 2]).is_indirect
        assert not CallStmt([1]).is_indirect


class TestLayout:
    def test_addresses_assigned(self):
        program = make_program()
        fn = program.function(0)
        cond = fn.body[1]
        assert cond.pc == fn.entry + 3 * INSTR_BYTES
        # bare cond: taken target skips one instruction
        assert cond.target == cond.pc + 2 * INSTR_BYTES

    def test_if_target_skips_body(self):
        program = make_program()
        if_stmt = program.function(0).body[2]
        inner_cond = if_stmt.body[1]
        assert if_stmt.target == inner_cond.pc + 2 * INSTR_BYTES

    def test_loop_backedge_targets_entry(self):
        program = make_program()
        loop = program.function(0).body[4]
        assert loop.target < loop.pc
        # body is one compute instruction
        assert loop.pc == loop.target + 1 * INSTR_BYTES

    def test_jump_forward(self):
        program = make_program()
        jump = program.function(0).body[5]
        assert jump.target > jump.pc

    def test_functions_do_not_overlap(self):
        program = make_program()
        f0, f1 = program.functions
        assert f1.entry > f0.return_pc

    def test_function_alignment(self):
        program = make_program()
        assert program.function(1).entry % 64 == 0

    def test_all_branch_pcs_unique(self):
        program = make_program()
        pcs = []

        def walk(body):
            for stmt in body:
                pc = getattr(stmt, "pc", -1)
                if pc != -1:
                    pcs.append(pc)
                inner = getattr(stmt, "body", None)
                if inner is not None:
                    walk(inner)

        for fn in program.functions:
            walk(fn.body)
        pcs.append(program.function(0).return_pc)
        assert len(pcs) == len(set(pcs))


class TestProgramValidation:
    def test_ids_must_be_dense(self):
        with pytest.raises(ValueError):
            Program([Function(1, [])], entry_function=0)

    def test_entry_in_range(self):
        with pytest.raises(ValueError):
            Program([Function(0, [])], entry_function=3)


class TestBranchIds:
    def test_assignment_covers_nested(self):
        program = make_program()
        count = assign_branch_ids(program)
        # body0: cond, if, if-inner-cond, loop; body1: cond
        assert count == 5
        assert program.num_static_branches == 5

    def test_ids_unique(self):
        program = make_program()
        assign_branch_ids(program)
        ids = []

        def walk(body):
            for stmt in body:
                bid = getattr(stmt, "branch_id", -1)
                if bid != -1:
                    ids.append(bid)
                inner = getattr(stmt, "body", None)
                if inner is not None:
                    walk(inner)

        for fn in program.functions:
            walk(fn.body)
        assert sorted(ids) == list(range(len(ids)))
