"""Admission control: caps, backpressure envelopes, and their release.

Every test boots the daemon with ``hold_dispatch`` so the queue fills
deterministically — nothing computes until the test releases the
dispatcher.
"""

import pytest

from repro.server import ServerConfig, ServerThread
from repro.server.client import ServerClient

pytestmark = pytest.mark.usefixtures("isolated_caches")

INSTR = 30_000


def held_server(**overrides):
    config = ServerConfig.from_env(port=0, hold_dispatch=True, **overrides)
    return ServerThread(config)


def jobs(*keys, instructions=INSTR):
    return [("Kafka", key, instructions) for key in keys]


class TestTenantCap:
    def test_cap_hit_returns_429_envelope(self):
        with held_server(tenant_cap=2) as server:
            with ServerClient(server.address, tenant="greedy") as client:
                accepted = client.submit(jobs("gshare", "bimodal"),
                                         wait=False)
                assert accepted.accepted
                over = client.submit(jobs("tsl64"), wait=False)
                assert not over.accepted
                envelope = over.rejection
                assert envelope["code"] == 429
                assert envelope["reason"] == "tenant-cap"
                assert envelope["limit"] == 2
                assert envelope["retry_after"] > 0

    def test_cap_is_per_tenant(self):
        with held_server(tenant_cap=1) as server:
            with ServerClient(server.address, tenant="a") as first, \
                    ServerClient(server.address, tenant="b") as second:
                assert first.submit(jobs("gshare"), wait=False).accepted
                assert not first.submit(jobs("tsl64"), wait=False).accepted
                # A different tenant still has headroom.
                assert second.submit(jobs("tsl64"), wait=False).accepted

    def test_whole_submit_rejected_atomically(self):
        """A submit that would straddle the cap is rejected whole — no
        partial admission to unwind."""
        with held_server(tenant_cap=2) as server:
            with ServerClient(server.address, tenant="t") as client:
                assert client.submit(jobs("gshare"), wait=False).accepted
                over = client.submit(jobs("bimodal", "tsl64"), wait=False)
                assert not over.accepted
                stats = client.stats()
                assert stats["outstanding"]["t"] == 1

    def test_cap_released_when_jobs_complete(self):
        with held_server(tenant_cap=2) as server:
            with ServerClient(server.address, tenant="t") as client:
                pending = client.submit(jobs("gshare", "bimodal"),
                                        wait=False)
                assert pending.accepted
                assert not client.submit(jobs("tsl64"), wait=False).accepted
                server.server.release_dispatch_threadsafe()
                # Drain the two result frames: capacity is back.
                client.collect(2)
                retry = client.submit(jobs("tsl64"), wait=False)
                assert retry.accepted


class TestQueueBackpressure:
    def test_queue_full_returns_429_envelope(self):
        with held_server(max_queue=2, tenant_cap=100) as server:
            with ServerClient(server.address, tenant="t") as client:
                assert client.submit(jobs("gshare", "bimodal"),
                                     wait=False).accepted
                over = client.submit(jobs("tsl64"), wait=False)
                assert not over.accepted
                assert over.rejection["code"] == 429
                assert over.rejection["reason"] == "queue-full"
                assert over.rejection["limit"] == 2
                assert over.rejection["queued"] == 2

    def test_cached_jobs_bypass_queue_admission(self):
        """Hot results are served without queue space: a full queue
        still answers cached sweeps."""
        from repro.experiments import runner

        # The server thread shares this process's runner cache.
        runner.get_result("Kafka", "gshare", INSTR)
        with held_server(max_queue=1, tenant_cap=100) as server:
            with ServerClient(server.address, tenant="filler") as client:
                assert client.submit(jobs("bimodal"),
                                     wait=False).accepted  # queue now full
                assert not client.submit(jobs("tsl64"),
                                         wait=False).accepted
                hot = client.submit(jobs("gshare"))  # cached: still served
                assert hot.accepted and hot.cached == 1
                assert hot.results[0].source == "cache"

    def test_rejected_tenant_not_charged(self):
        with held_server(max_queue=1, tenant_cap=100) as server:
            with ServerClient(server.address, tenant="t") as client:
                assert client.submit(jobs("gshare"), wait=False).accepted
                assert not client.submit(jobs("bimodal"),
                                         wait=False).accepted
                stats = client.stats()
                assert stats["outstanding"]["t"] == 1
                assert stats["rejected"] == {"queue-full": 1}


class TestDrainRejection:
    def test_draining_server_returns_503_and_finishes_admitted_work(self):
        with held_server() as server:
            with ServerClient(server.address, tenant="t") as client:
                slow = client.submit(jobs("llbp", instructions=60_000),
                                     wait=False)
                assert slow.accepted
                client.drain()  # releases the hold; llbp now computing
                outcome = client.submit(jobs("gshare"), wait=False)
                assert not outcome.accepted
                assert outcome.rejection["code"] == 503
                assert outcome.rejection["reason"] == "draining"
                # Graceful: the already-admitted job still streams back.
                frames = client.collect(1)
                assert frames[0]["t"] == "result"
                assert frames[0]["key"] == "llbp"

    def test_duplicate_pending_jobs_coalesce_in_queue(self):
        """The same job from two tenants occupies one queue slot but
        charges both tenants' caps."""
        with held_server(max_queue=1, tenant_cap=5) as server:
            with ServerClient(server.address, tenant="a") as first, \
                    ServerClient(server.address, tenant="b") as second:
                assert first.submit(jobs("gshare"), wait=False).accepted
                dup = second.submit(jobs("gshare"), wait=False)
                assert dup.accepted  # coalesced: queue depth stays 1
                stats = second.stats()
                assert stats["queued"] == 1
                assert stats["outstanding"] == {"a": 1, "b": 1}
