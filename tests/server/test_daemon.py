"""End-to-end daemon behaviour: serving, identity, coalescing, events,
drain + journal-backed resume."""

import json
import threading

import pytest

from repro.experiments import runner
from repro.experiments.journal import result_digest
from repro.server import ServerConfig, ServerThread
from repro.server.client import ServerClient, result_digests, wait_ready
from repro.server.loadgen import build_jobs, measure_ping, run_load

pytestmark = pytest.mark.usefixtures("isolated_caches")

INSTR = 30_000


def server(**overrides):
    overrides.setdefault("port", 0)
    return ServerThread(ServerConfig.from_env(**overrides))


def jobs(*keys, instructions=INSTR):
    return [("Kafka", key, instructions) for key in keys]


class TestServing:
    def test_served_results_byte_identical_to_serial(self):
        with server() as running:
            with ServerClient(running.address) as client:
                outcome = client.submit(jobs("gshare", "tsl64"))
        served = result_digests(outcome.results, verify=True)
        # Serial ground truth from a fresh in-process computation.
        runner.clear_memory_cache()
        for workload, key, instructions in jobs("gshare", "tsl64"):
            expected = result_digest(
                runner.get_result(workload, key, instructions))
            assert served[f"{workload}|{key}|{instructions}"] == expected

    def test_second_submit_serves_from_cache(self):
        with server() as running:
            with ServerClient(running.address) as client:
                first = client.submit(jobs("gshare"))
                again = client.submit(jobs("gshare"))
        assert [r.source for r in first.results] == ["computed"]
        assert [r.source for r in again.results] == ["cache"]
        assert first.results[0].digest == again.results[0].digest

    def test_digest_detail_elides_payload(self):
        with server() as running:
            with ServerClient(running.address) as client:
                outcome = client.submit(jobs("gshare"), detail="digest")
        assert outcome.results[0].payload is None
        assert len(outcome.results[0].digest) == 64

    def test_identical_jobs_from_two_clients_coalesce(self):
        with server() as running:
            first = ServerClient(running.address, tenant="a")
            second = ServerClient(running.address, tenant="b")
            try:
                lhs, rhs = {}, {}
                threads = [
                    threading.Thread(
                        target=lambda: lhs.update(
                            out=first.submit(jobs("tsl64")))),
                    threading.Thread(
                        target=lambda: rhs.update(
                            out=second.submit(jobs("tsl64")))),
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join(timeout=120)
                stats = first.stats()
            finally:
                first.close()
                second.close()
        assert lhs["out"].results[0].digest == rhs["out"].results[0].digest
        # One computation served both tenants.
        assert stats["served"]["computed"] == 1

    def test_unknown_message_gets_error_not_disconnect(self):
        from repro.parallel.backend.tcp import recv_json, send_json

        with server() as running:
            with ServerClient(running.address) as client:
                send_json(client._sock, {"t": "nonsense"})
                reply = recv_json(client._sock)
                assert reply["t"] == "error"
                assert client.ping() < 5.0  # connection still usable

    def test_bad_hello_version_rejected(self):
        from repro.parallel.backend.tcp import recv_json, send_json
        from repro.server.client import connect_address

        with server() as running:
            sock = connect_address(running.address, timeout=10.0)
            try:
                send_json(sock, {"t": "hello", "version": 999,
                                 "tenant": "x"})
                reply = recv_json(sock)
                assert reply["t"] == "error"
            finally:
                sock.close()

    def test_wait_ready_and_stats(self):
        with server() as running:
            assert wait_ready(running.address, timeout=30.0)
            with ServerClient(running.address) as client:
                stats = client.stats()
        assert stats["t"] == "stats"
        assert stats["queued"] == 0
        assert not stats["draining"]


class TestUnixSocket:
    def test_unix_listener_serves(self, tmp_path):
        path = str(tmp_path / "server.sock")
        with server(port=None, unix_path=path) as running:
            assert running.address == path
            with ServerClient(path) as client:
                outcome = client.submit(jobs("gshare"))
        assert [r.source for r in outcome.results] == ["computed"]


class TestLoadgen:
    def test_closed_loop_burst(self):
        burst = build_jobs(["Kafka"], ["gshare", "bimodal"], INSTR, 30)
        with server() as running:
            summary = run_load(running.address, burst, mode="closed",
                               clients=3, detail="digest")
        assert summary["jobs"] == 30
        assert summary["errors"] == 0
        latency = summary["latency_seconds"]
        assert 0 < latency["p50"] <= latency["p95"] <= latency["p99"]
        assert summary["throughput_jobs_per_sec"] > 0

    def test_open_loop_respects_schedule(self):
        burst = build_jobs(["Kafka"], ["gshare"], INSTR, 10)
        with server() as running:
            with ServerClient(running.address) as client:
                client.submit(jobs("gshare"))  # warm so serving is fast
            summary = run_load(running.address, burst, mode="open",
                               clients=2, rate=50.0, detail="digest")
        assert summary["jobs"] == 10
        # 10 arrivals at 50/s occupy at least ~0.18s of schedule.
        assert summary["wall_seconds"] >= 0.15

    def test_measure_ping(self):
        with server() as running:
            ping = measure_ping(running.address, count=10)
        assert 0 < ping["p50"] <= ping["p95"]


class TestTelemetryStream:
    def test_subscriber_receives_server_events(self):
        with server() as running:
            with ServerClient(running.address, tenant="watcher") as watcher:
                watcher.subscribe()
                with ServerClient(running.address, tenant="t") as client:
                    client.submit(jobs("gshare"))
                seen = set()
                for _ in range(50):
                    event = watcher.next_event()
                    seen.add(event.get("event"))
                    if "server.result" in seen:
                        break
        assert "server.result" in seen
        assert seen & {"server.submit", "server.dispatch"}


class TestDrainResume:
    def test_clean_drain_leaves_no_pending(self):
        with server() as running:
            pending_path = running.server.pending_path
            with ServerClient(running.address) as client:
                client.submit(jobs("gshare"))
        assert not pending_path.exists()

    def test_resume_recomputes_nothing_for_journalled_jobs(self):
        with server() as first:
            with ServerClient(first.address) as client:
                client.submit(jobs("gshare", "bimodal"))
        runner.clear_memory_cache()  # simulate a fresh process
        with server(resume=True) as second:
            with ServerClient(second.address) as client:
                outcome = client.submit(jobs("gshare", "bimodal"))
                stats = client.stats()
        assert sorted(r.source for r in outcome.results) == ["cache",
                                                             "cache"]
        assert stats["served"]["computed"] == 0

    def test_resume_requeues_unjournalled_pending_jobs(self):
        # A crash leaves admitted jobs in the pending journal with no
        # completion record; forge that state directly.
        with server() as first:
            pending_path = first.server.pending_path
            journal_path = first.server.journal_path
            with ServerClient(first.address) as client:
                client.submit(jobs("gshare"))
        pending_path.write_text(json.dumps(
            {"workload": "Kafka", "key": "bimodal",
             "instructions": INSTR, "tenant": "t", "priority": 0}) + "\n")
        assert journal_path.exists()
        runner.clear_memory_cache()
        with server(resume=True) as second:
            with ServerClient(second.address) as client:
                # Wait for the recovered job to finish computing.
                deadline = 120
                import time
                for _ in range(deadline * 10):
                    stats = client.stats()
                    if (stats["queued"] == 0 and stats["inflight"] == 0
                            and stats["served"]["computed"] >= 1):
                        break
                    time.sleep(0.1)
                outcome = client.submit(jobs("bimodal"))
        # The recovered job was computed by the resume itself; this
        # tenant's submit was a pure cache hit.
        assert [r.source for r in outcome.results] == ["cache"]
        assert stats["served"]["computed"] == 1

    def test_drain_message_reports_queue_depth(self):
        with server() as running:
            with ServerClient(running.address) as client:
                reply = client.drain()
        assert reply["t"] == "draining"
        assert "queued" in reply
