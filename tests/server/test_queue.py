"""Ordering policy of the sweep server's multi-tenant priority queue."""

import pytest

from repro.server.queue import SweepQueue


def drain(queue):
    order = []
    while True:
        popped = queue.pop()
        if popped is None:
            return order
        order.append(popped)


class TestFifo:
    def test_single_tenant_is_fifo(self):
        queue = SweepQueue()
        for i in range(5):
            queue.push(i, tenant="a")
        assert [item for item, _, _ in drain(queue)] == [0, 1, 2, 3, 4]

    def test_len_and_bool(self):
        queue = SweepQueue()
        assert not queue and len(queue) == 0
        queue.push("x", tenant="a")
        assert queue and len(queue) == 1
        queue.pop()
        assert not queue

    def test_pop_empty_returns_none(self):
        assert SweepQueue().pop() is None

    def test_pop_batch_respects_limit(self):
        queue = SweepQueue()
        for i in range(10):
            queue.push(i, tenant="a")
        assert len(queue.pop_batch(4)) == 4
        assert len(queue) == 6
        assert len(queue.pop_batch(100)) == 6

    def test_invalid_starvation_bound(self):
        with pytest.raises(ValueError):
            SweepQueue(starvation_bound=0)


class TestTenantFairness:
    def test_round_robin_within_priority(self):
        queue = SweepQueue(starvation_bound=1000)  # isolate fairness rule
        for i in range(3):
            queue.push(f"a{i}", tenant="a")
        for i in range(3):
            queue.push(f"b{i}", tenant="b")
        items = [item for item, _, _ in drain(queue)]
        assert items == ["a0", "b0", "a1", "b1", "a2", "b2"]

    def test_bulk_tenant_cannot_starve_small_tenant(self):
        queue = SweepQueue(starvation_bound=1000)
        for i in range(100):
            queue.push(f"bulk{i}", tenant="bulk")
        queue.push("small", tenant="small")
        # The single-job tenant is served by the second pop at the latest.
        items = [queue.pop()[0] for _ in range(2)]
        assert "small" in items

    def test_late_joining_tenant_enters_rotation(self):
        queue = SweepQueue(starvation_bound=1000)
        for i in range(4):
            queue.push(f"a{i}", tenant="a")
        assert queue.pop()[0] == "a0"
        queue.push("b0", tenant="b")
        items = [item for item, _, _ in drain(queue)]
        assert items.index("b0") <= 1  # one a-turn at most before b runs

    def test_depth_by_tenant(self):
        queue = SweepQueue()
        queue.push(1, tenant="a")
        queue.push(2, tenant="a")
        queue.push(3, tenant="b")
        assert queue.depth_by_tenant() == {"a": 2, "b": 1}


class TestPriority:
    def test_higher_priority_first(self):
        queue = SweepQueue(starvation_bound=1000)
        queue.push("low", tenant="a", priority=0)
        queue.push("high", tenant="a", priority=5)
        assert queue.pop()[0] == "high"
        assert queue.pop()[0] == "low"

    def test_priority_beats_arrival_order_across_tenants(self):
        queue = SweepQueue(starvation_bound=1000)
        queue.push("a-low", tenant="a", priority=0)
        queue.push("b-high", tenant="b", priority=1)
        queue.push("c-high", tenant="c", priority=1)
        items = [item for item, _, _ in drain(queue)]
        assert items == ["b-high", "c-high", "a-low"]

    def test_pop_returns_tenant_and_priority(self):
        queue = SweepQueue()
        queue.push("x", tenant="t", priority=3)
        assert queue.pop() == ("x", "t", 3)


class TestStarvationBound:
    def test_low_priority_served_within_bound(self):
        bound = 4
        queue = SweepQueue(starvation_bound=bound)
        queue.push("starved", tenant="victim", priority=0)
        for i in range(50):
            queue.push(f"hot{i}", tenant="noisy", priority=9)
        popped = [queue.pop()[0] for _ in range(bound)]
        assert "starved" in popped  # served by the bound-th pop

    def test_aged_pop_takes_globally_oldest(self):
        queue = SweepQueue(starvation_bound=2)
        queue.push("oldest", tenant="a", priority=0)
        for i in range(6):
            queue.push(f"hot{i}", tenant="b", priority=1)
        first, second = queue.pop()[0], queue.pop()[0]
        assert first == "hot0"
        assert second == "oldest"  # 2nd pop is the aged one

    def test_continuous_refill_still_bounded(self):
        bound = 8
        queue = SweepQueue(starvation_bound=bound)
        queue.push("starved", tenant="victim", priority=0)
        served_at = None
        for pop_index in range(1, bound + 1):
            queue.push(f"hot{pop_index}", tenant="noisy", priority=9)
            item = queue.pop()[0]
            if item == "starved":
                served_at = pop_index
                break
        assert served_at is not None and served_at <= bound

    def test_interleaved_pushes_and_aged_pops_stay_consistent(self):
        queue = SweepQueue(starvation_bound=3)
        pushed, popped = 0, []
        for round_index in range(10):
            for _ in range(3):
                queue.push(pushed, tenant=f"t{pushed % 4}",
                           priority=pushed % 2)
                pushed += 1
            popped.extend(item for item, _, _ in queue.pop_batch(2))
        popped.extend(item for item, _, _ in drain(queue))
        assert sorted(popped) == list(range(pushed))  # nothing lost/duped
