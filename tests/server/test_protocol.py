"""Framing round-trips between the sync and async protocol halves."""

import asyncio
import json
import socket

import pytest

from repro.parallel.backend import tcp
from repro.server import protocol

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, strategies as st  # noqa: E402

# JSON-safe message bodies: finite numbers, text, bools, None, nested
# lists/objects — what the server vocabulary is built from.
_scalars = st.one_of(
    st.none(), st.booleans(),
    st.integers(min_value=-(2 ** 53), max_value=2 ** 53),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=40))
_values = st.recursive(
    _scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=10), children, max_size=4)),
    max_leaves=12)
_messages = st.dictionaries(st.text(min_size=1, max_size=16), _values,
                            max_size=6)


def _async_decode(data: bytes) -> dict:
    async def read():
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        return await protocol.read_json(reader)

    return asyncio.run(read())


@given(_messages)
def test_encode_json_decodes_via_async_reader(message):
    assert _async_decode(protocol.encode_json(message)) == message


@given(_messages)
def test_sync_sender_to_async_reader(message):
    """What `send_json` (the client side) puts on the wire is exactly
    what the daemon's async reader decodes."""
    left, right = socket.socketpair()
    try:
        tcp.send_json(left, message)
        kind, length = tcp._FRAME.unpack(
            tcp.recv_exact(right, tcp._FRAME.size))
        payload = tcp.recv_exact(right, length)
        assert kind == tcp.KIND_JSON
        assert json.loads(payload.decode()) == message
    finally:
        left.close()
        right.close()


@given(_messages)
def test_async_encoder_to_sync_reader(message):
    """What the daemon writes is exactly what the client's blocking
    `recv_json` decodes."""
    left, right = socket.socketpair()
    try:
        left.sendall(protocol.encode_json(message))
        assert tcp.recv_json(right) == message
    finally:
        left.close()
        right.close()


@given(st.binary(min_size=1, max_size=64))
def test_binary_frames_round_trip(payload):
    async def read():
        reader = asyncio.StreamReader()
        reader.feed_data(protocol.encode_frame(tcp.KIND_BIN, payload))
        reader.feed_eof()
        return await protocol.read_frame(reader)

    kind, received = asyncio.run(read())
    assert kind == tcp.KIND_BIN
    assert received == payload


def test_truncated_frame_raises_connection_error():
    frame = protocol.encode_json({"t": "ping"})
    with pytest.raises(ConnectionError):
        _async_decode(frame[:-1])


def test_bad_kind_byte_raises_connection_error():
    frame = b"X" + protocol.encode_json({"t": "ping"})[1:]
    with pytest.raises(ConnectionError):
        _async_decode(frame)


def test_oversized_length_raises_connection_error():
    header = tcp._FRAME.pack(tcp.KIND_JSON, tcp.MAX_FRAME + 1)
    with pytest.raises(ConnectionError):
        _async_decode(header)


def test_non_object_json_raises_connection_error():
    frame = protocol.encode_frame(tcp.KIND_JSON, b"[1,2,3]")
    with pytest.raises(ConnectionError):
        _async_decode(frame)


def test_binary_frame_rejected_where_json_expected():
    frame = protocol.encode_frame(tcp.KIND_BIN, b"{}")
    with pytest.raises(ConnectionError):
        _async_decode(frame)
