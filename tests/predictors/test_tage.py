"""Core TAGE predictor."""

import pytest

from repro.predictors.tage import Tage, TageConfig
from repro.sim.engine import run_simulation


def small_config(**overrides):
    defaults = dict(
        history_lengths=(4, 8, 16, 32, 64),
        index_bits=8,
        tag_bits=10,
        bimodal_index_bits=10,
    )
    defaults.update(overrides)
    return TageConfig(**defaults)


def drive(predictor, pc, taken):
    meta = predictor.predict(pc)
    predictor.train(pc, taken, meta)
    predictor.update_history(pc, 0, taken, 0)
    return meta


class TestConfig:
    def test_lengths_must_increase(self):
        with pytest.raises(ValueError):
            TageConfig(history_lengths=(8, 4))
        with pytest.raises(ValueError):
            TageConfig(history_lengths=(4, 4))

    def test_needs_tables(self):
        with pytest.raises(ValueError):
            TageConfig(history_lengths=())

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            TageConfig(history_lengths=(4,), index_bits=0)


class TestPrediction:
    def test_falls_back_to_bimodal_when_cold(self):
        predictor = Tage(small_config())
        res = predictor.lookup(0x100)
        assert res.provider == -1
        assert res.pred == res.bim_pred

    def test_learns_fixed_direction(self):
        predictor = Tage(small_config())
        for _ in range(50):
            drive(predictor, 0x100, True)
        assert predictor.lookup(0x100).pred is True

    def test_learns_alternating_pattern(self):
        predictor = Tage(small_config())
        correct = 0
        for i in range(600):
            taken = i % 2 == 0
            meta = drive(predictor, 0x100, taken)
            if i >= 300 and meta.pred == taken:
                correct += 1
        assert correct > 280

    def test_learns_period_five_pattern(self):
        predictor = Tage(small_config())
        pattern = [True, True, True, False, False]
        correct = 0
        for i in range(2000):
            taken = pattern[i % 5]
            meta = drive(predictor, 0x200, taken)
            if i >= 1000 and meta.pred == taken:
                correct += 1
        assert correct > 950

    def test_allocates_on_misprediction(self):
        predictor = Tage(small_config())
        # Warm the bimodal toward taken, then surprise it.
        for _ in range(8):
            drive(predictor, 0x100, True)
        drive(predictor, 0x100, False)  # mispredict -> allocate tagged entry
        assert any(any(v for v in table) for table in predictor._valid)

    def test_provider_metadata_consistent(self):
        predictor = Tage(small_config())
        for i in range(300):
            drive(predictor, 0x100, i % 2 == 0)
        res = predictor.lookup(0x100)
        if res.provider >= 0:
            assert 0 < res.provider_length_rank <= predictor.config.num_tables
            idx = res.indices[res.provider]
            assert predictor.tags[res.provider][idx] == res.tags[res.provider]

    def test_indices_within_range(self):
        predictor = Tage(small_config())
        for pc in range(0, 4096, 4):
            res = predictor.lookup(pc)
            assert all(0 <= i < 256 for i in res.indices)
            assert all(0 <= t < 1024 for t in res.tags)


class TestUsefulness:
    def test_useful_set_when_provider_beats_alt(self):
        predictor = Tage(small_config(seed=7))
        # Train a branch whose outcome alternates: the tagged entry will
        # eventually disagree with (and beat) the bimodal.
        for i in range(400):
            drive(predictor, 0x300, i % 2 == 0)
        assert any(any(u for u in table) for table in predictor.useful)

    def test_tick_reset_clears_useful(self):
        predictor = Tage(small_config(tick_threshold=1))
        # Force the tick by saturating usefulness then failing allocations.
        for t in range(predictor.config.num_tables):
            for i in range(predictor._size):
                predictor.useful[t][i] = 1
                predictor._valid[t][i] = True
        res = predictor.lookup(0x100)
        res.pred = not res.pred  # force "mispredict" path in allocate
        predictor.allocate(0x100, True, res)
        assert predictor._tick == 0  # reset happened
        assert sum(sum(t) for t in predictor.useful) == 0


class TestCapacity:
    def test_storage_bits(self):
        predictor = Tage(small_config())
        expected = 2 * 1024 + 5 * 256 * (3 + 10 + 1)
        assert predictor.storage_bits() == expected

    def test_more_capacity_helps_on_pressure(self, tiny_workload_trace):
        small = Tage(small_config(index_bits=5, bimodal_index_bits=8))
        large = Tage(small_config(index_bits=10, bimodal_index_bits=12))
        r_small = run_simulation(tiny_workload_trace, small)
        r_large = run_simulation(tiny_workload_trace, large)
        assert r_large.mpki <= r_small.mpki


class TestDeterminism:
    def test_same_seed_same_result(self, tiny_workload_trace):
        a = run_simulation(tiny_workload_trace, Tage(small_config()))
        b = run_simulation(tiny_workload_trace, Tage(small_config()))
        assert a.mispredictions == b.mispredictions
