"""Global history and folded-register consistency."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.bitops import fold_bits
from repro.predictors.history import (
    GlobalHistory,
    HistorySet,
    HistorySpec,
    geometric_lengths,
)


class TestHistorySpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            HistorySpec(0, 4, 4)
        with pytest.raises(ValueError):
            HistorySpec(4, 0, 4)


class TestGlobalHistory:
    def test_conditional_pushes_outcome(self):
        history = GlobalHistory()
        history.push_branch(0x1000, True, True)
        history.push_branch(0x1000, True, False)
        assert history.buffer.bit(0) == 0
        assert history.buffer.bit(1) == 1

    def test_unconditional_pushes_pc_bit(self):
        history = GlobalHistory()
        history.push_branch(0b100, False, True)   # (pc>>2)&1 = 1
        history.push_branch(0b1000, False, True)  # (pc>>2)&1 = 0
        assert history.buffer.bit(1) == 1
        assert history.buffer.bit(0) == 0

    def test_path_history_shifts_pc_bits(self):
        history = GlobalHistory()
        history.push_branch(0b100, True, True)
        assert history.path & 1 == 1
        history.push_branch(0b1000, True, True)
        assert history.path & 0b11 == 0b10


class TestHistorySet:
    @given(st.lists(st.tuples(st.integers(0, 2**20), st.booleans(), st.booleans()),
                    min_size=1, max_size=300))
    @settings(max_examples=30)
    def test_folds_match_reference(self, branches):
        history = GlobalHistory()
        specs = [HistorySpec(5, 4, 6), HistorySpec(17, 8, 9), HistorySpec(64, 10, 12)]
        folded = HistorySet(history, specs)
        for pc, is_cond, taken in branches:
            history.push_branch(pc, is_cond, taken)
        for i, spec in enumerate(specs):
            window = history.buffer.value(spec.length)
            assert folded.index_fold(i) == fold_bits(window, spec.length, spec.index_bits)
            assert folded.tag_fold(i) == fold_bits(window, spec.length, spec.tag_bits)
            assert folded.tag_fold2(i) == fold_bits(window, spec.length, spec.tag_bits - 1)

    def test_folds_tuple(self):
        history = GlobalHistory()
        folded = HistorySet(history, [HistorySpec(8, 4, 6)])
        history.push_branch(0x40, True, True)
        assert folded.folds(0) == (
            folded.index_fold(0), folded.tag_fold(0), folded.tag_fold2(0)
        )

    def test_reset(self):
        history = GlobalHistory()
        folded = HistorySet(history, [HistorySpec(8, 4, 6)])
        history.push_branch(0x40, True, True)
        folded.reset()
        assert folded.index_fold(0) == 0

    def test_multiple_consumers_share_stream(self):
        history = GlobalHistory()
        a = HistorySet(history, [HistorySpec(12, 6, 8)])
        b = HistorySet(history, [HistorySpec(12, 6, 8)])
        for i in range(50):
            history.push_branch(i * 4, True, i % 3 == 0)
        assert a.index_fold(0) == b.index_fold(0)
        assert a.tag_fold(0) == b.tag_fold(0)


class TestGeometricLengths:
    def test_monotone_unique(self):
        lengths = geometric_lengths(4, 3000, 21)
        assert lengths == sorted(set(lengths))
        assert lengths[0] == 4
        assert lengths[-1] == 3000

    def test_validation(self):
        with pytest.raises(ValueError):
            geometric_lengths(4, 3000, 1)
        with pytest.raises(ValueError):
            geometric_lengths(10, 5, 4)
