"""Perfect predictor and the preset catalogue."""

import pytest

from repro.predictors.perfect import PerfectPredictor
from repro.predictors.presets import (
    LLBP_HISTORY_LENGTHS,
    TAGE_HISTORY_LENGTHS,
    tsl_64k,
    tsl_scaled,
)
from repro.sim.engine import run_simulation


def test_perfect_never_mispredicts(tiny_workload_trace):
    result = run_simulation(tiny_workload_trace, PerfectPredictor())
    assert result.mispredictions == 0
    assert result.mpki == 0.0


def test_llbp_lengths_subset_of_tage():
    assert set(LLBP_HISTORY_LENGTHS) <= set(TAGE_HISTORY_LENGTHS)


def test_tage_ladder_has_21_lengths():
    assert len(TAGE_HISTORY_LENGTHS) == 21
    assert TAGE_HISTORY_LENGTHS[-1] == 3000


def test_scaling_grows_tables():
    base = tsl_64k()
    scaled = tsl_scaled(8)
    assert scaled.tage._size == base.tage._size * 8
    assert scaled.config.name == "512K TSL"


def test_scale_must_be_power_of_two():
    with pytest.raises(ValueError):
        tsl_scaled(3)


def test_scaled_capacity_helps(tiny_workload_trace):
    base = run_simulation(tiny_workload_trace, tsl_64k())
    big = run_simulation(tiny_workload_trace, tsl_scaled(8))
    assert big.mpki <= base.mpki
