"""The predictor registry: grammar, round-trips, deprecation shims.

The registry is the single public home of the key grammar every cache
filename and experiment CLI depends on, so its contract is pinned here:
``parse_key``/``make_predictor`` accept exactly the documented grammar
with the documented error types, ``key_of`` inverts ``make_predictor``
config-for-config, and the deprecated helpers in
``repro.experiments.runner`` keep working while warning.
"""

from __future__ import annotations

import warnings
from pathlib import Path

import pytest

from repro.llbp.config import ContextSource, LLBPConfig
from repro.llbp.predictor import LLBPTageScL
from repro.predictors import registry
from repro.predictors.base import BranchPredictor
from repro.predictors.tage_sc_l import TageScL


class TestParseKey:
    def test_plain_keys_cover_catalog(self):
        for key in registry.known_keys():
            spec = registry.parse_key(key)
            assert spec.family == key
            assert (spec.config is None) == (
                key not in ("llbp", "bimode", "percep"))

    def test_unknown_plain_key_is_keyerror(self):
        with pytest.raises(KeyError):
            registry.parse_key("tsl2m")

    def test_llbp_suffix_resolves_config(self):
        spec = registry.parse_key("llbp:lat0,w=16,d=0")
        assert spec.family == "llbp"
        assert spec.config.simulate_timing is False
        assert spec.config.context_window == 16
        assert spec.config.prefetch_distance == 0

    def test_llbp_source_tokens(self):
        assert (registry.parse_key("llbp:src=callret").config.context_source
                is ContextSource.CALL_RET)

    def test_malformed_suffix_is_valueerror(self):
        with pytest.raises(ValueError, match="unknown LLBP token"):
            registry.parse_key("llbp:turbo")
        with pytest.raises(ValueError, match="unknown LLBP parameter"):
            registry.parse_key("llbp:zz=3")

    def test_whitespace_and_empty_tokens_ignored(self):
        assert (registry.parse_key("llbp: lat0 ,,w=16").config
                == registry.parse_key("llbp:lat0,w=16").config)


class TestMakePredictor:
    def test_every_plain_key_instantiates(self):
        for key in registry.known_keys():
            assert isinstance(registry.make_predictor(key), BranchPredictor)

    def test_llbp_key_builds_configured_predictor(self):
        predictor = registry.make_predictor("llbp:cd_bits=10,unbucketed,ps=8")
        assert isinstance(predictor, LLBPTageScL)
        assert predictor.config.cd_set_bits == 10
        assert predictor.config.patterns_per_set == 8
        assert predictor.config.bucketed is False

    def test_tsl_keys_scale_storage(self):
        small = registry.make_predictor("tsl64")
        big = registry.make_predictor("tsl256")
        assert isinstance(small, TageScL)
        assert big.storage_bits() > small.storage_bits()


class TestKeyOf:
    def test_round_trips_every_plain_key(self):
        for key in registry.known_keys():
            assert registry.key_of(registry.make_predictor(key)) == key

    def test_canonicalises_llbp_token_order(self):
        key = registry.key_of(registry.make_predictor("llbp:w=16,lat0"))
        assert key == "llbp:lat0,w=16"
        # and the canonical key parses back to the same config
        assert (registry.parse_key(key).config
                == registry.parse_key("llbp:w=16,lat0").config)

    def test_suffix_round_trips_through_config(self):
        for spec in ("lat0", "unbucketed,ps=48", "src=all,cd_bits=10",
                     "exclusive,lru", "d=0", "pb=32"):
            config = registry.parse_llbp_spec(spec)
            suffix = registry.llbp_key_suffix(config)
            assert registry.parse_llbp_spec(suffix) == config

    def test_inexpressible_config_is_valueerror(self):
        config = LLBPConfig(counter_bits=1 + LLBPConfig().counter_bits)
        with pytest.raises(ValueError, match="no key token"):
            registry.llbp_key_suffix(config)

    def test_unknown_predictor_is_valueerror(self):
        class Mystery(BranchPredictor):
            def predict(self, pc):
                return True

            def train(self, pc, taken, meta):
                pass

        with pytest.raises(ValueError, match="no registry key"):
            registry.key_of(Mystery())


class TestDeprecatedShims:
    def test_resolve_predictor_warns_but_works(self):
        from repro.experiments import runner

        with pytest.warns(DeprecationWarning):
            predictor = runner.resolve_predictor("gshare")
        assert registry.key_of(predictor) == "gshare"

    def test_parse_llbp_key_warns_but_works(self):
        from repro.experiments import runner

        with pytest.warns(DeprecationWarning):
            config = runner._parse_llbp_key("lat0,w=16")
        assert config == registry.parse_llbp_spec("lat0,w=16")

    def test_registry_itself_never_warns(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            registry.make_predictor("llbp:lat0")
            registry.parse_key("bimodal")

    @pytest.mark.parametrize("call", [
        lambda runner: runner.resolve_predictor("gshare"),
        lambda runner: runner._parse_llbp_key("lat0"),
    ])
    def test_shims_warn_exactly_once(self, call):
        """Under the default filter a shim nags once per call site, not
        per call — a hot loop through legacy code stays readable."""
        from repro.experiments import runner

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("default")
            for _ in range(5):
                call(runner)
        deprecations = [w for w in caught
                        if issubclass(w.category, DeprecationWarning)]
        assert len(deprecations) == 1

    def test_shims_have_no_in_repo_callers(self):
        """The deprecation sweep is done: nothing under src/ calls (or
        re-exports) the shims any more — they exist only for external
        users mid-migration."""
        src = Path(__file__).resolve().parents[2] / "src"
        offenders = []
        for path in src.rglob("*.py"):
            if path.name == "runner.py" and path.parent.name == "experiments":
                continue  # the shims' own definitions
            text = path.read_text()
            if "resolve_predictor(" in text or "_parse_llbp_key(" in text:
                offenders.append(str(path.relative_to(src)))
        assert offenders == []


class TestTslGrammar:
    """The parameterized ``tsl:`` family added for the explore harness."""

    def test_suffix_resolves_geometry(self):
        spec = registry.parse_key("tsl:x=2,t=11,tag=10,sc=9")
        assert spec.family == "tsl"
        assert spec.config == registry.TslGeometry(
            scale=2, tables=11, tag_bits=10, sc_index_bits=9)

    def test_plain_tsl_is_not_a_key(self):
        # The bare family stays out of the catalog: a tsl geometry is
        # always spelled either as a preset (tsl64...) or with tokens.
        with pytest.raises(KeyError):
            registry.parse_key("tsl")

    def test_malformed_suffix_is_valueerror(self):
        for bad in ("tsl:x=3", "tsl:t=0", "tsl:t=22", "tsl:nope=1",
                    "tsl:x"):
            with pytest.raises(ValueError):
                registry.parse_key(bad)

    def test_pure_scale_collapses_to_preset(self):
        for suffix, preset in (("x=1", "tsl64"), ("x=2", "tsl128"),
                               ("x=4", "tsl256"), ("x=8", "tsl512"),
                               ("x=16", "tsl1m"), ("", "tsl64")):
            assert registry.canonical_key(f"tsl:{suffix}") == preset

    def test_preset_spelling_builds_the_preset_predictor(self):
        via_tokens = registry.make_predictor("tsl:x=4")
        via_preset = registry.make_predictor("tsl256")
        assert registry.key_of(via_tokens) == "tsl256"
        assert via_tokens.storage_bits() == via_preset.storage_bits()
        assert via_tokens.name == via_preset.name

    def test_key_of_round_trips_parameterized_geometry(self):
        key = "tsl:t=11,tag=10"
        predictor = registry.make_predictor(key)
        assert isinstance(predictor, TageScL)
        assert registry.key_of(predictor) == key

    def test_history_ladder_subsamples_with_endpoints(self):
        from repro.predictors.presets import TAGE_HISTORY_LENGTHS

        full = registry.tsl_history_lengths(21)
        assert full == tuple(TAGE_HISTORY_LENGTHS)
        sub = registry.tsl_history_lengths(11)
        assert len(sub) == 11
        assert sub[0] == full[0] and sub[-1] == full[-1]
        assert list(sub) == sorted(set(sub))   # strictly increasing
        assert registry.tsl_history_lengths(1) == (full[0],)

    def test_canonical_key_is_idempotent_everywhere(self):
        for key in (*registry.known_keys(), "tsl:t=11", "llbp:lat0",
                    "llbp:unbucketed,cd_bits=8,ps=8"):
            once = registry.canonical_key(key)
            assert registry.canonical_key(once) == once

    def test_parameterized_families(self):
        assert registry.parameterized_families() == (
            "llbp", "tsl", "bimode", "percep")
