"""Statistical corrector."""

from repro.predictors.statistical import StatisticalCorrector


def test_agrees_with_confident_tage_by_default():
    sc = StatisticalCorrector()
    res = sc.lookup(0x100, base_pred=True, provider_ctr=3, provider_valid=True)
    assert not res.use  # no reason to flip an untrained corrector


def test_learns_statistical_bias():
    """TAGE keeps predicting taken; the branch is mostly not-taken."""
    sc = StatisticalCorrector()
    flipped = 0
    for i in range(2000):
        taken = i % 10 == 0  # 10% taken
        res = sc.lookup(0x100, base_pred=True, provider_ctr=0, provider_valid=True)
        if res.use and res.pred is False:
            flipped += 1
        sc.train(0x100, taken, res)
        sc.push_outcome(taken)
    assert flipped > 500  # the corrector takes over


def test_counters_saturate():
    sc = StatisticalCorrector(history_lengths=(3,), index_bits=4)
    for _ in range(200):
        res = sc.lookup(0x0, base_pred=False, provider_ctr=0, provider_valid=False)
        sc.train(0x0, True, res)
    assert all(v <= sc.CTR_HI for table in sc.tables for v in table)
    assert all(v <= sc.CTR_HI for v in sc.bias_table)


def test_threshold_adapts_up_on_bad_flips():
    """Feed synthetic always-wrong disagreements: θ must rise at the ±64
    crossing of the adaptation counter."""
    from repro.predictors.statistical import ScResult

    sc = StatisticalCorrector()
    start = sc.threshold
    for _ in range(65):
        res = ScResult(sum=40, pred=True, use=True, base_pred=False,
                       indices=(0,) * len(sc.history_lengths), bias_index=0)
        sc.train(0x40, False, res)  # the flip was wrong every time
    assert sc.threshold == start + 1


def test_threshold_adapts_down_on_good_flips():
    from repro.predictors.statistical import ScResult

    sc = StatisticalCorrector()
    start = sc.threshold
    for _ in range(65):
        res = ScResult(sum=40, pred=True, use=True, base_pred=False,
                       indices=(0,) * len(sc.history_lengths), bias_index=0)
        sc.train(0x40, True, res)  # the flip was right every time
    assert sc.threshold == start - 1


def test_history_window():
    sc = StatisticalCorrector()
    for _ in range(70):
        sc.push_outcome(True)
    assert sc.history < (1 << 64)


def test_override_stats_tracked():
    sc = StatisticalCorrector()
    for i in range(2000):
        taken = i % 10 == 0
        res = sc.lookup(0x100, base_pred=True, provider_ctr=0, provider_valid=True)
        sc.train(0x100, taken, res)
        sc.push_outcome(taken)
    assert sc.overrides > 0
    assert sc.good_overrides >= 0.6 * sc.overrides


def test_storage_bits():
    sc = StatisticalCorrector(history_lengths=(3, 6), index_bits=4)
    assert sc.storage_bits() == 3 * 16 * 6
