"""Predictor base-class contract."""

import pytest

from repro.predictors.base import BranchPredictor, PredictorStats


def test_pred_of_bool():
    assert BranchPredictor.pred_of(True) is True
    assert BranchPredictor.pred_of(False) is False


def test_pred_of_meta_object():
    class Meta:
        pred = True

    assert BranchPredictor.pred_of(Meta()) is True


def test_stats_bump():
    stats = PredictorStats()
    stats.bump("x")
    stats.bump("x", 4)
    assert stats.extra == {"x": 5}


def test_abstract_methods_raise():
    predictor = BranchPredictor()
    with pytest.raises(NotImplementedError):
        predictor.predict(0)
    with pytest.raises(NotImplementedError):
        predictor.train(0, True, None)
    # History update and advance are optional no-ops.
    predictor.update_history(0, 0, True, 0)
    assert predictor.storage_bits() == 0
