"""Hashed perceptron: threshold training, folding, registry keys."""

import pytest

from repro.predictors.perceptron import (
    HashedPerceptron,
    PerceptronConfig,
    default_threshold,
    fold_segment,
)
from repro.predictors.registry import canonical_key, key_of, make_predictor


def _step(predictor, pc, taken):
    meta = predictor.predict(pc)
    predictor.train(pc, taken, meta)
    predictor.update_history(pc, 0, taken, 0)
    return meta.pred


def test_learns_linearly_separable_history():
    """Outcome = history bit 3: one weight carries the whole signal."""
    predictor = HashedPerceptron(PerceptronConfig(
        tables=3, row_bits=6, history_bits=8))
    outcomes = []
    correct = 0
    for i in range(600):
        taken = outcomes[-4] if len(outcomes) >= 4 else True
        if _step(predictor, 0x100, taken) == taken and i > 200:
            correct += 1
        outcomes.append(taken)
        # keep the stream moving so the history register has entropy
        outcomes[-1] = (i % 3 == 0) if len(outcomes) < 4 else taken
    assert correct > 350


def test_default_threshold_fit():
    assert default_threshold(56) == int(1.93 * 56 + 14)
    config = PerceptronConfig()
    assert config.effective_threshold() == default_threshold(56)
    assert PerceptronConfig(threshold=40).effective_threshold() == 40


def test_threshold_training_updates_low_confidence_hits():
    """A correct prediction below theta still trains every weight."""
    predictor = HashedPerceptron(PerceptronConfig(
        tables=2, row_bits=4, history_bits=4, threshold=10))
    meta = predictor.predict(0x100)
    assert meta.total == 0 and meta.pred is True
    predictor.train(0x100, True, meta)   # correct, but |0| <= theta
    assert sum(sum(t) for t in predictor.tables) == 2  # both weights bumped


def test_confident_hit_does_not_train():
    predictor = HashedPerceptron(PerceptronConfig(
        tables=2, row_bits=4, history_bits=4, threshold=2))
    for _ in range(10):
        _step(predictor, 0x100, True)
    snapshot = [list(t) for t in predictor.tables]
    meta = predictor.predict(0x100)
    assert meta.pred is True and meta.total > 2
    predictor.train(0x100, True, meta)
    assert [list(t) for t in predictor.tables] == snapshot


def test_weights_clamp_at_width():
    config = PerceptronConfig(tables=2, row_bits=4, history_bits=4,
                              weight_bits=4, threshold=1000)
    predictor = HashedPerceptron(config)
    for _ in range(100):
        _step(predictor, 0x100, True)
    flat = [w for table in predictor.tables for w in table]
    assert max(flat) == 7           # 2^(4-1) - 1
    for _ in range(200):
        _step(predictor, 0x100, False)
    flat = [w for table in predictor.tables for w in table]
    assert min(flat) == -8          # -2^(4-1)


def test_fold_segment():
    assert fold_segment(0, 10) == 0
    assert fold_segment(0b1111, 2) == 0b11 ^ 0b11
    assert fold_segment(0x3FF, 10) == 0x3FF
    assert fold_segment(0xFFFFF, 10) == 0


def test_history_only_tracks_conditionals():
    predictor = HashedPerceptron()
    predictor.update_history(0x100, 2, True, 0)  # a call
    assert predictor.history == 0
    predictor.update_history(0x100, 0, True, 0)
    assert predictor.history == 1


def test_storage_bits():
    config = PerceptronConfig(tables=4, row_bits=8, weight_bits=6,
                              history_bits=24)
    assert HashedPerceptron(config).storage_bits() == 4 * 256 * 6
    assert config.storage_bits() == 4 * 256 * 6


def test_invalid_geometry():
    for bad in (dict(tables=1), dict(row_bits=0), dict(weight_bits=1),
                dict(history_bits=0), dict(threshold=0),
                dict(tables=4, history_bits=10)):  # 10 % 3 != 0
        with pytest.raises(ValueError):
            PerceptronConfig(**bad)


class TestRegistryIntegration:
    def test_plain_key_is_default_config(self):
        predictor = make_predictor("percep")
        assert isinstance(predictor, HashedPerceptron)
        assert predictor.config == PerceptronConfig()

    def test_key_round_trip(self):
        key = "percep:t=4,r=9,w=6,h=24"
        predictor = make_predictor(key)
        assert predictor.config == PerceptronConfig(
            tables=4, row_bits=9, weight_bits=6, history_bits=24)
        assert key_of(predictor) == key

    def test_default_theta_drops_from_canonical_key(self):
        derived = default_threshold(56)
        assert canonical_key(f"percep:theta={derived}") == "percep"
        assert canonical_key("percep:theta=40") == "percep:theta=40"

    def test_malformed_suffix(self):
        with pytest.raises(ValueError):
            make_predictor("percep:zz=3")
        with pytest.raises(ValueError):
            make_predictor("percep:t=4,h=10")  # 10 % 3 != 0
