"""Bi-Mode predictor: choice steering, training policy, registry keys."""

import pytest

from repro.predictors.bimode import BiMode, BiModeConfig
from repro.predictors.registry import canonical_key, key_of, make_predictor
from repro.sim.engine import run_simulation


def _step(predictor, pc, taken):
    meta = predictor.predict(pc)   # BiMode's meta IS the bool prediction
    predictor.train(pc, taken, meta)
    predictor.update_history(pc, 0, taken, 0)
    return meta


def test_learns_history_correlation():
    """Alternating outcome at one PC: the direction banks separate the
    two history contexts even though the bias is exactly 50/50."""
    predictor = BiMode(BiModeConfig(choice_bits=8, direction_bits=8,
                                    history_bits=8))
    taken = True
    correct = 0
    for i in range(400):
        if _step(predictor, 0x100, taken) == taken and i > 100:
            correct += 1
        taken = not taken
    assert correct > 280


def test_choice_steers_biased_branches_apart():
    """Two fully biased branches in a tiny direction bank: the choice
    table sends them to opposite banks, so neither thrashes."""
    config = BiModeConfig(choice_bits=8, direction_bits=4, history_bits=1)
    predictor = BiMode(config)
    pc_a, pc_b = 0x100, 0x100 + (1 << 6)
    correct = 0
    for i in range(300):
        a = _step(predictor, pc_a, True) is True
        b = _step(predictor, pc_b, False) is False
        if i >= 50:
            correct += a + b
    assert correct > 2 * 250 * 0.95


def test_choice_update_guard():
    """The choice counter must NOT train toward the outcome when it
    steered wrong but the selected bank predicted right."""
    config = BiModeConfig(choice_bits=4, direction_bits=4, history_bits=4)
    predictor = BiMode(config)
    ci, di = predictor._indices(0x100)
    # Force: choice says not-taken, not-taken bank correctly says taken.
    predictor.choice[ci] = -1
    predictor.nottaken_bank[di] = 1
    meta = predictor.predict(0x100)
    assert meta is True
    predictor.train(0x100, True, meta)
    assert predictor.choice[ci] == -1      # guard held
    assert predictor.nottaken_bank[di] == 1  # already saturated


def test_banks_biased_at_reset():
    predictor = BiMode(BiModeConfig(choice_bits=4, direction_bits=4,
                                    history_bits=4))
    assert int(predictor.taken_bank[0]) == 0      # weakly taken
    assert int(predictor.nottaken_bank[0]) == -1  # weakly not taken


def test_history_only_tracks_conditionals():
    predictor = BiMode()
    predictor.update_history(0x100, 2, True, 0)  # a call
    assert predictor.history == 0
    predictor.update_history(0x100, 0, True, 0)
    assert predictor.history == 1


def test_storage_bits():
    config = BiModeConfig(choice_bits=10, direction_bits=11, history_bits=11)
    # 2-bit choice counters + two 2-bit direction banks.
    assert BiMode(config).storage_bits() == 2 * 1024 + 2 * 2 * 2048
    assert config.storage_bits() == BiMode(config).storage_bits()


def test_invalid_geometry():
    for bad in (dict(choice_bits=0), dict(direction_bits=0),
                dict(history_bits=0), dict(history_bits=65)):
        with pytest.raises(ValueError):
            BiModeConfig(**bad)


def test_beats_gshare_on_bias_dominated_mix(pattern_trace):
    from repro.predictors.gshare import GShare

    bimode = run_simulation(pattern_trace, BiMode())
    gshare = run_simulation(pattern_trace, GShare())
    assert bimode.mpki <= gshare.mpki * 1.2


class TestRegistryIntegration:
    def test_plain_key_is_default_config(self):
        predictor = make_predictor("bimode")
        assert isinstance(predictor, BiMode)
        assert predictor.config == BiModeConfig()

    def test_key_round_trip(self):
        key = "bimode:c=10,d=11,h=9"
        predictor = make_predictor(key)
        assert predictor.config == BiModeConfig(
            choice_bits=10, direction_bits=11, history_bits=9)
        assert key_of(predictor) == key

    def test_defaults_drop_from_canonical_key(self):
        assert canonical_key("bimode:c=13,d=13,h=13") == "bimode"
        assert canonical_key("bimode:h=10,c=13") == "bimode:h=10"

    def test_malformed_suffix(self):
        with pytest.raises(ValueError):
            make_predictor("bimode:zz=3")
        with pytest.raises(ValueError):
            make_predictor("bimode:c")
