"""Infinite-capacity TAGE (the §II-C limit study substrate)."""

from repro.predictors.infinite import InfiniteTage
from repro.predictors.presets import tage_infinite, tsl_64k, tsl_infinite
from repro.predictors.tage import Tage, TageConfig
from repro.sim.engine import run_simulation


def small_config(**overrides):
    defaults = dict(
        history_lengths=(4, 8, 16, 32, 64),
        index_bits=6,
        tag_bits=10,
        bimodal_index_bits=10,
    )
    defaults.update(overrides)
    return TageConfig(**defaults)


def drive(predictor, pc, taken):
    meta = predictor.predict(pc)
    predictor.train(pc, taken, meta)
    predictor.update_history(pc, 0, taken, 0)
    return meta


def test_allocation_never_fails():
    predictor = InfiniteTage(small_config())
    for i in range(500):
        drive(predictor, 0x100 + 8 * (i % 50), i % 3 == 0)
    assert predictor.num_patterns() > 0


def test_no_capacity_evictions():
    """Patterns only accumulate — nothing is ever evicted."""
    predictor = InfiniteTage(small_config())
    counts = []
    for i in range(300):
        drive(predictor, 0x100 + 8 * (i % 20), i % 2 == 0)
        counts.append(predictor.num_patterns())
    assert all(a <= b for a, b in zip(counts, counts[1:]))


def test_learns_fixed_direction():
    predictor = InfiniteTage(small_config())
    for _ in range(50):
        drive(predictor, 0x100, True)
    assert predictor.lookup(0x100).pred is True


def test_per_pc_tagging_prevents_aliasing():
    """Two PCs with colliding (index, tag) stay separate entries."""
    predictor = InfiniteTage(small_config(index_bits=1, tag_bits=2))
    for i in range(200):
        drive(predictor, 0x100, True)
        drive(predictor, 0x104, False)
    assert predictor.lookup(0x100).pred is True
    assert predictor.lookup(0x104).pred is False


def test_useful_tracing_disabled_by_default():
    predictor = InfiniteTage(small_config())
    for i in range(300):
        drive(predictor, 0x100, i % 2 == 0)
    assert predictor.useful_patterns == {}


def test_useful_tracing_records_patterns():
    predictor = InfiniteTage(small_config())
    predictor.trace_useful = True
    for i in range(600):
        drive(predictor, 0x100, i % 2 == 0)
    counts = predictor.useful_pattern_counts()
    assert counts.get(0x100, 0) >= 1


def test_useful_callback_invoked():
    predictor = InfiniteTage(small_config())
    predictor.trace_useful = True
    events = []
    predictor.useful_callback = lambda pc, key: events.append((pc, key))
    for i in range(600):
        drive(predictor, 0x100, i % 2 == 0)
    assert events
    assert all(pc == 0x100 for pc, _ in events)
    table, idx, tag, pc = events[0][1]
    assert 0 <= table < 5


def test_inf_beats_finite_under_pressure(tiny_workload_trace):
    finite = Tage(small_config(index_bits=4, bimodal_index_bits=8))
    infinite = InfiniteTage(small_config(index_bits=4, bimodal_index_bits=8))
    r_fin = run_simulation(tiny_workload_trace, finite)
    r_inf = run_simulation(tiny_workload_trace, infinite)
    assert r_inf.mpki < r_fin.mpki


def test_presets_compose(tiny_workload_trace):
    base = run_simulation(tiny_workload_trace, tsl_64k())
    inf_tage = run_simulation(tiny_workload_trace, tage_infinite())
    inf_tsl = run_simulation(tiny_workload_trace, tsl_infinite())
    assert inf_tage.mpki <= base.mpki * 1.05
    assert inf_tsl.mpki <= base.mpki * 1.05


def test_storage_bits_grows_with_patterns():
    predictor = InfiniteTage(small_config())
    empty = predictor.storage_bits()
    for i in range(200):
        drive(predictor, 0x100 + 8 * i, i % 2 == 0)
    assert predictor.storage_bits() > empty
