"""BTB and ITTAGE indirect target predictor."""

import pytest

from repro.predictors.btb import BranchTargetBuffer
from repro.predictors.indirect import IndirectPredictor, IttageConfig


class TestBtb:
    def test_miss_then_hit(self):
        btb = BranchTargetBuffer(entries=64, ways=2)
        assert btb.predict(0x100) == 0
        btb.update(0x100, 0x500)
        assert btb.predict(0x100) == 0x500
        assert btb.misses == 1

    def test_predict_and_update(self):
        btb = BranchTargetBuffer(entries=64, ways=2)
        assert not btb.predict_and_update(0x100, 0x500)  # cold miss
        assert btb.predict_and_update(0x100, 0x500)      # now correct
        assert not btb.predict_and_update(0x100, 0x600)  # target changed
        assert btb.wrong_target == 1

    def test_capacity_eviction(self):
        btb = BranchTargetBuffer(entries=2, ways=1)
        btb.update(0x0 << 2, 1)
        btb.update(0x2 << 2, 2)  # same set as 0x0 in a 2-set, 1-way BTB
        assert btb.predict(0x0 << 2) == 0  # evicted

    def test_miss_rate(self):
        btb = BranchTargetBuffer(entries=64, ways=2)
        btb.predict(0x100)
        btb.update(0x100, 1)
        btb.predict(0x100)
        assert btb.miss_rate == 0.5

    def test_geometry_validated(self):
        with pytest.raises(ValueError):
            BranchTargetBuffer(entries=10, ways=3)

    def test_storage_bits(self):
        assert BranchTargetBuffer(entries=16384, ways=8).storage_bits() > 0


class TestIndirect:
    def drive(self, predictor, pc, target, cond_noise=()):
        res = predictor.predict(pc)
        correct = predictor.train(pc, target, res)
        predictor.update_history(pc, 4, True, target)
        for i, taken in enumerate(cond_noise):
            predictor.update_history(0x9000 + 4 * i, 0, taken, 0)
        return correct

    def test_learns_monomorphic_target(self):
        predictor = IndirectPredictor()
        hits = 0
        for i in range(100):
            if self.drive(predictor, 0x100, 0x4000):
                hits += 1
        assert hits > 90

    def test_learns_history_correlated_targets(self):
        """Target alternates with a preceding conditional outcome."""
        predictor = IndirectPredictor()
        correct_late = 0
        for i in range(600):
            which = i % 2 == 0
            predictor.update_history(0x50, 0, which, 0)  # the correlated cond
            target = 0x4000 if which else 0x8000
            if self.drive(predictor, 0x100, target) and i > 300:
                correct_late += 1
        assert correct_late > 200  # far above the 50% a BTB would get

    def test_base_table_fallback(self):
        predictor = IndirectPredictor()
        res = predictor.predict(0x100)
        assert res.provider == -1
        assert res.target == 0

    def test_mispredictions_counted(self):
        predictor = IndirectPredictor()
        self.drive(predictor, 0x100, 0x4000)
        assert predictor.mispredictions == 1
        assert 0 <= predictor.misprediction_rate <= 1

    def test_config_validated(self):
        with pytest.raises(ValueError):
            IttageConfig(history_lengths=(5, 2))

    def test_storage_bits(self):
        assert IndirectPredictor().storage_bits() > 0


class TestLLBPFrontendIntegration:
    def test_frontend_flag_creates_components(self):
        from repro.predictors.registry import make_predictor

        plain = make_predictor("llbp")
        assert plain.btb is None and plain.indirect is None
        modelled = make_predictor("llbp:frontend")
        assert modelled.btb is not None and modelled.indirect is not None

    def test_frontend_flushes_counted(self, tiny_workload_trace):
        from repro.predictors.registry import make_predictor
        from repro.sim.engine import run_simulation

        predictor = make_predictor("llbp:frontend")
        result = run_simulation(tiny_workload_trace, predictor)
        assert result.extra.get("btb_flushes", 0) >= 0
        assert predictor.indirect.lookups > 0
