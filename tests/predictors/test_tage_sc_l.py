"""Composed TAGE-SC-L."""

from repro.predictors.tage_sc_l import TageScL, TslConfig
from repro.sim.engine import run_simulation


def small_tsl(use_sc=True, use_loop=True):
    from repro.predictors.tage import TageConfig

    config = TslConfig(
        tage=TageConfig(history_lengths=(4, 8, 16, 32), index_bits=7,
                        tag_bits=9, bimodal_index_bits=9),
        sc_index_bits=7,
        use_sc=use_sc,
        use_loop=use_loop,
    )
    return TageScL(config)


def drive(predictor, pc, taken, branch_type=0):
    meta = predictor.predict(pc)
    predictor.train(pc, taken, meta)
    predictor.update_history(pc, branch_type, taken, 0)
    return meta


def test_components_optional():
    assert small_tsl(use_sc=False).sc is None
    assert small_tsl(use_loop=False).loop is None
    full = small_tsl()
    assert full.sc is not None and full.loop is not None


def test_learns_simple_bias():
    predictor = small_tsl()
    for _ in range(100):
        drive(predictor, 0x100, True)
    assert predictor.lookup(0x100).pred is True


def test_base_override_replaces_tage_pred():
    predictor = small_tsl(use_sc=False, use_loop=False)
    for _ in range(50):
        drive(predictor, 0x100, True)
    natural = predictor.lookup(0x100)
    assert natural.pred is True
    overridden = predictor.lookup(0x100, base_override=(False, -3))
    assert overridden.pred is False
    assert overridden.base_overridden


def test_lookup_accepts_precomputed_tage_result():
    predictor = small_tsl()
    tage_res = predictor.tage.lookup(0x100)
    res = predictor.lookup(0x100, tage_res=tage_res)
    assert res.tage is tage_res


def test_suppress_tage_provider_keeps_counter():
    predictor = small_tsl(use_sc=False, use_loop=False)
    for _ in range(200):
        drive(predictor, 0x100, True)
    res = predictor.lookup(0x100)
    if res.tage.provider >= 0:
        idx = res.tage.indices[res.tage.provider]
        before = predictor.tage.ctrs[res.tage.provider][idx]
        tsl_res = predictor.lookup(0x100)
        predictor.train(0x100, False, tsl_res, suppress_tage_provider=True,
                        suppress_tage_alloc=True)
        after = predictor.tage.ctrs[res.tage.provider][idx]
        assert after == before


def test_storage_bits_accumulates_components():
    full = small_tsl()
    bare = small_tsl(use_sc=False, use_loop=False)
    assert full.storage_bits() > bare.storage_bits()


def test_64k_preset_storage_in_range():
    from repro.predictors.presets import tsl_64k

    predictor = tsl_64k()
    kib = predictor.storage_bits() / 8 / 1024
    # The 64K-class baseline scaled by CAPACITY_SCALE=4: ~12-20 KiB.
    assert 8 < kib < 24


def test_mpki_reasonable_on_workload(tiny_workload_trace):
    result = run_simulation(tiny_workload_trace, small_tsl())
    assert result.accuracy > 0.85


def test_sc_and_loop_help_or_do_not_hurt_much(tiny_workload_trace):
    full = run_simulation(tiny_workload_trace, small_tsl())
    bare = run_simulation(tiny_workload_trace, small_tsl(use_sc=False, use_loop=False))
    assert full.mpki <= bare.mpki * 1.15
