"""Bimodal predictor."""

import pytest

from repro.predictors.bimodal import Bimodal


def test_learns_bias():
    predictor = Bimodal(index_bits=8)
    for _ in range(10):
        predictor.train(0x100, True, predictor.predict(0x100))
    assert predictor.predict(0x100) is True
    for _ in range(10):
        predictor.train(0x100, False, predictor.predict(0x100))
    assert predictor.predict(0x100) is False


def test_hysteresis():
    predictor = Bimodal(index_bits=8)
    for _ in range(5):
        predictor.update(0x100, True)  # saturate at +1
    predictor.update(0x100, False)     # one wrong outcome
    assert predictor.lookup(0x100) is True  # still taken


def test_independent_entries():
    predictor = Bimodal(index_bits=8)
    predictor.update(0x100, True)
    predictor.update(0x100, True)
    assert predictor.lookup(0x100) is True
    assert predictor.lookup(0x104) is True or predictor.lookup(0x104) is False
    predictor.update(0x104, False)
    predictor.update(0x104, False)
    assert predictor.lookup(0x104) is False
    assert predictor.lookup(0x100) is True


def test_aliasing_beyond_index_bits():
    predictor = Bimodal(index_bits=4)
    pc_a, pc_b = 0x0, 0x4 << 4  # same low index bits after masking? ensure distinct
    predictor.update(pc_a, True)
    # pc_a and pc_a + (16 << 2) alias in a 4-bit table
    alias = pc_a + (16 << 2)
    predictor.update(alias, True)
    assert predictor.lookup(pc_a) is True


def test_misprediction_stats():
    predictor = Bimodal(index_bits=8)
    meta = predictor.predict(0x100)
    predictor.train(0x100, not meta, meta)
    assert predictor.stats.mispredictions == 1
    assert predictor.stats.lookups == 1


def test_storage_bits():
    assert Bimodal(index_bits=10).storage_bits() == 2 * 1024


def test_invalid_geometry():
    with pytest.raises(ValueError):
        Bimodal(index_bits=0)
