"""GShare predictor."""

import pytest

from repro.predictors.gshare import GShare
from repro.sim.engine import run_simulation


def test_learns_history_correlation():
    """Outcome alternates; gshare separates the two history contexts."""
    predictor = GShare(index_bits=10, history_bits=8)
    taken = True
    correct = 0
    for i in range(400):
        meta = predictor.predict(0x100)
        if i > 100 and meta == taken:
            correct += 1
        predictor.train(0x100, taken, meta)
        predictor.update_history(0x100, 0, taken, 0)
        taken = not taken
    assert correct > 280  # near-perfect after warmup


def test_history_only_tracks_conditionals():
    predictor = GShare()
    predictor.update_history(0x100, 2, True, 0)  # a call
    assert predictor.history == 0
    predictor.update_history(0x100, 0, True, 0)
    assert predictor.history == 1


def test_beats_bimodal_on_alternating_pattern(pattern_trace):
    from repro.predictors.bimodal import Bimodal

    gshare = run_simulation(pattern_trace, GShare())
    bimodal = run_simulation(pattern_trace, Bimodal())
    assert gshare.mpki < bimodal.mpki


def test_storage_bits():
    assert GShare(index_bits=10).storage_bits() == 2 * 1024


def test_invalid_geometry():
    with pytest.raises(ValueError):
        GShare(index_bits=0)
