"""Loop predictor."""

from repro.predictors.loop import LoopPredictor


def drive_loop(predictor, pc, trips, iterations, tage_mispredicts=True):
    """Run `iterations` executions of a `trips`-trip loop."""
    for _ in range(iterations):
        for i in range(trips):
            taken = i + 1 < trips
            res = predictor.lookup(pc)
            predictor.update(pc, taken, res, tage_mispredicted=tage_mispredicts)


def test_learns_fixed_trip_count():
    predictor = LoopPredictor(seed=3)
    drive_loop(predictor, 0x100, trips=5, iterations=40)
    # Now it should predict the whole loop body correctly.
    correct = 0
    for i in range(5):
        taken = i + 1 < 5
        res = predictor.lookup(0x100)
        if res.valid and res.pred == taken:
            correct += 1
        predictor.update(0x100, taken, res, tage_mispredicted=False)
    assert correct == 5


def test_irregular_loop_loses_confidence():
    predictor = LoopPredictor(seed=3)
    drive_loop(predictor, 0x100, trips=5, iterations=30)
    # Change the trip count: confidence must reset.
    drive_loop(predictor, 0x100, trips=3, iterations=1, tage_mispredicts=False)
    res = predictor.lookup(0x100)
    assert not res.valid or res.pred in (True, False)  # not confidently wrong
    # After the change it re-allocates (TAGE mispredicting the exits) and
    # retrains on the new count.
    drive_loop(predictor, 0x100, trips=3, iterations=60, tage_mispredicts=True)
    res = predictor.lookup(0x100)
    assert res.valid


def test_no_allocation_without_tage_mispredict():
    predictor = LoopPredictor(seed=3)
    drive_loop(predictor, 0x100, trips=4, iterations=30, tage_mispredicts=False)
    assert not predictor.lookup(0x100).hit


def test_withloop_counter():
    predictor = LoopPredictor()
    assert not predictor.use_loop  # starts distrusting
    for _ in range(3):
        predictor.train_withloop(loop_pred=True, tage_pred=False, taken=True)
    assert predictor.use_loop
    for _ in range(6):
        predictor.train_withloop(loop_pred=True, tage_pred=False, taken=False)
    assert not predictor.use_loop


def test_withloop_ignores_agreement():
    predictor = LoopPredictor()
    before = predictor.withloop
    predictor.train_withloop(loop_pred=True, tage_pred=True, taken=True)
    assert predictor.withloop == before


def test_storage_bits_positive():
    assert LoopPredictor().storage_bits() > 0


def test_confident_mispredict_evicts_entry():
    predictor = LoopPredictor(seed=3)
    drive_loop(predictor, 0x100, trips=5, iterations=40)
    res = predictor.lookup(0x100)
    assert res.valid
    # Feed an outcome that contradicts the confident prediction.
    predictor.update(0x100, not res.pred, res, tage_mispredicted=False)
    res2 = predictor.lookup(0x100)
    assert not res2.valid
