"""Shared fixtures for the test suite."""

from __future__ import annotations

import os

import pytest

from repro.traces.trace import Trace, TraceBuilder
from repro.traces.types import BranchType

try:
    from hypothesis import HealthCheck, settings

    # CI runs on a shared, noisy 3.9/3.11/3.12 matrix: kill the wall-clock
    # deadline (a slow runner must not flake a correct property) and
    # derandomize so every leg checks the same examples — a red matrix
    # cell always means the code, never the seed.
    settings.register_profile(
        "ci", deadline=None, derandomize=True,
        suppress_health_check=[HealthCheck.too_slow])
    settings.register_profile("dev", deadline=None)
    settings.load_profile("ci" if os.environ.get("CI") else "dev")
except ImportError:  # pragma: no cover - hypothesis is a dev extra
    pass


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden", action="store_true", default=False,
        help="regenerate the golden-MPKI fixtures in "
             "tests/integration/golden_mpki.json instead of asserting "
             "against them")


@pytest.fixture
def update_golden(request):
    return request.config.getoption("--update-golden")


@pytest.fixture
def pattern_trace() -> Trace:
    """A single branch cycling through a period-5 pattern."""
    builder = TraceBuilder("pattern5")
    pattern = [True, True, True, False, False]
    for i in range(4000):
        builder.append(0x1000, BranchType.COND, pattern[i % 5], 0x1008, 2)
    return builder.build()


@pytest.fixture
def mixed_trace() -> Trace:
    """A small trace with every branch type."""
    builder = TraceBuilder("mixed")
    for i in range(300):
        builder.append(0x1000, BranchType.COND, i % 3 != 0, 0x1008, 3)
        builder.append(0x1010, BranchType.CALL, True, 0x2000, 2)
        builder.append(0x2004, BranchType.COND, i % 2 == 0, 0x200C, 4)
        builder.append(0x2010, BranchType.RET, True, 0x1014, 2)
        builder.append(0x1020, BranchType.JUMP, True, 0x1040, 3)
        if i % 4 == 0:
            builder.append(0x1044, BranchType.IND_CALL, True, 0x3000, 2)
            builder.append(0x3008, BranchType.RET, True, 0x1048, 2)
    return builder.build()


@pytest.fixture
def tiny_workload_trace() -> Trace:
    """A real (but small) generated workload trace."""
    from repro.workloads.builder import WorkloadSpec, build_program
    from repro.workloads.generator import generate_trace

    spec = WorkloadSpec(
        name="tiny", seed=7,
        num_handlers=3, num_services=6, num_leaves=12,
        num_complex=6,
    )
    program = build_program(spec)
    return generate_trace(program, 60_000, seed=7, name="tiny")


@pytest.fixture
def isolated_caches(tmp_path, monkeypatch):
    """Point trace/result caches at a temp dir and shrink budgets."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.setenv("REPRO_INSTRUCTIONS", "60000")
    monkeypatch.setenv("REPRO_WORKLOADS", "Kafka")
    from repro.experiments.runner import clear_memory_cache

    clear_memory_cache()
    yield tmp_path
    clear_memory_cache()
