"""The static storage model must match the live accounting exactly.

``storage_cost_bits`` prices a key without building tables; every
predictor exposes ``storage_bits()`` computed from the tables it did
build.  For every bounded config the two must be equal to the bit —
any divergence means the model (or the predictor layout) drifted.
"""

from __future__ import annotations

import math

import pytest

from repro.explore.cost import (
    INFINITE_KEYS,
    storage_cost_bits,
    storage_kib,
)
from repro.predictors import registry

FINITE_KEYS = tuple(key for key in registry.known_keys()
                    if key not in INFINITE_KEYS)

PARAMETERIZED_KEYS = (
    "tsl:x=2,t=11",
    "tsl:t=16,tag=10",
    "tsl:x=4,sc=6",
    "llbp:cd_bits=10",
    "llbp:unbucketed,ps=8",
    "llbp:unbucketed,ps=32,cd_bits=7",
    "llbp:w=16,d=0",
    "llbp:pb=128",
    "bimode:c=14,d=15",
    "bimode:c=10,d=10,h=8",
    "percep:t=4,h=24,r=11",
    "percep:w=6,theta=40",
)


@pytest.mark.parametrize("key", FINITE_KEYS + PARAMETERIZED_KEYS)
def test_model_matches_live_storage_bits(key):
    predictor = registry.make_predictor(key)
    assert storage_cost_bits(key) == predictor.storage_bits()


@pytest.mark.parametrize("key", sorted(INFINITE_KEYS))
def test_unbounded_oracles_price_as_infinity(key):
    assert math.isinf(storage_cost_bits(key))


def test_perfect_prices_as_zero():
    assert storage_cost_bits("perfect") == 0


def test_known_sizes():
    # The paper's baseline TSL is a 64-KiB-class budget; LLBP adds its
    # backing structures on top of it.
    assert storage_cost_bits("tsl64") == 102_720
    assert storage_cost_bits("llbp") > storage_cost_bits("tsl64")


def test_rejects_unknown_keys():
    with pytest.raises(KeyError):
        storage_cost_bits("no-such-predictor")


def test_storage_kib():
    assert storage_kib(8192) == 1.0
    assert math.isinf(storage_kib(math.inf))
