"""Golden-fixture regression: the smoke search is bit-reproducible.

Runs the exact search ``python -m repro.explore --budget smoke``
performs — same space, workloads, schedule and seed — against a
hermetic cache, and asserts the rendered artifact matches
``tests/explore/golden_frontier.json`` byte for byte.  Any drift in the
bandit schedule, the shuffle, MPKI accounting, the storage model or the
JSON layout shows up here.  When a change is *intended*, regenerate
with::

    python -m pytest tests/explore/test_golden_frontier.py --update-golden
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.explore import pareto, search
from repro.explore.__main__ import BUDGETS
from repro.explore.space import SPACES

GOLDEN_PATH = Path(__file__).parent / "golden_frontier.json"


@pytest.fixture(autouse=True)
def _hermetic(tmp_path, monkeypatch):
    """Golden bytes must not depend on ambient caches or env budgets."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.delenv("REPRO_INSTRUCTIONS", raising=False)
    monkeypatch.delenv("REPRO_WORKLOADS", raising=False)
    from repro.experiments.runner import clear_memory_cache

    clear_memory_cache()
    yield
    clear_memory_cache()


def run_smoke_search() -> str:
    budget = BUDGETS["smoke"]
    space = SPACES[budget.space]
    keys = space.expand()
    schedule = search.halving_schedule(
        len(keys), budget.base_instructions,
        budget.resolve_full_instructions(), eta=budget.eta,
        min_survivors=budget.min_survivors)
    outcome = search.run_search(keys, budget.resolve_workloads(),
                                schedule, seed=0, max_workers=1)
    return pareto.render_artifact(pareto.build_artifact(outcome,
                                                        space.name))


def test_smoke_search_reproduces_golden_frontier(update_golden):
    rendered = run_smoke_search()
    if update_golden:
        GOLDEN_PATH.write_text(rendered)
        return
    assert rendered == GOLDEN_PATH.read_text(), (
        "smoke-search frontier drifted from tests/explore/"
        "golden_frontier.json; if the change is intended, regenerate "
        "with --update-golden")


def test_golden_fixture_is_canonical_json():
    """The committed bytes are exactly the canonical rendering."""
    text = GOLDEN_PATH.read_text()
    artifact = json.loads(text)
    assert pareto.render_artifact(artifact) == text
    # Sanity: the fixture describes the pinned smoke search.
    assert artifact["space"] == "smoke"
    assert artifact["workloads"] == ["NodeApp", "Kafka"]
    assert artifact["seed"] == 0
    assert artifact["frontier"], "empty frontier"
    front_keys = {entry["key"] for entry in artifact["frontier"]}
    for entry in artifact["finalists"]:
        assert entry["pareto"] == (entry["key"] in front_keys)
