"""Pareto-front extraction, winner attribution and the artifact bytes."""

from __future__ import annotations

import json

from repro.explore.pareto import (
    build_artifact,
    pareto_front,
    render_artifact,
    render_frontier_table,
    workload_winners,
)
from repro.explore.search import Evaluation, Rung, SearchOutcome


def evaluation(key: str, **mpki: float) -> Evaluation:
    return Evaluation(key, 90_000, dict(mpki))


def test_front_drops_dominated_configs():
    # gshare: more storage than bimodal AND worse MPKI -> dominated.
    finalists = [
        evaluation("bimodal", NodeApp=12.0, Kafka=8.0),
        evaluation("gshare", NodeApp=13.0, Kafka=9.0),
        evaluation("tsl64", NodeApp=9.0, Kafka=6.0),
    ]
    front = pareto_front(finalists)
    assert [e.key for e in front] == ["bimodal", "tsl64"]


def test_front_keeps_tradeoffs_sorted_by_storage():
    finalists = [
        evaluation("tsl256", NodeApp=8.0),
        evaluation("bimodal", NodeApp=12.0),
        evaluation("tsl64", NodeApp=9.0),
    ]
    front = pareto_front(finalists)
    assert [e.key for e in front] == ["bimodal", "tsl64", "tsl256"]


def test_infinite_storage_never_dominates_on_storage():
    # The oracle has the best MPKI but infinite storage: it stays on the
    # front (nothing beats its MPKI) without displacing bounded configs.
    finalists = [
        evaluation("inf-tsl", NodeApp=1.0),
        evaluation("tsl64", NodeApp=9.0),
    ]
    front = pareto_front(finalists)
    assert [e.key for e in front] == ["tsl64", "inf-tsl"]


def test_winners_per_workload_with_deterministic_ties():
    finalists = [
        evaluation("tsl64", NodeApp=9.0, Kafka=6.0),
        evaluation("bimodal", NodeApp=9.0, Kafka=5.0),
    ]
    winners = workload_winners(finalists)
    # NodeApp ties 9.0/9.0 -> lexicographically smaller key wins.
    assert winners == {"NodeApp": "bimodal", "Kafka": "bimodal"}


def outcome() -> SearchOutcome:
    finalists = (
        evaluation("tsl64", NodeApp=9.0, Kafka=6.0),
        evaluation("inf-tsl", NodeApp=1.0, Kafka=1.0),
    )
    schedule = (Rung(0, 30_000, 3), Rung(1, 90_000, 2))
    trajectory = {e.key: {1: e} for e in finalists}
    trajectory["bimodal"] = {0: evaluation("bimodal", NodeApp=12.0,
                                           Kafka=8.0)}
    return SearchOutcome(
        keys=("tsl64", "bimodal", "inf-tsl"),
        workloads=("NodeApp", "Kafka"), schedule=schedule, seed=0,
        trajectory=trajectory, finalists=finalists, evaluations=10)


def test_artifact_is_json_clean_and_deterministic():
    artifact = build_artifact(outcome(), "smoke")
    rendered = render_artifact(artifact)
    # Canonical bytes: sorted keys, trailing newline, no NaN/Infinity —
    # strict JSON must parse it back.
    parsed = json.loads(rendered)
    assert rendered.endswith("}\n")
    assert parsed["space"] == "smoke"
    assert parsed["configs"] == 3
    assert parsed["evaluations"] == 10
    assert [r["configs"] for r in parsed["schedule"]] == [3, 2]
    # Infinite storage is encoded as the string "inf".
    oracle = [e for e in parsed["finalists"] if e["key"] == "inf-tsl"]
    assert oracle[0]["storage_bits"] == "inf"
    assert oracle[0]["pareto"] is True
    assert render_artifact(build_artifact(outcome(), "smoke")) == rendered


def test_rendered_table_lists_finalists_and_winners():
    table = render_frontier_table(build_artifact(outcome(), "smoke"))
    assert "tsl64" in table and "inf-tsl" in table
    assert "per-workload winners:" in table
    assert "NodeApp: inf-tsl" in table
