"""Successive-halving promotion math, independent of any engine.

These pin the scheduler invariants the search driver relies on:
exact budget accounting, monotone rung shapes, deterministic
starvation-free promotion, and a seed-stable shuffle.  Everything here
is a pure function — no simulation, no caches.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro.explore.search import (
    halving_schedule,
    promote,
    schedule_cost,
    shuffled,
)

schedule_args = st.tuples(
    st.integers(min_value=1, max_value=200),      # configs
    st.integers(min_value=1, max_value=10_000),   # base instructions
    st.integers(min_value=1, max_value=50),       # full/base multiplier
    st.integers(min_value=2, max_value=5),        # eta
    st.integers(min_value=1, max_value=8),        # min survivors
)


@given(schedule_args)
def test_schedule_shape(args):
    configs, base, multiplier, eta, floor = args
    full = base * multiplier
    schedule = halving_schedule(configs, base, full, eta=eta,
                                min_survivors=floor)

    # Rung 0 admits the whole field; the last rung runs the full budget.
    assert schedule[0].survivors == configs
    assert schedule[0].instructions == base
    assert schedule[-1].instructions == full
    assert [rung.index for rung in schedule] == list(range(len(schedule)))

    # Instructions strictly increase; survivors never increase and never
    # drop below the floor (clamped to the field size) after rung 0.
    for earlier, later in zip(schedule, schedule[1:]):
        assert later.instructions > earlier.instructions
        assert later.survivors <= earlier.survivors
        assert later.survivors >= min(configs, floor)


@given(schedule_args)
def test_budget_conservation(args):
    """schedule_cost is the exact instruction total, config by config.

    Each rung evaluates each of its entrants exactly once, so summing
    per-rung (survivors x instructions) must equal replaying the ladder
    entrant by entrant — no config is ever evaluated twice at one rung.
    """
    configs, base, multiplier, eta, floor = args
    schedule = halving_schedule(configs, base, base * multiplier, eta=eta,
                                min_survivors=floor)
    replay = sum(rung.survivors * rung.instructions for rung in schedule)
    assert schedule_cost(schedule) == replay
    assert schedule_cost(schedule, num_workloads=3) == 3 * replay

    # The (config slot, rung) evaluation grid has no duplicates.
    grid = {(slot, rung.index)
            for rung in schedule for slot in range(rung.survivors)}
    assert len(grid) == sum(rung.survivors for rung in schedule)


def test_halving_reduces_by_eta():
    schedule = halving_schedule(81, 100, 100 * 3 ** 4, eta=3,
                                min_survivors=1)
    assert [rung.survivors for rung in schedule] == [81, 27, 9, 3, 1]
    assert [rung.instructions for rung in schedule] == [
        100, 300, 900, 2700, 8100]


def test_small_field_never_starves():
    """Fields at or below the floor still climb the full ladder."""
    schedule = halving_schedule(2, 100, 900, eta=3, min_survivors=3)
    assert [rung.survivors for rung in schedule] == [2, 2, 2]


def test_full_budget_not_multiple_of_eta():
    """The top rung is pinned to exactly the requested full budget."""
    schedule = halving_schedule(10, 100, 1000, eta=3, min_survivors=3)
    assert [rung.instructions for rung in schedule] == [100, 300, 900, 1000]


def test_degenerate_single_rung():
    schedule = halving_schedule(5, 1000, 1000)
    assert len(schedule) == 1
    assert schedule[0].survivors == 5


@pytest.mark.parametrize("kwargs", [
    dict(num_configs=0, base_instructions=1, full_instructions=1),
    dict(num_configs=1, base_instructions=0, full_instructions=1),
    dict(num_configs=1, base_instructions=10, full_instructions=5),
    dict(num_configs=1, base_instructions=1, full_instructions=1, eta=1),
    dict(num_configs=1, base_instructions=1, full_instructions=1,
         min_survivors=0),
])
def test_schedule_rejects_bad_arguments(kwargs):
    with pytest.raises(ValueError):
        halving_schedule(**kwargs)


@given(st.dictionaries(st.text(min_size=1, max_size=8),
                       st.floats(min_value=0, max_value=100,
                                 allow_nan=False),
                       min_size=1, max_size=30),
       st.integers(min_value=1, max_value=30))
def test_promote_selects_the_best(scores, count):
    chosen = promote(scores, count)
    assert len(chosen) == min(count, len(scores))
    assert len(set(chosen)) == len(chosen)
    # Starvation-free: nothing outside the cut strictly beats anything
    # inside it.
    worst_in = max(scores[key] for key in chosen)
    for key in scores:
        if key not in chosen:
            assert scores[key] >= worst_in


def test_promote_is_order_independent():
    scores = {"b": 1.0, "a": 1.0, "c": 0.5}
    reversed_scores = dict(reversed(list(scores.items())))
    assert promote(scores, 2) == promote(reversed_scores, 2) == ["c", "a"]


@given(st.lists(st.text(min_size=1, max_size=6), unique=True,
                max_size=40),
       st.integers(min_value=0, max_value=2**32 - 1))
def test_shuffle_is_a_seeded_permutation(keys, seed):
    once = shuffled(keys, seed)
    again = shuffled(keys, seed)
    assert once == again                      # deterministic in the seed
    assert sorted(once) == sorted(keys)       # a permutation, no loss
    assert keys == list(keys)                 # input untouched


def test_shuffle_seed_changes_order():
    keys = [f"key{i}" for i in range(20)]
    assert shuffled(keys, 1) != shuffled(keys, 2)


def test_schedule_cost_example():
    schedule = halving_schedule(7, 30_000, 90_000, eta=3, min_survivors=3)
    # Rung 0: 7 configs x 30k; rung 1: 3 survivors x 90k.
    assert schedule_cost(schedule, num_workloads=2) == 2 * (
        7 * 30_000 + 3 * 90_000)
    assert not math.isinf(schedule_cost(schedule))
