"""The ``python -m repro.explore`` CLI surface, in-process."""

from __future__ import annotations

import json

import pytest

from repro.explore.__main__ import BUDGETS, journal_path, main


@pytest.fixture(autouse=True)
def _hermetic(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.delenv("REPRO_INSTRUCTIONS", raising=False)
    monkeypatch.delenv("REPRO_WORKLOADS", raising=False)
    from repro.experiments.runner import clear_memory_cache

    clear_memory_cache()
    yield tmp_path
    clear_memory_cache()


def small_run(tmp_path, *extra):
    """A tiny custom-space search: 2 configs, 1 workload, short traces."""
    out = tmp_path / "artifact.json"
    code = main(["--budget", "smoke", "--space", "bimodal;gshare",
                 "--workloads", "Kafka", "--out", str(out), "--jobs", "1",
                 "--quiet", *extra])
    return code, out


def test_writes_artifact_and_reports_frontier(tmp_path, capsys):
    code, out = small_run(tmp_path)
    assert code == 0
    artifact = json.loads(out.read_text())
    assert artifact["space"] == "custom"
    assert artifact["workloads"] == ["Kafka"]
    assert {entry["key"] for entry in artifact["finalists"]} == {
        "bimodal", "gshare"}
    assert capsys.readouterr().out.count("artifact written") == 1


def test_check_passes_against_own_artifact(tmp_path):
    code, out = small_run(tmp_path)
    assert code == 0
    code, _ = small_run(tmp_path, "--check", str(out))
    assert code == 0


def test_check_fails_on_any_byte_difference(tmp_path, capsys):
    code, out = small_run(tmp_path)
    assert code == 0
    expected = tmp_path / "expected.json"
    expected.write_text(out.read_text().replace('"seed": 0', '"seed": 1'))
    code, _ = small_run(tmp_path, "--check", str(expected))
    assert code == 1
    assert "differs" in capsys.readouterr().err


def test_unknown_space_is_a_usage_error(tmp_path, capsys):
    assert main(["--space", "no;such;keys", "--jobs", "1"]) == 2
    assert "invalid --space" in capsys.readouterr().err


def test_table_rendering_on_stdout(tmp_path, capsys):
    code = main(["--budget", "smoke", "--space", "bimodal;gshare",
                 "--workloads", "Kafka", "--jobs", "1"])
    assert code == 0
    output = capsys.readouterr().out
    assert "mean MPKI" in output
    assert "per-workload winners:" in output


def test_journal_lives_beside_the_experiments_journal(tmp_path):
    path = journal_path()
    assert path.name == "explore-journal.jsonl"
    assert path.parent == tmp_path / "cache"


def test_budget_presets_are_consistent():
    assert set(BUDGETS) == {"smoke", "short", "full"}
    smoke = BUDGETS["smoke"]
    assert smoke.workloads == ("NodeApp", "Kafka")
    assert smoke.space == "smoke"
    for budget in BUDGETS.values():
        assert budget.base_instructions <= budget.resolve_full_instructions()
