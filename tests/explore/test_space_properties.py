"""Property tests for the search-space grammar and storage model.

Hypothesis generates configurations across the whole ``tsl:`` / ``llbp:``
axes and asserts the contracts the explore harness depends on: every
generated config renders to a key the registry parses back to the same
config, canonicalisation is idempotent and agrees with ``key_of`` on a
live predictor, and the storage model is positive, monotone in table
size, and a pure function of the key.
"""

from __future__ import annotations

import dataclasses

from hypothesis import given, settings, strategies as st

from repro.explore.cost import storage_cost_bits
from repro.llbp.config import LLBPConfig
from repro.predictors import registry
from repro.predictors.registry import TslGeometry

scales = st.sampled_from([1, 2, 4, 8, 16])

tsl_geometries = st.builds(
    TslGeometry,
    scale=scales,
    tables=st.integers(min_value=1, max_value=21),
    tag_bits=st.integers(min_value=2, max_value=16),
    sc_index_bits=st.integers(min_value=1, max_value=12),
)


def llbp_configs() -> st.SearchStrategy[LLBPConfig]:
    def build(cd_bits, bucketed, ps_exp, window, distance, pb):
        changes = {
            "cd_set_bits": cd_bits,
            "context_window": window,
            "prefetch_distance": distance,
            "pb_entries": pb,
        }
        if not bucketed:
            changes["bucketed"] = False
            changes["patterns_per_set"] = 1 << ps_exp
        return dataclasses.replace(LLBPConfig(), **changes)

    return st.builds(
        build,
        st.integers(min_value=5, max_value=12),
        st.booleans(),
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=1, max_value=32),
        st.integers(min_value=0, max_value=8),
        # The pattern buffer is set-associative: entries must divide
        # into pb_ways (4) ways.
        st.integers(min_value=1, max_value=64).map(lambda n: n * 4),
    )


@given(tsl_geometries)
def test_tsl_key_round_trips_through_parse(geometry):
    key = registry.tsl_canonical_key(geometry)
    spec = registry.parse_key(key)
    if spec.family == "tsl":
        assert spec.config == geometry
    else:
        # Pure power-of-two scales collapse to a preset plain key.
        assert geometry == TslGeometry(scale=geometry.scale)
    assert registry.canonical_key(key) == key   # idempotent


@given(llbp_configs())
def test_llbp_key_round_trips_through_parse(config):
    suffix = registry.llbp_key_suffix(config)
    key = f"llbp:{suffix}" if suffix else "llbp"
    assert registry.parse_key(key).config == config
    assert registry.canonical_key(key) == key


@settings(max_examples=25)  # instantiates real predictor tables
@given(st.builds(TslGeometry,
                 scale=st.sampled_from([1, 2]),
                 tables=st.integers(min_value=2, max_value=21),
                 tag_bits=st.integers(min_value=6, max_value=14)))
def test_tsl_key_of_round_trips_through_a_live_predictor(geometry):
    key = registry.tsl_canonical_key(geometry)
    assert registry.key_of(registry.make_predictor(key)) == key


@settings(max_examples=25)
@given(llbp_configs())
def test_llbp_key_of_round_trips_through_a_live_predictor(config):
    suffix = registry.llbp_key_suffix(config)
    key = f"llbp:{suffix}" if suffix else "llbp"
    assert registry.key_of(registry.make_predictor(key)) == key


@given(tsl_geometries)
def test_tsl_storage_cost_is_positive_and_stable(geometry):
    key = registry.tsl_canonical_key(geometry)
    bits = storage_cost_bits(key)
    assert bits > 0
    assert bits == storage_cost_bits(key)   # pure function of the key


@given(llbp_configs())
def test_llbp_storage_cost_is_positive_and_stable(config):
    suffix = registry.llbp_key_suffix(config)
    key = f"llbp:{suffix}" if suffix else "llbp"
    bits = storage_cost_bits(key)
    assert bits > 0
    assert bits == storage_cost_bits(key)


@given(st.builds(TslGeometry,
                 scale=scales,
                 tables=st.integers(min_value=1, max_value=20),
                 tag_bits=st.integers(min_value=2, max_value=16)))
def test_tsl_storage_cost_is_monotone_in_tables(geometry):
    bigger = dataclasses.replace(geometry, tables=geometry.tables + 1)
    assert (storage_cost_bits(registry.tsl_canonical_key(bigger))
            > storage_cost_bits(registry.tsl_canonical_key(geometry)))


@given(st.builds(TslGeometry,
                 scale=st.sampled_from([1, 2, 4, 8]),
                 tables=st.integers(min_value=1, max_value=21)))
def test_tsl_storage_cost_is_monotone_in_scale(geometry):
    bigger = dataclasses.replace(geometry, scale=geometry.scale * 2)
    assert (storage_cost_bits(registry.tsl_canonical_key(bigger))
            > storage_cost_bits(registry.tsl_canonical_key(geometry)))


@given(llbp_configs())
def test_llbp_storage_cost_is_monotone_in_directory_size(config):
    bigger = dataclasses.replace(config,
                                 cd_set_bits=config.cd_set_bits + 1)
    def key(c):
        suffix = registry.llbp_key_suffix(c)
        return f"llbp:{suffix}" if suffix else "llbp"
    assert storage_cost_bits(key(bigger)) > storage_cost_bits(key(config))
