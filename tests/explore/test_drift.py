"""Registry catalog vs. explore enumeration: no family left behind.

``registry.known_keys`` and the explore templates are maintained in
different modules; this suite fails the build when they drift — a new
catalog family that no search-space template can reach, a template
rendering keys the registry rejects, or a key whose spelling is not
canonical (token order, defaults spelled out, preset aliases).
"""

from __future__ import annotations

import pytest

from repro.explore.space import SPACES, TEMPLATES, Template, resolve_space
from repro.predictors import registry


def all_template_keys() -> set:
    keys = set()
    for template in TEMPLATES:
        keys.update(template.expand())
    return keys


def test_every_catalog_family_is_reachable_from_a_template():
    reachable = {registry.parse_key(key).family
                 for key in all_template_keys()}
    # Parameterized keys report their grammar family; fold them onto the
    # plain catalog spelling they extend.
    reachable.discard("tsl")
    reachable.add("tsl64")
    missing = [key for key in registry.known_keys()
               if registry.parse_key(key).family not in reachable]
    assert not missing, (
        f"catalog keys unreachable from every explore template: {missing} "
        "— add them to a template in repro/explore/space.py")


def test_every_template_expands_to_valid_canonical_keys():
    for template in TEMPLATES:
        keys = template.expand()
        assert keys, template.name
        for key in keys:
            registry.parse_key(key)   # raises if the registry rejects it
            assert registry.canonical_key(key) == key, (
                f"template {template.name!r} produced non-canonical "
                f"{key!r}")


def test_every_space_expands_uniquely():
    for space in SPACES.values():
        keys = space.expand()
        assert keys, space.name
        assert len(keys) == len(set(keys)), space.name


def test_smoke_space_is_pinned():
    """The golden fixture depends on this exact field; changing it means
    regenerating tests/explore/golden_frontier.json."""
    assert SPACES["smoke"].expand() == [
        "tsl64", "tsl256",
        "llbp:cd_bits=8", "llbp:unbucketed,cd_bits=8,ps=8",
        "llbp", "llbp:unbucketed,ps=8",
        "bimodal",
    ]


def test_canonical_key_normalizes_token_order():
    # The same config spelled with tokens swapped lands on one key (and
    # therefore one cache entry, one search-space slot).
    forward = registry.canonical_key("llbp:cd_bits=8,unbucketed,ps=8")
    swapped = registry.canonical_key("llbp:ps=8,unbucketed,cd_bits=8")
    assert forward == swapped == "llbp:unbucketed,cd_bits=8,ps=8"


def test_canonical_key_collapses_defaults_and_presets():
    assert registry.canonical_key("llbp:") == "llbp"
    assert registry.canonical_key("llbp:w=8") == "llbp"     # default w
    assert registry.canonical_key("tsl:x=4") == "tsl256"
    assert registry.canonical_key("tsl:x=1,t=21") == "tsl64"


def test_templates_validate_their_shape():
    with pytest.raises(ValueError):
        Template("bad", "plain", axes=(("x=1",),))
    with pytest.raises(ValueError):
        Template("bad", "tsl", keys=("tsl64",))
    with pytest.raises(ValueError):
        Template("bad", "no-such-family", keys=("x",))


def test_template_expansion_names_the_broken_template():
    broken = Template("broken", "llbp", axes=(("ps=48",),))
    with pytest.raises(ValueError, match="broken"):
        broken.expand()


def test_resolve_space_accepts_literal_key_lists():
    space = resolve_space("tsl64; llbp:cd_bits=8")
    assert space.expand() == ["tsl64", "llbp:cd_bits=8"]
    with pytest.raises(ValueError):
        resolve_space("")


def test_resolve_space_finds_builtins():
    assert resolve_space("smoke") is SPACES["smoke"]
