"""Context-locality study (Fig 5 machinery)."""

from repro.analysis.contexts import (
    ContextStudyResult,
    _context_hash,
    patterns_per_context_study,
)


def test_context_hash_depends_on_order():
    assert _context_hash([0x100, 0x200]) != _context_hash([0x200, 0x100])


def test_context_hash_depends_on_content():
    assert _context_hash([0x100, 0x200]) != _context_hash([0x100, 0x300])


def test_context_hash_fits_bits():
    value = _context_hash([0xFFFFFFFF] * 8, bits=20)
    assert 0 <= value < (1 << 20)


def test_study_result_percentiles():
    res = ContextStudyResult(window=4, counts=[1, 2, 3, 4, 100])
    assert res.p50 == 3
    assert res.p95 == 100
    assert ContextStudyResult(window=0, counts=[]).p50 == 0


def test_patterns_per_context_study(tiny_workload_trace):
    from repro.predictors.presets import tsl_64k
    from repro.sim.engine import run_simulation

    baseline = run_simulation(tiny_workload_trace, tsl_64k(), collect_per_pc=True)
    results = patterns_per_context_study(
        tiny_workload_trace, baseline,
        windows=(0, 4, 16), top_branches=32,
    )
    by_window = {r.window: r for r in results}
    assert set(by_window) == {0, 4, 16}
    # Context locality: deeper windows need fewer patterns per context.
    assert by_window[16].p95 <= by_window[0].p95
    assert by_window[4].p95 <= by_window[0].p95
    # Deeper windows slice into at least as many contexts.
    assert len(by_window[16].counts) >= len(by_window[0].counts)
