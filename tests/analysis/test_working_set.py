"""Working-set analysis (Fig 3 machinery)."""

from repro.analysis.working_set import (
    baseline_order,
    cumulative_misprediction_fractions,
    top_branch_share,
    useful_patterns_study,
)
from repro.sim.results import SimulationResult


def fake_result(misp, execs=None):
    return SimulationResult(
        workload="w", predictor="p",
        instructions=10_000, warmup_instructions=0,
        branches=0, cond_branches=0,
        mispredictions=sum(misp.values()),
        per_pc_mispredictions=dict(misp),
        per_pc_executions=dict(execs or {pc: 10 for pc in misp}),
    )


def test_baseline_order_sorts_by_misses():
    result = fake_result({0x1: 5, 0x2: 50, 0x3: 20})
    assert baseline_order(result) == [0x2, 0x3, 0x1]


def test_order_includes_never_mispredicted():
    result = fake_result({0x1: 5}, execs={0x1: 10, 0x2: 10})
    order = baseline_order(result)
    assert set(order) == {0x1, 0x2}
    assert order[0] == 0x1


def test_cumulative_fractions():
    base = fake_result({0x1: 60, 0x2: 40})
    order = baseline_order(base)
    curve = cumulative_misprediction_fractions(base, order, base)
    assert curve == [0.6, 1.0]


def test_cumulative_normalised_to_baseline():
    base = fake_result({0x1: 60, 0x2: 40})
    better = fake_result({0x1: 30, 0x2: 20})
    order = baseline_order(base)
    curve = cumulative_misprediction_fractions(better, order, base)
    assert curve[-1] == 0.5  # half the baseline's misses remain


def test_top_branch_share():
    result = fake_result({0x1: 80, 0x2: 10, 0x3: 10})
    order = baseline_order(result)
    assert top_branch_share(result, order, 1) == 0.8


def test_useful_patterns_study_on_small_trace(tiny_workload_trace):
    from repro.predictors.presets import tsl_64k
    from repro.sim.engine import run_simulation

    baseline = run_simulation(tiny_workload_trace, tsl_64k(), collect_per_pc=True)
    study = useful_patterns_study(tiny_workload_trace, baseline)
    assert study.counts_by_pc
    assert study.mean >= 1.0
    # Hot branches need at least as many patterns as the average branch.
    assert study.top_n_mean(10) >= study.mean * 0.5
