"""Characterization pipeline: metric properties, artifact bytes, winners.

Three layers:

* **hypothesis properties** on arbitrary traces — the bias-family
  metrics are order-free (invariant under any record permutation), all
  entropies are bounded, the history ladder is monotone (a longer
  window never loses information), and the whole metric dict is a pure
  function of the trace;
* **artifact byte-determinism** — the same workloads + budget render
  the same bytes whichever engine (and, under the ``distributed``
  marker, whichever backend) computed the MPKI column;
* **the predicted-winner contract** — the metrics-only rule names the
  measured-best family on at least 10 of the 14 catalog workloads at
  the pinned budget.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.analysis.characterize import (
    FAMILIES,
    HISTORY_LENGTHS,
    artifact_json,
    characterize,
    characterize_trace,
    main,
    measured_winner,
    predicted_winner,
    render_table,
)
from repro.traces.trace import TraceBuilder
from repro.traces.types import BranchType

#: Budget for the full-catalog winner assertion.  Small budgets are too
#: cold for LLBP's prefetch machinery (the tsl64/llbp gap is decided by
#: warmup noise); 120k is past that regime and stays test-sized.
WINNER_INSTRUCTIONS = 120_000

#: Minimum catalog workloads on which the metrics-only rule must name
#: the measured-best family.
WINNER_FLOOR = 10

_BRANCH_TYPES = [BranchType.COND, BranchType.COND, BranchType.CALL,
                 BranchType.RET, BranchType.JUMP]


def _records(steps):
    records = []
    for i, (pc_pick, bt_pick, taken) in enumerate(steps):
        bt = _BRANCH_TYPES[bt_pick]
        pc = 0x1000 + 4 * pc_pick
        records.append((pc, bt, True if bt != BranchType.COND else taken,
                        pc + 16, 1 + (i % 4)))
    return records


def _build(records):
    builder = TraceBuilder("char-prop")
    for record in records:
        builder.append(*record)
    return builder.build()


steps_strategy = st.lists(
    st.tuples(st.integers(0, 24), st.integers(0, 4), st.booleans()),
    min_size=30, max_size=250,
)


class TestMetricProperties:
    @given(steps_strategy)
    @settings(max_examples=30, deadline=None)
    def test_bounds_and_ladder(self, steps):
        records = _records(steps)
        assume(any(r[1] == BranchType.COND for r in records))
        metrics = characterize_trace(_build(records))

        be = metrics["branch_entropy"]
        ladder = [metrics["history_entropy"][str(length)]
                  for length in HISTORY_LENGTHS]
        eps = 1e-9
        for value in (metrics["taken_rate"], metrics["taken_skew"], be,
                      metrics["transition_entropy"],
                      metrics["context_entropy"], *ladder):
            assert -eps <= value <= 1.0 + eps

        # Conditioning on anything refines the per-PC partition, so no
        # conditional entropy may exceed the per-PC outcome entropy...
        assert metrics["transition_entropy"] <= be + eps
        assert metrics["context_entropy"] <= be + eps
        for value in ladder:
            assert value <= be + eps
        # ...and a longer window refines a shorter one.
        for shorter, longer in zip(ladder, ladder[1:]):
            assert longer <= shorter + eps

    @given(steps_strategy, st.randoms(use_true_random=False))
    @settings(max_examples=30, deadline=None)
    def test_bias_metrics_are_order_free(self, steps, rnd):
        """taken_rate / branch_entropy / taken_skew count per-PC outcome
        multisets, so any permutation of the records preserves them."""
        records = _records(steps)
        assume(any(r[1] == BranchType.COND for r in records))
        shuffled = list(records)
        rnd.shuffle(shuffled)
        a = characterize_trace(_build(records))
        b = characterize_trace(_build(shuffled))
        for metric in ("cond_branches", "static_branches", "taken_rate",
                       "branch_entropy", "taken_skew"):
            assert a[metric] == pytest.approx(b[metric], abs=1e-12)

    @given(steps_strategy)
    @settings(max_examples=15, deadline=None)
    def test_metrics_are_a_pure_function_of_the_trace(self, steps):
        records = _records(steps)
        assume(any(r[1] == BranchType.COND for r in records))
        trace = _build(records)
        assert characterize_trace(trace) == characterize_trace(trace)

    def test_rejects_trace_without_conditionals(self):
        builder = TraceBuilder("no-cond")
        builder.append(0x100, BranchType.JUMP, True, 0x200, 2)
        with pytest.raises(ValueError, match="no conditional"):
            characterize_trace(builder.build())


class TestPredictedWinner:
    @staticmethod
    def _metrics(longest, context, bias, shorter=None):
        ladder = {str(length): (shorter if shorter is not None else longest)
                  for length in HISTORY_LENGTHS}
        ladder[str(HISTORY_LENGTHS[-1])] = longest
        return {"branch_entropy": bias, "context_entropy": context,
                "history_entropy": ladder}

    def test_short_history_saturation_names_gshare(self):
        assert predicted_winner(self._metrics(0.0, 0.0, 0.0)) == "gshare"

    def test_beyond_horizon_noise_names_percep(self):
        assert predicted_winner(self._metrics(0.95, 0.99, 1.0)) == "percep"

    def test_informative_context_names_llbp(self):
        assert predicted_winner(self._metrics(0.10, 0.20, 0.35)) == "llbp"

    def test_history_only_structure_names_tsl(self):
        assert predicted_winner(self._metrics(0.30, 0.60, 0.60,
                                              shorter=0.6)) == "tsl64"

    def test_measured_winner_tie_break_is_family_order(self):
        mpki = {family: 1.0 for family in FAMILIES}
        assert measured_winner(mpki) == FAMILIES[0]
        mpki["tsl64"] = 0.5
        assert measured_winner(mpki) == "tsl64"


@pytest.fixture()
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.delenv("REPRO_INSTRUCTIONS", raising=False)
    monkeypatch.delenv("REPRO_ENGINE", raising=False)
    monkeypatch.delenv("REPRO_BACKEND", raising=False)
    from repro.experiments.runner import clear_memory_cache

    clear_memory_cache()
    yield
    clear_memory_cache()


SMALL_WORKLOADS = ("Kafka", "adv:xor")
SMALL_INSTRUCTIONS = 30_000


class TestArtifactDeterminism:
    def test_engines_render_identical_bytes(self, isolated_cache,
                                            monkeypatch):
        """The artifact must not care which engine simulated the MPKI
        column: python and array runs are bit-identical by contract and
        the serialisation rounds before dumping."""
        from repro.experiments.runner import clear_memory_cache

        monkeypatch.setenv("REPRO_ENGINE", "python")
        py = artifact_json(characterize(SMALL_WORKLOADS,
                                        instructions=SMALL_INSTRUCTIONS))
        clear_memory_cache()
        monkeypatch.setenv("REPRO_RESULT_CACHE", "0")
        monkeypatch.setenv("REPRO_ENGINE", "array")
        arr = artifact_json(characterize(SMALL_WORKLOADS,
                                         instructions=SMALL_INSTRUCTIONS))
        assert py == arr

    def test_repeat_run_renders_identical_bytes(self, isolated_cache):
        a = characterize(SMALL_WORKLOADS, instructions=SMALL_INSTRUCTIONS)
        b = characterize(SMALL_WORKLOADS, instructions=SMALL_INSTRUCTIONS)
        assert artifact_json(a) == artifact_json(b)
        # and the table renderer is deterministic too
        assert render_table(a) == render_table(b)

    @pytest.mark.distributed
    def test_tcp_backend_renders_identical_bytes(self, isolated_cache,
                                                 monkeypatch):
        from repro.experiments.runner import clear_memory_cache

        local = artifact_json(characterize(SMALL_WORKLOADS,
                                           instructions=SMALL_INSTRUCTIONS))
        clear_memory_cache()
        monkeypatch.setenv("REPRO_RESULT_CACHE", "0")
        monkeypatch.setenv("REPRO_BACKEND", "tcp")
        monkeypatch.setenv("REPRO_BACKEND_WORKERS", "2")
        remote = artifact_json(characterize(SMALL_WORKLOADS,
                                            instructions=SMALL_INSTRUCTIONS))
        assert local == remote

    def test_artifact_shape(self, isolated_cache):
        artifact = characterize(["Kafka"], instructions=SMALL_INSTRUCTIONS,
                                with_mpki=False)
        data = json.loads(artifact_json(artifact))
        entry = data["workloads"]["Kafka"]
        assert data["schema"] == 1
        assert data["history_lengths"] == list(HISTORY_LENGTHS)
        assert set(entry["metrics"]["history_entropy"]) == {
            str(length) for length in HISTORY_LENGTHS}
        assert entry["predicted_winner"] in FAMILIES
        assert "mpki" not in entry


class TestWinnerContract:
    def test_rule_names_measured_best_on_most_of_the_catalog(
            self, isolated_cache, monkeypatch):
        """The acceptance bar: >= 10 of the 14 catalog workloads."""
        monkeypatch.setenv("REPRO_ENGINE", "array")
        artifact = characterize(instructions=WINNER_INSTRUCTIONS)
        entries = artifact["workloads"]
        assert len(entries) == 14
        hits = sum(entry["predicted_winner"] == entry["measured_winner"]
                   for entry in entries.values())
        assert hits >= WINNER_FLOOR, {
            workload: (entry["predicted_winner"], entry["measured_winner"])
            for workload, entry in entries.items()
            if entry["predicted_winner"] != entry["measured_winner"]}


class TestCLI:
    def test_out_then_check_round_trip(self, isolated_cache, tmp_path,
                                       capsys):
        out = tmp_path / "char.json"
        assert main(["--workloads", "Kafka", "--instructions", "8000",
                     "--no-mpki", "--out", str(out)]) == 0
        assert json.loads(out.read_text())["workloads"]["Kafka"]
        assert main(["--workloads", "Kafka", "--instructions", "8000",
                     "--no-mpki", "--check", str(out)]) == 0
        assert "byte-identical" in capsys.readouterr().out

    def test_check_flags_mismatch(self, isolated_cache, tmp_path, capsys):
        out = tmp_path / "char.json"
        out.write_text("{}\n")
        assert main(["--workloads", "Kafka", "--instructions", "8000",
                     "--no-mpki", "--check", str(out)]) == 1
        assert "MISMATCH" in capsys.readouterr().err

    def test_unknown_workload_exits(self, isolated_cache):
        with pytest.raises(SystemExit):
            main(["--workloads", "NoSuchWorkload", "--no-mpki"])

    def test_adv_suite_spelling(self, isolated_cache, capsys):
        assert main(["--workloads", "adv:hist,l=4", "--instructions",
                     "8000", "--no-mpki"]) == 0
        assert "adv:hist,l=4" in capsys.readouterr().out
