"""Fig 15 breakdown arithmetic."""

import pytest

from repro.analysis.breakdown import breakdown_from_counts, override_breakdown
from repro.sim.results import SimulationResult

COUNTS = {
    "predictions": 1000,
    "llbp_provided": 150,
    "no_override": 35,
    "override_good": 10,
    "override_bad": 5,
    "override_both_correct": 90,
    "override_both_wrong": 10,
}


def test_fractions():
    b = breakdown_from_counts(COUNTS)
    assert b.provided == pytest.approx(0.15)
    assert b.no_override == pytest.approx(0.035)
    assert b.good_override == pytest.approx(0.010)


def test_override_rate():
    b = breakdown_from_counts(COUNTS)
    assert b.override_rate_of_provided == pytest.approx(115 / 150)


def test_bad_share():
    b = breakdown_from_counts(COUNTS)
    assert b.bad_share_of_overrides == pytest.approx(15 / 115)


def test_redundant_share():
    b = breakdown_from_counts(COUNTS)
    assert b.redundant_share_of_overrides == pytest.approx(100 / 115)


def test_requires_counts():
    with pytest.raises(ValueError):
        breakdown_from_counts({})


def test_from_simulation_result():
    result = SimulationResult(
        workload="w", predictor="llbp",
        instructions=1, warmup_instructions=0,
        branches=0, cond_branches=0, mispredictions=0,
        extra=dict(COUNTS),
    )
    assert override_breakdown(result).provided == pytest.approx(0.15)


def test_zero_overrides_degenerate():
    counts = dict(COUNTS)
    counts["no_override"] = counts["llbp_provided"]
    for key in ("override_good", "override_bad", "override_both_correct",
                "override_both_wrong"):
        counts[key] = 0
    b = breakdown_from_counts(counts)
    assert b.override_rate_of_provided == pytest.approx(0.0)
    assert b.bad_share_of_overrides == 0.0
    assert b.redundant_share_of_overrides == 0.0
