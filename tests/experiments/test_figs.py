"""Experiment modules produce well-formed rows (tiny budgets)."""

import pytest

from repro.experiments import fig01, fig02, fig09, fig10, fig11, fig12, fig15
from repro.experiments import tables
from repro.experiments.common import (
    experiment_instructions,
    experiment_workloads,
    format_table,
)


@pytest.fixture(autouse=True)
def _fast(isolated_caches):
    """All experiment tests run on the tiny Kafka budget."""


def test_env_knobs(monkeypatch):
    monkeypatch.setenv("REPRO_INSTRUCTIONS", "12345")
    assert experiment_instructions() == 12345
    monkeypatch.setenv("REPRO_WORKLOADS", "all")
    assert len(experiment_workloads()) == 14
    monkeypatch.setenv("REPRO_WORKLOADS", "Kafka, Tomcat")
    assert experiment_workloads() == ["Kafka", "Tomcat"]
    monkeypatch.setenv("REPRO_WORKLOADS", "Bogus")
    with pytest.raises(ValueError):
        experiment_workloads()


def test_format_table():
    text = format_table([{"a": 1, "b": 2.5}], ["a", "b"])
    assert "a" in text and "2.500" in text
    assert format_table([], ["a"]) == "(no rows)"


def test_fig01_rows():
    rows = fig01.run()
    assert rows[-1]["workload"] == "GMean"
    assert all(0 <= r["wasted_cycles_pct"] <= 100 for r in rows)
    assert fig01.format_rows(rows)


def test_fig02_rows_and_reductions():
    rows = fig02.run()
    assert set(rows[0]) == {"workload", "tsl64", "inf-tage", "inf-tsl"}
    red = fig02.reductions(rows)
    assert "inf-tsl" in red
    assert fig02.format_rows(rows)


def test_fig09_rows():
    rows = fig09.run()
    assert rows[-1]["workload"] == "Mean"
    assert "LLBP" in rows[0] and "512K TSL" in rows[0]
    assert fig09.format_rows(rows)


def test_fig10_speedups_positive():
    rows = fig10.run()
    for row in rows:
        for key, value in row.items():
            if key != "workload":
                assert value > 0.5
    # Perfect BP is the upper bound.
    mean = rows[-1]
    assert mean["Perfect BP"] >= mean["LLBP"] - 1e-9
    assert fig10.format_rows(rows)


def test_fig11_rows():
    rows = fig11.run(workloads=["Kafka"])
    structures = [r["structure"] for r in rows]
    assert "L1I misses" in structures
    assert all(r["total_bits_per_instr"] >= 0 for r in rows)
    assert fig11.format_rows(rows)


def test_fig12_rows():
    rows = fig12.run(workloads=["Kafka"])
    by_design = {r["design"]: r for r in rows}
    assert by_design["64KiB TSL"]["total_rel"] == pytest.approx(1.0)
    assert by_design["512KiB TAGE"]["total_rel"] == pytest.approx(4.58)
    assert by_design["64-Entry PB"]["total_rel"] > 1.0
    assert fig12.format_rows(rows)


def test_fig15_rows():
    data = fig15.run()
    rows = data["rows"]
    assert rows[-1]["workload"] == "Mean"
    assert 0 <= rows[-1]["provided_pct"] <= 100
    assert fig15.format_rows(data)


def test_tables():
    t1 = tables.table1()
    assert len(t1) == 14
    assert tables.format_table1(t1)
    t2 = tables.table2()
    assert any("Branch Pred" in r["parameter"] for r in t2)
    assert tables.format_table2(t2)
    t3 = tables.table3()
    assert len(t3) == 5
    assert tables.format_table3(t3)
