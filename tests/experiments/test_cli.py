"""The python -m repro.experiments entry point."""

import pytest

from repro.experiments.__main__ import _EXPERIMENTS, main


@pytest.fixture(autouse=True)
def _fast(isolated_caches):
    """Tiny Kafka-only budget."""


def test_registry_covers_every_table_and_figure():
    expected = {"table1", "table2", "table3", "fig01", "fig02", "fig03",
                "fig05", "fig09", "fig10", "fig11", "fig12", "fig13",
                "fig14", "fig15", "fig16"}
    assert set(_EXPERIMENTS) == expected


def test_unknown_experiment_rejected(capsys):
    assert main(["nope"]) == 2
    assert "unknown experiments" in capsys.readouterr().out


def test_single_experiment_runs(capsys):
    assert main(["table3"]) == 0
    out = capsys.readouterr().out
    assert "Table III" in out and "LLBP" in out


def test_simulated_experiment_runs(capsys):
    assert main(["fig01"]) == 0
    out = capsys.readouterr().out
    assert "wasted" in out.lower() or "Fig 1" in out
