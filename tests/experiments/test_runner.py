"""Experiment runner: predictor keys and result caching."""

import dataclasses

import pytest

from repro.experiments.runner import get_result
from repro.predictors.registry import make_predictor, parse_llbp_spec
from repro.llbp.config import ContextSource, LLBPConfig
from repro.llbp.predictor import LLBPTageScL
from repro.predictors.perfect import PerfectPredictor
from repro.predictors.tage_sc_l import TageScL


class TestResolve:
    def test_simple_keys(self):
        assert isinstance(make_predictor("tsl64"), TageScL)
        assert isinstance(make_predictor("perfect"), PerfectPredictor)
        assert make_predictor("tsl512").tage._size == 8 * make_predictor("tsl64").tage._size

    def test_llbp_default(self):
        predictor = make_predictor("llbp")
        assert isinstance(predictor, LLBPTageScL)
        assert predictor.config.simulate_timing

    def test_llbp_parameters(self):
        predictor = make_predictor("llbp:lat0,w=16,d=2,src=all,pb=16")
        cfg = predictor.config
        assert not cfg.simulate_timing
        assert cfg.context_window == 16
        assert cfg.prefetch_distance == 2
        assert cfg.context_source is ContextSource.ALL
        assert cfg.pb_entries == 16

    def test_llbp_ablation_tokens(self):
        cfg = make_predictor("llbp:unbucketed,lru,exclusive,noguard").config
        assert not cfg.bucketed
        assert cfg.cd_replacement == "lru"
        assert cfg.exclusive_provider_training
        assert not cfg.weak_override_guard

    def test_llbp_geometry_tokens(self):
        cfg = make_predictor("llbp:unbucketed,cd_bits=10,ps=32").config
        assert cfg.cd_set_bits == 10
        assert cfg.patterns_per_set == 32
        assert cfg.bucket_size == 32

    def test_unknown_key(self):
        with pytest.raises(KeyError):
            make_predictor("nope")

    def test_unknown_llbp_token(self):
        with pytest.raises(ValueError):
            make_predictor("llbp:frobnicate")
        with pytest.raises(ValueError):
            make_predictor("llbp:zz=3")


class TestParseLLBPKey:
    """Every key-spec token maps to exactly one LLBPConfig field.

    The specs round-trip through the figures' predictor keys and the
    result-cache filenames, so each token's meaning is API surface.
    """

    def test_empty_spec_is_default(self):
        assert parse_llbp_spec("") == LLBPConfig()

    @pytest.mark.parametrize("token,field,value", [
        ("lat0", "simulate_timing", False),
        ("virt", "prefetch_latency_cycles", 16),
        ("unbucketed", "bucketed", False),
        ("lru", "cd_replacement", "lru"),
        ("exclusive", "exclusive_provider_training", True),
        ("frontend", "model_frontend_redirects", True),
        ("noguard", "weak_override_guard", False),
        ("w=24", "context_window", 24),
        ("d=3", "prefetch_distance", 3),
        ("src=uncond", "context_source", ContextSource.UNCONDITIONAL),
        ("src=callret", "context_source", ContextSource.CALL_RET),
        ("src=all", "context_source", ContextSource.ALL),
        ("cd_bits=11", "cd_set_bits", 11),
        ("pb=32", "pb_entries", 32),
        ("lat=9", "prefetch_latency_cycles", 9),
    ])
    def test_single_token(self, token, field, value):
        config = parse_llbp_spec(token)
        assert getattr(config, field) == value
        # Only the named field (and nothing else) deviates from default.
        assert dataclasses.replace(config, **{field: getattr(LLBPConfig(), field)}) \
            == LLBPConfig()

    def test_ps_sets_patterns_per_set(self):
        # ``ps`` needs ``unbucketed`` alongside: bucketed configs pin the
        # pattern count to the slot-length list (LLBPConfig validates).
        assert parse_llbp_spec("unbucketed,ps=48").patterns_per_set == 48
        with pytest.raises(ValueError):
            parse_llbp_spec("ps=48")

    def test_tokens_compose(self):
        config = parse_llbp_spec("lat0,unbucketed,cd_bits=10,ps=32")
        assert not config.simulate_timing
        assert not config.bucketed
        assert config.cd_set_bits == 10
        assert config.patterns_per_set == 32

    def test_whitespace_and_empty_tokens_ignored(self):
        assert parse_llbp_spec(" lat0 , ,w=16") == parse_llbp_spec("lat0,w=16")

    @pytest.mark.parametrize("spec", ["bogus", "zz=3", "latency=4"])
    def test_unknown_tokens_rejected(self, spec):
        with pytest.raises(ValueError):
            parse_llbp_spec(spec)


class TestCacheRobustness:
    def test_corrupt_cache_file_is_a_miss(self, isolated_caches):
        from repro.experiments import runner

        first = get_result("Kafka", "bimodal")
        path = runner._cache_path("Kafka", 60_000, "bimodal")
        assert path.exists()
        path.write_text("{definitely not json")
        runner.clear_memory_cache()
        # The corrupt file must be silently recomputed, not crash the run.
        assert get_result("Kafka", "bimodal") == first
        # ...and the recompute rewrote a loadable file.
        runner.clear_memory_cache()
        assert runner.peek_result("Kafka", "bimodal") == first

    def test_cache_file_missing_fields_is_a_miss(self, isolated_caches):
        from repro.experiments import runner

        first = get_result("Kafka", "bimodal")
        path = runner._cache_path("Kafka", 60_000, "bimodal")
        path.write_text('{"workload": "Kafka"}')
        runner.clear_memory_cache()
        assert get_result("Kafka", "bimodal") == first

    def test_writes_are_atomic_no_temp_droppings(self, isolated_caches):
        from repro.experiments import runner

        get_result("Kafka", "bimodal")
        get_result("Kafka", "gshare")
        leftovers = list(runner._cache_dir().glob("*.tmp"))
        assert leftovers == []

    def test_peek_does_not_simulate(self, isolated_caches):
        from repro.experiments import runner

        assert runner.peek_result("Kafka", "bimodal") is None
        first = get_result("Kafka", "bimodal")
        runner.clear_memory_cache()
        assert runner.peek_result("Kafka", "bimodal") == first
        # The disk hit is promoted into the memory cache.
        assert runner.peek_result("Kafka", "bimodal") is \
            runner.peek_result("Kafka", "bimodal")


class TestGetResult:
    def test_runs_and_caches(self, isolated_caches):
        first = get_result("Kafka", "bimodal")
        assert first.workload == "Kafka"
        assert first.cond_branches > 0
        # Cached on disk: a second call must return identical numbers.
        from repro.experiments.runner import clear_memory_cache

        clear_memory_cache()
        second = get_result("Kafka", "bimodal")
        assert second.mispredictions == first.mispredictions
        assert second.per_pc_mispredictions == first.per_pc_mispredictions
        assert second.extra == first.extra

    def test_memory_cache_identity(self, isolated_caches):
        first = get_result("Kafka", "bimodal")
        assert get_result("Kafka", "bimodal") is first

    def test_cache_keyed_by_instructions(self, isolated_caches):
        small = get_result("Kafka", "bimodal", instructions=30_000)
        large = get_result("Kafka", "bimodal", instructions=60_000)
        assert small.instructions < large.instructions
