"""Experiment runner: predictor keys and result caching."""

import pytest

from repro.experiments.runner import get_result, resolve_predictor
from repro.llbp.config import ContextSource
from repro.llbp.predictor import LLBPTageScL
from repro.predictors.perfect import PerfectPredictor
from repro.predictors.tage_sc_l import TageScL


class TestResolve:
    def test_simple_keys(self):
        assert isinstance(resolve_predictor("tsl64"), TageScL)
        assert isinstance(resolve_predictor("perfect"), PerfectPredictor)
        assert resolve_predictor("tsl512").tage._size == 8 * resolve_predictor("tsl64").tage._size

    def test_llbp_default(self):
        predictor = resolve_predictor("llbp")
        assert isinstance(predictor, LLBPTageScL)
        assert predictor.config.simulate_timing

    def test_llbp_parameters(self):
        predictor = resolve_predictor("llbp:lat0,w=16,d=2,src=all,pb=16")
        cfg = predictor.config
        assert not cfg.simulate_timing
        assert cfg.context_window == 16
        assert cfg.prefetch_distance == 2
        assert cfg.context_source is ContextSource.ALL
        assert cfg.pb_entries == 16

    def test_llbp_ablation_tokens(self):
        cfg = resolve_predictor("llbp:unbucketed,lru,exclusive,noguard").config
        assert not cfg.bucketed
        assert cfg.cd_replacement == "lru"
        assert cfg.exclusive_provider_training
        assert not cfg.weak_override_guard

    def test_llbp_geometry_tokens(self):
        cfg = resolve_predictor("llbp:unbucketed,cd_bits=10,ps=32").config
        assert cfg.cd_set_bits == 10
        assert cfg.patterns_per_set == 32
        assert cfg.bucket_size == 32

    def test_unknown_key(self):
        with pytest.raises(KeyError):
            resolve_predictor("nope")

    def test_unknown_llbp_token(self):
        with pytest.raises(ValueError):
            resolve_predictor("llbp:frobnicate")
        with pytest.raises(ValueError):
            resolve_predictor("llbp:zz=3")


class TestGetResult:
    def test_runs_and_caches(self, isolated_caches):
        first = get_result("Kafka", "bimodal")
        assert first.workload == "Kafka"
        assert first.cond_branches > 0
        # Cached on disk: a second call must return identical numbers.
        from repro.experiments.runner import clear_memory_cache

        clear_memory_cache()
        second = get_result("Kafka", "bimodal")
        assert second.mispredictions == first.mispredictions
        assert second.per_pc_mispredictions == first.per_pc_mispredictions
        assert second.extra == first.extra

    def test_memory_cache_identity(self, isolated_caches):
        first = get_result("Kafka", "bimodal")
        assert get_result("Kafka", "bimodal") is first

    def test_cache_keyed_by_instructions(self, isolated_caches):
        small = get_result("Kafka", "bimodal", instructions=30_000)
        large = get_result("Kafka", "bimodal", instructions=60_000)
        assert small.instructions < large.instructions
