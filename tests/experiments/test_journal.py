"""Checkpoint journal + ``--resume``: crash recovery end to end."""

from __future__ import annotations

import json

import pytest

from repro import parallel, telemetry
from repro.experiments import runner
from repro.experiments.journal import RunJournal, default_path, result_digest
from repro.experiments.runner import RESULTS_VERSION


@pytest.fixture(autouse=True)
def _teardown():
    yield
    parallel.shutdown()
    telemetry.reset()


class TestJournalFile:
    def test_default_path_sits_next_to_result_cache(self, isolated_caches):
        path = default_path()
        assert path.name == "journal.jsonl"
        assert path.parent == isolated_caches / "cache"

    def test_fresh_open_discards_previous_run(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with RunJournal.open(path, resume=False) as journal:
            journal.record(("Kafka", "bimodal", 60_000), "d1")
        with RunJournal.open(path, resume=False) as journal:
            assert len(journal) == 0

    def test_results_version_mismatch_invalidates(self, tmp_path,
                                                  monkeypatch):
        path = tmp_path / "journal.jsonl"
        with RunJournal.open(path, resume=False) as journal:
            journal.record(("Kafka", "bimodal", 60_000), "d1")
        # Rewrite the header as if an older code version had written it.
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        header["results_version"] = RESULTS_VERSION - 1
        path.write_text("\n".join([json.dumps(header)] + lines[1:]) + "\n")
        with RunJournal.open(path, resume=True) as journal:
            assert len(journal) == 0  # stale completions not trusted

    def test_torn_trailing_line_is_skipped(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with RunJournal.open(path, resume=False) as journal:
            journal.record(("Kafka", "bimodal", 60_000), "d1")
        with open(path, "a") as fh:
            fh.write('{"workload": "Kafka", "key": "gsh')  # crash mid-write
        with RunJournal.open(path, resume=True) as journal:
            assert journal.completed() == {("Kafka", "bimodal", 60_000)}


class TestWriteFailure:
    def test_write_failure_warns_once_then_recovers(self, tmp_path,
                                                    monkeypatch):
        """A failed append must not kill checkpointing for the run: the
        user is warned (once) and the next record reopens the file."""
        monkeypatch.setenv(telemetry.ENV_VAR, str(tmp_path / "telemetry"))
        path = tmp_path / "journal.jsonl"
        journal = RunJournal.open(path, resume=False)
        real = RunJournal._write_line
        failures = {"left": 1}

        def flaky(self, record):
            if failures["left"]:
                failures["left"] -= 1
                raise OSError("disk full")
            real(self, record)

        monkeypatch.setattr(RunJournal, "_write_line", flaky)
        with pytest.warns(RuntimeWarning, match="journal write"):
            journal.record(("Kafka", "bimodal", 60_000), "d1")
        journal.record(("Kafka", "gshare", 60_000), "d2")
        journal.close()

        # The failure is visible in telemetry, and the journal carried
        # on: the post-failure completion survived to disk.
        kinds = [e["event"] for e in telemetry.events()]
        assert "journal.write_failed" in kinds
        with RunJournal.open(path, resume=True) as reloaded:
            assert ("Kafka", "gshare", 60_000) in reloaded.completed()

    def test_persistent_failure_warns_only_once(self, tmp_path,
                                                monkeypatch, recwarn):
        journal = RunJournal.open(tmp_path / "journal.jsonl", resume=False)

        def broken(self, record):
            raise OSError("read-only file system")

        monkeypatch.setattr(RunJournal, "_write_line", broken)
        journal.record(("Kafka", "bimodal", 60_000), "d1")
        journal.record(("Kafka", "gshare", 60_000), "d2")
        journal.close()
        warned = [w for w in recwarn.list
                  if "journal write" in str(w.message)]
        assert len(warned) == 1


class TestExecutorIntegration:
    def test_run_jobs_records_completions(self, isolated_caches):
        journal = RunJournal.open(resume=False)
        jobs = parallel.make_jobs([("Kafka", "bimodal"), ("Kafka", "gshare")])
        results = parallel.run_jobs(jobs, max_workers=1, journal=journal)
        journal.close()

        reloaded = RunJournal.open(resume=True)
        assert reloaded.completed() == {tuple(job) for job in jobs}
        for job in jobs:
            assert reloaded.matches(tuple(job), results[job]) is True
        reloaded.close()

    def test_corrupt_cache_entry_is_detected_and_rerun(self, isolated_caches,
                                                       monkeypatch):
        journal = RunJournal.open(resume=False)
        (job,) = parallel.make_jobs([("Kafka", "bimodal")])
        (good,) = parallel.run_jobs([job], max_workers=1,
                                    journal=journal).values()

        # Corrupt the cached bytes in a way plain JSON parsing accepts.
        (path,) = (isolated_caches / "cache" / "results").glob("*.json")
        data = json.loads(path.read_text())
        data["mispredictions"] += 1
        path.write_text(json.dumps(data))
        runner.clear_memory_cache()

        monkeypatch.setenv("REPRO_TELEMETRY",
                           str(isolated_caches / "telemetry"))
        (again,) = parallel.run_jobs([job], max_workers=1,
                                     journal=journal).values()
        journal.close()
        assert again == good  # recomputed, not the poisoned bytes
        kinds = [e["event"] for e in telemetry.events()]
        assert "parallel.cache_corrupt" in kinds

    def test_digest_is_content_addressed(self, isolated_caches):
        a = runner.get_result("Kafka", "bimodal")
        b = runner.get_result("Kafka", "gshare")
        assert result_digest(a) == result_digest(a)
        assert result_digest(a) != result_digest(b)


class TestResumeCLI:
    def test_interrupted_run_resumes_without_resimulating(
            self, isolated_caches, monkeypatch, capsys):
        from repro.experiments.__main__ import main

        tdir = isolated_caches / "telemetry"
        monkeypatch.setenv(telemetry.ENV_VAR, "0")  # flag drives it
        assert main(["fig09", "-j", "2",
                     "--telemetry", str(tdir / "first")]) == 0
        journal = RunJournal.open(resume=True)
        completed = len(journal)
        journal.close()
        assert completed == 4  # tsl64 + llbp + llbp:lat0 + tsl512

        # "Crash": drop all in-memory state, keep disk (cache + journal).
        runner.clear_memory_cache()
        parallel.shutdown()
        telemetry.reset()

        assert main(["fig09", "-j", "2", "--resume",
                     "--telemetry", str(tdir / "second")]) == 0
        events = telemetry.load_events(tdir / "second")
        (resume,) = [e for e in events if e["event"] == "experiment.resume"]
        assert resume["journaled"] == 4
        assert resume["total"] == 4
        simulated = [e for e in events if e["event"] == "runner.result"
                     and e.get("source") == "simulated"]
        assert simulated == []  # resume re-executed nothing
        assert "[resume]" in capsys.readouterr().out

    def test_serial_run_journals_and_verifies_digests(self, isolated_caches,
                                                      capsys):
        """-j 1 must checkpoint and digest-check too, not just -j N."""
        from repro.experiments.__main__ import main

        assert main(["fig09", "-j", "1"]) == 0
        journal = RunJournal.open(resume=True)
        assert len(journal) == 4
        journal.close()

        # Poison one cached result; a serial --resume run must notice
        # (digest mismatch) and recompute rather than serve it.
        clean = capsys.readouterr().out
        (path, *_) = (isolated_caches / "cache" / "results").glob("*.json")
        data = json.loads(path.read_text())
        data["mispredictions"] += 50
        path.write_text(json.dumps(data))
        runner.clear_memory_cache()
        parallel.shutdown()

        assert main(["fig09", "-j", "1", "--resume"]) == 0
        resumed = capsys.readouterr().out

        def figure(text):
            return [ln for ln in text.splitlines()
                    if ln and not ln.startswith("[")
                    and not ln.startswith("===")]

        assert figure(resumed) == figure(clean)

    def test_keyboard_interrupt_reports_resume_hint(self, isolated_caches,
                                                    monkeypatch, capsys):
        from repro.experiments import __main__ as cli

        def boom():
            raise KeyboardInterrupt

        monkeypatch.setitem(cli._EXPERIMENTS, "table3",
                            ("Table III — latency/energy", boom, None))
        assert cli.main(["table3", "-j", "1"]) == 130
        assert "--resume" in capsys.readouterr().err
