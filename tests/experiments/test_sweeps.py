"""Sweep experiment modules (Figs 3, 5, 13, 14) on tiny budgets."""

import pytest

from repro.experiments import fig03, fig05, fig13, fig14


@pytest.fixture(autouse=True)
def _fast(isolated_caches):
    """Tiny Kafka-only budget for every sweep."""


def test_fig03_structure():
    data = fig03.run(workload="Kafka")
    assert data["workload"] == "Kafka"
    rows = {r["config"]: r for r in data["rows"]}
    assert set(rows) == {"tsl64", "tsl128", "tsl256", "tsl512", "tsl1m", "inf-tsl"}
    assert rows["tsl64"]["misses_vs_64k"] == pytest.approx(1.0)
    assert all(0 <= r["top_branch_share"] <= 1 for r in data["rows"])
    assert data["patterns_mean"] > 0
    assert fig03.format_rows(data)


def test_fig05_structure():
    rows = fig05.run(workload="Kafka", windows=(0, 4), top_branches=16)
    by_w = {r["W"]: r for r in rows}
    assert set(by_w) == {0, 4}
    assert by_w[0]["p50"] >= 1
    assert by_w[4]["contexts"] >= by_w[0]["contexts"]
    assert fig05.format_rows(rows)


def test_fig13_structure():
    rows = fig13.run(workloads=["Kafka"], sources=("uncond", "all"),
                     distances=(0, 4))
    assert len(rows) == 4
    keys = {(r["source"], r["D"]) for r in rows}
    assert ("uncond", 4) in keys and ("all", 0) in keys
    assert fig13.format_rows(rows)


def test_fig14_structure():
    rows = fig14.run(workloads=["Kafka"], set_bits=(8, 9), pattern_sizes=(8, 16))
    assert len(rows) == 4
    by_key = {(r["contexts"], r["patterns_per_set"]): r for r in rows}
    assert by_key[(256 * 7, 16)]["capacity_kib"] == pytest.approx(
        2 * by_key[(256 * 7, 8)]["capacity_kib"])
    assert fig14.format_rows(rows)
