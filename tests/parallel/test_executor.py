"""Parallel executor: bit-identical to the serial runner, cache-aware.

The correctness bar for ``repro.parallel`` is strict equality: fanning a
batch of jobs across worker processes must produce *exactly* the
``SimulationResult`` values the serial ``get_result`` path computes,
because figures generated with ``--jobs N`` must match figures generated
serially to the last misprediction.
"""

from __future__ import annotations

import pytest

from repro import parallel
from repro.experiments import runner

KEYS = ("bimodal", "gshare", "tsl64")


@pytest.fixture(autouse=True)
def teardown_pool():
    yield
    parallel.shutdown()


class TestJobConstruction:
    def test_make_jobs_resolves_experiment_budget(self, isolated_caches):
        jobs = parallel.make_jobs([("Kafka", "bimodal")])
        assert jobs == [parallel.SimJob("Kafka", "bimodal", 60_000)]

    def test_make_jobs_explicit_instructions(self, isolated_caches):
        (job,) = parallel.make_jobs([("Kafka", "bimodal")], instructions=123)
        assert job.instructions == 123

    def test_default_jobs_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert parallel.default_jobs() == 3

    def test_default_jobs_unset_uses_cpu_count(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        import os

        assert parallel.default_jobs() == (os.cpu_count() or 1)

    def test_non_integer_repro_jobs_warns_and_falls_back(self, monkeypatch):
        """A typo'd REPRO_JOBS must not raise deep inside the executor."""
        import os

        monkeypatch.setenv("REPRO_JOBS", "four")
        with pytest.warns(RuntimeWarning, match="not an integer"):
            assert parallel.default_jobs() == (os.cpu_count() or 1)

    def test_non_positive_repro_jobs_warns_and_falls_back(self, monkeypatch):
        import os

        for bad in ("0", "-2"):
            monkeypatch.setenv("REPRO_JOBS", bad)
            with pytest.warns(RuntimeWarning, match="not positive"):
                assert parallel.default_jobs() == (os.cpu_count() or 1)


class TestRunJobs:
    def test_parallel_matches_serial(self, isolated_caches, monkeypatch):
        """Worker-computed results equal serial results, field for field."""
        jobs = parallel.make_jobs([("Kafka", key) for key in KEYS])
        by_job = parallel.run_jobs(jobs, max_workers=2)
        assert set(by_job) == set(jobs)

        # Recompute everything serially with caching off, so nothing the
        # workers wrote can leak into the comparison baseline.
        monkeypatch.setenv("REPRO_RESULT_CACHE", "0")
        runner.clear_memory_cache()
        for job in jobs:
            serial = runner.get_result(job.workload, job.key, job.instructions)
            assert serial == by_job[job]

    def test_duplicate_jobs_run_once(self, isolated_caches, monkeypatch):
        # REPRO_BATCH=0 keeps one get_result call per unique job; the
        # batched path would fold both into a single run_batch call.
        monkeypatch.setenv("REPRO_BATCH", "0")
        calls = []
        real = runner.get_result

        def counting(workload, key, instructions=None):
            calls.append((workload, key))
            return real(workload, key, instructions)

        monkeypatch.setattr(runner, "get_result", counting)
        jobs = parallel.make_jobs(
            [("Kafka", "bimodal")] * 3 + [("Kafka", "gshare")])
        by_job = parallel.run_jobs(jobs, max_workers=1)
        assert len(calls) == 2  # deduplicated before dispatch
        assert len(by_job) == 2  # dict keyed by unique job

    def test_cached_jobs_skip_dispatch(self, isolated_caches, monkeypatch):
        expected = runner.get_result("Kafka", "bimodal")

        def explode(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("cached job reached the runner")

        monkeypatch.setattr(runner, "get_result", explode)
        (job,) = parallel.make_jobs([("Kafka", "bimodal")])
        assert parallel.run_jobs([job], max_workers=2)[job] == expected

    def test_disk_cache_answers_fresh_process_state(self, isolated_caches):
        """A result cached on disk is found without re-simulation."""
        expected = runner.get_result("Kafka", "bimodal")
        runner.clear_memory_cache()
        (job,) = parallel.make_jobs([("Kafka", "bimodal")])
        assert parallel.run_jobs([job], max_workers=2)[job] == expected

    def test_results_seed_parent_memory_cache(self, isolated_caches):
        jobs = parallel.make_jobs([("Kafka", "bimodal"), ("Kafka", "gshare")])
        by_job = parallel.run_jobs(jobs, max_workers=2)
        for job in jobs:
            # ``is`` — get_result must hit the seeded memory cache, not
            # re-read the disk file (let alone re-simulate).
            assert runner.get_result(job.workload, job.key,
                                     job.instructions) is by_job[job]


class TestScheduling:
    def test_in_flight_never_exceeds_workers(self, isolated_caches,
                                             monkeypatch):
        """Per-job deadlines start at submission, so submission must
        mean a worker picks the job up immediately: with more pending
        jobs than workers, the executor may never queue more futures
        than the pool has workers, or queued (healthy) jobs would burn
        their timeout budget waiting for a slot."""
        import threading

        from repro.parallel import executor

        # Six one-job tasks: batching would collapse the six jobs into
        # two tasks, leaving the slot bound nothing to push against.
        monkeypatch.setenv("REPRO_BATCH", "0")

        lock = threading.Lock()
        outstanding = set()
        peaks = []
        real_get_pool = executor._get_pool

        class TrackingPool:
            def __init__(self, pool):
                self._pool = pool

            def submit(self, fn, *args, **kwargs):
                future = self._pool.submit(fn, *args, **kwargs)
                with lock:
                    outstanding.add(future)
                    peaks.append(len(outstanding))

                def done(f):
                    with lock:
                        outstanding.discard(f)

                future.add_done_callback(done)
                return future

        monkeypatch.setattr(
            executor, "_get_pool",
            lambda workers: TrackingPool(real_get_pool(workers)))
        jobs = parallel.make_jobs([(workload, key)
                                   for workload in ("Kafka", "NodeApp")
                                   for key in KEYS])
        by_job = parallel.run_jobs(jobs, max_workers=2)
        assert set(by_job) == set(jobs)
        assert peaks and max(peaks) <= 2

    def test_pool_grows_for_larger_batches(self, isolated_caches):
        """A first small batch must not pin the pool size: once its
        futures drain, a later larger batch gets a larger pool."""
        from repro.parallel import executor

        small = parallel.make_jobs([("Kafka", "bimodal"),
                                    ("Kafka", "gshare")])
        parallel.run_jobs(small, max_workers=2)
        assert executor._pool_workers == 2

        big = parallel.make_jobs([("NodeApp", key) for key in KEYS])
        parallel.run_jobs(big, max_workers=3)
        assert executor._pool_workers == 3


class TestBatching:
    """Shared-trace task grouping (the REPRO_BATCH knob)."""

    def test_jobs_group_by_workload_and_budget(self):
        from repro.parallel import executor

        jobs = [
            parallel.SimJob("Kafka", "bimodal", 100),
            parallel.SimJob("NodeApp", "bimodal", 100),
            parallel.SimJob("Kafka", "gshare", 100),
            parallel.SimJob("Kafka", "bimodal", 200),  # other budget
        ]
        tasks = executor._make_tasks(jobs)
        assert [[j.key for j in t.jobs] for t in tasks] == [
            ["bimodal", "gshare"], ["bimodal"], ["bimodal"]]
        assert [(t.workload, t.instructions) for t in tasks] == [
            ("Kafka", 100), ("NodeApp", 100), ("Kafka", 200)]

    def test_disabled_by_env(self, monkeypatch):
        from repro.parallel import executor

        monkeypatch.setenv("REPRO_BATCH", "0")
        assert not parallel.batching_enabled()
        jobs = parallel.make_jobs([("Kafka", key) for key in KEYS],
                                  instructions=100)
        tasks = executor._make_tasks(jobs)
        assert [t.jobs for t in tasks] == [(job,) for job in jobs]

    def test_batched_run_matches_serial(self, isolated_caches, monkeypatch):
        """The whole point: one decode pass per workload must be
        bit-identical to the per-job path, end to end."""
        jobs = parallel.make_jobs([(workload, key)
                                   for workload in ("Kafka", "NodeApp")
                                   for key in KEYS])
        by_job = parallel.run_jobs(jobs, max_workers=2)

        monkeypatch.setenv("REPRO_BATCH", "0")
        monkeypatch.setenv("REPRO_RESULT_CACHE", "0")
        runner.clear_memory_cache()
        for job in jobs:
            serial = runner.get_result(job.workload, job.key,
                                       job.instructions)
            assert serial == by_job[job]

    def test_serial_fallback_batches_too(self, isolated_caches, monkeypatch):
        """-j 1 still decodes each workload trace once per group."""
        calls = []
        real = runner.run_batch

        def counting(workload, keys, instructions=None):
            calls.append((workload, tuple(keys)))
            return real(workload, keys, instructions)

        monkeypatch.setattr(runner, "run_batch", counting)
        jobs = parallel.make_jobs([("Kafka", key) for key in KEYS])
        by_job = parallel.run_jobs(jobs, max_workers=1)
        assert calls == [("Kafka", KEYS)]
        assert set(by_job) == set(jobs)


class TestRunMany:
    def test_run_many_matches_get_result(self, isolated_caches):
        pairs = [("Kafka", "bimodal"), ("Kafka", "gshare")]
        results = runner.run_many(pairs, max_workers=1)
        assert set(results) == set(pairs)
        for workload, key in pairs:
            assert results[(workload, key)] == runner.get_result(workload, key)
