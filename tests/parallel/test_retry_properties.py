"""Property tests for the fault-tolerance layer.

Three families, one per load-bearing invariant:

* backoff delays are **bounded** by ``max_delay`` and **monotone
  non-decreasing** across attempts, jitter included — a retry storm can
  neither sleep unboundedly nor retry *faster* as things get worse;
* the checkpoint journal **round-trips arbitrary job keys** (workload
  and predictor-key strings are user input: commas, colons, unicode,
  newlines all survive the JSONL encoding);
* **resume ∘ crash-at-any-job == uninterrupted run**: crashing after
  any prefix of jobs and resuming executes each job exactly once
  overall and completes the same set.
"""

from __future__ import annotations

import pytest

pytest.importorskip("hypothesis")

from hypothesis import given, strategies as st  # noqa: E402

from repro.experiments.journal import RunJournal  # noqa: E402
from repro.parallel.retry import RetryPolicy, backoff_delay  # noqa: E402

# -- backoff -----------------------------------------------------------

policies = st.builds(
    RetryPolicy,
    max_attempts=st.integers(1, 20),
    base_delay=st.floats(0.0, 10.0, allow_nan=False),
    max_delay=st.floats(0.0, 120.0, allow_nan=False),
    jitter=st.floats(-1.0, 3.0, allow_nan=False),  # clamped internally
)

keys = st.one_of(st.text(max_size=30),
                 st.tuples(st.text(max_size=10), st.text(max_size=10),
                           st.integers(0, 10**9)))


class TestBackoffProperties:
    @given(policy=policies, key=keys, attempt=st.integers(1, 40))
    def test_bounded(self, policy, key, attempt):
        delay = backoff_delay(attempt, policy, key=key)
        assert 0.0 <= delay <= policy.max_delay

    @given(policy=policies, key=keys)
    def test_monotone_non_decreasing(self, policy, key):
        delays = [backoff_delay(attempt, policy, key=key)
                  for attempt in range(1, 16)]
        assert delays == sorted(delays)

    @given(policy=policies, key=keys, attempt=st.integers(1, 40))
    def test_deterministic_per_key_and_attempt(self, policy, key, attempt):
        assert (backoff_delay(attempt, policy, key=key)
                == backoff_delay(attempt, policy, key=key))

    def test_rejects_attempt_zero(self):
        with pytest.raises(ValueError):
            backoff_delay(0, RetryPolicy())


# -- journal round-trip ------------------------------------------------

job_keys = st.tuples(
    st.text(min_size=1, max_size=40),   # workload (arbitrary text)
    st.text(min_size=1, max_size=60),   # predictor key (commas, colons…)
    st.integers(1, 10**12),             # instructions
)
digests = st.text(min_size=1, max_size=64)


class TestJournalRoundTrip:
    @given(entries=st.dictionaries(job_keys, digests, max_size=25))
    def test_record_then_reload_preserves_everything(self, entries,
                                                     tmp_path_factory):
        path = tmp_path_factory.mktemp("journal") / "journal.jsonl"
        with RunJournal.open(path, resume=False) as journal:
            for job, digest in entries.items():
                journal.record(job, digest)
            assert journal.completed() == set(entries)

        with RunJournal.open(path, resume=True) as reloaded:
            assert reloaded.completed() == set(entries)
            for job, digest in entries.items():
                assert job in reloaded
                assert reloaded.digest(job) == digest

    @given(job=job_keys, first=digests, second=digests)
    def test_last_digest_wins(self, job, first, second, tmp_path_factory):
        path = tmp_path_factory.mktemp("journal") / "journal.jsonl"
        with RunJournal.open(path, resume=False) as journal:
            journal.record(job, first)
            journal.record(job, second)
        with RunJournal.open(path, resume=True) as reloaded:
            assert reloaded.digest(job) == second


# -- resume ∘ crash == uninterrupted run -------------------------------


class _Crash(Exception):
    pass


def _journalled_run(jobs, journal, crash_after=None):
    """A minimal journal-driven executor: skip completed, record the
    rest, optionally crash once ``crash_after`` jobs have executed."""
    executed = []
    for job in jobs:
        if job in journal:
            continue
        if crash_after is not None and len(executed) >= crash_after:
            raise _Crash
        executed.append(job)
        journal.record(job, digest=f"digest-of-{job}")
    return executed


class TestCrashResumeEquivalence:
    @given(jobs=st.lists(job_keys, unique=True, max_size=15),
           data=st.data())
    def test_resume_after_crash_executes_each_job_exactly_once(
            self, jobs, data, tmp_path_factory):
        path = tmp_path_factory.mktemp("journal") / "journal.jsonl"

        # Uninterrupted baseline: every job runs, in order.
        with RunJournal.open(path, resume=False) as journal:
            baseline = _journalled_run(jobs, journal)
        assert baseline == jobs

        # Crash after an arbitrary number of completed jobs…
        crash_after = data.draw(st.integers(0, len(jobs)),
                                label="crash_after")
        with RunJournal.open(path, resume=False) as journal:
            try:
                first = _journalled_run(jobs, journal, crash_after)
            except _Crash:
                first = jobs[:crash_after]

        # …then resume: only the unfinished tail runs, nothing twice,
        # and the union equals the uninterrupted run.
        with RunJournal.open(path, resume=True) as journal:
            second = _journalled_run(jobs, journal)
            assert first + second == baseline
            assert journal.completed() == set(baseline)
