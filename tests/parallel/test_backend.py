"""Execution backends: local refactor parity, TCP protocol, env knobs.

Three groups of promises:

1. **LocalBackend is a pure refactor** — run_jobs through the default
   backend is byte-identical to the historical pool path (the executor
   suite pins the pool mechanics; here we pin selection + fallback).
2. **TCPBackend computes the same bytes elsewhere** — a loopback worker
   fleet returns digest-verified results identical to serial, shares
   traces through the content-addressed store (zero bytes when warm),
   and survives worker churn.
3. **Configuration travels** — the satellite-1 audit: ``REPRO_ENGINE``,
   ``REPRO_BATCH``, ``REPRO_TRACE_STORE`` and ``REPRO_RESULT_CACHE``
   reach pool workers (environment inheritance at fork) *and* TCP
   workers (explicit task-envelope propagation), parametrized over the
   knob list.

TCP tests spawn real worker subprocesses, so they carry the
``distributed`` marker and a dedicated CI leg runs them; they still
run in the default suite (loopback, small budgets).
"""

from __future__ import annotations

import os
import socket
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro import parallel, telemetry
from repro.experiments import runner
from repro.experiments.journal import result_digest
from repro.parallel import backend as backend_mod
from repro.parallel import executor, faults
from repro.parallel.backend import ENV_PROPAGATED, BackendBroken
from repro.parallel.backend.local import LocalBackend
from repro.parallel.backend.tcp import TCPBackend
from repro.parallel.retry import RetryPolicy

FAST = dict(max_attempts=3, base_delay=0.01, max_delay=0.05, jitter=0.5)

#: The satellite-1 audit list: every knob a worker needs to compute the
#: submitter's configuration, not its own.
KNOBS = ("REPRO_ENGINE", "REPRO_BATCH", "REPRO_TRACE_STORE",
         "REPRO_RESULT_CACHE")


@pytest.fixture(autouse=True)
def backend_env(isolated_caches, monkeypatch):
    """Never inherit a backend selection from the outer environment."""
    monkeypatch.delenv("REPRO_BACKEND", raising=False)
    monkeypatch.delenv("REPRO_BACKEND_WORKERS", raising=False)
    monkeypatch.delenv("REPRO_BACKEND_GRACE", raising=False)
    faults.reset()
    yield
    faults.reset()
    parallel.shutdown()
    telemetry.reset()


def _jobs(pairs=(("Kafka", "bimodal"), ("Kafka", "gshare"))):
    return parallel.make_jobs(list(pairs))


def _digests(by_job):
    return {job: result_digest(result) for job, result in by_job.items()}


def _serial_digests(jobs, monkeypatch):
    monkeypatch.setenv("REPRO_RESULT_CACHE", "0")
    runner.clear_memory_cache()
    digests = {job: result_digest(
        runner.get_result(job.workload, job.key, job.instructions))
        for job in jobs}
    monkeypatch.delenv("REPRO_RESULT_CACHE")
    runner.clear_memory_cache()
    return digests


class TestSelection:
    def test_create_local_is_none(self):
        assert backend_mod.create("local", 2) is None
        assert backend_mod.create("", 2) is None

    def test_create_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown backend"):
            backend_mod.create("carrier-pigeon", 2)

    def test_unknown_env_backend_falls_back_to_local(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "carrier-pigeon")
        with pytest.warns(RuntimeWarning, match="falling back to local"):
            by_job = parallel.run_jobs(_jobs(), max_workers=2,
                                       policy=RetryPolicy(**FAST))
        assert len(by_job) == 2

    def test_bad_worker_spec_is_backend_broken(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND_WORKERS", "-3")
        with pytest.raises(BackendBroken):
            TCPBackend.from_env(default_spawn=1)

    def test_local_backend_reports_its_workers(self):
        backend = LocalBackend(3)
        assert backend.workers() == 3
        assert backend.name == "local"
        assert backend.evict(object()) is False  # always a full rebuild


class TestLocalParity:
    def test_default_backend_is_byte_identical_to_serial(self, monkeypatch):
        jobs = _jobs()
        by_job = parallel.run_jobs(jobs, max_workers=2,
                                   policy=RetryPolicy(**FAST))
        assert _digests(by_job) == _serial_digests(jobs, monkeypatch)

    def test_explicit_local_name_matches_default(self, monkeypatch):
        jobs = _jobs()
        first = parallel.run_jobs(jobs, max_workers=2, backend="local",
                                  policy=RetryPolicy(**FAST))
        assert _digests(first) == _serial_digests(jobs, monkeypatch)


@pytest.mark.distributed
class TestTCPBackend:
    def test_loopback_fleet_is_byte_identical_to_serial(self, monkeypatch):
        jobs = _jobs((("Kafka", "bimodal"), ("Kafka", "gshare"),
                      ("Kafka", "tsl64")))
        serial = _serial_digests(jobs, monkeypatch)
        backend = TCPBackend(spawn=2)
        try:
            by_job = parallel.run_jobs(jobs, backend=backend,
                                       policy=RetryPolicy(**FAST))
        finally:
            backend.close()
        assert _digests(by_job) == serial

    def test_env_selection_spawns_loopback_workers(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "tcp")
        monkeypatch.setenv("REPRO_BACKEND_WORKERS", "2")
        jobs = _jobs()
        by_job = parallel.run_jobs(jobs, policy=RetryPolicy(**FAST))
        assert _digests(by_job) == _serial_digests(jobs, monkeypatch)

    def test_warm_worker_transfers_zero_trace_bytes(self, tmp_path,
                                                    monkeypatch):
        """Trace bytes cross the socket once per (workload, budget) —
        the second task resolves from the worker's now-warm store."""
        directory = tmp_path / "tcp-telemetry"
        monkeypatch.setenv("REPRO_TELEMETRY", str(directory))
        telemetry.reset()
        backend = TCPBackend(spawn=1)
        try:
            parallel.run_jobs(_jobs((("Kafka", "bimodal"),)) +
                              _jobs((("Kafka", "gshare"),)),
                              backend=backend, policy=RetryPolicy(**FAST))
        finally:
            backend.close()
        telemetry.reset()
        events = telemetry.load_events(directory)
        fetches = [e for e in events if e["event"] == "backend.trace_fetch"]
        # REPRO_BATCH defaults on, so both jobs ride one task; force the
        # point with the dispatch count: >=1 dispatch, exactly <=1 fetch.
        assert len(fetches) <= 1
        done = [e for e in events if e["event"] == "backend.task_done"]
        assert done and done[-1]["bytes"] == 0 or len(done) == 1

    def test_worker_join_and_leave_events(self, tmp_path, monkeypatch):
        directory = tmp_path / "tcp-telemetry"
        monkeypatch.setenv("REPRO_TELEMETRY", str(directory))
        telemetry.reset()
        backend = TCPBackend(spawn=2)
        try:
            assert backend.wait_for_workers(2, timeout=30.0)
        finally:
            backend.close()
            telemetry.reset()
        events = telemetry.load_events(directory)
        joins = [e for e in events if e["event"] == "backend.worker_join"]
        leaves = [e for e in events if e["event"] == "backend.worker_leave"]
        assert len(joins) == 2
        assert len(leaves) == 2

    def test_dial_out_to_listening_worker(self, tmp_path, monkeypatch):
        """The multi-host shape: a --listen worker with its *own* cache
        directory serves a submitter that dials it; the trace travels
        over the socket into the worker's store."""
        worker_cache = tmp_path / "worker-cache"
        env = dict(os.environ)
        env["REPRO_CACHE_DIR"] = str(worker_cache)
        src_root = Path(executor.__file__).resolve().parents[2]
        env["PYTHONPATH"] = str(src_root)
        with socket.create_server(("127.0.0.1", 0)) as probe:
            port = probe.getsockname()[1]
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.worker", "--listen", str(port),
             "127.0.0.1"], env=env, stdin=subprocess.DEVNULL,
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT)
        try:
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                try:
                    socket.create_connection(("127.0.0.1", port),
                                             timeout=0.2).close()
                    break
                except OSError:
                    time.sleep(0.1)
            jobs = _jobs()
            serial = _serial_digests(jobs, monkeypatch)
            backend = TCPBackend(connect=[f"127.0.0.1:{port}"])
            try:
                by_job = parallel.run_jobs(jobs, backend=backend,
                                           policy=RetryPolicy(**FAST))
            finally:
                backend.close()
            assert _digests(by_job) == serial
            # The worker really used its own store: the trace landed
            # under its private cache directory, fetched over the wire.
            assert list((worker_cache / "traces").glob("*.rpt"))
        finally:
            proc.terminate()
            try:
                proc.wait(timeout=10.0)
            except subprocess.TimeoutExpired:
                proc.kill()

    def test_all_workers_dead_degrades_to_local(self, monkeypatch):
        """drop@ kills the only worker; past the grace window the batch
        must finish on the local pool with correct results."""
        monkeypatch.setenv("REPRO_BATCH", "0")
        monkeypatch.setenv("REPRO_BACKEND_GRACE", "0.5")
        faults.install("drop@0")
        jobs = _jobs()
        serial = _serial_digests(jobs, monkeypatch)
        faults.install("drop@0")  # reinstall: serial baseline used none
        backend = TCPBackend(spawn=1, grace=0.5)
        try:
            with pytest.warns(RuntimeWarning, match="degraded to local"):
                by_job = parallel.run_jobs(jobs, backend=backend,
                                           policy=RetryPolicy(**FAST))
        finally:
            backend.close()
        assert _digests(by_job) == serial


class TestEnvPropagationPool:
    """Satellite 1, pool half: knobs reach ProcessPool workers.

    Pool workers inherit the parent's environment at fork, so setting a
    knob before the first submission must be visible inside the worker.
    """

    @pytest.mark.parametrize("knob", KNOBS)
    def test_knob_reaches_pool_worker(self, knob, monkeypatch):
        monkeypatch.setenv(knob, "probe-value")
        parallel.shutdown()  # a fresh pool, forked under this env
        with executor._lock:
            pool = executor._get_pool(1)
        try:
            seen = pool.submit(backend_mod._probe_env, [knob]).result(
                timeout=60)
        finally:
            parallel.shutdown()
        assert seen == {knob: "probe-value"}


@pytest.mark.distributed
class TestEnvPropagationTCP:
    """Satellite 1, TCP half: knobs travel in the task envelope.

    The probe carries the submitter's values exactly as a task envelope
    does and the worker reports back what it sees after applying them —
    so this passes only if envelope propagation works, regardless of
    what environment the worker process started with.
    """

    @pytest.mark.parametrize("knob", KNOBS)
    def test_knob_reaches_tcp_worker(self, knob, monkeypatch):
        backend = TCPBackend(spawn=1)
        try:
            monkeypatch.setenv(knob, "envelope-value")
            seen = backend.probe_env([knob])
            assert seen == {knob: "envelope-value"}
            # And unsetting propagates too (None -> pop on the worker).
            monkeypatch.delenv(knob)
            seen = backend.probe_env([knob])
            assert seen == {knob: None}
        finally:
            backend.close()

    def test_envelope_lists_exactly_the_audited_knobs(self):
        """The audit list is the propagated list (plus the chaos hang
        knob, which rides along for deterministic remote faults)."""
        assert set(KNOBS) <= set(ENV_PROPAGATED)
        captured = backend_mod.capture_env()
        assert set(captured) == set(ENV_PROPAGATED)
