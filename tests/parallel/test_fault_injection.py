"""Chaos suite: every failure path the executor claims to survive.

Each test forces a specific failure through the deterministic fault
hook (:mod:`repro.parallel.faults`) — an attempt that raises, a worker
that hangs past the per-job timeout, a worker SIGKILLed mid-job — and
asserts the two promises the fault-tolerance layer makes:

1. the batch still completes, with results **bit-identical** to a
   clean serial run (recovery changes where/when a simulation runs,
   never what it computes);
2. telemetry accounts for every recovery (``parallel.retry`` /
   ``.timeout`` / ``.pool_rebuild`` / ``.degraded`` events), so a bumpy
   run is visible in ``scripts/report.py`` output.
"""

from __future__ import annotations

import pytest

from repro import parallel, telemetry
from repro.experiments import runner
from repro.parallel import faults
from repro.parallel.retry import RetryPolicy

KEYS = ("bimodal", "gshare", "tsl64")

#: Fast backoff so a retry storm costs milliseconds, not the defaults.
FAST = dict(max_attempts=3, base_delay=0.01, max_delay=0.05, jitter=0.5)


@pytest.fixture(autouse=True)
def chaos_env(isolated_caches, tmp_path, monkeypatch):
    """Telemetry on, hangs bounded, plan/pool state reset around each test.

    Yields the telemetry directory: events must be read back from the
    merged per-process JSONL files, because fault and per-job events are
    emitted inside pool workers, not the parent.
    """
    directory = tmp_path / "telemetry"
    monkeypatch.setenv("REPRO_TELEMETRY", str(directory))
    monkeypatch.setenv("REPRO_FAULT_HANG_SECONDS", "45")
    # Fault-plan indices below refer to individual jobs in dispatch
    # order, the pre-batching granularity; shared-trace batching (which
    # makes the *task* the dispatch unit) has its own chaos class.
    monkeypatch.setenv("REPRO_BATCH", "0")
    faults.reset()
    yield directory
    faults.reset()
    parallel.shutdown()
    telemetry.reset()


@pytest.fixture
def events(chaos_env):
    def _load(name):
        return [e for e in telemetry.load_events(chaos_env)
                if e["event"] == name]

    return _load


def _jobs(keys=KEYS):
    return parallel.make_jobs([("Kafka", key) for key in keys])


def _assert_matches_clean_serial(by_job, monkeypatch):
    """Recompute serially with caching off; nothing a worker (or a
    faulty attempt) wrote may leak into the comparison baseline."""
    monkeypatch.setenv("REPRO_RESULT_CACHE", "0")
    runner.clear_memory_cache()
    for job, result in by_job.items():
        clean = runner.get_result(job.workload, job.key, job.instructions)
        assert clean == result, f"recovered result diverged for {job}"


class TestRaiseFault:
    def test_retried_and_bit_identical(self, events, monkeypatch):
        faults.install("raise@0")
        by_job = parallel.run_jobs(_jobs(), max_workers=2,
                                   policy=RetryPolicy(**FAST))
        retries = events("parallel.retry")
        assert any(e["error"] == "FaultInjected" for e in retries)
        assert len(events("parallel.fault")) == 1
        _assert_matches_clean_serial(by_job, monkeypatch)

    def test_serial_path_retries_too(self, events, monkeypatch):
        """-j 1 (no pool) runs the same retry policy in-process."""
        faults.install("raise@1")
        by_job = parallel.run_jobs(_jobs(), max_workers=1,
                                   policy=RetryPolicy(**FAST))
        (retry,) = events("parallel.retry")
        assert retry["where"] == "serial"
        assert retry["attempt"] == 1
        _assert_matches_clean_serial(by_job, monkeypatch)

    def test_exhausted_retries_surface_the_error(self, events):
        faults.install(f"raise@0x{FAST['max_attempts']}")
        with pytest.raises(faults.FaultInjected):
            parallel.run_jobs(_jobs(("bimodal", "gshare")), max_workers=2,
                              policy=RetryPolicy(**FAST))
        assert len(events("parallel.exhausted")) == 1


class TestWorkerKill:
    def test_dead_worker_detected_pool_rebuilt(self, events, monkeypatch):
        """SIGKILL mid-job (an OOM-kill stand-in) must not lose the batch."""
        faults.install("kill@1")
        by_job = parallel.run_jobs(_jobs(), max_workers=2,
                                   policy=RetryPolicy(**FAST))
        assert events("parallel.pool_rebuild")
        kinds = {e["error"] for e in events("parallel.retry")}
        assert "worker_lost" in kinds
        _assert_matches_clean_serial(by_job, monkeypatch)

    def test_irrecoverable_pool_degrades_to_serial(self, events, monkeypatch):
        """Past the rebuild budget the batch finishes in-process."""
        faults.install("kill@0")
        by_job = parallel.run_jobs(
            _jobs(), max_workers=2,
            policy=RetryPolicy(max_pool_rebuilds=0, **FAST))
        (degraded,) = events("parallel.degraded")
        assert degraded["remaining"] >= 1
        _assert_matches_clean_serial(by_job, monkeypatch)


class TestHungWorker:
    def test_timeout_kills_hung_worker_and_retries(self, events, monkeypatch):
        faults.install("hang@0")
        by_job = parallel.run_jobs(_jobs(), max_workers=2,
                                   policy=RetryPolicy(timeout=3.0, **FAST))
        (timeout,) = events("parallel.timeout")
        assert timeout["timeout"] == 3.0
        assert events("parallel.pool_rebuild")
        _assert_matches_clean_serial(by_job, monkeypatch)


class TestBatchedChaos:
    """The failure promises hold when the dispatch unit is a batched
    task: a fault takes down the whole shared-trace pass, and recovery
    must still converge on bit-identical results."""

    def test_raise_retries_whole_task(self, events, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH", "1")
        faults.install("raise@0")  # index 0 = the single Kafka task
        by_job = parallel.run_jobs(_jobs(), max_workers=2,
                                   policy=RetryPolicy(**FAST))
        (retry,) = events("parallel.retry")
        assert retry["error"] == "FaultInjected"
        assert set(retry["key"].split(",")) == set(KEYS)
        _assert_matches_clean_serial(by_job, monkeypatch)

    def test_killed_worker_task_recovers(self, events, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH", "1")
        faults.install("kill@0")
        by_job = parallel.run_jobs(
            parallel.make_jobs([(workload, key)
                                for workload in ("Kafka", "NodeApp")
                                for key in ("bimodal", "gshare")]),
            max_workers=2, policy=RetryPolicy(**FAST))
        assert events("parallel.pool_rebuild")
        assert len(by_job) == 4
        _assert_matches_clean_serial(by_job, monkeypatch)

    def test_batched_task_emits_one_job_event(self, events, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH", "1")
        by_job = parallel.run_jobs(_jobs(), max_workers=2,
                                   policy=RetryPolicy(**FAST))
        (event,) = events("parallel.job")
        assert event["batched"] == len(KEYS)
        assert set(event["key"].split(",")) == set(KEYS)
        assert len(by_job) == len(KEYS)


class TestFig09StyleChaosRun:
    def test_raise_hang_and_kill_across_one_figure_run(self, events, monkeypatch):
        """The acceptance scenario: a fig09-style batch absorbs one of
        each fault kind and still reproduces the clean figure exactly."""
        from repro.experiments import fig09

        # kill first (index 0) so its pool rebuild cannot retroactively
        # swallow the others; the raise and the hang repeat (x2) so they
        # survive a collateral rebuild — a fault is consumed at
        # submission, and the kill can break the pool before a sibling
        # worker applies its share — and deterministically fire.
        faults.install("kill@0,raise@1x2,hang@3x2")
        jobs = parallel.make_jobs(fig09.jobs())
        by_job = parallel.run_jobs(
            jobs, max_workers=2,
            policy=RetryPolicy(timeout=4.0, max_attempts=4,
                               base_delay=0.01, max_delay=0.05))

        injected = {e["mode"] for e in events("parallel.fault")}
        assert injected == {"raise", "hang", "kill"}
        assert events("parallel.timeout"), "hang never hit the timeout"
        assert events("parallel.pool_rebuild")
        assert len(events("parallel.retry")) >= 3
        _assert_matches_clean_serial(by_job, monkeypatch)

        # The recovered batch must also format to the exact clean figure.
        rows = fig09.run()
        assert rows[-1]["workload"] == "Mean"


@pytest.mark.distributed
class TestTCPChaosRun:
    """Satellite 3: the acceptance chaos scenario on the TCP backend.

    ``drop@`` severs a worker's socket mid-task (the distributed
    equivalent of SIGKILL — the submitter sees a dead connection, not an
    error reply) and ``slow@`` stalls one long enough to trip the
    per-job deadline.  Both must be absorbed without burning retry
    attempts on the victim jobs, and the recovered figure must be
    bit-identical to a clean serial run.
    """

    def test_drop_and_slow_across_one_figure_run(self, events, monkeypatch):
        from repro.parallel.backend.tcp import TCPBackend

        # drop first so its free WorkerLost reschedule happens while the
        # second worker still holds the slow job; slow repeats (x2)
        # because the dropped connection may take the in-flight fault
        # share down with it.
        faults.install("drop@0,slow@2x2")
        jobs = _jobs()
        backend = TCPBackend(spawn=2)
        try:
            by_job = parallel.run_jobs(
                jobs, backend=backend,
                policy=RetryPolicy(timeout=4.0, max_attempts=4,
                                   base_delay=0.01, max_delay=0.05))
        finally:
            backend.close()

        assert {e["mode"] for e in events("parallel.fault")} >= {"drop"}
        assert events("parallel.timeout"), "slow never hit the deadline"
        # The dead connection rescheduled as a free worker-loss, not a
        # charged attempt: the run completed within the attempt budget.
        assert events("parallel.worker_lost")
        assert len(by_job) == len(jobs)
        _assert_matches_clean_serial(by_job, monkeypatch)

    def test_fig09_on_tcp_backend_is_bit_identical(self, events, monkeypatch):
        """A fig09-style batch with chaos on the wire still reproduces
        the clean figure exactly — the ISSUE's distributed acceptance
        bar."""
        from repro.experiments import fig09
        from repro.parallel.backend.tcp import TCPBackend

        faults.install("drop@1")
        jobs = parallel.make_jobs(fig09.jobs())
        backend = TCPBackend(spawn=2)
        try:
            by_job = parallel.run_jobs(
                jobs, backend=backend,
                policy=RetryPolicy(timeout=30.0, max_attempts=4,
                                   base_delay=0.01, max_delay=0.05))
        finally:
            backend.close()

        assert len(by_job) == len(jobs)
        _assert_matches_clean_serial(by_job, monkeypatch)

        # The recovered batch must also format to the exact clean figure.
        rows = fig09.run()
        assert rows[-1]["workload"] == "Mean"
