"""Cross-module invariants on real generated traces."""

from repro.predictors.registry import make_predictor
from repro.predictors.presets import tsl_64k
from repro.sim.engine import run_simulation
from repro.traces.stats import compute_stats


def test_per_pc_counts_sum_to_totals(tiny_workload_trace):
    result = run_simulation(tiny_workload_trace, tsl_64k(),
                            collect_per_pc=True)
    assert sum(result.per_pc_mispredictions.values()) == result.mispredictions
    assert sum(result.per_pc_executions.values()) == result.cond_branches
    # Mispredictions never exceed executions per branch.
    for pc, misses in result.per_pc_mispredictions.items():
        assert misses <= result.per_pc_executions[pc]


def test_trace_stats_consistent_with_simulation(tiny_workload_trace):
    stats = compute_stats(tiny_workload_trace)
    result = run_simulation(tiny_workload_trace, tsl_64k(),
                            warmup_instructions=0)
    assert result.cond_branches == stats.num_conditional
    assert result.branches == stats.num_branches
    assert result.instructions == stats.num_instructions


def test_virtualized_llbp_variant(tiny_workload_trace):
    """The §V-A future-work variant: LLBP storage behind L2 latency."""
    dedicated = make_predictor("llbp")
    virtual = make_predictor("llbp:virt")
    assert virtual.config.prefetch_latency_cycles > dedicated.config.prefetch_latency_cycles
    r_ded = run_simulation(tiny_workload_trace, dedicated)
    r_virt = run_simulation(tiny_workload_trace, virtual)
    # Higher fetch latency can only delay pattern availability.
    assert r_virt.extra["llbp_provided"] <= r_ded.extra["llbp_provided"] * 1.05


def test_history_equivalence_across_composites(tiny_workload_trace):
    """The LLBP composite must not disturb the baseline's history: its
    TAGE component sees the same stream as a standalone TSL, so the two
    agree whenever LLBP does not override."""
    standalone = tsl_64k()
    composite = make_predictor("llbp:lat0")

    agree = disagreements = overrides = 0
    for pc, btype, taken_i, target, gap in tiny_workload_trace.iter_tuples():
        taken = taken_i == 1
        if btype == 0:
            a = standalone.predict(pc)
            b = composite.predict(pc)
            if b.overrode or (b.tsl.loop and b.tsl.loop.valid):
                overrides += 1
            elif a.pred == b.pred:
                agree += 1
            else:
                disagreements += 1
            standalone.train(pc, taken, a)
            composite.train(pc, taken, b)
        standalone.update_history(pc, btype, taken, target)
        composite.update_history(pc, btype, taken, target)

    # Training trajectories can drift once LLBP overrides change what
    # TAGE learns, but agreement must dominate.
    assert agree > 10 * max(1, disagreements)
