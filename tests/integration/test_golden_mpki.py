"""Golden-MPKI regression fixtures: catch refactors by value.

Self-equivalence tests (parallel == serial, specialized == reference
loop) cannot catch a change that shifts *both* sides the same way — a
subtle predictor or engine edit that alters every path at once.  This
suite pins the absolute MPKI of all 14 catalog workloads under three
predictors (``gshare``, Bi-Mode, the hashed perceptron, the 64K
TAGE-SC-L baseline, and LLBP) at a small trace length, against
committed JSON fixtures.

The numbers are pure functions of (workload seed, trace length,
predictor construction): integer misprediction counts divided by the
instruction budget, so exact float equality is portable and any drift
is a real behaviour change.  When a change is *intended* (bumping
``RESULTS_VERSION``), regenerate with::

    python -m pytest tests/integration/test_golden_mpki.py --update-golden
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.predictors.registry import make_predictor
from repro.sim.engine import run_simulation
from repro.workloads.catalog import generate_workload, workload_names

GOLDEN_PATH = Path(__file__).parent / "golden_mpki.json"

#: tage_sc_l_64 is the ``tsl64`` runner key.
KEYS = ("gshare", "bimode", "percep", "tsl64", "llbp")

#: Small enough that the full 14x3 matrix simulates in a few seconds,
#: long enough that every predictor is past its cold-start regime.
INSTRUCTIONS = 30_000

#: MPKI is quantized for the fixture so the file stays readable; 1e-6
#: MPKI at this trace length is well below a single misprediction.
DIGITS = 6


def _measure(workload: str) -> dict:
    trace = generate_workload(workload, INSTRUCTIONS)
    return {key: round(run_simulation(trace, make_predictor(key)).mpki,
                       DIGITS)
            for key in KEYS}


def _load_golden() -> dict:
    with open(GOLDEN_PATH) as fh:
        return json.load(fh)


@pytest.fixture(autouse=True)
def _isolated_trace_cache(tmp_path, monkeypatch):
    """Hermetic: golden numbers must not depend on ambient caches."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.delenv("REPRO_INSTRUCTIONS", raising=False)


def test_fixture_covers_full_catalog():
    golden = _load_golden()
    assert sorted(golden) == sorted(workload_names())
    for workload, values in golden.items():
        assert sorted(values) == sorted(KEYS), workload


@pytest.mark.parametrize("workload", workload_names())
def test_golden_mpki(workload, update_golden):
    measured = _measure(workload)
    if update_golden:
        golden = _load_golden() if GOLDEN_PATH.exists() else {}
        golden[workload] = measured
        with open(GOLDEN_PATH, "w") as fh:
            json.dump(golden, fh, indent=2, sort_keys=True)
            fh.write("\n")
        return
    golden = _load_golden()
    assert workload in golden, (
        f"no golden entry for {workload}; regenerate with --update-golden")
    assert measured == golden[workload], (
        f"MPKI drifted for {workload}: measured {measured}, "
        f"golden {golden[workload]}.  If the change is intended, rerun "
        f"with --update-golden and commit the new fixtures.")
