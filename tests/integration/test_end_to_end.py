"""Integration: the paper's qualitative claims must hold end-to-end on a
small-but-real workload trace.

These are the invariants the whole reproduction rests on:

* more capacity never hurts much and infinite capacity helps,
* LLBP lands between the baseline and the big-capacity limit,
* the perfect predictor bounds everything,
* results are bit-deterministic.
"""

import pytest

from repro.llbp.config import LLBPConfig
from repro.llbp.predictor import LLBPTageScL
from repro.predictors.bimodal import Bimodal
from repro.predictors.perfect import PerfectPredictor
from repro.predictors.presets import tage_infinite, tsl_64k, tsl_scaled
from repro.sim.engine import run_simulation
from repro.workloads.catalog import generate_workload


@pytest.fixture(scope="module")
def trace():
    return generate_workload("NodeApp", 250_000, use_cache=False)


@pytest.fixture(scope="module")
def results(trace):
    out = {
        "bimodal": run_simulation(trace, Bimodal()),
        "64k": run_simulation(trace, tsl_64k()),
        "512k": run_simulation(trace, tsl_scaled(8)),
        "inf": run_simulation(trace, tage_infinite()),
        "llbp0": run_simulation(trace, LLBPTageScL(LLBPConfig().zero_latency())),
        "llbp": run_simulation(trace, LLBPTageScL(LLBPConfig())),
        "perfect": run_simulation(trace, PerfectPredictor()),
    }
    return out


def test_tsl_beats_bimodal(results):
    assert results["64k"].mpki < results["bimodal"].mpki * 0.7


def test_capacity_helps(results):
    assert results["512k"].mpki < results["64k"].mpki
    assert results["inf"].mpki < results["64k"].mpki


def test_llbp_improves_baseline(results):
    assert results["llbp0"].mpki < results["64k"].mpki


def test_llbp_between_baseline_and_512k(results):
    """Fig 9's headline shape: 0 < LLBP gain < 512K-TSL gain."""
    llbp_red = results["llbp0"].mpki_reduction_vs(results["64k"])
    big_red = results["512k"].mpki_reduction_vs(results["64k"])
    assert 0 < llbp_red < big_red


def test_timed_llbp_close_to_zero_latency(results):
    """Prefetching must hide most of the access latency (§VII-A)."""
    gap = results["llbp"].mpki - results["llbp0"].mpki
    assert gap < 0.2 * results["64k"].mpki


def test_perfect_is_lower_bound(results):
    assert results["perfect"].mispredictions == 0
    for key in ("bimodal", "64k", "512k", "inf", "llbp"):
        assert results[key].mispredictions > 0


def test_llbp_provides_meaningful_coverage(results):
    extra = results["llbp"].extra
    provided = extra["llbp_provided"] / extra["predictions"]
    assert 0.02 < provided < 0.6  # paper: 14.8%


def test_determinism(trace):
    a = run_simulation(trace, tsl_64k())
    b = run_simulation(trace, tsl_64k())
    assert a.mispredictions == b.mispredictions
