"""Documentation drift pins: the docs must track the code, by test.

Prose can't be asserted, but its load-bearing inventories can: every
``REPRO_*`` environment variable the code reads, every experiment the
CLI registers, every predictor family the registry parses and every
workload stressor kind must appear in the user-facing reference docs
(``EXPERIMENTS.md``, ``docs/API.md``, ``docs/WORKLOADS.md``).  A new
knob without a doc line fails here, in CI, not in a user's terminal.
"""

from __future__ import annotations

import re
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]

#: The user-facing reference documents that together must cover every
#: inventory below.
REFERENCE_DOCS = ("EXPERIMENTS.md", "docs/API.md", "docs/WORKLOADS.md")

_ENV_VAR = re.compile(r"REPRO_[A-Z0-9_]*[A-Z0-9]")


def _reference_text() -> str:
    return "\n".join((REPO / name).read_text() for name in REFERENCE_DOCS)


def _code_env_vars() -> set:
    found = set()
    for root in ("src", "scripts"):
        for path in (REPO / root).rglob("*.py"):
            found.update(_ENV_VAR.findall(path.read_text()))
    return found


def test_every_env_var_is_documented():
    documented = set(_ENV_VAR.findall(_reference_text()))
    missing = _code_env_vars() - documented
    assert not missing, (
        f"REPRO_* variables read by the code but absent from "
        f"{REFERENCE_DOCS}: {sorted(missing)}")


def test_every_experiment_is_documented():
    from repro.experiments.__main__ import _EXPERIMENTS

    text = _reference_text()
    missing = [name for name in _EXPERIMENTS if name not in text]
    assert not missing, (
        f"experiments registered in the CLI but absent from "
        f"{REFERENCE_DOCS}: {missing}")


def test_every_predictor_family_is_documented():
    from repro.predictors import registry

    text = _reference_text()
    missing = [key for key in registry.known_keys() if key not in text]
    missing += [f"{family}:" for family in registry.parameterized_families()
                if f"{family}:" not in text]
    assert not missing, (
        f"registry keys/families absent from {REFERENCE_DOCS}: {missing}")


def test_every_stressor_kind_is_documented():
    from repro.workloads.adversarial import adversarial_names

    text = _reference_text()
    missing = [name for name in adversarial_names() if name not in text]
    assert not missing, (
        f"adversarial stressors absent from {REFERENCE_DOCS}: {missing}")


def test_workloads_doc_is_linked_from_readme():
    readme = (REPO / "README.md").read_text()
    assert "docs/WORKLOADS.md" in readme
