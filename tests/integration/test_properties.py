"""Property-based cross-cutting invariants (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.llbp.pattern import PatternSet
from repro.predictors.bimodal import Bimodal
from repro.predictors.tage import Tage, TageConfig
from repro.sim.engine import run_simulation
from repro.traces.trace import TraceBuilder
from repro.traces.types import BranchType


def random_trace(steps, seed_bits):
    builder = TraceBuilder("prop")
    for i, (pc_pick, bt_pick, taken) in enumerate(steps):
        pc = 0x1000 + 4 * pc_pick
        bt = [BranchType.COND, BranchType.COND, BranchType.CALL,
              BranchType.RET, BranchType.JUMP][bt_pick]
        builder.append(pc, bt, True if bt != BranchType.COND else taken,
                       pc + 16, 1 + (i % 5))
    return builder.build()


steps_strategy = st.lists(
    st.tuples(st.integers(0, 30), st.integers(0, 4), st.booleans()),
    min_size=20, max_size=200,
)


@given(steps_strategy)
@settings(max_examples=25, deadline=None)
def test_engine_counts_are_consistent(steps):
    trace = random_trace(steps, 0)
    result = run_simulation(trace, Bimodal(), warmup_instructions=0,
                            collect_per_pc=True)
    assert result.branches == len(trace)
    assert result.cond_branches == trace.num_conditional
    assert result.mispredictions <= result.cond_branches
    assert sum(result.per_pc_mispredictions.values()) == result.mispredictions
    assert result.instructions == trace.num_instructions


@given(steps_strategy)
@settings(max_examples=15, deadline=None)
def test_tage_is_deterministic_on_any_trace(steps):
    trace = random_trace(steps, 0)
    config = TageConfig(history_lengths=(4, 8, 16), index_bits=5,
                        tag_bits=8, bimodal_index_bits=6)
    a = run_simulation(trace, Tage(config), warmup_instructions=0)
    b = run_simulation(trace, Tage(config), warmup_instructions=0)
    assert a.mispredictions == b.mispredictions


@given(st.lists(st.tuples(st.integers(0, 15), st.integers(0, 0x1FFF),
                          st.booleans()),
                min_size=1, max_size=80))
@settings(max_examples=40)
def test_pattern_set_capacity_and_order(ops):
    """However patterns are allocated, capacity and sort order hold."""
    ps = PatternSet(size=16, bucket_size=4)
    for hash_slot, tag, taken in ops:
        ps.allocate(hash_slot, tag, taken)
        assert ps.num_valid() <= 16
        assert ps.is_sorted()
        # Every valid pattern sits in the bucket its hash slot demands.
        for i in range(16):
            if ps.valid[i]:
                assert ps.hslots[i] // 4 == i // 4
