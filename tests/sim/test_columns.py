"""Precomputed hash/fold columns == the predictors' own rolling hashes.

The array engine's whole premise is that every per-branch hash is a pure
function of the trace stream and the predictor geometry — independent of
table contents, predictions and training.  These properties pin that:

* the vectorised gshare index column equals a scalar replay through the
  real predictor's ``_index``/``update_history``;
* the TAGE/SC column matrix recorded by a *fresh, untrained* predictor
  equals the values a *live, training* simulation computes at every
  conditional branch (captured by instrumenting the compiled ``_match``
  and ``_vote`` cores mid-run);
* ditto for the LLBP slot-tag matrix, wherever the live predictor
  computes slot tags at all.
"""

from __future__ import annotations

import numpy as np
import pytest

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st
except ImportError:  # pragma: no cover - hypothesis is a dev extra
    pytest.skip("hypothesis not installed", allow_module_level=True)

from repro.predictors.gshare import GShare
from repro.predictors.registry import make_predictor
from repro.sim import columns
from repro.sim.engine import run_simulation
from repro.traces.trace import TraceBuilder
from repro.traces.types import BranchType
from repro.workloads.catalog import generate_workload

#: (pc-slot, branch type, taken) tuples; a handful of distinct PCs is
#: enough to drive aliasing in every fold width the predictors use.
branch_lists = st.lists(
    st.tuples(st.integers(0, 7),
              st.sampled_from([BranchType.COND, BranchType.JUMP,
                               BranchType.CALL, BranchType.RET]),
              st.booleans()),
    min_size=1, max_size=120)


def build_trace(branches):
    builder = TraceBuilder("prop")
    for slot, btype, taken in branches:
        pc = 0x4000 + 16 * slot
        builder.append(pc, btype, taken, pc ^ 0x1F0, 3)
    return builder.build()


@given(branch_lists)
def test_gshare_column_matches_scalar_replay(branches):
    trace = build_trace(branches)
    predictor = GShare()
    expected = []
    for pc, btype, taken, target, _gap in trace.iter_tuples():
        if btype == 0:
            expected.append(predictor._index(pc))
        predictor.update_history(pc, btype, taken == 1, target)
    column = columns.gshare_index_column(
        trace, predictor.index_bits, predictor.history_bits)
    assert column.tolist() == expected


@given(branch_lists)
@settings(max_examples=25)
def test_tsl_columns_match_live_simulation(branches):
    """A fresh recorder and a live, training predictor hash identically."""
    trace = build_trace(branches)
    live = make_predictor("tsl64")
    recorded_match, recorded_vote = [], []

    real_match, real_vote = live.tage._match, live.sc._vote

    def spy_match(pcx, path_mix):
        indices, tags, provider, alt = real_match(pcx, path_mix)
        recorded_match.append((list(indices), list(tags)))
        return indices, tags, provider, alt

    def spy_vote(pcx, history):
        indices, vote = real_vote(pcx, history)
        recorded_vote.append(list(indices))
        return indices, vote

    live.tage._match = spy_match
    live.sc._vote = spy_vote
    run_simulation(trace, live, warmup_instructions=0, engine="python")

    cols = columns.tsl_columns(trace, make_predictor("tsl64"))
    num_tables = live.tage.config.num_tables
    assert len(cols) == len(recorded_match) == len(recorded_vote)
    for row, (indices, tags), sc_indices in zip(cols, recorded_match,
                                                recorded_vote):
        assert row[:num_tables].tolist() == indices
        assert row[num_tables:2 * num_tables].tolist() == tags
        assert row[2 * num_tables:].tolist() == sc_indices


def test_llbp_slot_tags_match_live_simulation():
    """Wherever the live LLBP hashes slot tags, the matrix agrees.

    Slot tags are only computed on pattern-buffer hits, so this needs a
    real workload (warm contexts), not a synthetic micro-trace.
    """
    trace = generate_workload("Kafka", 30_000)
    live = make_predictor("llbp")
    row_of_call = {}
    state = {"row": -1}

    real_predict = live.predict
    real_slot_tags = live.compute_slot_tags

    def spy_predict(pc):
        state["row"] += 1
        return real_predict(pc)

    def spy_slot_tags(pc):
        tags = real_slot_tags(pc)
        row_of_call[state["row"]] = list(tags)
        return tags

    live.predict = spy_predict
    live.compute_slot_tags = spy_slot_tags
    run_simulation(trace, live, engine="python")

    _, slot_cols = columns.llbp_columns(trace, make_predictor("llbp"))
    assert len(slot_cols) == state["row"] + 1
    assert row_of_call, "no pattern-buffer hit ever computed slot tags"
    for row, tags in row_of_call.items():
        assert slot_cols[row].tolist() == tags


def test_columns_are_memoised_on_trace_aux():
    trace = generate_workload("Kafka", 30_000)
    predictor = make_predictor("tsl64")
    first = columns.tsl_columns(trace, predictor)
    assert columns.tsl_columns(trace, predictor) is first
    assert columns.tsl_key(predictor) in trace.aux


def test_column_dtype_stays_compact():
    assert columns._column_dtype(12) == np.uint16
    assert columns._column_dtype(16) == np.uint16
    assert columns._column_dtype(17) == np.uint32
