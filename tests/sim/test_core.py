"""Analytic core model."""

import pytest

from repro.sim.core import CoreModel, CoreParams
from repro.sim.results import SimulationResult


def result(instructions=1_000_000, mispredictions=2910):
    return SimulationResult(
        workload="w", predictor="p",
        instructions=instructions, warmup_instructions=0,
        branches=0, cond_branches=0, mispredictions=mispredictions,
    )


def test_paper_calibration_point():
    """~2.9 MPKI must waste ~9% of cycles (Fig 1's average)."""
    model = CoreModel()
    timing = model.timing(result())
    assert 0.07 < timing.wasted_fraction < 0.12


def test_zero_mispredicts_zero_waste():
    timing = CoreModel().timing(result(mispredictions=0))
    assert timing.wasted_fraction == 0.0
    assert timing.cpi == CoreParams().base_cpi


def test_speedup_direction():
    model = CoreModel()
    slow = model.timing(result(mispredictions=5000))
    fast = model.timing(result(mispredictions=1000))
    assert fast.speedup_over(slow) > 1.0
    assert slow.speedup_over(fast) < 1.0


def test_speedup_identity():
    model = CoreModel()
    t = model.timing(result())
    assert t.speedup_over(t) == pytest.approx(1.0)


def test_wasted_fraction_from_mpki_matches_timing():
    model = CoreModel()
    timing = model.timing(result(instructions=1_000_000, mispredictions=2910))
    assert model.wasted_fraction_from_mpki(2.91) == pytest.approx(
        timing.wasted_fraction, rel=1e-6)


def test_counts_validated():
    with pytest.raises(ValueError):
        CoreModel().timing_from_counts(-1, 0)


def test_ipc_cpi_inverse():
    timing = CoreModel().timing(result())
    assert timing.ipc == pytest.approx(1.0 / timing.cpi)


def test_core_params_describe():
    text = CoreParams().describe()
    assert "6-way" in text and "512 ROB" in text
