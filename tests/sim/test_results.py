"""Simulation result records."""

from repro.sim.results import SimulationResult


def make(mispredictions=100, instructions=100_000, cond=20_000):
    return SimulationResult(
        workload="w", predictor="p",
        instructions=instructions, warmup_instructions=0,
        branches=25_000, cond_branches=cond, mispredictions=mispredictions,
    )


def test_mpki():
    assert make(mispredictions=250).mpki == 2.5


def test_mpki_zero_instructions():
    assert make(instructions=0).mpki == 0.0


def test_accuracy():
    assert make(mispredictions=200, cond=20_000).accuracy == 0.99


def test_reduction():
    base = make(mispredictions=1000)
    better = make(mispredictions=900)
    assert better.mpki_reduction_vs(base) == 10.0
    assert base.mpki_reduction_vs(better) < 0


def test_reduction_zero_baseline():
    assert make().mpki_reduction_vs(make(mispredictions=0)) == 0.0


def test_summary_mentions_key_fields():
    text = make().summary()
    assert "w/p" in text and "MPKI" in text
