"""Array engine: bit-identity with the Python oracle, and dispatch.

The array engine (:mod:`repro.sim.array`) is a performance back-end, not
a second implementation of the predictors: it must produce *the same
object* the Python engine produces — every counter, every per-PC dict in
the same insertion order, every ``extra`` entry — and leave the predictor
instance in the same final state (``state_arrays()``).  These tests pin
that equivalence over the full 14-workload catalog for every supported
predictor family, and pin the engine-selection contract
(argument > ``REPRO_ENGINE`` > default, graceful fallback for
unsupported predictors).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import telemetry
from repro.predictors.bimodal import Bimodal
from repro.predictors.registry import make_predictor
from repro.sim import array
from repro.sim.engine import ENGINE_ENV_VAR, resolve_engine, run_simulation
from repro.sim.multi import run_simulation_batch
from repro.workloads.catalog import generate_workload, workload_names

#: The families the array engine supports, by registry key.
KEYS = ("gshare", "bimode", "percep", "tsl64", "llbp")

#: Same budget as the golden-MPKI fixtures: small enough that the full
#: 14x3 matrix stays in test-suite territory, long enough to exercise
#: warmup, allocation churn and the LLBP prefetch machinery.
INSTRUCTIONS = 30_000


def _run_both(trace, key):
    """One Python-engine and one array-engine run with fresh predictors."""
    oracle = make_predictor(key)
    subject = make_predictor(key)
    ref = run_simulation(trace, oracle, collect_per_pc=True,
                         engine="python")
    res = run_simulation(trace, subject, collect_per_pc=True,
                         engine="array")
    return oracle, subject, ref, res


def _assert_identical(ref, res):
    """Full result equality, including per-PC dict insertion order."""
    assert ref == res
    assert list(ref.per_pc_mispredictions.items()) == \
        list(res.per_pc_mispredictions.items())
    assert list(ref.per_pc_executions.items()) == \
        list(res.per_pc_executions.items())
    assert ref.extra == res.extra


def _assert_state_equal(oracle, subject):
    a, b = oracle.state_arrays(), subject.state_arrays()
    assert sorted(a) == sorted(b)
    for name in a:
        assert np.array_equal(a[name], b[name]), name


@pytest.mark.parametrize("workload", workload_names())
def test_bit_identity_full_catalog(workload):
    trace = generate_workload(workload, INSTRUCTIONS)
    for key in KEYS:
        oracle, subject, ref, res = _run_both(trace, key)
        _assert_identical(ref, res)
        _assert_state_equal(oracle, subject)


def test_supported_families():
    for key in KEYS:
        assert array.unsupported_reason(make_predictor(key)) is None
        assert array.supports(make_predictor(key))
    assert not array.supports(Bimodal())
    assert array.unsupported_reason(Bimodal()) is not None


def test_without_per_pc_collection():
    trace = generate_workload("Kafka", INSTRUCTIONS)
    ref = run_simulation(trace, make_predictor("tsl64"), engine="python")
    res = run_simulation(trace, make_predictor("tsl64"), engine="array")
    assert ref == res
    assert res.per_pc_mispredictions == {}
    assert res.per_pc_executions == {}


def test_explicit_warmup_budget():
    trace = generate_workload("Tomcat", INSTRUCTIONS)
    warmup = INSTRUCTIONS // 5
    ref = run_simulation(trace, make_predictor("llbp"), warmup,
                         collect_per_pc=True, engine="python")
    res = run_simulation(trace, make_predictor("llbp"), warmup,
                         collect_per_pc=True, engine="array")
    _assert_identical(ref, res)


def test_unsupported_predictor_raises_in_direct_call():
    trace = generate_workload("Kafka", INSTRUCTIONS)
    with pytest.raises(ValueError, match="array engine cannot"):
        array.run_simulation_array(trace, Bimodal())


class TestEngineSelection:
    def test_default_is_python(self, monkeypatch):
        monkeypatch.delenv(ENGINE_ENV_VAR, raising=False)
        assert resolve_engine() == "python"
        assert resolve_engine(None) == "python"

    def test_env_selects(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV_VAR, "array")
        assert resolve_engine() == "array"

    def test_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV_VAR, "array")
        assert resolve_engine("python") == "python"

    def test_unknown_engine_rejected(self, monkeypatch):
        with pytest.raises(ValueError, match="unknown simulation engine"):
            resolve_engine("fortran")
        monkeypatch.setenv(ENGINE_ENV_VAR, "fortran")
        with pytest.raises(ValueError, match="unknown simulation engine"):
            resolve_engine()

    def test_env_drives_run_simulation(self, monkeypatch):
        trace = generate_workload("Kafka", INSTRUCTIONS)
        ref = run_simulation(trace, make_predictor("gshare"),
                             collect_per_pc=True, engine="python")
        monkeypatch.setenv(ENGINE_ENV_VAR, "array")
        res = run_simulation(trace, make_predictor("gshare"),
                             collect_per_pc=True)
        _assert_identical(ref, res)


def test_unsupported_predictor_falls_back(tmp_path, monkeypatch):
    """``engine="array"`` with an unsupported predictor degrades to the
    Python engine — same answer, plus a ``sim.engine_fallback`` event."""
    trace = generate_workload("Kafka", INSTRUCTIONS)
    ref = run_simulation(trace, Bimodal(), engine="python")
    monkeypatch.setenv("REPRO_TELEMETRY", str(tmp_path / "events"))
    try:
        res = run_simulation(trace, Bimodal(), engine="array")
    finally:
        telemetry.reset()
    assert ref == res
    events = [e for e in telemetry.load_events(tmp_path / "events")
              if e["event"] == "sim.engine_fallback"]
    assert len(events) == 1
    assert events[0]["workload"] == trace.name


def test_batch_matches_serial_python():
    """A batched array run equals member-by-member Python-engine runs."""
    trace = generate_workload("Spring", INSTRUCTIONS)
    refs = [run_simulation(trace, make_predictor(key),
                           collect_per_pc=True, engine="python")
            for key in KEYS]
    results = run_simulation_batch(
        trace, [make_predictor(key) for key in KEYS],
        collect_per_pc=True, engine="array")
    for ref, res in zip(refs, results):
        _assert_identical(ref, res)
