"""L1-I model."""

from repro.sim.icache import InstructionCache, simulate_icache
from repro.traces.trace import TraceBuilder
from repro.traces.types import BranchType


def test_cold_miss_and_next_line_prefetch():
    cache = InstructionCache(size_kib=1, ways=2, line_bytes=64)
    cache.fetch_line(10)
    assert cache.demand_misses == 1
    assert cache.prefetch_fills == 1  # line 11 prefetched
    cache.fetch_line(11)
    assert cache.demand_misses == 1  # prefetch hit


def test_hit_after_fill():
    cache = InstructionCache(size_kib=1, ways=2)
    cache.fetch_line(5)
    misses = cache.demand_misses
    cache.fetch_line(5)
    assert cache.demand_misses == misses


def test_fetch_range_touches_all_lines():
    cache = InstructionCache(size_kib=1, ways=2, line_bytes=64)
    cache.fetch_range(0, 200)  # lines 0..3
    assert cache.demand_misses + cache.prefetch_fills >= 4


def test_capacity_eviction():
    cache = InstructionCache(size_kib=1, ways=1, line_bytes=64)  # 16 lines
    for line in range(0, 64, 16):  # all map to set 0
        cache.fetch_line(line)
    cache.fetch_line(0)
    assert cache.demand_misses >= 4


def test_miss_traffic_bits():
    cache = InstructionCache()
    cache.fetch_line(1)
    assert cache.miss_traffic_bits == (cache.demand_misses + cache.prefetch_fills) * 512


def test_invalid_geometry():
    import pytest

    with pytest.raises(ValueError):
        InstructionCache(size_kib=0)


def make_trace(span=200_000):
    """A trace striding through a large code footprint."""
    builder = TraceBuilder("ic")
    pc = 0x10000
    for i in range(2000):
        pc = 0x10000 + (i * 1024) % span
        builder.append(pc, BranchType.JUMP, True, pc + 64, 8)
    return builder.build()


def test_simulate_icache_reports_traffic():
    result = simulate_icache(make_trace())
    assert result.instructions > 0
    assert result.demand_misses > 0
    assert result.bits_per_instruction > 0


def test_small_footprint_fits():
    builder = TraceBuilder("tiny")
    for i in range(2000):
        builder.append(0x100, BranchType.JUMP, True, 0x140, 4)
    big = simulate_icache(make_trace())
    small = simulate_icache(builder.build())
    assert small.mpki < big.mpki


def test_warmup_excluded():
    trace = make_trace()
    full = simulate_icache(trace)
    late = simulate_icache(trace, warmup_instructions=trace.num_instructions // 2)
    assert late.instructions < full.instructions
    assert late.demand_misses <= full.demand_misses
