"""Trace-driven simulation engine."""

import warnings

import pytest

from repro.predictors.base import BranchPredictor
from repro.predictors.bimodal import Bimodal
from repro.predictors.perfect import PerfectPredictor
from repro.sim.engine import run_simulation, run_simulation_reference
from repro.traces.trace import TraceBuilder
from repro.traces.types import BranchType


def make_trace(n=90, gap=10):
    builder = TraceBuilder("engine")
    for i in range(n):
        builder.append(0x100, BranchType.COND, i % 2 == 0, 0x200, gap)
        builder.append(0x200, BranchType.JUMP, True, 0x300, gap)
    return builder.build()


class CountingPredictor(BranchPredictor):
    name = "counting"

    def __init__(self):
        super().__init__()
        self.predict_calls = 0
        self.train_calls = 0
        self.history_calls = 0
        self.advanced = 0

    def predict(self, pc):
        self.predict_calls += 1
        return True

    def train(self, pc, taken, meta):
        self.train_calls += 1

    def update_history(self, pc, branch_type, taken, target):
        self.history_calls += 1

    def advance(self, instructions):
        self.advanced += instructions


def test_driving_protocol():
    trace = make_trace(n=50)
    predictor = CountingPredictor()
    run_simulation(trace, predictor, warmup_instructions=0)
    assert predictor.predict_calls == 50          # conditionals only
    assert predictor.train_calls == 50
    assert predictor.history_calls == 100         # every branch
    assert predictor.advanced == trace.num_instructions


def test_warmup_excluded_from_measurement():
    trace = make_trace(n=90, gap=10)
    total = trace.num_instructions
    result = run_simulation(trace, CountingPredictor(),
                            warmup_instructions=total // 3)
    assert result.instructions < total
    assert result.instructions + result.warmup_instructions == total
    # CountingPredictor always predicts taken; half the outcomes are False.
    assert abs(result.mispredictions - result.cond_branches / 2) <= 1


def test_default_warmup_is_one_third():
    trace = make_trace(n=90)
    result = run_simulation(trace, CountingPredictor())
    assert abs(result.warmup_instructions - trace.num_instructions / 3) < 25


def test_perfect_predictor_zero_mpki():
    result = run_simulation(make_trace(), PerfectPredictor())
    assert result.mispredictions == 0


def test_per_pc_collection():
    trace = make_trace(n=30)
    result = run_simulation(trace, CountingPredictor(),
                            warmup_instructions=0, collect_per_pc=True)
    assert result.per_pc_executions == {0x100: 30}
    assert result.per_pc_mispredictions == {0x100: 15}


def test_per_pc_disabled_by_default():
    result = run_simulation(make_trace(), CountingPredictor())
    assert result.per_pc_executions == {}


def test_extra_stats_copied():
    predictor = CountingPredictor()
    predictor.stats.bump("custom", 7)
    result = run_simulation(make_trace(), predictor)
    assert result.extra["custom"] == 7


def test_bimodal_end_to_end():
    result = run_simulation(make_trace(), Bimodal(), warmup_instructions=0)
    assert result.cond_branches > 0
    assert 0 <= result.accuracy <= 1


def test_warmup_consuming_whole_trace_warns():
    """Regression: a warmup budget >= the trace length used to yield an
    all-zero result silently; it must now warn that nothing was measured."""
    trace = make_trace(n=20)
    with pytest.warns(RuntimeWarning, match="consumed the entire"):
        result = run_simulation(trace, CountingPredictor(),
                                warmup_instructions=trace.num_instructions)
    assert result.branches == 0
    assert result.cond_branches == 0
    assert result.mispredictions == 0


def test_normal_warmup_does_not_warn():
    trace = make_trace(n=20)
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        run_simulation(trace, CountingPredictor())


@pytest.mark.parametrize("key", [
    "bimodal", "gshare", "tsl64", "llbp", "perfect",
])
def test_specialized_loops_match_reference(tiny_workload_trace, key):
    """The specialized measurement loops are an optimization only: every
    predictor family must produce a bit-identical SimulationResult to the
    generic reference loop, including per-PC counters and extra stats."""
    from repro.predictors.registry import make_predictor

    fast = run_simulation(tiny_workload_trace, make_predictor(key),
                          collect_per_pc=True)
    slow = run_simulation_reference(tiny_workload_trace,
                                    make_predictor(key),
                                    collect_per_pc=True)
    assert fast == slow


def test_specialized_loop_matches_reference_without_per_pc():
    fast = run_simulation(make_trace(), Bimodal())
    slow = run_simulation_reference(make_trace(), Bimodal())
    assert fast == slow
