"""Batched multi-predictor engine: bit-identical to serial simulation.

``run_simulation_batch`` shares the trace decode, the folded-history
registers, and the lookup hashes across members — all of which are pure
functions of the branch stream — so the only acceptable outcome is full
:class:`SimulationResult` equality with N independent
:func:`run_simulation` calls, per-PC dictionaries (and their insertion
order, which the cached JSON bytes depend on) included.
"""

from __future__ import annotations

import pytest

from repro.predictors.registry import make_predictor
from repro.sim.engine import run_simulation
from repro.sim.multi import (
    install_fold_sharing,
    install_lookup_sharing,
    run_simulation_batch,
)

#: The acceptance mix: a non-TAGE member, the TAGE-SC-L baseline, and
#: LLBP (whose internal TSL shares fold geometry with the baseline).
KEYS = ("gshare", "tsl64", "llbp")


def _serial(trace, key):
    return run_simulation(trace, make_predictor(key),
                          collect_per_pc=True)


def _batch(trace, keys):
    return run_simulation_batch(trace, [make_predictor(k) for k in keys],
                                collect_per_pc=True)


class TestBitIdentical:
    def test_acceptance_mix(self, tiny_workload_trace):
        batch = _batch(tiny_workload_trace, KEYS)
        for key, batched in zip(KEYS, batch):
            serial = _serial(tiny_workload_trace, key)
            assert batched == serial, f"batched {key} diverged"
            # Dict equality ignores order, but the cached JSON bytes do
            # not: insertion order must match the serial engine's too.
            assert (list(batched.per_pc_mispredictions)
                    == list(serial.per_pc_mispredictions))
            assert (list(batched.per_pc_executions)
                    == list(serial.per_pc_executions))

    def test_scaled_and_lat0_members(self, tiny_workload_trace):
        """tsl512 shares every fold register with tsl64 (its index folds
        coincide with the (L, 11) tag folds), and llbp:lat0 shares
        geometry with llbp — the heaviest-sharing configurations must
        still match their serial runs exactly."""
        keys = ("tsl64", "tsl512", "llbp", "llbp:lat0")
        batch = _batch(tiny_workload_trace, keys)
        for key, batched in zip(keys, batch):
            assert batched == _serial(tiny_workload_trace, key), key

    def test_perfect_and_bimodal_members(self, pattern_trace):
        keys = ("perfect", "bimodal", "gshare")
        batch = _batch(pattern_trace, keys)
        for key, batched in zip(keys, batch):
            assert batched == _serial(pattern_trace, key), key

    def test_singleton_batch(self, mixed_trace):
        (batched,) = _batch(mixed_trace, ("tsl64",))
        assert batched == _serial(mixed_trace, "tsl64")

    def test_without_per_pc_collection(self, mixed_trace):
        (batched,) = run_simulation_batch(
            mixed_trace, [make_predictor("gshare")])
        serial = run_simulation(mixed_trace, make_predictor("gshare"))
        assert batched == serial
        assert batched.per_pc_executions == {}


class TestBatchContract:
    def test_empty_batch(self, mixed_trace):
        assert run_simulation_batch(mixed_trace, []) == []

    def test_duplicate_instances_rejected(self, mixed_trace):
        predictor = make_predictor("gshare")
        with pytest.raises(ValueError, match="distinct"):
            run_simulation_batch(mixed_trace, [predictor, predictor])

    def test_members_keep_private_state(self, tiny_workload_trace):
        """Two instances of the *same* configuration in one batch must
        behave like two serial runs — sharing covers stream-determined
        values only, never predictor tables."""
        first, second = (make_predictor("tsl64"),
                         make_predictor("tsl64"))
        batch = run_simulation_batch(tiny_workload_trace, [first, second],
                                     collect_per_pc=True)
        serial = _serial(tiny_workload_trace, "tsl64")
        assert batch[0] == serial
        assert batch[1] == serial


class TestSharingInstallers:
    def test_fold_sharing_rewires_duplicate_geometry(self):
        predictors = [make_predictor(k)
                      for k in ("tsl64", "llbp", "gshare")]
        assert install_fold_sharing(predictors) > 0

    def test_fold_sharing_skips_non_stream_driven(self):
        predictors = [make_predictor(k) for k in ("gshare", "bimodal")]
        assert install_fold_sharing(predictors) == 0

    def test_lookup_sharing_groups_identical_geometry(self):
        predictors = [make_predictor(k) for k in ("tsl64", "llbp")]
        # llbp's internal 64K TSL has tsl64's TAGE geometry: one
        # follower match core gets rewired.
        assert install_lookup_sharing(predictors, [0]) == 1

    def test_lookup_sharing_no_group_of_one(self):
        predictors = [make_predictor(k) for k in ("tsl64", "gshare")]
        assert install_lookup_sharing(predictors, [0]) == 0
