"""Guided search: successive halving over the executor/backend layer.

The driver evaluates every config of a search space at a short trace
length, then repeatedly *promotes* only the most promising fraction to
geometrically longer traces until the survivors run at the full budget —
the classic successive-halving bandit, which spends most of the
simulation budget where it matters.  The promotion math lives in pure
functions (:func:`halving_schedule`, :func:`promote`, :func:`shuffled`)
so it is unit-testable without an engine; the driver itself is a thin
loop that turns each rung into :class:`~repro.parallel.SimJob` batches
and hands them to :func:`repro.parallel.run_jobs` — which is what makes
a search parallel, fault-tolerant, cache-aware, journal-resumable and
backend-portable (local pool or TCP worker fleet) for free.

Everything is deterministic in (space, schedule, seed): scores are pure
functions of simulation results, ties break on the key string, and the
seed only shuffles the initial evaluation order.  A re-run — or a
``--resume`` after a crash, or the same search on a TCP fleet —
produces the identical frontier, which the golden-fixture tests assert
byte for byte.
"""

from __future__ import annotations

import dataclasses
import math
import time
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro import telemetry
from repro.common.rng import XorShift32
from repro.parallel import SimJob, run_jobs
from repro.sim.results import SimulationResult


@dataclasses.dataclass(frozen=True)
class Rung:
    """One stage of the halving ladder.

    ``survivors`` is how many configs *enter* this rung (every one of
    them is evaluated here exactly once, on every workload).
    """

    index: int
    instructions: int
    survivors: int


def halving_schedule(num_configs: int, base_instructions: int,
                     full_instructions: int, eta: int = 3,
                     min_survivors: int = 3) -> List[Rung]:
    """The rung ladder for ``num_configs`` configs.

    Instructions grow by ``eta`` per rung from ``base_instructions``,
    with the last rung pinned to exactly ``full_instructions``; entrants
    shrink by ``eta`` per rung but never below ``min_survivors`` (or
    below the field size, when the field is already smaller) — the
    floor is what keeps promotion starvation-free at the tail.

    Invariants (pinned by ``tests/explore/test_halving.py``): rung 0
    admits the whole field; survivor counts are non-increasing;
    instruction budgets are strictly increasing and end at the full
    budget; every (config, rung) pair is evaluated at most once, so
    :func:`schedule_cost` is exact, not an estimate.
    """
    if num_configs < 1:
        raise ValueError("need at least one config")
    if base_instructions < 1 or full_instructions < base_instructions:
        raise ValueError("need 1 <= base_instructions <= full_instructions")
    if eta < 2:
        raise ValueError("eta must be at least 2")
    if min_survivors < 1:
        raise ValueError("min_survivors must be positive")

    budgets = []
    instructions = base_instructions
    while instructions < full_instructions:
        budgets.append(instructions)
        instructions *= eta
    budgets.append(full_instructions)

    floor = min(num_configs, min_survivors)
    rungs = []
    survivors = num_configs
    for index, instructions in enumerate(budgets):
        rungs.append(Rung(index, instructions, survivors))
        survivors = max(floor, math.ceil(survivors / eta))
    return rungs


def schedule_cost(schedule: Sequence[Rung],
                  num_workloads: int = 1) -> int:
    """Total simulated instructions if every rung runs in full."""
    return sum(rung.survivors * rung.instructions * num_workloads
               for rung in schedule)


def promote(scores: Mapping[str, float], count: int) -> List[str]:
    """The ``count`` best configs: lowest score first, ties by key.

    Deterministic for any dict ordering, and starvation-free: a config
    strictly better than some survivor is always promoted, and exactly
    ``min(count, len(scores))`` configs advance.
    """
    ranked = sorted(scores, key=lambda key: (scores[key], key))
    return ranked[:count]


def shuffled(keys: Sequence[str], seed: int) -> List[str]:
    """Deterministic Fisher-Yates shuffle of ``keys`` by ``seed``.

    The shuffle fixes the *evaluation order* (hence which trace batches
    share a dispatch) without affecting scores; the same seed always
    yields the same order on any platform (XorShift32, no ``random``).
    """
    order = list(keys)
    rng = XorShift32(seed or 0x5EED)
    for i in range(len(order) - 1, 0, -1):
        j = rng.next() % (i + 1)
        order[i], order[j] = order[j], order[i]
    return order


def mpki(result: SimulationResult) -> float:
    """Mispredictions per 1000 measured instructions."""
    if result.instructions <= 0:
        return 0.0
    return result.mispredictions / result.instructions * 1000.0


@dataclasses.dataclass(frozen=True)
class Evaluation:
    """One config's scores at the rung it was last evaluated on."""

    key: str
    instructions: int
    per_workload: Mapping[str, float]

    @property
    def mean_mpki(self) -> float:
        return sum(self.per_workload.values()) / len(self.per_workload)


@dataclasses.dataclass(frozen=True)
class SearchOutcome:
    """Everything a search decided and measured, in decision order."""

    keys: Tuple[str, ...]                 # the shuffled starting field
    workloads: Tuple[str, ...]
    schedule: Tuple[Rung, ...]
    seed: int
    #: key -> rung index -> Evaluation, for every rung the key reached.
    trajectory: Mapping[str, Mapping[int, Evaluation]]
    #: configs that ran at the full budget, best mean-MPKI first.
    finalists: Tuple[Evaluation, ...]
    evaluations: int                      # simulations actually requested


def run_search(keys: Sequence[str], workloads: Sequence[str],
               schedule: Sequence[Rung], *, seed: int = 0,
               max_workers: Optional[int] = None, backend=None,
               journal=None, policy=None) -> SearchOutcome:
    """Drive the halving schedule over the executor; returns the outcome.

    ``backend``/``journal``/``policy``/``max_workers`` pass straight
    through to :func:`repro.parallel.run_jobs`, so a search inherits the
    executor's whole contract: results identical to serial simulation,
    retries and degradation on faults, journal-verified resume, and the
    choice of local pool or TCP fleet.
    """
    if not keys:
        raise ValueError("empty search space")
    if not workloads:
        raise ValueError("no workloads to evaluate on")
    if schedule[0].survivors != len(keys):
        raise ValueError("schedule was built for a different field size")

    order = shuffled(keys, seed)
    telemetry.emit("explore.search", configs=len(order),
                   workloads=list(workloads), rungs=len(schedule),
                   seed=seed)

    alive = list(order)
    trajectory: Dict[str, Dict[int, Evaluation]] = {key: {} for key in order}
    evaluations = 0
    scores: Dict[str, float] = {}

    for position, rung in enumerate(schedule):
        start = time.perf_counter()
        jobs = [SimJob(workload, key, rung.instructions)
                for key in alive for workload in workloads]
        evaluations += len(jobs)
        results = run_jobs(jobs, max_workers=max_workers, policy=policy,
                           journal=journal, backend=backend)

        scores = {}
        for key in alive:
            per_workload = {
                workload: mpki(results[SimJob(workload, key,
                                              rung.instructions)])
                for workload in workloads
            }
            evaluation = Evaluation(key, rung.instructions, per_workload)
            trajectory[key][rung.index] = evaluation
            scores[key] = evaluation.mean_mpki
        telemetry.emit("explore.rung", rung=rung.index,
                       instructions=rung.instructions, configs=len(alive),
                       jobs=len(jobs),
                       seconds=round(time.perf_counter() - start, 4))

        if position + 1 < len(schedule):
            survivors = promote(scores, schedule[position + 1].survivors)
            telemetry.emit("explore.promote", rung=rung.index,
                           promoted=len(survivors),
                           dropped=len(alive) - len(survivors))
            alive = survivors

    finalists = tuple(
        trajectory[key][schedule[-1].index]
        for key in promote(scores, len(alive)))
    return SearchOutcome(
        keys=tuple(order), workloads=tuple(workloads),
        schedule=tuple(schedule), seed=seed, trajectory=trajectory,
        finalists=finalists, evaluations=evaluations)
