"""Guided design-space exploration over registry predictor keys.

The paper evaluates one LLBP geometry; this package searches around it.
A declarative :mod:`~repro.explore.space` expands to canonical registry
keys, :mod:`~repro.explore.cost` prices each key's storage statically,
:mod:`~repro.explore.search` runs a successive-halving bandit over the
executor/backend layer (short traces for everyone, full-length runs for
the survivors), and :mod:`~repro.explore.pareto` extracts the
storage/MPKI Pareto front with per-workload winner attribution as a
deterministic JSON artifact.  ``python -m repro.explore`` is the CLI;
the ``smoke`` budget reproduces ``tests/explore/golden_frontier.json``
byte-identically on any engine or backend.
"""

from repro.explore.cost import (
    INFINITE_KEYS,
    llbp_storage_bits,
    storage_cost_bits,
    storage_kib,
    tsl_storage_bits,
)
from repro.explore.pareto import (
    build_artifact,
    pareto_front,
    render_artifact,
    render_frontier_table,
    workload_winners,
)
from repro.explore.search import (
    Evaluation,
    Rung,
    SearchOutcome,
    halving_schedule,
    mpki,
    promote,
    run_search,
    schedule_cost,
    shuffled,
)
from repro.explore.space import (
    SPACES,
    TEMPLATES,
    SearchSpace,
    Template,
    resolve_space,
)

__all__ = [
    "Evaluation",
    "INFINITE_KEYS",
    "Rung",
    "SPACES",
    "SearchOutcome",
    "SearchSpace",
    "TEMPLATES",
    "Template",
    "build_artifact",
    "halving_schedule",
    "llbp_storage_bits",
    "mpki",
    "pareto_front",
    "promote",
    "render_artifact",
    "render_frontier_table",
    "resolve_space",
    "run_search",
    "schedule_cost",
    "shuffled",
    "storage_cost_bits",
    "storage_kib",
    "tsl_storage_bits",
    "workload_winners",
]
