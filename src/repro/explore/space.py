"""Declarative search spaces over registry predictor keys.

A :class:`SearchSpace` is a named list of :class:`Template` objects.  A
template is pure data — a predictor family plus per-axis token
alternatives — and expands to the cross product of its axes, rendered as
registry key strings and canonicalised through
:func:`repro.predictors.registry.canonical_key`.  Working in key space
(rather than config objects) is what lets the explore driver reuse the
whole execution stack unchanged: the result cache, the journal, the
process pool and the TCP backend all already speak keys.

Axis values are raw token *fragments* of the family's suffix grammar,
so one axis value may pin several tokens at once (``"unbucketed,ps=8"``
— the unbucketed flag is what makes the non-default pattern count
legal).  The empty fragment ``""`` means "axis absent" and is how an
axis expresses "default or variant".

Built-in spaces (``SPACES``):

``smoke``
    7 configs (2 TSL scales, 4 LLBP budgets, bimodal anchor) — the
    fixed-seed mini-search gated against ``tests/explore/
    golden_frontier.json`` by ``scripts/bench.py`` and CI.
``tage``
    TAGE geometry: entry scale × table count.
``llbp``
    LLBP backing-storage budget (directory sets × patterns per set) and
    context hashing (window × prefetch distance).
``default``
    ``tage`` + the LLBP capacity sweep + cheap plain anchors.
``full``
    ``default`` plus the LLBP context sweep and the bimode/percep
    geometry sweeps.
``families``
    The PR-10 comparison families (bimode × percep geometries) plus the
    cheap plain anchors.
``baselines``
    Every plain registry key, including the infinite-storage oracles —
    coverage for drift tests and a cheap "just rank the paper configs"
    search.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Dict, List, Tuple

from repro.predictors import registry


@dataclasses.dataclass(frozen=True)
class Template:
    """One family's slice of a search space (pure data).

    ``family`` is either a registry family that takes a token suffix
    (``"tsl"``, ``"llbp"``) with ``axes`` giving per-axis token
    alternatives, or ``"plain"`` with ``keys`` listing plain registry
    keys verbatim.
    """

    name: str
    family: str
    axes: Tuple[Tuple[str, ...], ...] = ()
    keys: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.family == "plain":
            if self.axes or not self.keys:
                raise ValueError(
                    f"template {self.name!r}: plain templates list keys, "
                    "not axes")
        elif self.family in registry.parameterized_families():
            if self.keys or not self.axes:
                raise ValueError(
                    f"template {self.name!r}: {self.family} templates "
                    "list axes, not keys")
        else:
            raise ValueError(
                f"template {self.name!r}: unknown family {self.family!r}")

    def expand(self) -> List[str]:
        """Every config of this template as a canonical registry key.

        Raises ``ValueError``/``KeyError`` (with the template named) if
        any combination renders to a key the registry rejects — a space
        must be well-formed by construction, not at evaluation time.
        """
        if self.family == "plain":
            raw = list(self.keys)
        else:
            raw = []
            for combo in itertools.product(*self.axes):
                suffix = ",".join(fragment for fragment in combo if fragment)
                raw.append(f"{self.family}:{suffix}" if suffix
                           else self.family)
        expanded = []
        for key in raw:
            try:
                expanded.append(registry.canonical_key(key))
            except (KeyError, ValueError) as error:
                raise ValueError(
                    f"template {self.name!r} expands to invalid key "
                    f"{key!r}: {error}") from error
        return expanded


@dataclasses.dataclass(frozen=True)
class SearchSpace:
    """A named collection of templates; expansion dedups canonically."""

    name: str
    templates: Tuple[Template, ...]

    def expand(self) -> List[str]:
        """Unique canonical keys, in first-occurrence order."""
        return list(dict.fromkeys(
            key for template in self.templates for key in template.expand()))


# ---------------------------------------------------------------------------
# Built-in templates.  Kept individually addressable so the drift test can
# assert every registry family is reachable from at least one of them.

TSL_SCALE_SMOKE = Template(
    "tsl-scale-smoke", "tsl",
    axes=(("x=1", "x=4"),))

LLBP_BUDGET_SMOKE = Template(
    "llbp-budget-smoke", "llbp",
    axes=(("cd_bits=8", "cd_bits=9"),
          ("", "unbucketed,ps=8")))

SMOKE_ANCHORS = Template("smoke-anchors", "plain", keys=("bimodal",))

TSL_GEOMETRY = Template(
    "tsl-geometry", "tsl",
    axes=(("x=1", "x=2", "x=4", "x=8", "x=16"),
          ("t=11", "t=16", "t=21")))

LLBP_CAPACITY = Template(
    "llbp-capacity", "llbp",
    # ps != 16 needs the unbucketed flag: the bucketed slot schedule has
    # exactly 16 entries, so the fragments pin both tokens together.
    axes=(("cd_bits=7", "cd_bits=8", "cd_bits=9", "cd_bits=10",
           "cd_bits=11"),
          ("", "unbucketed,ps=8", "unbucketed,ps=32")))

LLBP_CONTEXT = Template(
    "llbp-context", "llbp",
    axes=(("w=4", "w=8", "w=16"),
          ("d=0", "d=4")))

PLAIN_ANCHORS = Template("plain-anchors", "plain",
                         keys=("bimodal", "gshare"))

BIMODE_GEOMETRY = Template(
    "bimode-geometry", "bimode",
    axes=(("c=12", "c=13", "c=14"),
          ("", "d=14", "d=15"),
          ("", "h=10")))

PERCEP_GEOMETRY = Template(
    "percep-geometry", "percep",
    # history must split evenly over tables-1 segments, so the table
    # count and history length are pinned together per fragment.
    axes=(("", "t=4,h=24", "t=12,h=44"),
          ("r=9", "r=10", "r=11")))

BASELINES = Template("baselines", "plain", keys=registry.known_keys())

#: Every built-in template (drift tests iterate this, not SPACES, so a
#: template is covered even if no built-in space currently uses it).
TEMPLATES: Tuple[Template, ...] = (
    TSL_SCALE_SMOKE, LLBP_BUDGET_SMOKE, SMOKE_ANCHORS, TSL_GEOMETRY,
    LLBP_CAPACITY, LLBP_CONTEXT, PLAIN_ANCHORS, BIMODE_GEOMETRY,
    PERCEP_GEOMETRY, BASELINES,
)

SPACES: Dict[str, SearchSpace] = {
    space.name: space for space in (
        SearchSpace("smoke", (TSL_SCALE_SMOKE, LLBP_BUDGET_SMOKE,
                              SMOKE_ANCHORS)),
        SearchSpace("tage", (TSL_GEOMETRY,)),
        SearchSpace("llbp", (LLBP_CAPACITY, LLBP_CONTEXT)),
        SearchSpace("default", (TSL_GEOMETRY, LLBP_CAPACITY,
                                PLAIN_ANCHORS)),
        SearchSpace("full", (TSL_GEOMETRY, LLBP_CAPACITY, LLBP_CONTEXT,
                             PLAIN_ANCHORS, BIMODE_GEOMETRY,
                             PERCEP_GEOMETRY)),
        SearchSpace("families", (BIMODE_GEOMETRY, PERCEP_GEOMETRY,
                                 PLAIN_ANCHORS)),
        SearchSpace("baselines", (BASELINES,)),
    )
}


def resolve_space(spec: str) -> SearchSpace:
    """A built-in space by name, or a ``;``-separated literal key list.

    The separator is ``;`` because ``,`` already separates suffix tokens
    inside a single key (``llbp:cd_bits=10,ps=32``).
    """
    spec = spec.strip()
    if spec in SPACES:
        return SPACES[spec]
    keys = tuple(key.strip() for key in spec.split(";") if key.strip())
    if not keys:
        raise ValueError(
            f"unknown space {spec!r}; built-ins: {', '.join(SPACES)}")
    return SearchSpace("custom", (Template("custom", "plain", keys=keys),))
