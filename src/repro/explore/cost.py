"""Static storage-cost model: registry key → predictor state bits.

The explore harness ranks configs by MPKI *and* storage, so it needs a
cost it can compute for a whole search space without building a single
table.  This module prices a key from its parsed config alone — pure
arithmetic over :class:`~repro.predictors.registry.TslGeometry` and
:class:`~repro.llbp.config.LLBPConfig` — and is pinned against the live
``predictor.storage_bits()`` accounting by ``tests/explore/test_cost.py``
for every family, so the two cannot drift apart silently.

The infinite-storage oracles (``inf-tage``, ``inf-tsl``) price as
``math.inf``: their table state grows with the trace, so no static
number is honest, and ``inf`` keeps them out of every storage-bounded
Pareto front without special-casing.  ``perfect`` prices as 0 — it
holds no state at all.
"""

from __future__ import annotations

import math
from typing import Union

from repro.llbp.config import LLBPConfig
from repro.predictors import registry
from repro.predictors.bimode import BiModeConfig
from repro.predictors.loop import LoopPredictor
from repro.predictors.perceptron import PerceptronConfig
from repro.predictors.presets import tage_config_64k
from repro.predictors.registry import TslGeometry
from repro.predictors.statistical import StatisticalCorrector
from repro.predictors.tage_sc_l import TslConfig

#: Plain keys whose state grows without bound during a run.
INFINITE_KEYS = frozenset({"inf-tage", "inf-tsl"})

#: Cheap table predictors priced by (one-off) instantiation: their
#: constructors build a few thousand counters at most.
_SMALL_FAMILIES = ("bimodal", "gshare", "perfect")


def tsl_storage_bits(geometry: TslGeometry) -> int:
    """Bits of a ``tsl:`` geometry, mirroring ``TageScL.storage_bits``.

    TAGE tagged entries are counter + tag + useful (``Tage.storage_bits``);
    the bimodal fallback is 2 bits per entry; SC and the loop predictor
    are priced by building the (tiny) components themselves, so their
    entry layouts cannot drift from this model.
    """
    base = tage_config_64k()
    extra_bits = geometry.scale.bit_length() - 1
    entry_bits = base.counter_bits + geometry.tag_bits + 1
    tage = (len(registry.tsl_history_lengths(geometry.tables))
            * (1 << (base.index_bits + extra_bits)) * entry_bits)
    bimodal = 2 * (1 << (base.bimodal_index_bits + extra_bits))
    defaults = TslConfig(tage=base)
    sc = StatisticalCorrector(defaults.sc_history_lengths,
                              geometry.sc_index_bits).storage_bits()
    loop = LoopPredictor(defaults.loop_index_bits,
                         defaults.loop_ways).storage_bits()
    return tage + bimodal + sc + loop


def llbp_storage_bits(config: LLBPConfig) -> int:
    """Bits of an LLBP config: baseline TSL + backing storage + CD + PB.

    Mirrors ``LLBPTageScL.storage_bits`` term for term; the backing
    storage, directory and pattern-buffer terms are already pure
    properties on :class:`LLBPConfig`.
    """
    return (tsl_storage_bits(TslGeometry())
            + config.storage_bits
            + config.cd_bits
            + config.pb_entries * config.pattern_set_bits)


def bimode_storage_bits(config: BiModeConfig) -> int:
    """Bits of a ``bimode:`` geometry: choice table + two direction banks.

    Mirrors ``BiModeConfig.storage_bits`` (2-bit counters throughout).
    """
    return (2 * (1 << config.choice_bits)
            + 2 * 2 * (1 << config.direction_bits))


def percep_storage_bits(config: PerceptronConfig) -> int:
    """Bits of a ``percep:`` geometry: ``tables * rows * weight_bits``.

    Mirrors ``PerceptronConfig.storage_bits``; the history register and
    threshold are not table state.
    """
    return config.tables * (1 << config.row_bits) * config.weight_bits


def storage_cost_bits(key: str) -> Union[int, float]:
    """Storage cost of ``key`` in bits, without building the predictor.

    Positive for every bounded table predictor, ``math.inf`` for the
    unbounded oracles, 0 for ``perfect``; deterministic in the key.
    Raises the registry's own errors for keys it cannot parse.
    """
    spec = registry.parse_key(key)
    if spec.family in INFINITE_KEYS:
        return math.inf
    if spec.family == "llbp":
        return llbp_storage_bits(spec.config)
    if spec.family == "tsl":
        return tsl_storage_bits(spec.config)
    if spec.family.startswith("tsl"):
        # Named presets (tsl64 … tsl1m) are pure power-of-two scales.
        scale = {"tsl64": 1, "tsl128": 2, "tsl256": 4, "tsl512": 8,
                 "tsl1m": 16}[spec.family]
        return tsl_storage_bits(TslGeometry(scale=scale))
    if spec.family == "bimode":
        return bimode_storage_bits(spec.config)
    if spec.family == "percep":
        return percep_storage_bits(spec.config)
    if spec.family in _SMALL_FAMILIES:
        return registry.make_predictor(key).storage_bits()
    raise ValueError(f"no storage model for predictor family "
                     f"{spec.family!r}")  # pragma: no cover - catalog drift


def storage_kib(bits: Union[int, float]) -> float:
    """Bits → KiB for human-facing tables (``inf`` passes through)."""
    if math.isinf(bits):
        return math.inf
    return bits / 8192.0
