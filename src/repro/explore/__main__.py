"""Design-space exploration from the command line.

Usage::

    python -m repro.explore [--budget NAME] [--space SPEC] [--seed N]
                            [--workloads W1,W2] [--out FILE]
                            [--check FILE] [--jobs N] [--engine NAME]
                            [--backend NAME] [--workers SPEC]
                            [--resume] [--telemetry [DIR]] [--quiet]

``--budget`` picks how much simulation to spend (``smoke`` / ``short``
/ ``full``); ``--space`` picks what to search — a built-in space name
(see ``repro.explore.space.SPACES``) or a ``;``-separated list of
registry keys.  The search runs a successive-halving schedule through
the standard executor, so ``--jobs`` / ``--engine`` / ``--backend`` /
``--workers`` mean exactly what they do for ``python -m
repro.experiments``, and ``--resume`` continues an interrupted search
from its checkpoint journal (kept at ``explore-journal.jsonl`` next to
the result cache, separate from the experiments journal).

The ``smoke`` budget pins its workloads, trace lengths and search space
regardless of REPRO_WORKLOADS / REPRO_INSTRUCTIONS: it exists to
reproduce ``tests/explore/golden_frontier.json`` byte-identically on
every machine, engine and backend.  ``--out FILE`` writes the JSON
artifact (``-`` for stdout); ``--check FILE`` instead diffs the bytes
the search produced against an existing artifact and fails on any
mismatch — that is the bench/CI gate.
"""

from __future__ import annotations

import argparse
import dataclasses
import os
import sys
from pathlib import Path
from typing import Optional, Tuple

from repro import parallel, telemetry
from repro.experiments import journal as journal_mod
from repro.experiments.common import (
    experiment_instructions,
    experiment_workloads,
)
from repro.explore import pareto, search, space as space_mod
from repro.parallel import backend as backend_mod
from repro.parallel.retry import RetryPolicy
from repro.sim import engine as engine_mod


@dataclasses.dataclass(frozen=True)
class Budget:
    """How much simulation a search may spend, and on what.

    ``workloads`` is ``None`` for "whatever REPRO_WORKLOADS says";
    likewise ``full_instructions``.  The smoke budget pins both (and
    the space) so its frontier is reproducible everywhere.
    """

    name: str
    base_instructions: int
    full_instructions: Optional[int]
    eta: int = 3
    min_survivors: int = 3
    workloads: Optional[Tuple[str, ...]] = None
    space: Optional[str] = None

    def resolve_workloads(self) -> Tuple[str, ...]:
        if self.workloads is not None:
            return self.workloads
        return tuple(experiment_workloads())

    def resolve_full_instructions(self) -> int:
        if self.full_instructions is not None:
            return self.full_instructions
        return max(self.base_instructions, experiment_instructions())


BUDGETS = {
    budget.name: budget for budget in (
        # The golden-fixture budget: everything pinned, ~7-config space.
        Budget("smoke", base_instructions=30_000, full_instructions=90_000,
               workloads=("NodeApp", "Kafka"), space="smoke"),
        # A real mini-search: short traces, env-selected workloads.
        Budget("short", base_instructions=100_000,
               full_instructions=400_000),
        # Full-length promotion runs (REPRO_INSTRUCTIONS at the top rung).
        Budget("full", base_instructions=100_000, full_instructions=None),
    )
}


def journal_path() -> Path:
    """The explore journal, beside (not shared with) the experiments one."""
    return journal_mod.default_path().with_name("explore-journal.jsonl")


def main(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.explore",
        description="Search predictor configurations for the MPKI/storage "
                    "Pareto front.")
    parser.add_argument("--budget", choices=sorted(BUDGETS), default="smoke",
                        help="simulation budget preset (default: smoke, "
                             "the pinned golden-fixture search)")
    parser.add_argument("--space", default=None, metavar="SPEC",
                        help="search space: a built-in name "
                             f"({', '.join(space_mod.SPACES)}) or a "
                             "';'-separated list of registry keys "
                             "(default: the budget's space, else 'default')")
    parser.add_argument("--workloads", default=None, metavar="W1,W2",
                        help="comma-separated workloads to score on "
                             "(default: the budget's pin, else "
                             "REPRO_WORKLOADS)")
    parser.add_argument("--seed", type=int, default=0,
                        help="evaluation-order shuffle seed (default: 0)")
    parser.add_argument("--out", default=None, metavar="FILE",
                        help="write the JSON artifact to FILE ('-' for "
                             "stdout)")
    parser.add_argument("--check", default=None, metavar="FILE",
                        help="diff this search's artifact bytes against "
                             "FILE and exit non-zero on any mismatch")
    parser.add_argument("-j", "--jobs", type=int, default=None,
                        help="worker processes (default: REPRO_JOBS or the "
                             "CPU count; 1 disables the pool)")
    parser.add_argument("--engine", choices=engine_mod.ENGINES, default=None,
                        help="simulation engine (default: REPRO_ENGINE or "
                             "python; engines are bit-identical)")
    parser.add_argument("--backend", choices=("local", "tcp"), default=None,
                        help="execution backend (default: REPRO_BACKEND or "
                             "local)")
    parser.add_argument("--workers", default=None, metavar="SPEC",
                        help="tcp-backend workers: a loopback count or "
                             "host:port list (implies --backend tcp)")
    parser.add_argument("--resume", action="store_true",
                        help="continue an interrupted search from the "
                             "explore checkpoint journal")
    parser.add_argument("--telemetry", nargs="?", const="telemetry",
                        default=None, metavar="DIR",
                        help="record explore.* telemetry as JSONL under "
                             "DIR (default: ./telemetry)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the rendered frontier table")
    args = parser.parse_args(argv)

    if args.telemetry is not None:
        telemetry.configure(args.telemetry)
    if args.engine is not None:
        os.environ[engine_mod.ENGINE_ENV_VAR] = args.engine
    if args.workers is not None:
        os.environ[backend_mod.ENV_WORKERS] = args.workers
        if args.backend is None:
            args.backend = "tcp"
    if args.backend is not None:
        os.environ[backend_mod.ENV_BACKEND] = args.backend

    budget = BUDGETS[args.budget]
    space_spec = args.space or budget.space or "default"
    try:
        search_space = space_mod.resolve_space(space_spec)
        keys = search_space.expand()
    except (KeyError, ValueError) as error:
        print(f"invalid --space {space_spec!r}: {error}", file=sys.stderr)
        return 2
    if args.workloads is not None:
        workloads = tuple(name.strip()
                          for name in args.workloads.split(",")
                          if name.strip())
    else:
        workloads = budget.resolve_workloads()
    if not workloads:
        print("no workloads selected", file=sys.stderr)
        return 2

    schedule = search.halving_schedule(
        len(keys), budget.base_instructions,
        budget.resolve_full_instructions(), eta=budget.eta,
        min_survivors=budget.min_survivors)

    journal = journal_mod.RunJournal.open(journal_path(),
                                          resume=args.resume)
    workers = args.jobs if args.jobs is not None else parallel.default_jobs()
    try:
        with telemetry.phase("explore.run", budget=budget.name,
                             space=search_space.name, configs=len(keys)):
            outcome = search.run_search(
                keys, workloads, schedule, seed=args.seed,
                max_workers=workers, journal=journal,
                policy=RetryPolicy.from_env())
    except KeyboardInterrupt:
        print(f"\ninterrupted — completed simulations are journalled in "
              f"{journal.path};\nresume with: python -m repro.explore "
              f"--resume " + " ".join(argv), file=sys.stderr)
        return 130
    finally:
        parallel.shutdown()
        journal.close()

    artifact = pareto.build_artifact(outcome, search_space.name)
    rendered = pareto.render_artifact(artifact)

    if args.out == "-":
        sys.stdout.write(rendered)
    elif args.out is not None:
        out = Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(rendered)
        print(f"[explore] artifact written to {out}")

    if not args.quiet:
        print(pareto.render_frontier_table(artifact))

    if args.check is not None:
        expected = Path(args.check).read_text()
        if rendered != expected:
            print(f"[explore] FAIL: artifact differs from {args.check}",
                  file=sys.stderr)
            return 1
        print(f"[explore] artifact matches {args.check}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
