"""Pareto-front extraction and the exploration artifact.

A finished search (:class:`~repro.explore.search.SearchOutcome`) scores
every finalist at the full trace budget.  This module turns those
scores into the deliverables: the Pareto front minimising
``(storage_bits, mean MPKI)``, a per-workload winner attribution
("which config wins on Kafka, regardless of the aggregate"), a JSON
artifact, and a fixed-width table for terminals.

The artifact's byte layout is part of the harness contract: the golden
fixture (``tests/explore/golden_frontier.json``) and the ``bench.py``
explore gate compare the rendered bytes, not parsed structures, so the
same search must serialize identically on every platform and backend.
Hence ``json.dumps(..., indent=2, sort_keys=True)`` with a trailing
newline, MPKI values rounded to a fixed precision, and infinite storage
encoded as the string ``"inf"`` (JSON has no Infinity literal).
"""

from __future__ import annotations

import json
import math
from typing import Dict, List, Sequence, Union

from repro.explore.cost import storage_cost_bits, storage_kib
from repro.explore.search import Evaluation, SearchOutcome
from repro.experiments.common import format_table

#: Decimal places kept for MPKI in artifacts — enough that distinct
#: misprediction counts at smoke trace lengths stay distinct, small
#: enough that the repr is stable.
MPKI_DECIMALS = 6


def _encode_bits(bits: Union[int, float]) -> Union[int, str]:
    return "inf" if math.isinf(bits) else int(bits)


def pareto_front(finalists: Sequence[Evaluation]) -> List[Evaluation]:
    """Finalists not dominated in (storage bits, mean MPKI).

    A config is dominated if another is no worse on both axes and
    strictly better on at least one.  The front is returned sorted by
    (storage, MPKI, key) — smallest budget first — and equal-cost
    equal-MPKI duplicates all survive (callers see every witness).
    """
    costed = [(storage_cost_bits(evaluation.key), evaluation)
              for evaluation in finalists]
    front = []
    for bits, evaluation in costed:
        dominated = False
        for other_bits, other in costed:
            if other is evaluation:
                continue
            if (other_bits <= bits and other.mean_mpki <= evaluation.mean_mpki
                    and (other_bits < bits
                         or other.mean_mpki < evaluation.mean_mpki)):
                dominated = True
                break
        if not dominated:
            front.append((bits, evaluation))
    front.sort(key=lambda pair: (pair[0], pair[1].mean_mpki, pair[1].key))
    return [evaluation for _, evaluation in front]


def workload_winners(finalists: Sequence[Evaluation]) -> Dict[str, str]:
    """workload -> key of the finalist with the lowest MPKI there.

    Ties break on the key string, so attribution is deterministic even
    when two configs measure identically on a short trace.
    """
    winners: Dict[str, str] = {}
    workloads = finalists[0].per_workload.keys() if finalists else ()
    for workload in workloads:
        best = min(finalists,
                   key=lambda e: (e.per_workload[workload], e.key))
        winners[workload] = best.key
    return winners


def build_artifact(outcome: SearchOutcome, space: str) -> Dict[str, object]:
    """The exploration result as one JSON-ready dict.

    Deterministic in the search outcome: no timestamps, no paths, no
    environment.  ``frontier`` lists the Pareto-optimal configs in
    budget order; ``finalists`` keeps every full-budget config so the
    artifact also answers "what lost, and by how much".
    """
    front = pareto_front(outcome.finalists)
    on_front = {evaluation.key for evaluation in front}

    def encode(evaluation: Evaluation) -> Dict[str, object]:
        bits = storage_cost_bits(evaluation.key)
        return {
            "key": evaluation.key,
            "storage_bits": _encode_bits(bits),
            "mean_mpki": round(evaluation.mean_mpki, MPKI_DECIMALS),
            "mpki": {workload: round(value, MPKI_DECIMALS)
                     for workload, value in
                     evaluation.per_workload.items()},
            "instructions": evaluation.instructions,
            "pareto": evaluation.key in on_front,
        }

    return {
        "space": space,
        "seed": outcome.seed,
        "workloads": list(outcome.workloads),
        "configs": len(outcome.keys),
        "evaluations": outcome.evaluations,
        "schedule": [{"rung": rung.index,
                      "instructions": rung.instructions,
                      "configs": rung.survivors}
                     for rung in outcome.schedule],
        "frontier": [encode(evaluation) for evaluation in front],
        "finalists": [encode(evaluation)
                      for evaluation in outcome.finalists],
        "winners": workload_winners(outcome.finalists),
    }


def render_artifact(artifact: Dict[str, object]) -> str:
    """The artifact's canonical bytes (what goldens diff against)."""
    return json.dumps(artifact, indent=2, sort_keys=True) + "\n"


def render_frontier_table(artifact: Dict[str, object]) -> str:
    """Human-facing summary: finalists table plus per-workload winners."""
    rows = []
    for entry in artifact["finalists"]:
        bits = (math.inf if entry["storage_bits"] == "inf"
                else entry["storage_bits"])
        row: Dict[str, object] = {
            "config": entry["key"],
            "KiB": storage_kib(bits),
            "mean MPKI": entry["mean_mpki"],
            "pareto": "*" if entry["pareto"] else "",
        }
        for workload, value in entry["mpki"].items():
            row[workload] = value
        rows.append(row)
    columns = ["config", "KiB", "mean MPKI", "pareto"]
    columns += list(artifact["workloads"])
    lines = [format_table(rows, columns)]
    winners = artifact["winners"]
    if winners:
        lines.append("")
        lines.append("per-workload winners:")
        for workload in artifact["workloads"]:
            lines.append(f"  {workload}: {winners[workload]}")
    return "\n".join(lines)
