"""Small statistics helpers shared by the analysis and experiment layers."""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence


def percentile(sorted_values: Sequence[float], p: float) -> float:
    """Nearest-rank percentile ``p`` in [0, 100] of pre-sorted values."""
    if not sorted_values:
        raise ValueError("percentile of empty sequence")
    if not 0 <= p <= 100:
        raise ValueError("percentile must be in [0, 100]")
    rank = max(1, math.ceil(p / 100.0 * len(sorted_values)))
    return sorted_values[rank - 1]


def geomean(values: Iterable[float]) -> float:
    """Geometric mean; all values must be positive."""
    vals = list(values)
    if not vals:
        raise ValueError("geomean of empty sequence")
    if any(v <= 0 for v in vals):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def mean(values: Iterable[float]) -> float:
    vals = list(values)
    if not vals:
        raise ValueError("mean of empty sequence")
    return sum(vals) / len(vals)


def cumulative_fraction(sorted_desc: Sequence[float]) -> List[float]:
    """Cumulative fraction of the total, for descending-sorted values."""
    total = float(sum(sorted_desc))
    if total <= 0:
        return [0.0] * len(sorted_desc)
    out: List[float] = []
    acc = 0.0
    for v in sorted_desc:
        acc += v
        out.append(acc / total)
    return out


def histogram(values: Iterable[int]) -> Dict[int, int]:
    """Count occurrences of each integer value."""
    out: Dict[int, int] = {}
    for v in values:
        out[v] = out.get(v, 0) + 1
    return out


def mpki(mispredictions: int, instructions: int) -> float:
    """Mispredictions per kilo-instruction."""
    if instructions <= 0:
        raise ValueError("instruction count must be positive")
    return 1000.0 * mispredictions / instructions
