"""Saturating counters, the basic state element of branch predictors."""

from __future__ import annotations


class SaturatingCounter:
    """A signed saturating counter in ``[-2**(bits-1), 2**(bits-1) - 1]``.

    The sign encodes the predicted direction (``>= 0`` means taken), the
    magnitude encodes confidence.  This matches TAGE's 3-bit prediction
    counters and LLBP's pattern counters.
    """

    __slots__ = ("value", "lo", "hi")

    def __init__(self, bits: int = 3, value: int = 0) -> None:
        if bits < 1:
            raise ValueError("counter needs at least one bit")
        self.lo = -(1 << (bits - 1))
        self.hi = (1 << (bits - 1)) - 1
        if not self.lo <= value <= self.hi:
            raise ValueError(f"initial value {value} out of range")
        self.value = value

    @property
    def taken(self) -> bool:
        return self.value >= 0

    def update(self, taken: bool) -> None:
        if taken:
            if self.value < self.hi:
                self.value += 1
        elif self.value > self.lo:
            self.value -= 1

    def set_weak(self, taken: bool) -> None:
        """Initialise to the low-confidence value for ``taken``."""
        self.value = 0 if taken else -1

    def is_high_confidence(self) -> bool:
        """True when within one step of saturation (cf. LLBP's CD policy)."""
        return self.value >= self.hi - 1 or self.value <= self.lo + 1

    def is_weak(self) -> bool:
        return self.value in (0, -1)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SaturatingCounter({self.value} in [{self.lo},{self.hi}])"


def ctr_update(value: int, taken: bool, lo: int, hi: int) -> int:
    """Functional form of the saturating update, for hot inner loops."""
    if taken:
        return value + 1 if value < hi else value
    return value - 1 if value > lo else value


class WidthCounter:
    """An unsigned saturating counter in ``[0, 2**bits - 1]``.

    Used for usefulness bits, confidence/age fields and the allocation
    "tick" throttle in TAGE.
    """

    __slots__ = ("value", "hi")

    def __init__(self, bits: int = 2, value: int = 0) -> None:
        if bits < 1:
            raise ValueError("counter needs at least one bit")
        self.hi = (1 << bits) - 1
        if not 0 <= value <= self.hi:
            raise ValueError(f"initial value {value} out of range")
        self.value = value

    def increment(self) -> None:
        if self.value < self.hi:
            self.value += 1

    def decrement(self) -> None:
        if self.value > 0:
            self.value -= 1

    @property
    def saturated(self) -> bool:
        return self.value == self.hi

    def reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"WidthCounter({self.value}/{self.hi})"
