"""Bit-level helpers: history buffers and folded-history registers.

TAGE (and LLBP, which reuses TAGE's pattern-matching machinery) hashes a
branch PC together with the most recent ``L`` bits of global branch
history.  Recomputing that hash from scratch for history lengths of up to
3000 bits on every prediction would be prohibitively slow, so real
implementations maintain *folded* history registers: an ``L``-bit history
compressed into ``width`` bits by XOR-folding, updated incrementally in
O(1) as bits enter and leave the history window.  This module implements
that scheme exactly as described by Michaud's PPM-like predictor and
Seznec's TAGE papers.
"""

from __future__ import annotations


def fold_bits(bits: int, length: int, width: int) -> int:
    """XOR-fold the ``length`` low bits of ``bits`` into ``width`` bits.

    This is the reference (non-incremental) definition of what a
    :class:`FoldedHistory` register holds; it exists mainly so tests can
    cross-check the incremental update against a ground truth.
    """
    if width <= 0:
        return 0
    bits &= (1 << length) - 1  # only the window's bits participate
    mask = (1 << width) - 1
    folded = 0
    pos = 0
    while pos < length:
        folded ^= (bits >> pos) & mask
        pos += width
    return folded & mask


class HistoryBuffer:
    """A fixed-capacity circular buffer of history bits.

    The buffer records the direction of every retired branch (newest bit at
    logical position 0).  Folded registers need to know the bit that *leaves*
    each of their windows on every update, which the buffer provides in O(1).
    """

    __slots__ = ("_bits", "_head", "_capacity", "_count")

    def __init__(self, capacity: int = 8192) -> None:
        if capacity <= 0:
            raise ValueError("history capacity must be positive")
        self._capacity = capacity
        self._bits = [0] * capacity
        self._head = 0  # Index where the *next* bit will be written.
        self._count = 0

    @property
    def capacity(self) -> int:
        return self._capacity

    def __len__(self) -> int:
        return min(self._count, self._capacity)

    def push(self, bit: int) -> None:
        """Record a new (newest) history bit."""
        self._bits[self._head] = bit & 1
        self._head = (self._head + 1) % self._capacity
        self._count += 1

    def bit(self, age: int) -> int:
        """Return the bit that is ``age`` positions old (0 == newest)."""
        if age < 0 or age >= self._capacity:
            raise IndexError(f"history age {age} out of range")
        return self._bits[(self._head - 1 - age) % self._capacity]

    def value(self, length: int) -> int:
        """Return the newest ``length`` bits as an integer (bit 0 newest)."""
        if length > self._capacity:
            raise ValueError("requested more bits than the buffer holds")
        out = 0
        for age in range(length):
            out |= self.bit(age) << age
        return out

    def clear(self) -> None:
        self._bits = [0] * self._capacity
        self._head = 0
        self._count = 0


class FoldedHistory:
    """Incrementally-maintained XOR-fold of an ``length``-bit history window.

    ``update`` must be called exactly once per history bit inserted, with the
    new bit and the bit leaving the window (i.e. the bit that was ``length``
    positions old *before* the insertion).
    """

    __slots__ = ("length", "width", "value", "_out_shift", "_mask")

    def __init__(self, length: int, width: int) -> None:
        if length < 0:
            raise ValueError("length must be non-negative")
        if width <= 0:
            raise ValueError("width must be positive")
        self.length = length
        self.width = width
        self.value = 0
        self._out_shift = length % width
        self._mask = (1 << width) - 1

    def update(self, new_bit: int, old_bit: int) -> None:
        """Shift ``new_bit`` in and cancel ``old_bit`` leaving the window."""
        v = (self.value << 1) | (new_bit & 1)
        # The bit leaving the window was folded in at position length % width.
        v ^= (old_bit & 1) << self._out_shift
        # Fold the bit that overflowed past `width` back to position 0.
        v ^= v >> self.width
        self.value = v & self._mask

    def reset(self) -> None:
        self.value = 0


def mix_pc(pc: int, shift: int = 2) -> int:
    """Pre-mix a branch PC before hashing (drops alignment bits)."""
    return (pc >> shift) ^ (pc >> (shift + 5))
