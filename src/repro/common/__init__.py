"""Shared low-level building blocks used across the predictor stack.

This package contains the pieces that every predictor level shares:
history registers and their incremental "folded" hashes (the core of
TAGE-style index/tag computation), saturating counters, a deterministic
PRNG for allocation decisions, a generic set-associative container, and
simple statistics helpers.
"""

from repro.common.bitops import FoldedHistory, HistoryBuffer, fold_bits
from repro.common.counters import SaturatingCounter, WidthCounter
from repro.common.rng import XorShift32
from repro.common.assoc import SetAssociative

__all__ = [
    "FoldedHistory",
    "HistoryBuffer",
    "fold_bits",
    "SaturatingCounter",
    "WidthCounter",
    "XorShift32",
    "SetAssociative",
]
