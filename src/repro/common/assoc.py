"""A generic set-associative container with pluggable replacement.

The pattern buffer, context directory and L1-I model are all
set-associative structures that differ only in geometry and replacement
policy.  ``SetAssociative`` factors out the mechanics (set indexing, tag
match, victim selection) so each structure only supplies its policy.
"""

from __future__ import annotations

from typing import Callable, Dict, Generic, Iterator, List, Optional, Tuple, TypeVar

V = TypeVar("V")


class SetAssociative(Generic[V]):
    """Set-associative map from integer keys to values.

    Keys are split into ``set index = key % num_sets`` and a tag (the full
    key is kept, so no aliasing is introduced by the container itself —
    callers model tag truncation by pre-hashing their keys).

    Replacement is LRU by default; a ``victim_picker`` callback can override
    it (used by the context directory's confidence-based policy).
    """

    def __init__(
        self,
        num_sets: int,
        ways: int,
        victim_picker: Optional[Callable[[List[Tuple[int, V]]], int]] = None,
    ) -> None:
        if num_sets <= 0 or ways <= 0:
            raise ValueError("num_sets and ways must be positive")
        self.num_sets = num_sets
        self.ways = ways
        self._victim_picker = victim_picker
        # Each set is an ordered dict-like list: index 0 = LRU, -1 = MRU.
        self._sets: List[Dict[int, V]] = [dict() for _ in range(num_sets)]

    def __len__(self) -> int:
        return sum(len(s) for s in self._sets)

    def __contains__(self, key: int) -> bool:
        return key in self._sets[key % self.num_sets]

    def set_of(self, key: int) -> Dict[int, V]:
        return self._sets[key % self.num_sets]

    def get(self, key: int, touch: bool = True) -> Optional[V]:
        """Return the value for ``key`` or None; refresh LRU on hit."""
        s = self._sets[key % self.num_sets]
        value = s.get(key)
        if value is not None and touch:
            # dicts preserve insertion order; re-insert to mark MRU.
            del s[key]
            s[key] = value
        return value

    def peek(self, key: int) -> Optional[V]:
        return self.get(key, touch=False)

    def insert(self, key: int, value: V) -> Optional[Tuple[int, V]]:
        """Insert ``key`` (marking it MRU); return the evicted pair, if any."""
        s = self._sets[key % self.num_sets]
        evicted: Optional[Tuple[int, V]] = None
        if key in s:
            del s[key]
        elif len(s) >= self.ways:
            victim_key = self._pick_victim(s)
            evicted = (victim_key, s.pop(victim_key))
        s[key] = value
        return evicted

    def _pick_victim(self, s: Dict[int, V]) -> int:
        if self._victim_picker is None:
            return next(iter(s))  # LRU == oldest insertion.
        idx = self._victim_picker(list(s.items()))
        if not 0 <= idx < len(s):
            raise IndexError("victim picker returned an invalid way index")
        return list(s.keys())[idx]

    def remove(self, key: int) -> Optional[V]:
        s = self._sets[key % self.num_sets]
        return s.pop(key, None)

    def items(self) -> Iterator[Tuple[int, V]]:
        for s in self._sets:
            yield from s.items()

    def clear(self) -> None:
        for s in self._sets:
            s.clear()
