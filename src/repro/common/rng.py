"""Deterministic pseudo-random number generator for allocation decisions.

Hardware branch predictors use small LFSRs to randomise table allocation;
using Python's global ``random`` would make simulations irreproducible and
couple unrelated components.  Every predictor owns its own ``XorShift32``
instance seeded from its configuration, so a given (config, trace) pair
always produces bit-identical results.
"""

from __future__ import annotations


class XorShift32:
    """Marsaglia xorshift32: tiny, fast and deterministic."""

    __slots__ = ("state",)

    def __init__(self, seed: int = 0x2545F491) -> None:
        self.state = seed & 0xFFFFFFFF
        if self.state == 0:
            self.state = 0x2545F491

    def next(self) -> int:
        """Return the next 32-bit value."""
        x = self.state
        x ^= (x << 13) & 0xFFFFFFFF
        x ^= x >> 17
        x ^= (x << 5) & 0xFFFFFFFF
        self.state = x
        return x

    def below(self, bound: int) -> int:
        """Return a value in ``[0, bound)``."""
        if bound <= 0:
            raise ValueError("bound must be positive")
        return self.next() % bound

    def chance(self, numerator: int, denominator: int) -> bool:
        """Return True with probability ``numerator / denominator``."""
        return self.below(denominator) < numerator
