"""Single-pass multi-predictor simulation: decode once, update N predictors.

Every figure in the paper's evaluation runs the *same* workload trace
under many predictor configurations.  :func:`run_simulation` decodes the
trace once per predictor; :func:`run_simulation_batch` decodes each
branch record once and steps every predictor on it, producing results
**bit-identical** to N separate :func:`run_simulation` calls (the
equivalence tests assert full :class:`SimulationResult` equality,
per-PC dictionaries included).

Beyond the shared decode, the batch shares the computations that are a
pure function of the trace rather than of any predictor's state:

* **folded-history registers** — :class:`~repro.predictors.history.HistorySet`
  values depend only on the outcome-driven history bit stream (every
  TAGE-family predictor pushes ``(pc, is_conditional, taken)`` per
  retired branch, never a prediction), so two sets with identical
  folding geometry follow identical trajectories.  The first predictor
  presenting a geometry becomes its *leader* and computes the folds;
  every later identical set becomes a *follower* whose per-branch push
  is replaced with a list copy of the leader's values.  In a fig09-style
  batch this removes the single hottest block in the simulator (the
  generated ``<fold-push>`` update) from all but one member per
  geometry class — e.g. ``llbp``'s internal 64K TAGE folds duplicate
  ``tsl64``'s exactly.
* **per-PC execution counts** — which conditional PCs execute in the
  measured region is trace-determined, so the batch maintains one
  shared dict and hands each member a copy (same insertion order as a
  serial run, so even the cached JSON bytes match).

Per-predictor state (TAGE tables, usefulness counters, LLBP pattern
sets, statistical corrector, loop predictor) is **never** shared: LLBP
training perturbs its internal TAGE-SC-L differently from a standalone
one, so only provably stream-determined state crosses members.

Telemetry: one ``sim.batched_pass`` event per batch with the member
count and effective branch-update throughput.
"""

from __future__ import annotations

import time
import warnings
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro import telemetry
from repro.llbp.predictor import LLBPTageScL, _compile_slot_tags
from repro.predictors.base import BranchPredictor
from repro.predictors.history import GlobalHistory, HistorySet, _compile_push
from repro.predictors.perfect import PerfectPredictor
from repro.predictors.tage import Tage, _compile_match, _compile_scan
from repro.predictors.tage_sc_l import TageScL
from repro.sim.engine import (DEFAULT_WARMUP_FRACTION, resolve_engine,
                              run_simulation)
from repro.sim.results import SimulationResult
from repro.traces.trace import Trace

#: Predictor families whose ``update_history`` pushes exactly one
#: outcome-driven bit per retired branch into a :class:`GlobalHistory` —
#: the invariant that makes fold trajectories shareable across members.
_STREAM_DRIVEN = (TageScL, LLBPTageScL)


def install_fold_sharing(predictors: Sequence[BranchPredictor]) -> int:
    """Deduplicate fold work across ``predictors``; returns sets rewired.

    A folded register is a pure function of (history length, fold width,
    bit stream), and every stream-driven member folds the *same* stream —
    so sharing is resolved per register, not per whole set: walking
    members in batch order, the first set to present a (length, width)
    pair becomes that register's owner, and any later occurrence is
    compiled as a copy from the owner's slot instead of a recomputation
    (see ``_compile_push``'s ``copies``).  A set whose registers are all
    owned elsewhere degenerates to pure copies (llbp's internal 64K TAGE
    folds duplicate tsl64's exactly); partially-covered sets keep an
    incremental update for their private registers only (a scaled TSL's
    tag folds match the baseline's even though its index folds don't —
    and for the 512K geometry even the index fold coincides with an
    existing tag fold, so the whole set collapses).  Duplicate widths
    *within* one set dedupe the same way against the set's own slots.

    Only predictors whose history updates are provably stream-determined
    participate (:data:`_STREAM_DRIVEN`).  The rewrite is only sound
    while all predictors are stepped on the same branch stream with
    owners ordered before copiers — i.e. inside
    :func:`run_simulation_batch`, on freshly constructed predictors that
    are discarded after the pass.
    """
    registry: Dict[tuple, tuple] = {}  # (age, width) -> (values, slot)
    seen: set = set()
    shared = 0
    for predictor in predictors:
        if not isinstance(predictor, _STREAM_DRIVEN):
            continue
        history = getattr(predictor, "history", None)
        if not isinstance(history, GlobalHistory):
            continue
        for consumer in history._consumers:
            if not isinstance(consumer, HistorySet) or id(consumer) in seen:
                continue
            seen.add(id(consumer))
            owned_params: List[tuple] = []
            owned_indices: List[List[int]] = []
            copies: List[tuple] = []
            j = 0
            for tup in consumer._params:
                age, folds = tup[0], tup[1:]
                comp: List[int] = [age]
                comp_idx: List[int] = []
                for k in range(0, len(folds), 3):
                    width = folds[k + 1]
                    entry = registry.get((age, width))
                    if entry is None:
                        registry[(age, width)] = (consumer.values, j)
                        comp.extend(folds[k:k + 3])
                        comp_idx.append(j)
                    else:
                        copies.append((j, entry))
                    j += 1
                if comp_idx:
                    owned_params.append(tuple(comp))
                    owned_indices.append(comp_idx)
            if not copies:
                continue  # fully private set: keep its original push
            source_names: Dict[int, str] = {}
            sources: Dict[str, List[int]] = {}
            copy_rows: List[tuple] = []
            for dst, (src_values, src_slot) in copies:
                name = source_names.get(id(src_values))
                if name is None:
                    name = f"s{len(sources)}"
                    source_names[id(src_values)] = name
                    sources[name] = src_values
                copy_rows.append((dst, name, src_slot))
            consumer._push = _compile_push(
                owned_params, consumer.values, owned_indices,
                copy_rows, sources)
            shared += 1
    return shared


def _share_tage_match(leader: Tage, follower: Tage,
                      memo: List, seq: List[int]) -> None:
    """Point ``follower``'s match core at ``leader``'s published hashes.

    The leader's ``_match`` is recompiled with the memo stores baked in
    (same fold/tag bindings, so the swap is free of behaviour change);
    the follower's is replaced by a guard that reuses the memoised
    indices/tags when they belong to the current record and PC, scanning
    only its private tag tables — and falls back to its original full
    core otherwise, so a missed memo can never change results.
    """
    if getattr(leader, "_match_memo", None) is not memo:
        leader._match = _compile_match(
            leader.config.num_tables, leader._idx_mask, leader._tag_mask,
            leader.folded.values, leader.tags, memo=memo, seq=seq)
        leader._match_memo = memo
    scan = _compile_scan(follower.config.num_tables, follower.tags)

    def _follower_match(pcx, path_mix, _orig=follower._match,
                        _memo=memo, _seq=seq, _scan=scan):
        if _memo[0] != _seq[0] or _memo[1] != pcx:
            return _orig(pcx, path_mix)
        indices = _memo[2]
        tags = _memo[3]
        provider, alt = _scan(indices, tags)
        return indices, tags, provider, alt

    follower._match = _follower_match


def _share_slot_tags(leader: LLBPTageScL, follower: LLBPTageScL,
                     memo: List, seq: List[int]) -> None:
    """Share LLBP slot-tag hashing between identical-geometry members."""
    if getattr(leader, "_slot_memo", None) is not memo:
        leader._slot_tags = _compile_slot_tags(
            leader._slot_folds, leader._tag_mask, leader.folded.values,
            leader._slot_second, memo=memo, seq=seq)
        leader._slot_memo = memo

    def _shared_slot_tags(pcx, _orig=follower._slot_tags,
                          _memo=memo, _seq=seq):
        if _memo[0] == _seq[0] and _memo[1] == pcx:
            return _memo[2]
        return _orig(pcx)

    follower._slot_tags = _shared_slot_tags


def install_lookup_sharing(predictors: Sequence[BranchPredictor],
                           seq: List[int]) -> int:
    """Share per-branch lookup hashing across identical-geometry members.

    Two hash families are pure functions of (PC, history stream) and so
    identical across members whose folded histories share parameters:

    * the TAGE table indices/tags (``_compile_match``) — the first such
      instance publishes them into a memo, later ones scan their private
      tag tables against the shared hashes (``_compile_scan``);
    * LLBP's 16 slot tags (``_compile_slot_tags``) — published the same
      way and reused outright (the list is read-only downstream).

    ``seq`` must be bumped by the batch loop once per trace record; a
    memo is honoured only when both the record sequence number and the
    PC match, and every follower keeps its original core as a fallback,
    so sharing can only ever skip redundant work, never alter results.
    Returns the number of follower cores rewired.
    """
    shared = 0
    tage_groups: Dict[tuple, tuple] = {}
    for predictor in predictors:
        if isinstance(predictor, TageScL):
            tage = predictor.tage
        elif isinstance(predictor, LLBPTageScL):
            tage = predictor.tsl.tage
        else:
            continue
        if not isinstance(tage, Tage):
            continue
        key = (tuple(tage.folded._params), tage._idx_mask, tage._tag_mask)
        entry = tage_groups.get(key)
        if entry is None:
            tage_groups[key] = (tage, [None, None, None, None])
        elif entry[0] is not tage:
            _share_tage_match(entry[0], tage, entry[1], seq)
            shared += 1

    llbp_groups: Dict[tuple, tuple] = {}
    for predictor in predictors:
        if not isinstance(predictor, LLBPTageScL):
            continue
        key = (tuple(predictor._slot_folds), predictor._tag_mask,
               tuple(predictor.folded._params),
               tuple(predictor.tsl.tage.folded._params))
        entry = llbp_groups.get(key)
        if entry is None:
            llbp_groups[key] = (predictor, [None, None, None])
        elif entry[0] is not predictor:
            _share_slot_tags(entry[0], predictor, entry[1], seq)
            shared += 1
    return shared


def _compile_pass(predictors: Sequence[BranchPredictor],
                  collect_per_pc: bool):
    """Generate the fused warmup/measure loops for one batch.

    Semantically this is ``for record: for member: step(record)`` with
    each member's step mirroring the engine's specialised loops
    (``_run_warmup`` / ``_measure`` / ``_measure_per_pc`` /
    ``_measure_perfect``) — but the member loop is unrolled into one
    generated function body, so per record the interpreter pays a single
    tuple unpack and zero per-member closure calls.  Each member's bound
    methods are baked in as cell-free globals of the generated module;
    the record sequence number is published to ``seq[0]`` for the
    memoised lookup cores (:func:`install_lookup_sharing`).

    Returns ``(warm, measure, per_pc_misp_dicts)``; ``warm(rows, seq)``
    returns the record count consumed, ``measure(rows, seq, rec,
    shared_exec)`` returns the per-member misprediction counts.
    """
    ns: Dict[str, object] = {}
    per_pc_dicts: List[Dict[int, int]] = []
    warm_body: List[str] = []
    meas_body: List[str] = []
    misp_names: List[str] = []
    returns: List[str] = []
    for i, predictor in enumerate(predictors):
        ns[f"predict{i}"] = predictor.predict
        ns[f"train{i}"] = predictor.train
        ns[f"uh{i}"] = predictor.update_history
        advance = getattr(predictor, "advance", None)
        if advance is not None:
            ns[f"adv{i}"] = advance
        per_pc: Dict[int, int] = {}
        per_pc_dicts.append(per_pc)

        if advance is not None:
            warm_body.append(f"        adv{i}(gap)")
        warm_body.append("        if cond:")
        warm_body.append(f"            train{i}(pc, taken, predict{i}(pc))")
        warm_body.append(f"        uh{i}(pc, btype, taken, target)")

        if advance is not None:
            meas_body.append(f"        adv{i}(gap)")
        if isinstance(predictor, PerfectPredictor):
            # Mirrors engine._measure_perfect: never mispredicts, so no
            # counting — just keep training on the oracle metadata.
            meas_body.append("        if cond:")
            meas_body.append(
                f"            train{i}(pc, taken, predict{i}(pc))")
            returns.append("0")
        else:
            meas_body.append("        if cond:")
            meas_body.append(f"            meta = predict{i}(pc)")
            meas_body.append("            if meta is True or meta is False:")
            meas_body.append("                pred = meta")
            meas_body.append("            else:")
            meas_body.append("                pred = meta.pred")
            meas_body.append("            if pred != taken:")
            meas_body.append(f"                misp{i} += 1")
            if collect_per_pc:
                ns[f"pmisp{i}"] = per_pc
                ns[f"pget{i}"] = per_pc.get
                meas_body.append(
                    f"                pmisp{i}[pc] = pget{i}(pc, 0) + 1")
            meas_body.append(f"            train{i}(pc, taken, meta)")
            misp_names.append(f"misp{i}")
            returns.append(f"misp{i}")
        meas_body.append(f"        uh{i}(pc, btype, taken, target)")

    # Bind every captured method as a default argument: locals are the
    # fastest name scope in CPython, and both loops are the innermost
    # per-record code in a batched run.
    defaults = ", ".join(f"{name}={name}" for name in ns)
    lines = [f"def _warm(rows, seq, {defaults}):",
             "    rec = 0",
             "    for pc, btype, taken_i, target, gap in rows:",
             "        rec += 1",
             "        seq[0] = rec",
             "        taken = taken_i == 1",
             "        cond = btype == 0"]
    lines.extend(warm_body)
    lines.append("    return rec")
    lines.append(f"def _measure(rows, seq, rec, shared_exec, {defaults}):")
    if misp_names:
        lines.append("    " + " = ".join(misp_names) + " = 0")
    if collect_per_pc:
        lines.append("    exec_get = shared_exec.get")
    lines.append("    for pc, btype, taken_i, target, gap in rows:")
    lines.append("        rec += 1")
    lines.append("        seq[0] = rec")
    lines.append("        taken = taken_i == 1")
    lines.append("        cond = btype == 0")
    if collect_per_pc:
        lines.append("        if cond:")
        lines.append("            shared_exec[pc] = exec_get(pc, 0) + 1")
    lines.extend(meas_body)
    lines.append(f"    return [{', '.join(returns)}]")
    exec(compile("\n".join(lines), "<batched-pass>", "exec"), ns)
    return ns["_warm"], ns["_measure"], per_pc_dicts


def run_simulation_batch(
    trace: Trace,
    predictors: Sequence[BranchPredictor],
    warmup_instructions: Optional[int] = None,
    collect_per_pc: bool = False,
    engine: Optional[str] = None,
) -> List[SimulationResult]:
    """Run every predictor over ``trace`` in one decode pass.

    Returns one :class:`SimulationResult` per predictor, in order, each
    bit-identical to ``run_simulation(trace, predictor, ...)`` run in
    isolation.  Predictors must be distinct, freshly constructed
    instances: the pass rewires identical-geometry folded-history sets
    to share fold computation (see :func:`install_fold_sharing`), which
    assumes they are discarded afterwards.

    Under ``engine="array"`` (or ``REPRO_ENGINE=array``) each member
    runs through the array engine instead of the fused Python pass —
    the per-trace hash columns memoised on ``trace.aux`` play the role
    the shared fold/lookup cores play here, so cross-member hash work
    is still paid once per geometry.
    """
    if not predictors:
        return []
    if len({id(p) for p in predictors}) != len(predictors):
        raise ValueError("batch members must be distinct predictor "
                         "instances")

    if resolve_engine(engine) == "array":
        return [
            run_simulation(trace, predictor, warmup_instructions,
                           collect_per_pc, engine="array")
            for predictor in predictors
        ]
    if warmup_instructions is None:
        warmup_instructions = int(trace.num_instructions
                                  * DEFAULT_WARMUP_FRACTION)

    n = len(trace)
    if n:
        cumulative = np.cumsum(trace.gaps, dtype=np.int64)
        total_instructions = int(cumulative[-1])
        split = int(np.searchsorted(cumulative, warmup_instructions,
                                    side="right"))
    else:
        total_instructions = 0
        split = 0

    if n and split >= n:
        warnings.warn(
            f"warmup ({warmup_instructions} instructions) consumed the "
            f"entire trace {trace.name!r} ({total_instructions} "
            "instructions); the measured region is empty and all "
            "statistics will be zero",
            RuntimeWarning,
            stacklevel=2,
        )

    seq = [0]
    shared_sets = install_fold_sharing(predictors)
    shared_lookups = install_lookup_sharing(predictors, seq)
    names = [getattr(p, "name", type(p).__name__) for p in predictors]
    warm, measure, per_pc_dicts = _compile_pass(predictors, collect_per_pc)

    telemetry_on = telemetry.enabled()
    pass_start = time.perf_counter() if telemetry_on else 0.0

    rec = warm(trace.iter_tuples(0, split), seq)
    shared_exec: Dict[int, int] = {}
    mispredictions = measure(trace.iter_tuples(split, n), seq, rec,
                             shared_exec)

    if telemetry_on:
        seconds = time.perf_counter() - pass_start
        telemetry.emit(
            "sim.batched_pass", workload=trace.name,
            predictors=names, count=len(predictors),
            shared_fold_sets=shared_sets, shared_lookup_cores=shared_lookups,
            branches=n,
            seconds=seconds,
            branches_per_sec=round(n * len(predictors) / seconds)
            if seconds else 0)

    branches = n - split
    cond_branches = int((trace.types[split:] == 0).sum()) if split < n else 0
    if split < n:
        measured_instr_start = int(cumulative[split - 1]) if split else 0
    else:
        measured_instr_start = total_instructions

    results: List[SimulationResult] = []
    for predictor, name, misp, per_pc_misp in zip(
            predictors, names, mispredictions, per_pc_dicts):
        finalize = getattr(predictor, "finalize_stats", None)
        if finalize is not None:
            finalize()
        results.append(SimulationResult(
            extra=dict(predictor.stats.extra),
            workload=trace.name,
            predictor=name,
            instructions=total_instructions - measured_instr_start,
            warmup_instructions=measured_instr_start,
            branches=branches,
            cond_branches=cond_branches,
            mispredictions=misp,
            per_pc_mispredictions=per_pc_misp,
            per_pc_executions=dict(shared_exec) if collect_per_pc else {},
        ))
    return results
