"""Simulation layer: trace-driven engine, timing core model, L1-I model."""

from repro.sim.results import SimulationResult
from repro.sim.engine import resolve_engine, run_simulation
from repro.sim.multi import run_simulation_batch
from repro.sim.core import CoreParams, CoreModel, TimingResult
from repro.sim.icache import InstructionCache, simulate_icache

__all__ = [
    "SimulationResult",
    "resolve_engine",
    "run_simulation",
    "run_simulation_batch",
    "CoreParams",
    "CoreModel",
    "TimingResult",
    "InstructionCache",
    "simulate_icache",
]
