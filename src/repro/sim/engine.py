"""Trace-driven simulation loop.

Mirrors the paper's methodology (§VI): the predictor is warmed up on a
prefix of the trace, then mispredictions are counted over the measured
region.  Every branch — conditional or not — updates predictor history;
only conditional branches are predicted and trained.
"""

from __future__ import annotations

from typing import Optional

from repro.predictors.base import BranchPredictor
from repro.predictors.perfect import PerfectPredictor
from repro.sim.results import SimulationResult
from repro.traces.trace import Trace

#: Fraction of the trace used for warmup when not given explicitly; the
#: paper warms 100M of 300M total instructions.
DEFAULT_WARMUP_FRACTION = 1.0 / 3.0


def run_simulation(
    trace: Trace,
    predictor: BranchPredictor,
    warmup_instructions: Optional[int] = None,
    collect_per_pc: bool = False,
) -> SimulationResult:
    """Run ``predictor`` over ``trace`` and return measured statistics."""
    if warmup_instructions is None:
        warmup_instructions = int(trace.num_instructions * DEFAULT_WARMUP_FRACTION)

    is_perfect = isinstance(predictor, PerfectPredictor)
    predict = predictor.predict
    train = predictor.train
    update_history = predictor.update_history
    advance = getattr(predictor, "advance", None)

    instructions = 0
    measured_instr_start: Optional[int] = None
    branches = 0
    cond_branches = 0
    mispredictions = 0
    per_pc_misp = {}
    per_pc_exec = {}

    for pc, btype, taken_i, target, gap in trace.iter_tuples():
        instructions += gap
        if advance is not None:
            advance(gap)
        taken = taken_i == 1
        measuring = instructions > warmup_instructions
        if measuring and measured_instr_start is None:
            measured_instr_start = instructions - gap
        if measuring:
            branches += 1

        if btype == 0:  # conditional
            meta = predict(pc)
            if is_perfect:
                pred = taken
            elif isinstance(meta, bool):
                pred = meta
            else:
                pred = meta.pred
            if measuring:
                cond_branches += 1
                if pred != taken:
                    mispredictions += 1
                if collect_per_pc:
                    per_pc_exec[pc] = per_pc_exec.get(pc, 0) + 1
                    if pred != taken:
                        per_pc_misp[pc] = per_pc_misp.get(pc, 0) + 1
            train(pc, taken, meta)
        update_history(pc, btype, taken, target)

    if measured_instr_start is None:
        measured_instr_start = instructions
    measured_instructions = instructions - measured_instr_start

    finalize = getattr(predictor, "finalize_stats", None)
    if finalize is not None:
        finalize()

    return SimulationResult(
        extra=dict(predictor.stats.extra),
        workload=trace.name,
        predictor=getattr(predictor, "name", type(predictor).__name__),
        instructions=measured_instructions,
        warmup_instructions=measured_instr_start,
        branches=branches,
        cond_branches=cond_branches,
        mispredictions=mispredictions,
        per_pc_mispredictions=per_pc_misp,
        per_pc_executions=per_pc_exec,
    )
