"""Trace-driven simulation loop.

Mirrors the paper's methodology (§VI): the predictor is warmed up on a
prefix of the trace, then mispredictions are counted over the measured
region.  Every branch — conditional or not — updates predictor history;
only conditional branches are predicted and trained.

The loop is the hottest code in the repository — every MPKI point in the
evaluation is millions of trips through it — so :func:`run_simulation`
specialises it instead of paying per-branch dispatch costs:

* the warmup/measured split is computed once from the cumulative gap sum,
  so the measured loops carry no per-branch "are we measuring yet" check;
* perfect-predictor, per-PC-collection and ``advance`` handling are
  hoisted into pre-selected loop variants instead of per-branch
  ``isinstance``/``None`` tests;
* records are consumed through :meth:`Trace.iter_tuples`, which iterates
  chunked ``tolist()`` views of the numpy columns.

:func:`run_simulation_reference` keeps the original generic loop as the
oracle the equivalence tests compare against — the specialised variants
must match it misprediction-for-misprediction.
"""

from __future__ import annotations

import os
import time
import warnings
from typing import Dict, Optional

import numpy as np

from repro import telemetry
from repro.predictors.base import BranchPredictor
from repro.predictors.perfect import PerfectPredictor
from repro.sim.results import SimulationResult
from repro.traces.trace import Trace

#: Fraction of the trace used for warmup when not given explicitly; the
#: paper warms 100M of 300M total instructions.
DEFAULT_WARMUP_FRACTION = 1.0 / 3.0

#: Engine implementations selectable per run.  ``python`` is the serial
#: reference loop below (the oracle); ``array`` is the fused codegen
#: engine in :mod:`repro.sim.array`, bit-identical where supported.
ENGINES = ("python", "array")

#: Environment variable consulted when no explicit ``engine=`` is given.
ENGINE_ENV_VAR = "REPRO_ENGINE"


def resolve_engine(engine: Optional[str] = None) -> str:
    """Resolve the engine name: argument > ``REPRO_ENGINE`` env > python.

    Raises ``ValueError`` for unknown names so typos fail loudly rather
    than silently running the wrong engine.
    """
    if engine is None:
        engine = os.environ.get(ENGINE_ENV_VAR) or "python"
    if engine not in ENGINES:
        raise ValueError(
            f"unknown simulation engine {engine!r}; expected one of "
            f"{', '.join(ENGINES)}")
    return engine


def _run_warmup(trace: Trace, stop: int, predict, train, update_history,
                advance) -> None:
    """Drive the predictor over records ``[0, stop)`` without counting."""
    if advance is None:
        for pc, btype, taken_i, target, gap in trace.iter_tuples(0, stop):
            taken = taken_i == 1
            if btype == 0:
                train(pc, taken, predict(pc))
            update_history(pc, btype, taken, target)
    else:
        for pc, btype, taken_i, target, gap in trace.iter_tuples(0, stop):
            advance(gap)
            taken = taken_i == 1
            if btype == 0:
                train(pc, taken, predict(pc))
            update_history(pc, btype, taken, target)


def _measure(rows, predict, train, update_history, advance) -> int:
    """Measured-region loop: no per-PC collection.

    Branch/conditional totals are derived from the trace columns by the
    caller, so the loop counts only mispredictions.
    """
    mispredictions = 0
    if advance is None:
        for pc, btype, taken_i, target, gap in rows:
            taken = taken_i == 1
            if btype == 0:
                meta = predict(pc)
                if meta is True or meta is False:
                    pred = meta
                else:
                    pred = meta.pred
                if pred != taken:
                    mispredictions += 1
                train(pc, taken, meta)
            update_history(pc, btype, taken, target)
    else:
        for pc, btype, taken_i, target, gap in rows:
            advance(gap)
            taken = taken_i == 1
            if btype == 0:
                meta = predict(pc)
                if meta is True or meta is False:
                    pred = meta
                else:
                    pred = meta.pred
                if pred != taken:
                    mispredictions += 1
                train(pc, taken, meta)
            update_history(pc, btype, taken, target)
    return mispredictions


def _measure_per_pc(rows, predict, train, update_history, advance,
                    per_pc_misp: Dict[int, int],
                    per_pc_exec: Dict[int, int]) -> int:
    """Measured-region loop that also collects per-PC statistics."""
    mispredictions = 0
    exec_get = per_pc_exec.get
    misp_get = per_pc_misp.get
    if advance is None:
        for pc, btype, taken_i, target, gap in rows:
            taken = taken_i == 1
            if btype == 0:
                meta = predict(pc)
                if meta is True or meta is False:
                    pred = meta
                else:
                    pred = meta.pred
                per_pc_exec[pc] = exec_get(pc, 0) + 1
                if pred != taken:
                    mispredictions += 1
                    per_pc_misp[pc] = misp_get(pc, 0) + 1
                train(pc, taken, meta)
            update_history(pc, btype, taken, target)
    else:
        for pc, btype, taken_i, target, gap in rows:
            advance(gap)
            taken = taken_i == 1
            if btype == 0:
                meta = predict(pc)
                if meta is True or meta is False:
                    pred = meta
                else:
                    pred = meta.pred
                per_pc_exec[pc] = exec_get(pc, 0) + 1
                if pred != taken:
                    mispredictions += 1
                    per_pc_misp[pc] = misp_get(pc, 0) + 1
                train(pc, taken, meta)
            update_history(pc, btype, taken, target)
    return mispredictions


def _measure_perfect(rows, predict, train, update_history, advance,
                     per_pc_exec: Optional[Dict[int, int]]) -> int:
    """Measured-region loop for a perfect predictor (never mispredicts)."""
    for pc, btype, taken_i, target, gap in rows:
        if advance is not None:
            advance(gap)
        taken = taken_i == 1
        if btype == 0:
            meta = predict(pc)
            if per_pc_exec is not None:
                per_pc_exec[pc] = per_pc_exec.get(pc, 0) + 1
            train(pc, taken, meta)
        update_history(pc, btype, taken, target)
    return 0


def run_simulation(
    trace: Trace,
    predictor: BranchPredictor,
    warmup_instructions: Optional[int] = None,
    collect_per_pc: bool = False,
    engine: Optional[str] = None,
) -> SimulationResult:
    """Run ``predictor`` over ``trace`` and return measured statistics.

    ``engine`` selects the implementation (see :func:`resolve_engine`);
    the array engine is bit-identical for the predictor families it
    supports and transparently falls back to the Python loop (with a
    ``sim.engine_fallback`` telemetry event) for the rest.
    """
    if resolve_engine(engine) == "array":
        from repro.sim import array

        reason = array.unsupported_reason(predictor)
        if reason is None:
            return array.run_simulation_array(
                trace, predictor, warmup_instructions, collect_per_pc)
        telemetry.emit(
            "sim.engine_fallback", workload=trace.name,
            predictor=getattr(predictor, "name", type(predictor).__name__),
            reason=reason)

    if warmup_instructions is None:
        warmup_instructions = int(trace.num_instructions * DEFAULT_WARMUP_FRACTION)

    n = len(trace)
    if n:
        cumulative = np.cumsum(trace.gaps, dtype=np.int64)
        total_instructions = int(cumulative[-1])
        # Record i is measured iff the instruction count *including* its
        # gap exceeds the warmup budget (matches the reference loop's
        # ``instructions > warmup_instructions`` test).
        split = int(np.searchsorted(cumulative, warmup_instructions, side="right"))
    else:
        total_instructions = 0
        split = 0

    if n and split >= n:
        warnings.warn(
            f"warmup ({warmup_instructions} instructions) consumed the entire "
            f"trace {trace.name!r} ({total_instructions} instructions); the "
            "measured region is empty and all statistics will be zero",
            RuntimeWarning,
            stacklevel=2,
        )

    predict = predictor.predict
    train = predictor.train
    update_history = predictor.update_history
    advance = getattr(predictor, "advance", None)
    predictor_name = getattr(predictor, "name", type(predictor).__name__)

    # Telemetry is phase-grained by design: one enabled-check and two
    # events per simulation, zero additions to the per-branch loops.
    telemetry_on = telemetry.enabled()
    phase_start = time.perf_counter() if telemetry_on else 0.0

    _run_warmup(trace, split, predict, train, update_history, advance)

    if telemetry_on:
        now = time.perf_counter()
        warmup_seconds = now - phase_start
        telemetry.emit(
            "sim.phase", phase="warmup", workload=trace.name,
            predictor=predictor_name, branches=split,
            instructions=warmup_instructions, seconds=warmup_seconds)
        phase_start = now

    per_pc_misp: Dict[int, int] = {}
    per_pc_exec: Dict[int, int] = {}
    rows = trace.iter_tuples(split, n)
    if isinstance(predictor, PerfectPredictor):
        mispredictions = _measure_perfect(
            rows, predict, train, update_history, advance,
            per_pc_exec if collect_per_pc else None)
    elif collect_per_pc:
        mispredictions = _measure_per_pc(
            rows, predict, train, update_history, advance,
            per_pc_misp, per_pc_exec)
    else:
        mispredictions = _measure(
            rows, predict, train, update_history, advance)

    if telemetry_on:
        measure_seconds = time.perf_counter() - phase_start
        telemetry.emit(
            "sim.phase", phase="measure", workload=trace.name,
            predictor=predictor_name, branches=n - split,
            mispredictions=mispredictions, seconds=measure_seconds)
        telemetry.emit(
            "sim.run", workload=trace.name, predictor=predictor_name,
            branches=n, instructions=total_instructions,
            mispredictions=mispredictions,
            seconds=warmup_seconds + measure_seconds)

    # Totals the reference loop counts per-branch fall out of the columns.
    branches = n - split
    cond_branches = int((trace.types[split:] == 0).sum()) if split < n else 0

    if split < n:
        measured_instr_start = int(cumulative[split - 1]) if split else 0
    else:
        measured_instr_start = total_instructions

    finalize = getattr(predictor, "finalize_stats", None)
    if finalize is not None:
        finalize()

    return SimulationResult(
        extra=dict(predictor.stats.extra),
        workload=trace.name,
        predictor=predictor_name,
        instructions=total_instructions - measured_instr_start,
        warmup_instructions=measured_instr_start,
        branches=branches,
        cond_branches=cond_branches,
        mispredictions=mispredictions,
        per_pc_mispredictions=per_pc_misp,
        per_pc_executions=per_pc_exec,
    )


def run_simulation_reference(
    trace: Trace,
    predictor: BranchPredictor,
    warmup_instructions: Optional[int] = None,
    collect_per_pc: bool = False,
) -> SimulationResult:
    """The original generic simulation loop, kept as a correctness oracle.

    Slower than :func:`run_simulation` but with no loop specialisation at
    all; the equivalence tests assert the two produce bit-identical
    :class:`SimulationResult` values for every predictor family.
    """
    if warmup_instructions is None:
        warmup_instructions = int(trace.num_instructions * DEFAULT_WARMUP_FRACTION)

    is_perfect = isinstance(predictor, PerfectPredictor)
    predict = predictor.predict
    train = predictor.train
    update_history = predictor.update_history
    advance = getattr(predictor, "advance", None)

    instructions = 0
    measured_instr_start: Optional[int] = None
    branches = 0
    cond_branches = 0
    mispredictions = 0
    per_pc_misp: Dict[int, int] = {}
    per_pc_exec: Dict[int, int] = {}

    for pc, btype, taken_i, target, gap in trace.iter_tuples():
        instructions += gap
        if advance is not None:
            advance(gap)
        taken = taken_i == 1
        measuring = instructions > warmup_instructions
        if measuring and measured_instr_start is None:
            measured_instr_start = instructions - gap
        if measuring:
            branches += 1

        if btype == 0:  # conditional
            meta = predict(pc)
            if is_perfect:
                pred = taken
            elif isinstance(meta, bool):
                pred = meta
            else:
                pred = meta.pred
            if measuring:
                cond_branches += 1
                if pred != taken:
                    mispredictions += 1
                if collect_per_pc:
                    per_pc_exec[pc] = per_pc_exec.get(pc, 0) + 1
                    if pred != taken:
                        per_pc_misp[pc] = per_pc_misp.get(pc, 0) + 1
            train(pc, taken, meta)
        update_history(pc, btype, taken, target)

    if measured_instr_start is None:
        measured_instr_start = instructions
    measured_instructions = instructions - measured_instr_start

    finalize = getattr(predictor, "finalize_stats", None)
    if finalize is not None:
        finalize()

    return SimulationResult(
        extra=dict(predictor.stats.extra),
        workload=trace.name,
        predictor=getattr(predictor, "name", type(predictor).__name__),
        instructions=measured_instructions,
        warmup_instructions=measured_instr_start,
        branches=branches,
        cond_branches=cond_branches,
        mispredictions=mispredictions,
        per_pc_mispredictions=per_pc_misp,
        per_pc_executions=per_pc_exec,
    )
