"""Array-backed fused simulation engine (``engine="array"``).

The Python engine in :mod:`repro.sim.engine` pays per-branch method
dispatch (predict/train/update_history), per-branch metadata objects
(TageResult/TslResult/LLBPMeta) and per-branch folded-history pushes.
This engine removes all three:

* every hash the predictor computes per branch is precomputed once per
  trace into flat integer columns (:mod:`repro.sim.columns`) and
  persisted with the packed trace;
* one specialised ``_sim`` function per predictor *instance* is
  generated, inlining lookup and training into a single loop body with
  bank sizes, masks and saturation bounds baked in as constants and the
  table arrays bound by identity;
* hot scalar state (use-alt, tick, SC threshold, loop bias, clocks,
  counters) lives in locals for the duration of the run and is written
  back in an epilogue.

The contract is **bit-identity** with the Python engine: same tables
afterwards, same RNG call sequence, same :class:`SimulationResult`
including the insertion order of the per-PC dicts.  The Python engine
remains the oracle; ``tests/sim/test_array.py`` pins the equivalence
across every workload and supported family.  Unsupported predictor
variants are reported by :func:`unsupported_reason` and the dispatcher
falls back to the Python engine.
"""

from __future__ import annotations

import time
import warnings
from itertools import chain
from typing import Dict, Optional

import numpy as np

from repro import telemetry
from repro.llbp.predictor import LLBPTageScL
from repro.predictors.base import BranchPredictor
from repro.predictors.bimode import BiMode
from repro.predictors.gshare import GShare
from repro.predictors.perceptron import HashedPerceptron
from repro.predictors.tage import Tage
from repro.predictors.tage_sc_l import TageScL
from repro.sim import columns as columns_mod
from repro.sim.results import SimulationResult
from repro.traces.trace import Trace

#: Records converted to Python lists per chunk in the fused loops.
_CHUNK = 1 << 14


# -- support matrix ----------------------------------------------------------

def unsupported_reason(predictor: BranchPredictor) -> Optional[str]:
    """Why ``predictor`` cannot run on the array engine (None = it can).

    Exact-type checks on purpose: a subclass may override any method the
    fused code inlines, which would silently diverge from the oracle.
    """
    if type(predictor) is GShare:
        return None
    if type(predictor) is BiMode:
        return None
    if type(predictor) is HashedPerceptron:
        return None
    if type(predictor) is TageScL:
        return _tsl_reason(predictor)
    if type(predictor) is LLBPTageScL:
        if predictor.btb is not None:
            return "front-end redirect modelling is not fused"
        if type(predictor.tsl) is not TageScL:
            return "baseline is not a plain TageScL"
        return _tsl_reason(predictor.tsl)
    return f"no fused loop for {type(predictor).__name__}"


def _tsl_reason(tsl: TageScL) -> Optional[str]:
    if type(tsl.tage) is not Tage:
        return "TAGE variant is not a plain Tage"
    if tsl.sc is None or tsl.loop is None:
        return "SC/loop components disabled"
    return None


def supports(predictor: BranchPredictor) -> bool:
    return unsupported_reason(predictor) is None


# -- fused loop body emitters ------------------------------------------------
#
# Each helper appends unindented source lines for one stage of the
# per-conditional-branch body; the compilers below stitch them together
# and indent them into the chunked trace loops.  The bodies are the
# predictors' own lookup/train methods with metadata objects replaced by
# locals and per-branch hashes replaced by ``row[...]`` subscripts
# (constant where possible).

def _emit_tage_lookup(a, tage) -> None:
    num_tables = tage.config.num_tables
    a("provider = -1")
    a("alt = -1")
    for t in range(num_tables):
        a(f"if TT{t}[row[{t}]] == row[{num_tables + t}]:")
        a("    alt = provider")
        a(f"    provider = {t}")
    a(f"bim_i = (pc >> 2) & {tage.bimodal._mask}")
    a("bim_pred = BIM[bim_i] >= 0")
    a("if provider >= 0:")
    a("    p_idx = row[provider]")
    a("    CP = T_CTRS[provider]")
    a("    provider_ctr = ctr = CP[p_idx]")
    a("    provider_pred = ctr >= 0")
    a("    provider_weak = ctr == 0 or ctr == -1")
    a("    if alt >= 0:")
    a("        alt_pred = T_CTRS[alt][row[alt]] >= 0")
    a("    else:")
    a("        alt_pred = bim_pred")
    a(f"    if provider_weak and use_alt >= {tage._use_alt_mid}:")
    a("        t_pred = alt_pred")
    a("    else:")
    a("        t_pred = provider_pred")
    a("    provider_valid = True")
    a("else:")
    a("    provider_ctr = 0")
    a("    provider_pred = False")
    a("    provider_weak = False")
    a("    alt_pred = bim_pred")
    a("    t_pred = bim_pred")
    a("    provider_valid = False")


def _emit_sc_lookup(a, sc, num_tables, ctr="provider_ctr",
                    valid="provider_valid") -> None:
    num_sc = len(sc.history_lengths)
    a("pcx = pc >> 2")
    a(f"bias_index = (pcx * 2 + (1 if base_pred else 0)) & {sc._mask}")
    votes = " + ".join(
        f"S{c}[row[{2 * num_tables + c}]]" for c in range(num_sc))
    a(f"total = 2 * BIAS[bias_index] + 1 + 2 * ({votes}) + {num_sc}")
    a(f"if {valid}:")
    a(f"    conf = 2 * {ctr} + 1")
    a("    if conf < 0: conf = -conf")
    a("    total += (conf + 1) * (2 if base_pred else -2)")
    a("else:")
    a("    total += 4 if base_pred else -4")
    a("sc_pred = total >= 0")
    a("abs_total = total if total >= 0 else -total")
    a("sc_use = sc_pred != base_pred and abs_total >= threshold")
    a("pred = sc_pred if sc_use else base_pred")


def _emit_loop_lookup(a, loop) -> None:
    a(f"set_index = pcx & {loop._set_mask}")
    a(f"ltag = (pc >> {loop._tag_shift}) & {loop._tag_mask}")
    a("lset = LOOPTAB[set_index]")
    a("l_valid = False")
    a("l_pred = False")
    a("l_hit = False")
    a("l_way = -1")
    a(f"for way in range({loop.ways}):")
    a("    entry = lset[way]")
    a("    if entry.age > 0 and entry.tag == ltag:")
    a("        l_hit = True")
    a("        l_way = way")
    a("        if entry.confidence == 3 and entry.past_iter > 0:")
    a("            l_valid = True")
    a("            exiting = entry.current_iter + 1 >= entry.past_iter")
    a("            l_pred = (not entry.direction) if exiting else entry.direction")
    a("        break")
    a("if l_valid and withloop >= 0:")
    a("    pred = l_pred")


def _emit_count(a, measuring) -> None:
    a("if pred != taken:")
    a("    misp_all += 1")
    if measuring:
        a("    measured_misp += 1")
        a("    per_pc_misp[pc] = misp_get(pc, 0) + 1")


def _emit_loop_train(a, loop) -> None:
    a("if l_valid:")
    a("    if l_pred != base_pred:")
    a("        if l_pred == taken:")
    a(f"            if withloop < {loop._withloop_hi}: withloop += 1")
    a(f"        elif withloop > {loop._withloop_lo}: withloop -= 1")
    a("if l_hit:")
    a("    entry = lset[l_way]")
    a("    if l_valid and l_pred != taken:")
    a("        entry.age = 0")
    a("        entry.confidence = 0")
    a("        entry.current_iter = 0")
    a("    else:")
    a("        if l_valid and entry.age < 255:")
    a("            entry.age = entry.age + 1")
    a("        if taken == entry.direction:")
    a("            entry.current_iter = cur = entry.current_iter + 1")
    a("            if entry.past_iter and cur > entry.past_iter:")
    a("                entry.confidence = 0")
    a("                entry.past_iter = 0")
    a("                entry.current_iter = 0")
    a("        else:")
    a("            observed = entry.current_iter + 1")
    a("            past = entry.past_iter")
    a("            if past == 0:")
    a("                entry.past_iter = observed")
    a("            elif past == observed:")
    a("                if entry.confidence < 3:")
    a("                    entry.confidence = entry.confidence + 1")
    a("            else:")
    a("                entry.past_iter = observed")
    a("                entry.confidence = 0")
    a("            entry.current_iter = 0")
    a("elif base_pred != taken and not taken and loop_chance(1, 4):")
    a("    loop_alloc(pc)")


def _emit_sc_train(a, sc, num_tables) -> None:
    num_sc = len(sc.history_lengths)
    a("final_pred = sc_pred if sc_use else base_pred")
    a("if sc_use:")
    a("    overrides += 1")
    a("    if sc_pred == taken: good_overrides += 1")
    a("if sc_pred != base_pred:")
    a("    if sc_pred == taken:")
    a("        tc -= 1")
    a("        if tc <= -64:")
    a("            tc = 0")
    a("            if threshold > 4: threshold -= 1")
    a("    else:")
    a("        tc += 1")
    a("        if tc >= 64:")
    a("            tc = 0")
    a("            if threshold < 64: threshold += 1")
    a("if final_pred != taken or abs_total < 4 * threshold:")
    a("    v = BIAS[bias_index]")
    a("    if taken:")
    a("        if v < 31: BIAS[bias_index] = v + 1")
    a("    elif v > -32: BIAS[bias_index] = v - 1")
    for c in range(num_sc):
        a(f"    s_i = row[{2 * num_tables + c}]")
        a(f"    v = S{c}[s_i]")
        a("    if taken:")
        a(f"        if v < 31: S{c}[s_i] = v + 1")
        a(f"    elif v > -32: S{c}[s_i] = v - 1")


def _emit_tage_update(a, tage, guarded: bool) -> None:
    """Tage.update inlined; ``guarded`` wraps the provider-counter and
    bimodal updates in ``if not overrode`` (exclusive provider training)."""
    num_tables = tage.config.num_tables
    a("if provider >= 0:")
    a("    if provider_pred != alt_pred:")
    a("        UP = T_USEFUL[provider]")
    a("        if provider_pred == taken:")
    a("            UP[p_idx] = 1")
    a("        else:")
    a("            u = UP[p_idx]")
    a("            if u > 0: UP[p_idx] = u - 1")
    a("        if provider_weak:")
    a(f"            if alt_pred == taken and use_alt < {tage._use_alt_max}:"
      " use_alt += 1")
    a("            elif provider_pred == taken and use_alt > 0: use_alt -= 1")
    g = ""
    if guarded:
        a("    if not overrode:")
        g = "    "
    a(g + "    ctr2 = CP[p_idx]")
    a(g + "    if taken:")
    a(g + f"        if ctr2 < {tage._ctr_hi}: CP[p_idx] = ctr2 + 1")
    a(g + f"    elif ctr2 > {tage._ctr_lo}: CP[p_idx] = ctr2 - 1")
    a(g + "    if provider_weak and alt < 0:")
    a(g + "        v = BIM[bim_i]")
    a(g + "        if taken:")
    a(g + "            if v < 1: BIM[bim_i] = v + 1")
    a(g + "        elif v > -2: BIM[bim_i] = v - 1")
    a("else:")
    if guarded:
        a("    if not overrode:")
    a(g + "    v = BIM[bim_i]")
    a(g + "    if taken:")
    a(g + "        if v < 1: BIM[bim_i] = v + 1")
    a(g + "    elif v > -2: BIM[bim_i] = v - 1")
    a("if t_pred != taken:")
    a(f"    if provider < {num_tables - 1}:")
    a("        start = provider + 1")
    a(f"        if start < {num_tables - 1} and tage_chance(1, 2): start += 1")
    a("        allocated = 0")
    a("        failures = 0")
    a("        t = start")
    a(f"        while t < {num_tables} and allocated"
      f" < {tage.config.max_allocations}:")
    a("            a_idx = row[t]")
    a("            UT = T_USEFUL[t]")
    a("            if UT[a_idx] == 0:")
    a(f"                T_TAGS[t][a_idx] = row[{num_tables} + t]")
    a("                T_CTRS[t][a_idx] = 0 if taken else -1")
    a("                T_VALID[t][a_idx] = True")
    a("                allocated += 1")
    a("                t += 2")
    a("            else:")
    a("                failures += 1")
    a("                t += 1")
    a("        tick += failures - allocated")
    a("        if tick < 0:")
    a("            tick = 0")
    a(f"        elif tick >= {tage.config.tick_threshold}:")
    a("            tick = 0")
    a("            for UT in T_USEFUL:")
    a("                UT[:] = ZEROS")


def _tsl_namespace(tsl: TageScL) -> dict:
    tage, sc, loop = tsl.tage, tsl.sc, tsl.loop
    ns = {
        "tage": tage, "sc": sc, "loop": loop,
        "T_CTRS": tage.ctrs, "T_TAGS": tage.tags, "T_USEFUL": tage.useful,
        "T_VALID": tage._valid,
        "BIM": tage.bimodal.table, "BIAS": sc.bias_table,
        "LOOPTAB": loop.table,
        "loop_chance": loop._rng.chance, "loop_alloc": loop._allocate,
        "tage_chance": tage._rng.chance,
        "ZEROS": [0] * tage._size,
    }
    for t in range(tage.config.num_tables):
        ns[f"TT{t}"] = tage.tags[t]
    for c in range(len(sc.history_lengths)):
        ns[f"S{c}"] = sc.tables[c]
    return ns


_TSL_SCALAR_PREAMBLE = (
    "    use_alt = tage._use_alt",
    "    tick = tage._tick",
    "    threshold = sc.threshold",
    "    tc = sc._tc",
    "    overrides = sc.overrides",
    "    good_overrides = sc.good_overrides",
    "    withloop = loop.withloop",
)

_TSL_SCALAR_EPILOGUE = (
    "    tage._use_alt = use_alt",
    "    tage._tick = tick",
    "    sc.threshold = threshold",
    "    sc._tc = tc",
    "    sc.overrides = overrides",
    "    sc.good_overrides = good_overrides",
    "    loop.withloop = withloop",
)


def _compile_tsl(p: TageScL):
    """Generate ``_sim(pcs, takens, cols, csplit, per_pc_misp)`` for ``p``.

    Inputs are the conditional-branch-only pc/taken columns and the
    precomputed hash matrix; returns ``(measured_misp, misp_all)``.
    """
    tage, sc, loop = p.tage, p.sc, p.loop
    num_tables = tage.config.num_tables
    lines = []
    add = lines.append
    add("def _sim(pcs, takens, cols, csplit, per_pc_misp):")
    lines.extend(_TSL_SCALAR_PREAMBLE)
    add("    misp_all = 0")
    add("    measured_misp = 0")
    add("    misp_get = per_pc_misp.get")
    add("    n = len(pcs)")
    add(f"    CH = {_CHUNK}")

    def body(measuring):
        b = []
        a = b.append
        _emit_tage_lookup(a, tage)
        a("base_pred = t_pred")
        _emit_sc_lookup(a, sc, num_tables)
        _emit_loop_lookup(a, loop)
        _emit_count(a, measuring)
        _emit_loop_train(a, loop)
        _emit_sc_train(a, sc, num_tables)
        _emit_tage_update(a, tage, guarded=False)
        return ["            " + x for x in b]

    add("    for lo in range(0, csplit, CH):")
    add("        hi = lo + CH")
    add("        if hi > csplit: hi = csplit")
    add("        for pc, taken, row in zip(pcs[lo:hi].tolist(),"
        " takens[lo:hi].tolist(), cols[lo:hi].tolist()):")
    lines.extend(body(False))
    add("    for lo in range(csplit, n, CH):")
    add("        hi = lo + CH")
    add("        if hi > n: hi = n")
    add("        for pc, taken, row in zip(pcs[lo:hi].tolist(),"
        " takens[lo:hi].tolist(), cols[lo:hi].tolist()):")
    lines.extend(body(True))
    lines.extend(_TSL_SCALAR_EPILOGUE)
    add("    return measured_misp, misp_all")

    namespace = _tsl_namespace(p)
    exec(compile("\n".join(lines), "<array-sim-tsl>", "exec"), namespace)
    return namespace["_sim"]


def _compile_gshare(p: GShare):
    """Generate ``_sim(pcs, takens, idx, csplit, per_pc_misp)`` for gshare."""
    lines = []
    add = lines.append
    add("def _sim(pcs, takens, idx, csplit, per_pc_misp):")
    add("    misp_all = 0")
    add("    measured_misp = 0")
    add("    misp_get = per_pc_misp.get")
    add("    n = len(pcs)")
    add(f"    CH = {_CHUNK}")

    def body(measuring):
        b = []
        a = b.append
        a("v = TBL[i]")
        a("if (v >= 0) != taken:")
        a("    misp_all += 1")
        if measuring:
            a("    measured_misp += 1")
            a("    per_pc_misp[pc] = misp_get(pc, 0) + 1")
        a("if taken:")
        a("    if v < 1: TBL[i] = v + 1")
        a("elif v > -2: TBL[i] = v - 1")
        return ["            " + x for x in b]

    add("    for lo in range(0, csplit, CH):")
    add("        hi = lo + CH")
    add("        if hi > csplit: hi = csplit")
    add("        for pc, taken, i in zip(pcs[lo:hi].tolist(),"
        " takens[lo:hi].tolist(), idx[lo:hi].tolist()):")
    lines.extend(body(False))
    add("    for lo in range(csplit, n, CH):")
    add("        hi = lo + CH")
    add("        if hi > n: hi = n")
    add("        for pc, taken, i in zip(pcs[lo:hi].tolist(),"
        " takens[lo:hi].tolist(), idx[lo:hi].tolist()):")
    lines.extend(body(True))
    add("    return measured_misp, misp_all")

    namespace = {"TBL": p.table}
    exec(compile("\n".join(lines), "<array-sim-gshare>", "exec"), namespace)
    return namespace["_sim"]


def _compile_bimode(p: BiMode):
    """Generate ``_sim(pcs, takens, cols, csplit, per_pc_misp)`` for bimode.

    ``cols`` holds ``[choice_index, direction_index]`` per conditional
    branch (:func:`repro.sim.columns.bimode_columns`); the body is
    ``BiMode.predict`` + ``train`` with the bank selected into a local.
    """
    lines = []
    add = lines.append
    add("def _sim(pcs, takens, cols, csplit, per_pc_misp):")
    add("    misp_all = 0")
    add("    measured_misp = 0")
    add("    misp_get = per_pc_misp.get")
    add("    n = len(pcs)")
    add("    ci_col = cols[:, 0]")
    add("    di_col = cols[:, 1]")
    add(f"    CH = {_CHUNK}")

    def body(measuring):
        b = []
        a = b.append
        a("cv = CHOICE[ci]")
        a("ct = cv >= 0")
        a("B = TB if ct else NB")
        a("v = B[di]")
        a("if (v >= 0) != taken:")
        a("    misp_all += 1")
        if measuring:
            a("    measured_misp += 1")
            a("    per_pc_misp[pc] = misp_get(pc, 0) + 1")
        # Choice trains toward the outcome unless it missed but the
        # selected bank covered for it (BiMode.train).
        a("if not (ct != taken and (v >= 0) == taken):")
        a("    if taken:")
        a("        if cv < 1: CHOICE[ci] = cv + 1")
        a("    elif cv > -2: CHOICE[ci] = cv - 1")
        a("if taken:")
        a("    if v < 1: B[di] = v + 1")
        a("elif v > -2: B[di] = v - 1")
        return ["            " + x for x in b]

    for first, lo_expr, hi_expr in ((True, "0, csplit", "csplit"),
                                    (False, "csplit, n", "n")):
        add(f"    for lo in range({lo_expr}, CH):")
        add("        hi = lo + CH")
        add(f"        if hi > {hi_expr}: hi = {hi_expr}")
        add("        for pc, taken, ci, di in zip(pcs[lo:hi].tolist(),"
            " takens[lo:hi].tolist(), ci_col[lo:hi].tolist(),"
            " di_col[lo:hi].tolist()):")
        lines.extend(body(not first))
    add("    return measured_misp, misp_all")

    namespace = {"CHOICE": p.choice, "TB": p.taken_bank,
                 "NB": p.nottaken_bank}
    exec(compile("\n".join(lines), "<array-sim-bimode>", "exec"), namespace)
    return namespace["_sim"]


def _compile_perceptron(p: HashedPerceptron):
    """Generate ``_sim(pcs, takens, cols, csplit, per_pc_misp)``.

    ``cols`` holds one table index per column
    (:func:`repro.sim.columns.percep_columns`); the dot product, the
    threshold test and the per-table saturating updates are unrolled
    with the weight lists bound by identity.
    """
    num_tables = p.config.tables
    theta = p._theta
    wmin, wmax = p._wmin, p._wmax
    idx_names = [f"i{t}" for t in range(num_tables)]

    lines = []
    add = lines.append
    add("def _sim(pcs, takens, cols, csplit, per_pc_misp):")
    add("    misp_all = 0")
    add("    measured_misp = 0")
    add("    misp_get = per_pc_misp.get")
    add("    n = len(pcs)")
    for t in range(num_tables):
        add(f"    c{t} = cols[:, {t}]")
    add(f"    CH = {_CHUNK}")

    def body(measuring):
        b = []
        a = b.append
        a("total = " + " + ".join(
            f"W{t}[i{t}]" for t in range(num_tables)))
        a("if (total >= 0) != taken:")
        a("    misp_all += 1")
        if measuring:
            a("    measured_misp += 1")
            a("    per_pc_misp[pc] = misp_get(pc, 0) + 1")
        # Threshold training: update on a miss or a weak (|sum|<=theta)
        # hit; +1 steps can only violate the upper clamp, -1 the lower.
        a(f"if (total >= 0) != taken or {-theta} <= total <= {theta}:")
        a("    if taken:")
        for t in range(num_tables):
            a(f"        w = W{t}[i{t}] + 1")
            a(f"        if w <= {wmax}: W{t}[i{t}] = w")
        a("    else:")
        for t in range(num_tables):
            a(f"        w = W{t}[i{t}] - 1")
            a(f"        if w >= {wmin}: W{t}[i{t}] = w")
        return ["            " + x for x in b]

    zip_args = ", ".join(f"c{t}[lo:hi].tolist()" for t in range(num_tables))
    for first, lo_expr, hi_expr in ((True, "0, csplit", "csplit"),
                                    (False, "csplit, n", "n")):
        add(f"    for lo in range({lo_expr}, CH):")
        add("        hi = lo + CH")
        add(f"        if hi > {hi_expr}: hi = {hi_expr}")
        add(f"        for pc, taken, {', '.join(idx_names)} in zip("
            f"pcs[lo:hi].tolist(), takens[lo:hi].tolist(), {zip_args}):")
        lines.extend(body(not first))
    add("    return measured_misp, misp_all")

    namespace = {f"W{t}": p.tables[t] for t in range(num_tables)}
    exec(compile("\n".join(lines), "<array-sim-percep>", "exec"), namespace)
    return namespace["_sim"]


def _compile_llbp(p: LLBPTageScL):
    """Generate ``_sim(pcs, types, takens, gaps, rows, split, per_pc_misp)``.

    Iterates *all* records (the prefetch clock advances per record and
    context-forming branches push the RCR); ``rows`` yields one combined
    column row per conditional branch — TAGE indices/tags, SC indices,
    then the 16 LLBP slot tags starting at ``SBASE``.
    """
    tsl = p.tsl
    tage, sc, loop = tsl.tage, tsl.sc, tsl.loop
    num_tables = tage.config.num_tables
    num_sc = len(sc.history_lengths)
    slot_base = 2 * num_tables + num_sc
    pb_sets = p.buffer.num_sets
    cd_sets = p.directory.num_sets
    exclusive = p.config.exclusive_provider_training
    weak_guard = p.config.weak_override_guard
    timing = p.config.simulate_timing
    ps_hi = (1 << (p.config.counter_bits - 1)) - 1
    ps_lo = -(1 << (p.config.counter_bits - 1))

    shift = p.config.position_shift
    out_shift = p.rcr._out_shift
    cid_bits = p.config.cid_bits
    cid_mask = p.rcr._mask
    distance = p.config.prefetch_distance
    # issue() can only be flattened when the directory probe is
    # side-effect free (LRU reorders on lookup) and delivery is
    # deferred (zero latency delivers inline via _deliver).
    inline_issue = (p.prefetcher.latency != 0
                    and p.config.cd_replacement != "lru")

    lines = []
    add = lines.append
    add("def _sim(pcs, types, takens, gaps, rows, split, per_pc_misp):")
    lines.extend(_TSL_SCALAR_PREAMBLE)
    add("    now = P._now")
    add("    acc_pf = RCR._acc_pf")
    add("    acc_cur = RCR._acc_cur")
    add("    ccid = RCR.ccid")
    add("    pf_cid = RCR.prefetch_cid")
    add("    misp_all = 0")
    add("    measured_misp = 0")
    add("    misp_get = per_pc_misp.get")
    add("    pb_hits = 0")
    add("    pb_misses = 0")
    add("    pb_miss_ctx = 0")
    add("    llbp_provided = 0")
    add("    no_override = 0")
    add("    c_good = 0")
    add("    c_bad = 0")
    add("    c_both_correct = 0")
    add("    c_both_wrong = 0")
    add("    cd_acc = 0")
    add("    pf_issued = 0")
    add("    pf_dmiss = 0")
    add("    pf_squash = 0")
    add("    next_row = rows.__next__")
    add("    n = len(pcs)")
    add(f"    CH = {_CHUNK}")

    def cond_body(measuring):
        b = []
        a = b.append
        a("row = next_row()")
        # -- pattern buffer probe (PatternBuffer.get + miss accounting) --
        a(f"pbs = PB_SETS[ccid % {pb_sets}]")
        a("ps = pbs.get(ccid)")
        a("slot = -1")
        a("if ps is None:")
        a("    pb_misses += 1")
        a(f"    if ccid in CD_SETS[ccid % {cd_sets}]:")
        a("        pb_miss_ctx += 1")
        a("else:")
        a("    pb_hits += 1")
        a("    del pbs[ccid]")
        a("    pbs[ccid] = ps")
        # PatternSet.find_longest against the precomputed slot tags —
        # only the valid slots (ps.vdesc) are scanned.
        a("    ps_tags = ps.tags")
        a("    ps_hsl = ps.hslots")
        a("    for i in ps.vdesc:")
        a(f"        if ps_tags[i] == row[{slot_base} + ps_hsl[i]]:")
        a("            slot = i")
        a("            break")
        _emit_tage_lookup(a, tage)
        # -- override arbitration (LLBPTageScL.predict) --
        a("overrode = False")
        a("llbp_rank = 0")
        a("if slot >= 0:")
        a("    ps_ctrs = ps.ctrs")
        a("    llbp_ctr = ps_ctrs[slot]")
        a("    llbp_pred = llbp_ctr >= 0")
        a("    llbp_rank = SRANK[ps_hsl[slot]]")
        a("    llbp_provided += 1")
        a("    overrode = llbp_rank >= provider + 1")
        if weak_guard:
            a("    if overrode and (llbp_ctr == 0 or llbp_ctr == -1)"
              " and provider >= 0 and not provider_weak:")
            a("        overrode = False")
        a("    if not overrode:")
        a("        no_override += 1")
        a("if overrode:")
        a("    base_pred = llbp_pred")
        a("    sc_ctr = llbp_ctr")
        a("    sc_valid = True")
        a("else:")
        a("    base_pred = t_pred")
        a("    sc_ctr = provider_ctr")
        a("    sc_valid = provider_valid")
        _emit_sc_lookup(a, sc, num_tables, ctr="sc_ctr", valid="sc_valid")
        _emit_loop_lookup(a, loop)
        _emit_count(a, measuring)
        # -- training (LLBPTageScL.train) --
        a("if slot >= 0:")
        a("    if overrode:")
        a("        if llbp_pred == taken:")
        a("            if t_pred == taken: c_both_correct += 1")
        a("            else: c_good += 1")
        a("        elif t_pred != taken: c_both_wrong += 1")
        a("        else: c_bad += 1")
        # PatternSet.update_counter: under exclusive provider training
        # only the overriding pattern trains, so the block nests inside
        # the `if overrode:` branch above.
        ui = "        " if exclusive else "    "
        a(ui + "c = ps_ctrs[slot]")
        a(ui + "if taken:")
        a(ui + f"    if c < {ps_hi}:")
        a(ui + "        ps_ctrs[slot] = c + 1")
        a(ui + "        ps.dirty = True")
        a(ui + f"elif c > {ps_lo}:")
        a(ui + "    ps_ctrs[slot] = c - 1")
        a(ui + "    ps.dirty = True")
        _emit_loop_train(a, loop)
        _emit_sc_train(a, sc, num_tables)
        _emit_tage_update(a, tage, guarded=exclusive)
        # -- pattern allocation on base (provider) misprediction --
        a("if base_pred != taken:")
        a(f"    llbp_alloc(pc, taken, ccid, ps, row[{slot_base}:],"
          " llbp_rank if overrode else provider + 1, now)")
        if timing:
            # Final misprediction: squash and re-run the prefetch
            # pipeline.  cid_at(0) is the CCID and cid_at(D) the
            # prefetch CID — both already live in locals, so only the
            # intermediate distances pay the full window rehash.
            a("if pred != taken:")
            a("    pf_squash += len(INFLIGHT)")
            a("    INFLIGHT.clear()")
            reissue = ["ccid"]
            reissue += [f"cid_at({d})" for d in range(1, distance)]
            if distance:
                reissue.append("pf_cid")
            for cid_expr in reissue:
                if inline_issue:
                    a(f"    cid = {cid_expr}")
                    a(f"    if cid not in PB_SETS[cid % {pb_sets}]:")
                    a(f"        if cid in CD_SETS[cid % {cd_sets}]:")
                    a("            pf_issued += 1")
                    a(f"            INFLIGHT.append((now + {p.prefetcher.latency}, cid))")
                    a("        else:")
                    a("            pf_dmiss += 1")
                else:
                    a(f"    issue({cid_expr}, now)")
        return ["                " + x for x in b]

    def record_lines(measuring, stop):
        out = []
        out.append(f"    for lo in range(" +
                   ("0, split, CH):" if not measuring else "split, n, CH):"))
        out.append("        hi = lo + CH")
        out.append(f"        if hi > {stop}: hi = {stop}")
        out.append("        for pc, btype, taken, gap in zip("
                   "pcs[lo:hi].tolist(), types[lo:hi].tolist(),"
                   " takens[lo:hi].tolist(), gaps[lo:hi].tolist()):")
        # LLBPTageScL.advance: clock + prefetch arrivals.
        out.append("            now += gap")
        out.append("            if INFLIGHT and INFLIGHT[0][0] <= now:")
        out.append("                drain(now)")
        out.append("            if btype == 0:")
        out.extend(cond_body(measuring))
        # update_history tail: RCR.push inlined (history folds are never
        # advanced — the columns already hold their values), then the
        # prefetch issue with PrefetchEngine.issue's buffer-hit fast
        # path hoisted out of the call.
        out.append("            if QUAL[btype]:")
        out.append("                value = acc_pf = ("
                   f"(acc_pf << {shift})"
                   f" ^ ((RPCS[{distance}] >> 2) << {out_shift})"
                   " ^ (pc >> 2))")
        out.append("                pf_cid = (value ^ (value"
                   f" >> {cid_bits}) ^ (value >> {2 * cid_bits}))"
                   f" & {cid_mask}")
        if distance:
            out.append("                old_ccid = ccid")
            out.append("                value = acc_cur = ("
                       f"(acc_cur << {shift})"
                       f" ^ ((RPCS[0] >> 2) << {out_shift})"
                       f" ^ (RPCS[-{distance}] >> 2))")
            out.append("                ccid = (value ^ (value"
                       f" >> {cid_bits}) ^ (value >> {2 * cid_bits}))"
                       f" & {cid_mask}")
            out.append("                if ccid != old_ccid:")
            out.append("                    cd_acc += 1")
        else:
            out.append("                if pf_cid != ccid:")
            out.append("                    cd_acc += 1")
            out.append("                ccid = pf_cid")
        out.append("                RPCS.append(pc)")
        out.append("                del RPCS[0]")
        out.append(f"                if pf_cid not in PB_SETS[pf_cid % {pb_sets}]:")
        if inline_issue:
            # PrefetchEngine.issue flattened: the directory probe is a
            # plain membership test (confidence replacement never
            # reorders on lookup) and the arrival append is the only
            # side effect; counters batch into the epilogue.
            out.append(f"                    if pf_cid in CD_SETS[pf_cid % {cd_sets}]:")
            out.append("                        pf_issued += 1")
            out.append(f"                        INFLIGHT.append((now + {p.prefetcher.latency}, pf_cid))")
            out.append("                    else:")
            out.append("                        pf_dmiss += 1")
        else:
            out.append("                    issue(pf_cid, now)")
        return out

    lines.extend(record_lines(False, "split"))
    lines.extend(record_lines(True, "n"))
    lines.extend(_TSL_SCALAR_EPILOGUE)
    add("    RCR._acc_pf = acc_pf")
    add("    RCR._acc_cur = acc_cur")
    add("    RCR.ccid = ccid")
    add("    RCR.prefetch_cid = pf_cid")
    add("    P._now = now")
    add("    P._cd_accesses += cd_acc")
    add("    BUF.hits += pb_hits")
    add("    BUF.misses += pb_misses")
    add("    PF.issued += pf_issued")
    add("    PF.directory_misses += pf_dmiss")
    add("    PF.squashed += pf_squash")
    add("    counts = P.counts")
    add("    counts['llbp_provided'] += llbp_provided")
    add("    counts['no_override'] += no_override")
    add("    counts['override_good'] += c_good")
    add("    counts['override_bad'] += c_bad")
    add("    counts['override_both_correct'] += c_both_correct")
    add("    counts['override_both_wrong'] += c_both_wrong")
    add("    counts['pb_miss_with_context'] += pb_miss_ctx")
    add("    return measured_misp, misp_all")

    namespace = _tsl_namespace(tsl)
    namespace.update({
        "P": p,
        "BUF": p.buffer,
        "PB_SETS": p.buffer._sets,
        "CD_SETS": p.directory._sets,
        "RCR": p.rcr,
        "RPCS": p.rcr._pcs,
        "PF": p.prefetcher,
        "cid_at": p.rcr.cid_at,
        "issue": p.prefetcher.issue,
        "squash": p.prefetcher.squash,
        "drain": p.prefetcher.drain,
        "INFLIGHT": p.prefetcher._inflight,
        "llbp_alloc": p._allocate_parts,
        "SRANK": p._slot_rank,
        "QUAL": tuple(p.rcr.qualifies(t) for t in range(8)),
    })
    exec(compile("\n".join(lines), "<array-sim-llbp>", "exec"), namespace)
    return namespace["_sim"]


# -- driver ------------------------------------------------------------------

def _iter_rows(cols: np.ndarray, chunk: int = _CHUNK):
    return chain.from_iterable(
        cols[lo:lo + chunk].tolist() for lo in range(0, len(cols), chunk))


def _outcome_history(takens_cond: np.ndarray, history_bits: int,
                     hist_mask: int) -> int:
    """The global outcome-shift register after the whole trace.

    The fused loops read history from precomputed columns; rebuild the
    register from the last ``history_bits`` conditional outcomes exactly
    as per-branch shifting would have left it.
    """
    history = 0
    for taken in takens_cond[-history_bits:].tolist():
        history = ((history << 1) | taken) & hist_mask
    return history


def _restore_sc_history(sc, takens_cond: np.ndarray) -> None:
    """Re-derive the corrector's 64-bit outcome history after a run.

    The fused loops never advance it (every value it feeds is
    precomputed in the columns), but it is part of the predictor's
    post-run state, so rebuild it from the last 64 conditional outcomes
    exactly as per-branch shifting would have left it.
    """
    if sc is None:
        return
    history = 0
    for taken in takens_cond[-64:].tolist():
        history = ((history << 1) | taken)
    sc.history = history & ((1 << 64) - 1)


def _per_pc_executions(pcs_measured: np.ndarray) -> Dict[int, int]:
    """Execution counts per PC, dict-ordered by first execution.

    Matches the Python engine's insertion order: ``np.unique`` returns
    each PC's first occurrence index, and sorting by it reproduces the
    order the serial loop first saw each PC.
    """
    if len(pcs_measured) == 0:
        return {}
    uniq, first, counts = np.unique(
        pcs_measured, return_index=True, return_counts=True)
    order = np.argsort(first, kind="stable")
    return dict(zip(uniq[order].tolist(), counts[order].tolist()))


def run_simulation_array(
    trace: Trace,
    predictor: BranchPredictor,
    warmup_instructions: Optional[int] = None,
    collect_per_pc: bool = False,
) -> SimulationResult:
    """Array-engine counterpart of :func:`repro.sim.engine.run_simulation`.

    Raises ``ValueError`` for unsupported predictors — the dispatcher in
    :mod:`repro.sim.engine` checks :func:`unsupported_reason` first and
    falls back to the Python engine instead.
    """
    from repro.sim.engine import DEFAULT_WARMUP_FRACTION

    reason = unsupported_reason(predictor)
    if reason is not None:
        raise ValueError(f"array engine cannot run this predictor: {reason}")

    if warmup_instructions is None:
        warmup_instructions = int(
            trace.num_instructions * DEFAULT_WARMUP_FRACTION)

    n = len(trace)
    if n:
        cumulative = np.cumsum(trace.gaps, dtype=np.int64)
        total_instructions = int(cumulative[-1])
        split = int(np.searchsorted(
            cumulative, warmup_instructions, side="right"))
    else:
        total_instructions = 0
        split = 0

    if n and split >= n:
        warnings.warn(
            f"warmup ({warmup_instructions} instructions) consumed the entire "
            f"trace {trace.name!r} ({total_instructions} instructions); the "
            "measured region is empty and all statistics will be zero",
            RuntimeWarning,
            stacklevel=2,
        )

    cond_mask = trace.types == 0
    pcs_cond = trace.pcs[cond_mask]
    takens_cond = trace.takens[cond_mask]
    n_cond = len(pcs_cond)
    csplit = int(cond_mask[:split].sum())

    predictor_name = getattr(predictor, "name", type(predictor).__name__)
    telemetry_on = telemetry.enabled()
    start = time.perf_counter() if telemetry_on else 0.0

    per_pc_misp: Dict[int, int] = {}
    if type(predictor) is GShare:
        idx = columns_mod.gshare_columns(trace, predictor)
        sim = _compile_gshare(predictor)
        measured_misp, misp_all = sim(
            pcs_cond, takens_cond, idx, csplit, per_pc_misp)
        # The fused loop reads history from the column; re-derive the
        # final register value so predictor state matches the oracle.
        predictor.history = _outcome_history(
            takens_cond, predictor.history_bits, predictor._hist_mask)
    elif type(predictor) is BiMode:
        cols = columns_mod.bimode_columns(trace, predictor)
        sim = _compile_bimode(predictor)
        measured_misp, misp_all = sim(
            pcs_cond, takens_cond, cols, csplit, per_pc_misp)
        predictor.history = _outcome_history(
            takens_cond, predictor.config.history_bits, predictor._hist_mask)
    elif type(predictor) is HashedPerceptron:
        cols = columns_mod.percep_columns(trace, predictor)
        sim = _compile_perceptron(predictor)
        measured_misp, misp_all = sim(
            pcs_cond, takens_cond, cols, csplit, per_pc_misp)
        predictor.history = _outcome_history(
            takens_cond, predictor.config.history_bits, predictor._hist_mask)
    elif type(predictor) is TageScL:
        cols = columns_mod.tsl_columns(trace, predictor)
        sim = _compile_tsl(predictor)
        measured_misp, misp_all = sim(
            pcs_cond, takens_cond, cols, csplit, per_pc_misp)
        _restore_sc_history(predictor.sc, takens_cond)
    else:
        tsl_cols, slot_cols = columns_mod.llbp_columns(trace, predictor)
        # The fused loop wants one row per branch; memoise the combined
        # matrix (in-memory only — the store keeps the two parts).
        combined_key = (columns_mod.tsl_key(predictor.tsl) + "+" +
                        columns_mod.llbp_key(predictor))
        cols = trace.aux.get(combined_key)
        if cols is None:
            cols = np.concatenate([tsl_cols, slot_cols], axis=1)
            trace.aux[combined_key] = cols
        sim = _compile_llbp(predictor)
        measured_misp, misp_all = sim(
            trace.pcs, trace.types, trace.takens, trace.gaps,
            _iter_rows(cols), split, per_pc_misp)
        predictor.counts["predictions"] += n_cond
        _restore_sc_history(predictor.tsl.sc, takens_cond)

    # Per-branch stats the fused loops account for in bulk.
    predictor.stats.lookups += n_cond
    predictor.stats.mispredictions += misp_all

    per_pc_exec: Dict[int, int] = {}
    if collect_per_pc:
        per_pc_exec = _per_pc_executions(pcs_cond[csplit:])
    else:
        per_pc_misp = {}

    if telemetry_on:
        telemetry.emit(
            "sim.run", workload=trace.name, predictor=predictor_name,
            engine="array", branches=n, instructions=total_instructions,
            mispredictions=measured_misp,
            seconds=time.perf_counter() - start)

    branches = n - split
    cond_branches = n_cond - csplit if split < n else 0

    if split < n:
        measured_instr_start = int(cumulative[split - 1]) if split else 0
    else:
        measured_instr_start = total_instructions

    finalize = getattr(predictor, "finalize_stats", None)
    if finalize is not None:
        finalize()

    return SimulationResult(
        extra=dict(predictor.stats.extra),
        workload=trace.name,
        predictor=predictor_name,
        instructions=total_instructions - measured_instr_start,
        warmup_instructions=measured_instr_start,
        branches=branches,
        cond_branches=cond_branches,
        mispredictions=measured_misp,
        per_pc_mispredictions=per_pc_misp,
        per_pc_executions=per_pc_exec,
    )
