"""Analytic core timing model (paper Table II, Figs 1 and 10).

A full cycle-accurate core is outside this reproduction's scope (the
paper itself notes ChampSim's core model is limited, §VII-B).  Figures 1
and 10 only need two quantities — cycles wasted on conditional-branch
mispredictions and speedup as a function of MPKI — which a top-down
analytic model captures:

    cycles = base_cpi * instructions + penalty * mispredictions

``base_cpi`` is the misprediction-free CPI of the modelled 6-wide core on
server code (calibrated so the 64K TSL baseline wastes ~9% of cycles at
~2.9 MPKI, matching the paper's Sapphire Rapids measurement), and
``penalty`` is the pipeline-flush cost per misprediction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.results import SimulationResult


@dataclass(frozen=True)
class CoreParams:
    """Simulated core parameters (paper Table II plus timing calibration)."""

    frequency_ghz: float = 4.0
    fetch_width: int = 6
    rob_entries: int = 512
    lq_entries: int = 248
    sq_entries: int = 122
    btb_entries: int = 16384
    btb_ways: int = 8
    l1i_kib: int = 32
    l1i_ways: int = 8
    l1d_kib: int = 48
    l1d_ways: int = 12
    l2_mib: int = 2
    llc_mib: int = 8
    # Timing calibration (see module docstring).
    base_cpi: float = 0.57
    mispredict_penalty: float = 20.0

    def describe(self) -> str:
        return (
            f"{self.frequency_ghz:g}GHz, {self.fetch_width}-way OoO, "
            f"{self.rob_entries} ROB, {self.lq_entries}/{self.sq_entries} LQ/SQ, "
            f"{self.btb_entries // 1024}K-entry {self.btb_ways}-way BTB, "
            f"{self.l1i_kib}KiB L1-I, {self.l1d_kib}KiB L1-D, "
            f"{self.l2_mib}MiB L2, {self.llc_mib}MiB LLC"
        )


@dataclass
class TimingResult:
    """Timing outcome of one simulation under the analytic core model."""

    instructions: int
    base_cycles: float
    mispredict_cycles: float

    @property
    def cycles(self) -> float:
        return self.base_cycles + self.mispredict_cycles

    @property
    def cpi(self) -> float:
        return self.cycles / self.instructions if self.instructions else 0.0

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def wasted_fraction(self) -> float:
        """Fraction of cycles lost to conditional mispredictions (Fig 1)."""
        total = self.cycles
        return self.mispredict_cycles / total if total else 0.0

    def speedup_over(self, baseline: "TimingResult") -> float:
        """Speedup of self relative to ``baseline`` (>1 means faster)."""
        if self.cycles <= 0:
            return 0.0
        return baseline.cycles / self.cycles


class CoreModel:
    """Applies :class:`CoreParams` timing to simulation results."""

    def __init__(self, params: CoreParams = CoreParams()) -> None:
        self.params = params

    def timing(self, result: SimulationResult) -> TimingResult:
        return self.timing_from_counts(result.instructions, result.mispredictions)

    def timing_from_counts(self, instructions: int,
                           mispredictions: int) -> TimingResult:
        if instructions < 0 or mispredictions < 0:
            raise ValueError("counts must be non-negative")
        return TimingResult(
            instructions=instructions,
            base_cycles=self.params.base_cpi * instructions,
            mispredict_cycles=self.params.mispredict_penalty * mispredictions,
        )

    def wasted_fraction_from_mpki(self, mpki: float) -> float:
        """Closed-form Fig 1 metric from an MPKI value alone."""
        per_kilo = self.params.base_cpi * 1000.0
        wasted = self.params.mispredict_penalty * mpki
        return wasted / (per_kilo + wasted)
