"""L1 instruction cache model — Fig 11's bandwidth yardstick.

The paper compares LLBP's pattern-set fill traffic against the traffic
between the L1-I and L2 (512 bits per miss, demand plus next-line
prefetch).  The instruction stream is reconstructed from the branch
trace: the ``gap`` instructions retired before a branch at ``pc`` occupy
the sequential address run ending at that branch.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.assoc import SetAssociative
from repro.traces.trace import Trace
from repro.workloads.program import INSTR_BYTES

LINE_BITS = 512  # 64-byte lines


class InstructionCache:
    """Set-associative I-cache with next-line prefetch on miss."""

    def __init__(self, size_kib: int = 32, ways: int = 8,
                 line_bytes: int = 64) -> None:
        if size_kib <= 0 or ways <= 0 or line_bytes <= 0:
            raise ValueError("cache geometry must be positive")
        num_lines = size_kib * 1024 // line_bytes
        if num_lines % ways:
            raise ValueError("size/ways/line combination is not integral")
        self.line_bytes = line_bytes
        self._lines: SetAssociative[bool] = SetAssociative(num_lines // ways, ways)
        self.demand_misses = 0
        self.prefetch_fills = 0
        self.accesses = 0

    def fetch_line(self, line_addr: int) -> None:
        """Demand-fetch one line; prefetch the next on a miss."""
        self.accesses += 1
        if self._lines.get(line_addr) is None:
            self.demand_misses += 1
            self._lines.insert(line_addr, True)
            if self._lines.peek(line_addr + 1) is None:
                self.prefetch_fills += 1
                self._lines.insert(line_addr + 1, True)

    def fetch_range(self, start: int, end: int) -> None:
        """Fetch every line overlapping byte addresses ``[start, end]``."""
        line = start // self.line_bytes
        last = end // self.line_bytes
        while line <= last:
            self.fetch_line(line)
            line += 1

    @property
    def miss_traffic_bits(self) -> int:
        return (self.demand_misses + self.prefetch_fills) * LINE_BITS


@dataclass
class ICacheResult:
    """Traffic summary of an I-cache walk over a trace."""

    instructions: int
    demand_misses: int
    prefetch_fills: int

    @property
    def traffic_bits(self) -> int:
        return (self.demand_misses + self.prefetch_fills) * LINE_BITS

    @property
    def bits_per_instruction(self) -> float:
        if self.instructions <= 0:
            return 0.0
        return self.traffic_bits / self.instructions

    @property
    def mpki(self) -> float:
        if self.instructions <= 0:
            return 0.0
        return 1000.0 * self.demand_misses / self.instructions


def simulate_icache(trace: Trace, size_kib: int = 32, ways: int = 8,
                    line_bytes: int = 64,
                    warmup_instructions: int = 0) -> ICacheResult:
    """Walk the reconstructed fetch stream of ``trace`` through an L1-I."""
    cache = InstructionCache(size_kib, ways, line_bytes)
    instructions = 0
    measured_instructions = 0
    base_misses = 0
    base_prefetches = 0

    for pc, _btype, _taken, _target, gap in trace.iter_tuples():
        instructions += gap
        if instructions > warmup_instructions and measured_instructions == 0:
            base_misses = cache.demand_misses
            base_prefetches = cache.prefetch_fills
            measured_instructions = 1  # mark measurement started
        # The gap instructions end at this branch: sequential run.
        start = pc + INSTR_BYTES - gap * INSTR_BYTES
        cache.fetch_range(max(0, start), pc)

    measured = instructions - warmup_instructions if instructions > warmup_instructions else 0
    return ICacheResult(
        instructions=measured,
        demand_misses=cache.demand_misses - base_misses,
        prefetch_fills=cache.prefetch_fills - base_prefetches,
    )
