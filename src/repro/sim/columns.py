"""Precomputed per-branch hash/fold columns for the array engine.

Every index, tag and fold the predictors hash per branch is a pure
function of (trace stream, predictor geometry) — it depends on the
history *bits*, never on predictions or table contents.  That makes the
whole hashing layer precomputable: one recorder pass over the trace with
a fresh predictor of the right geometry captures, per conditional
branch, every TAGE table index and tag, every SC component index, and
every LLBP slot tag.  The fused simulation loops then consume these as
flat integer rows and never touch the folded-history machinery at all.

Columns are memoised on ``Trace.aux`` (keyed by a digest of the
geometry) and, when the trace came from the packed store
(:mod:`repro.traces.store`), persisted back into the trace file as aux
sections — precompute once, reuse across every run and process.  An old
store file lacking the columns emits ``trace.store_stale`` and is
transparently upgraded in place.

The scalar reference implementations these columns must match are the
predictors' own ``compute_index`` / ``compute_tag`` /
``compute_slot_tags`` / ``_component_index`` methods; the property
tests in ``tests/sim/test_columns.py`` pin that equivalence.
"""

from __future__ import annotations

import hashlib
import time
from typing import Optional, Tuple

import numpy as np

from repro import telemetry
from repro.predictors.history import PATH_BITS
from repro.traces.trace import Trace


def _digest(*parts) -> str:
    return hashlib.sha256(repr(parts).encode()).hexdigest()[:16]


def tsl_key(tsl) -> str:
    """Aux key of the TAGE+SC column matrix for ``tsl``'s geometry."""
    tage_cfg = tsl.tage.config
    return "cols/tsl:" + _digest(
        tuple(tage_cfg.history_lengths), tage_cfg.index_bits,
        tage_cfg.tag_bits, PATH_BITS,
        tuple(tsl.sc.history_lengths), tsl.sc.index_bits)


def llbp_key(predictor) -> str:
    """Aux key of the LLBP slot-tag matrix for ``predictor``'s geometry."""
    return "cols/llbp:" + _digest(
        tuple(predictor.config.slot_lengths),
        predictor.config.pattern_tag_bits)


def gshare_key(predictor) -> str:
    return f"cols/gshare:{predictor.index_bits}:{predictor.history_bits}"


def bimode_key(predictor) -> str:
    cfg = predictor.config
    return (f"cols/bimode:{cfg.choice_bits}:{cfg.direction_bits}"
            f":{cfg.history_bits}")


def percep_key(predictor) -> str:
    cfg = predictor.config
    # weight_bits / threshold never enter the index computation.
    return f"cols/percep:{cfg.tables}:{cfg.row_bits}:{cfg.history_bits}"


def _column_dtype(max_bits: int):
    return np.uint16 if max_bits <= 16 else np.uint32


def gshare_index_column(trace: Trace, index_bits: int,
                        history_bits: int) -> np.ndarray:
    """The gshare table index of every conditional branch, vectorised.

    Bit ``k`` of the history at conditional branch ``i`` is the outcome
    of conditional branch ``i - 1 - k`` (gshare shifts outcomes in for
    conditional branches only), so each history bit-lane is a shifted
    copy of the taken column.  Equivalent to replaying
    ``GShare._index`` / ``update_history`` per branch.
    """
    pcs, hist = _cond_history_lanes(trace, history_bits)
    idx = ((pcs >> np.uint64(2)) ^ hist) & np.uint64((1 << index_bits) - 1)
    return idx.astype(np.uint32)


def _cond_history_lanes(trace: Trace,
                        history_bits: int) -> Tuple[np.ndarray, np.ndarray]:
    """``(pcs, hist)`` per conditional branch for outcome-shift histories.

    ``hist[i]`` is the global history register (conditional outcomes
    only, newest in bit 0) as seen *before* conditional branch ``i`` —
    the same bit-lane construction :func:`gshare_index_column` uses.
    """
    cond = trace.types == 0
    pcs = trace.pcs[cond].astype(np.uint64)
    takens = trace.takens[cond].astype(np.uint64)
    n = len(pcs)
    hist = np.zeros(n, dtype=np.uint64)
    for k in range(history_bits):
        if k + 1 >= n:
            break
        hist[k + 1:] |= takens[:n - k - 1] << np.uint64(k)
    return pcs, hist


def bimode_index_columns(trace: Trace, config) -> np.ndarray:
    """Per-conditional-branch ``[choice_index, direction_index]`` rows.

    Equivalent to replaying ``BiMode._indices`` / ``update_history``
    per branch.
    """
    pcs, hist = _cond_history_lanes(trace, config.history_bits)
    pcx = pcs >> np.uint64(2)
    out = np.empty((len(pcs), 2), dtype=np.uint32)
    out[:, 0] = (pcx & np.uint64((1 << config.choice_bits) - 1)).astype(np.uint32)
    out[:, 1] = ((pcx ^ hist)
                 & np.uint64((1 << config.direction_bits) - 1)).astype(np.uint32)
    return out


def percep_index_columns(trace: Trace, config) -> np.ndarray:
    """Per-conditional-branch perceptron table indices, one column per table.

    Column 0 is the PC-indexed bias table; column ``t`` XOR-folds history
    segment ``t - 1`` into the PC, exactly as
    ``HashedPerceptron._indices`` does scalar-wise.
    """
    pcs, hist = _cond_history_lanes(trace, config.history_bits)
    rmask = np.uint64((1 << config.row_bits) - 1)
    seg_bits = config.segment_bits
    seg_mask = np.uint64((1 << seg_bits) - 1)
    base = (pcs >> np.uint64(2)) & rmask
    out = np.empty((len(pcs), config.tables), dtype=np.uint32)
    out[:, 0] = base.astype(np.uint32)
    for t in range(1, config.tables):
        seg = (hist >> np.uint64((t - 1) * seg_bits)) & seg_mask
        folded = np.zeros_like(seg)
        while seg.any():
            folded ^= seg & rmask
            seg = seg >> np.uint64(config.row_bits)
        out[:, t] = ((base ^ folded) & rmask).astype(np.uint32)
    return out


def _record_columns(trace: Trace, tsl_config,
                    llbp_config=None) -> Tuple[np.ndarray,
                                               Optional[np.ndarray]]:
    """One recorder pass: TAGE indices/tags + SC indices (+ slot tags).

    A *fresh* predictor of the requested geometry walks the trace doing
    lookups only — its tables stay empty (every computed tag is >= 0,
    the tag arrays hold the -1 sentinel, so nothing ever matches) and
    its RNG is never touched; only the history folds advance.  The
    recorded hashes are therefore exactly what a simulated predictor of
    the same geometry computes at each branch, regardless of training.
    """
    from repro.predictors.tage_sc_l import TageScL

    slot_fn = None
    slot_count = 0
    if llbp_config is not None:
        from repro.llbp.predictor import LLBPTageScL

        recorder = LLBPTageScL(llbp_config, baseline=TageScL(tsl_config))
        tsl = recorder.tsl
        slot_fn = recorder._slot_tags
        slot_count = len(llbp_config.slot_lengths)
    else:
        tsl = TageScL(tsl_config)

    tage, sc = tsl.tage, tsl.sc
    num_tables = tage.config.num_tables
    num_sc = len(sc.history_lengths)
    n_cond = int((trace.types == 0).sum())

    tsl_dtype = _column_dtype(max(tage.config.index_bits,
                                  tage.config.tag_bits, sc.index_bits))
    cols = np.empty((n_cond, 2 * num_tables + num_sc), dtype=tsl_dtype)
    slot_cols = None
    if slot_fn is not None:
        slot_cols = np.empty(
            (n_cond, slot_count),
            dtype=_column_dtype(llbp_config.pattern_tag_bits))

    match = tage._match
    vote = sc._vote
    history = tage.history
    path_shift = tage._path_shift
    push = history.push_branch
    sc_hist = 0
    sc_mask = (1 << 64) - 1
    row_index = 0
    for pc, btype, taken_i, target, gap in trace.iter_tuples():
        if btype == 0:
            pcx = pc >> 2
            path = history.path
            indices, tags, _, _ = match(
                pcx, pcx ^ (path ^ (path >> path_shift)))
            row = cols[row_index]
            row[:num_tables] = indices
            row[num_tables:2 * num_tables] = tags
            row[2 * num_tables:] = vote(pcx, sc_hist)[0]
            if slot_fn is not None:
                slot_cols[row_index] = slot_fn(pcx)
            sc_hist = ((sc_hist << 1) | taken_i) & sc_mask
            row_index += 1
        push(pc, btype == 0, taken_i == 1)
    return cols, slot_cols


def _persist(trace: Trace, arrays: dict) -> None:
    """Publish freshly computed columns back into the trace's store file."""
    if trace.store_path is None or not arrays:
        return
    from repro.traces import store

    for key in arrays:
        telemetry.emit("trace.store_stale", workload=trace.name,
                       path=str(trace.store_path),
                       reason="missing-columns", key=key)
    store.append_aux(trace.store_path, arrays)


def gshare_columns(trace: Trace, predictor) -> np.ndarray:
    """Per-conditional-branch gshare indices (memoised, not persisted)."""
    key = gshare_key(predictor)
    cached = trace.aux.get(key)
    if cached is None:
        cached = gshare_index_column(
            trace, predictor.index_bits, predictor.history_bits)
        trace.aux[key] = cached
    return cached


def bimode_columns(trace: Trace, predictor) -> np.ndarray:
    """Per-conditional-branch bimode indices (memoised, not persisted)."""
    key = bimode_key(predictor)
    cached = trace.aux.get(key)
    if cached is None:
        cached = bimode_index_columns(trace, predictor.config)
        trace.aux[key] = cached
    return cached


def percep_columns(trace: Trace, predictor) -> np.ndarray:
    """Per-conditional-branch perceptron indices (memoised, not persisted)."""
    key = percep_key(predictor)
    cached = trace.aux.get(key)
    if cached is None:
        cached = percep_index_columns(trace, predictor.config)
        trace.aux[key] = cached
    return cached


def tsl_columns(trace: Trace, predictor) -> np.ndarray:
    """TAGE index/tag + SC index columns for a :class:`TageScL`.

    Row layout per conditional branch (``T`` TAGE tables, ``C`` SC
    components): ``[idx_0..idx_T-1, tag_0..tag_T-1, sc_0..sc_C-1]``.
    """
    key = tsl_key(predictor)
    cached = trace.aux.get(key)
    if cached is None:
        start = time.perf_counter()
        cached, _ = _record_columns(trace, predictor.config)
        trace.aux[key] = cached
        _persist(trace, {key: cached})
        telemetry.emit("sim.columns", workload=trace.name, key=key,
                       rows=len(cached),
                       seconds=time.perf_counter() - start)
    return cached


def llbp_columns(trace: Trace, predictor) -> Tuple[np.ndarray, np.ndarray]:
    """``(tsl_columns, slot_tag_columns)`` for an :class:`LLBPTageScL`.

    Both matrices come out of one recorder pass when either is missing;
    only the missing ones are (re)stored.
    """
    t_key = tsl_key(predictor.tsl)
    s_key = llbp_key(predictor)
    t_cached = trace.aux.get(t_key)
    s_cached = trace.aux.get(s_key)
    if t_cached is None or s_cached is None:
        start = time.perf_counter()
        tsl_cols, slot_cols = _record_columns(
            trace, predictor.tsl.config, predictor.config)
        fresh = {}
        if t_cached is None:
            trace.aux[t_key] = t_cached = tsl_cols
            fresh[t_key] = tsl_cols
        if s_cached is None:
            trace.aux[s_key] = s_cached = slot_cols
            fresh[s_key] = slot_cols
        _persist(trace, fresh)
        telemetry.emit("sim.columns", workload=trace.name, key=s_key,
                       rows=len(s_cached),
                       seconds=time.perf_counter() - start)
    return t_cached, s_cached
