"""Simulation result records."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class SimulationResult:
    """Aggregate outcome of running one predictor over one trace.

    All misprediction-derived metrics cover only the *measured* region
    (after warmup), matching the paper's warm-then-measure methodology.
    """

    workload: str
    predictor: str
    instructions: int                 # measured instructions
    warmup_instructions: int
    branches: int                     # measured branches (all types)
    cond_branches: int                # measured conditional branches
    mispredictions: int
    per_pc_mispredictions: Dict[int, int] = field(default_factory=dict)
    per_pc_executions: Dict[int, int] = field(default_factory=dict)
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def mpki(self) -> float:
        """Mispredictions per kilo-instruction (the paper's headline metric)."""
        if self.instructions <= 0:
            return 0.0
        return 1000.0 * self.mispredictions / self.instructions

    @property
    def accuracy(self) -> float:
        """Fraction of conditional branches predicted correctly."""
        if self.cond_branches <= 0:
            return 1.0
        return 1.0 - self.mispredictions / self.cond_branches

    def mpki_reduction_vs(self, baseline: "SimulationResult") -> float:
        """Percent MPKI reduction relative to ``baseline`` (Fig 9's metric)."""
        if baseline.mpki <= 0:
            return 0.0
        return 100.0 * (baseline.mpki - self.mpki) / baseline.mpki

    def summary(self) -> str:
        return (
            f"{self.workload}/{self.predictor}: "
            f"MPKI={self.mpki:.3f} "
            f"({self.mispredictions} misses / {self.instructions} instr)"
        )
