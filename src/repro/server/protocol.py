"""Wire protocol for the sweep server: framed JSON messages.

The server speaks exactly the frame format PR 7's TCP work-queue
introduced (:mod:`repro.parallel.backend.tcp`): every frame is a 5-byte
header — one kind byte, ``J`` (UTF-8 JSON object) or ``B`` (raw
bytes), then a big-endian u32 payload length — followed by the payload.
This module adds the asyncio read side (the daemon is an event loop,
the backend is threads) and the server's message vocabulary; the sync
client (:mod:`repro.server.client`) reuses the backend's blocking
helpers directly.

Message flow (all JSON frames; ``t`` is the message type)::

    client -> {"t": "hello", "version", "tenant"}
    server -> {"t": "welcome", "version", "pid", "draining"}

    client -> {"t": "submit", "id", "priority", "detail",
               "jobs": [{"workload", "key", "instructions"}, ...]}
    server -> {"t": "accepted", "id", "jobs", "queued", "cached"}
           |  {"t": "rejected", "id", "code", "reason", "limit",
               "queued", "retry_after"}
    server -> {"t": "result", "id", "workload", "key", "instructions",
               "source", "digest", "seconds", ["result"]}   # per job
           |  {"t": "job-error", "id", "workload", "key",
               "instructions", "error"}

    client -> {"t": "ping", "id"}      server -> {"t": "pong", "id"}
    client -> {"t": "stats"}           server -> {"t": "stats", ...}
    client -> {"t": "subscribe"}       server -> {"t": "subscribed"}
                                       server -> {"t": "event", "event"}
    client -> {"t": "drain"}           server -> {"t": "draining",
                                                  "queued"}

Rejections are the admission-control surface: ``code`` is 429 for load
shedding (``reason`` ``"tenant-cap"`` or ``"queue-full"``) and 503 for
a draining server; ``retry_after`` is the server's backoff hint in
seconds.  ``detail`` on submit selects the result payload: ``"full"``
(default) streams the runner's canonical JSON encoding, ``"digest"``
elides the body and sends only the sha256 digest — what a latency-probe
client wants.
"""

from __future__ import annotations

import asyncio
import json
from typing import Tuple

from repro.parallel.backend.tcp import (_FRAME, KIND_BIN, KIND_JSON,
                                        MAX_FRAME)

#: Version of the *server* message vocabulary (independent of the
#: worker protocol, which happens to share the framing).
SERVER_PROTOCOL_VERSION = 1

#: Rejection reasons (the ``reason`` field of a ``rejected`` message).
REASON_TENANT_CAP = "tenant-cap"
REASON_QUEUE_FULL = "queue-full"
REASON_DRAINING = "draining"


def encode_frame(kind: bytes, payload: bytes) -> bytes:
    """One wire frame as bytes (for ``StreamWriter.write``)."""
    return _FRAME.pack(kind, len(payload)) + payload


def encode_json(message: dict) -> bytes:
    return encode_frame(
        KIND_JSON, json.dumps(message, separators=(",", ":")).encode())


async def read_frame(reader: asyncio.StreamReader) -> Tuple[bytes, bytes]:
    """Read one frame; raises :class:`ConnectionError` on EOF/corruption."""
    try:
        header = await reader.readexactly(_FRAME.size)
        kind, length = _FRAME.unpack(header)
        if kind not in (KIND_JSON, KIND_BIN) or length > MAX_FRAME:
            raise ConnectionError(f"bad frame header ({kind!r}, {length})")
        return kind, await reader.readexactly(length)
    except asyncio.IncompleteReadError as error:
        raise ConnectionError("connection closed mid-frame") from error


async def read_json(reader: asyncio.StreamReader) -> dict:
    kind, payload = await read_frame(reader)
    if kind != KIND_JSON:
        raise ConnectionError("expected a JSON frame")
    try:
        message = json.loads(payload.decode())
    except (UnicodeDecodeError, ValueError) as error:
        raise ConnectionError(f"undecodable JSON frame: {error}") from None
    if not isinstance(message, dict):
        raise ConnectionError("JSON frame is not an object")
    return message
