"""Load generator and admin CLI for the sweep server.

``python -m repro.server.loadgen ADDRESS ...`` drives a running daemon:

* **closed-loop** (default): ``--clients C`` threads, each submitting
  its next job the moment the previous reply lands — the steady-state
  "as fast as the server allows" regime.  ``--jobs N`` bounds the run.
* **open-loop**: ``--rate R`` submissions per second from a fixed
  schedule regardless of completions — the arrival-rate regime that
  actually exposes queueing delay (closed-loop self-throttles).

Both modes honour rejection envelopes: a 429/503 sleeps the rejected
client for the server's ``retry_after`` hint and resubmits, counting
the reject.  Latency is measured per job, submit-to-result, and
reported as p50/p95/p99 via :func:`repro.common.stats.percentile`.

Admin verbs: ``--wait`` (boot barrier), ``--ping``, ``--stats``,
``--drain``.  ``--digests FILE`` writes served digests (recomputed
client-side from full payloads) and ``--serial-digests FILE`` computes
the same grid in-process without a server — CI diffs the two files to
prove served results are byte-identical to a clean serial run.

Importable API: :func:`run_load` returns the summary dict the CLI
prints; the perf harness and bench smoke gate call it directly.
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.stats import percentile
from repro.server.client import (ServerClient, result_digests, wait_ready)

Job = Tuple[str, str, int]

DEFAULT_WORKLOADS = ("Kafka",)
DEFAULT_KEYS = ("tsl64", "llbp")


def build_jobs(workloads: Sequence[str], keys: Sequence[str],
               instructions: int, count: int) -> List[Job]:
    """A ``count``-long job list cycling the workload x key grid."""
    grid = [(w, k, instructions) for w in workloads for k in keys]
    return [grid[i % len(grid)] for i in range(count)]


class _Recorder:
    """Thread-safe accumulator for per-job latencies and outcomes."""

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.latencies: List[float] = []
        self.sources: Dict[str, int] = {}
        self.rejects: Dict[str, int] = {}
        self.errors = 0
        self.results = []

    def record(self, outcome) -> None:
        with self.lock:
            for item in outcome.results:
                self.latencies.append(item.seconds)
                self.sources[item.source] = (
                    self.sources.get(item.source, 0) + 1)
                self.results.append(item)
            self.errors += len(outcome.errors)

    def reject(self, reason: str) -> None:
        with self.lock:
            self.rejects[reason] = self.rejects.get(reason, 0) + 1


def _submit_with_retry(client: ServerClient, job: Job, priority: int,
                       detail: str, recorder: _Recorder,
                       giveup: float = 120.0):
    deadline = time.monotonic() + giveup
    while True:
        outcome = client.submit([job], priority=priority, detail=detail)
        if outcome.accepted:
            recorder.record(outcome)
            return outcome
        reason = (outcome.rejection or {}).get("reason", "?")
        recorder.reject(reason)
        if time.monotonic() >= deadline:
            raise TimeoutError(f"job {job} rejected ({reason}) past "
                               f"{giveup}s of retries")
        time.sleep(max(0.05, outcome.retry_after))


def run_load(address: str, jobs: Sequence[Job], mode: str = "closed",
             clients: int = 4, rate: float = 20.0, priority: int = 0,
             detail: str = "digest", tenant: str = "loadgen",
             tenant_per_client: bool = False) -> dict:
    """Drive the server with ``jobs`` and return the summary dict."""
    recorder = _Recorder()
    clients = max(1, min(clients, len(jobs)))
    failures: List[BaseException] = []
    start = time.perf_counter()

    if mode == "closed":
        cursor = {"next": 0}
        cursor_lock = threading.Lock()

        def worker(index: int) -> None:
            name = (f"{tenant}-{index}" if tenant_per_client else tenant)
            try:
                with ServerClient(address, tenant=name) as client:
                    while True:
                        with cursor_lock:
                            position = cursor["next"]
                            if position >= len(jobs):
                                return
                            cursor["next"] = position + 1
                        _submit_with_retry(client, jobs[position], priority,
                                           detail, recorder)
            except BaseException as error:
                failures.append(error)

        threads = [threading.Thread(target=worker, args=(i,), daemon=True)
                   for i in range(clients)]
    else:  # open loop: fixed arrival schedule, one thread per arrival slot
        interval = 1.0 / max(rate, 0.001)

        def worker(index: int) -> None:
            name = (f"{tenant}-{index}" if tenant_per_client else tenant)
            try:
                with ServerClient(address, tenant=name) as client:
                    # Each of the C lanes owns every C-th arrival slot.
                    for position in range(index, len(jobs), clients):
                        target = start + position * interval
                        delay = target - time.perf_counter()
                        if delay > 0:
                            time.sleep(delay)
                        _submit_with_retry(client, jobs[position], priority,
                                           detail, recorder)
            except BaseException as error:
                failures.append(error)

        threads = [threading.Thread(target=worker, args=(i,), daemon=True)
                   for i in range(clients)]

    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - start
    if failures:
        raise RuntimeError(f"{len(failures)} loadgen client(s) failed: "
                           f"{failures[0]!r}") from failures[0]

    latencies = sorted(recorder.latencies)
    summary = {
        "mode": mode, "jobs": len(recorder.latencies),
        "requested_jobs": len(jobs), "clients": clients,
        "wall_seconds": round(wall, 6),
        "throughput_jobs_per_sec": (round(len(recorder.latencies) / wall, 3)
                                    if wall > 0 else 0.0),
        "latency_seconds": {
            "p50": percentile(latencies, 50.0) if latencies else 0.0,
            "p95": percentile(latencies, 95.0) if latencies else 0.0,
            "p99": percentile(latencies, 99.0) if latencies else 0.0,
            "mean": (sum(latencies) / len(latencies)) if latencies else 0.0,
            "max": latencies[-1] if latencies else 0.0,
        },
        "sources": dict(recorder.sources),
        "rejects": dict(recorder.rejects),
        "errors": recorder.errors,
    }
    if mode == "open":
        summary["rate_per_sec"] = rate
    summary["_results"] = recorder.results  # stripped before printing
    return summary


def measure_ping(address: str, count: int = 50,
                 tenant: str = "loadgen-ping") -> dict:
    """Ping RTT percentiles — the null against which serving latency is
    normalized (machine-speed baseline, no simulation in the loop)."""
    with ServerClient(address, tenant=tenant) as client:
        rtts = sorted(client.ping() for _ in range(count))
    return {"count": count, "p50": percentile(rtts, 50.0),
            "p95": percentile(rtts, 95.0)}


def serial_digests(jobs: Sequence[Job]) -> Dict[str, str]:
    """Digests from computing ``jobs`` in-process (no server)."""
    from repro.experiments import runner
    from repro.experiments.journal import result_digest

    digests: Dict[str, str] = {}
    for workload, key, instructions in dict.fromkeys(jobs):
        result = runner.get_result(workload, key, instructions)
        digests[f"{workload}|{key}|{instructions}"] = result_digest(result)
    return digests


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.server.loadgen",
        description="Load generator / admin client for repro.server.")
    parser.add_argument("address",
                        help="server address: host:port or a unix path")
    parser.add_argument("--mode", choices=("closed", "open"),
                        default="closed")
    parser.add_argument("--clients", type=int, default=4)
    parser.add_argument("--jobs", type=int, default=200,
                        help="total jobs for the burst (default 200)")
    parser.add_argument("--rate", type=float, default=20.0,
                        help="open-loop arrivals per second")
    parser.add_argument("--workloads", default=",".join(DEFAULT_WORKLOADS))
    parser.add_argument("--keys", default=",".join(DEFAULT_KEYS))
    parser.add_argument("--instructions", type=int, default=None)
    parser.add_argument("--priority", type=int, default=0)
    parser.add_argument("--detail", choices=("digest", "full"),
                        default="digest",
                        help="result payload size (digest keeps the "
                             "latency measurement lean)")
    parser.add_argument("--tenant", default="loadgen")
    parser.add_argument("--tenant-per-client", action="store_true",
                        help="bill each client thread as its own tenant")
    parser.add_argument("--json", default=None, metavar="FILE",
                        help="write the summary dict to FILE")
    parser.add_argument("--digests", default=None, metavar="FILE",
                        help="write served result digests to FILE "
                             "(forces --detail full; digests recomputed "
                             "client-side)")
    parser.add_argument("--serial-digests", default=None, metavar="FILE",
                        help="no server: compute the same grid serially "
                             "in-process and write its digests to FILE")
    parser.add_argument("--wait", type=float, default=None, metavar="SEC",
                        help="poll until the server answers a ping")
    parser.add_argument("--ping", action="store_true",
                        help="measure ping RTT percentiles and exit")
    parser.add_argument("--stats", action="store_true",
                        help="print server stats JSON and exit")
    parser.add_argument("--drain", action="store_true",
                        help="ask the server to drain and exit")
    args = parser.parse_args(argv)

    if args.instructions is None:
        from repro.experiments.common import experiment_instructions

        args.instructions = experiment_instructions()
    workloads = [w.strip() for w in args.workloads.split(",") if w.strip()]
    keys = [k.strip() for k in args.keys.split(",") if k.strip()]
    jobs = build_jobs(workloads, keys, args.instructions, args.jobs)

    if args.serial_digests:
        digests = serial_digests(jobs)
        with open(args.serial_digests, "w") as fh:
            json.dump(digests, fh, indent=2, sort_keys=True)
        print(f"wrote {len(digests)} serial digests "
              f"to {args.serial_digests}")
        return 0

    if args.wait is not None:
        if not wait_ready(args.address, timeout=args.wait):
            print(f"server at {args.address} not ready "
                  f"after {args.wait}s", file=sys.stderr)
            return 1
        print(f"server at {args.address} is ready")
        if not (args.ping or args.stats or args.drain):
            return 0

    if args.stats:
        with ServerClient(args.address, tenant=args.tenant) as client:
            print(json.dumps(client.stats(), indent=2, sort_keys=True))
        return 0
    if args.drain:
        with ServerClient(args.address, tenant=args.tenant) as client:
            print(json.dumps(client.drain()))
        return 0
    if args.ping:
        print(json.dumps(measure_ping(args.address), indent=2))
        return 0

    detail = "full" if args.digests else args.detail
    summary = run_load(args.address, jobs, mode=args.mode,
                       clients=args.clients, rate=args.rate,
                       priority=args.priority, detail=detail,
                       tenant=args.tenant,
                       tenant_per_client=args.tenant_per_client)
    results = summary.pop("_results")
    if args.digests:
        digests = result_digests(results, verify=True)
        with open(args.digests, "w") as fh:
            json.dump(digests, fh, indent=2, sort_keys=True)
        summary["digests_file"] = args.digests
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(summary, fh, indent=2, sort_keys=True)
    latency = summary["latency_seconds"]
    print(f"{summary['jobs']} jobs in {summary['wall_seconds']:.2f}s "
          f"({summary['throughput_jobs_per_sec']:.1f} jobs/s, "
          f"{summary['clients']} clients, {args.mode} loop)")
    print(f"latency p50/p95/p99: {latency['p50'] * 1e3:.2f} / "
          f"{latency['p95'] * 1e3:.2f} / {latency['p99'] * 1e3:.2f} ms; "
          f"sources {summary['sources']}; rejects {summary['rejects']}")
    return 1 if summary["errors"] else 0


if __name__ == "__main__":
    sys.exit(main())
