"""CLI entry point: ``python -m repro.server`` boots the daemon."""

from __future__ import annotations

import argparse
import asyncio
import sys
from typing import Optional

from repro import telemetry
from repro.server.daemon import ServerConfig, SweepServer


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.server",
        description="Persistent sweep server with admission control. "
                    "Defaults come from REPRO_SERVER_* (see docs/API.md).")
    parser.add_argument("--host", default="127.0.0.1",
                        help="TCP bind host (default 127.0.0.1)")
    parser.add_argument("--port", type=int, default=0,
                        help="TCP port; 0 picks a free one (printed at "
                             "boot), negative disables TCP")
    parser.add_argument("--unix", default=None, metavar="PATH",
                        help="also listen on a unix socket at PATH")
    parser.add_argument("--resume", action="store_true",
                        help="reload the completion journal and re-enqueue "
                             "admitted-but-unfinished jobs from a previous "
                             "server life")
    parser.add_argument("--warm", default=None, metavar="W1,W2",
                        help="pre-generate these workloads' traces at boot")
    parser.add_argument("--workers", type=int, default=None,
                        help="executor worker budget (default REPRO_JOBS / "
                             "CPU count)")
    parser.add_argument("--telemetry", default=None, metavar="DIR",
                        help="write telemetry JSONL events under DIR")
    args = parser.parse_args(argv)

    if args.telemetry:
        telemetry.configure(args.telemetry)
    overrides = {"host": args.host,
                 "port": None if args.port < 0 else args.port,
                 "unix_path": args.unix, "resume": args.resume}
    if args.warm:
        overrides["warm"] = tuple(
            name.strip() for name in args.warm.split(",") if name.strip())
    if args.workers is not None:
        overrides["workers"] = max(1, args.workers)
    config = ServerConfig.from_env(**overrides)
    if config.port is None and config.unix_path is None:
        parser.error("nothing to listen on: give --port >= 0 or --unix")
    try:
        asyncio.run(SweepServer(config).serve())
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":
    sys.exit(main())
