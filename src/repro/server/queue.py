"""Multi-tenant priority queue for the sweep server.

Pure data structure — no sockets, no clocks — so ordering policy is
unit-testable in isolation.  Three rules, applied in order:

1. **Priority**: a higher ``priority`` class is served first.
2. **Tenant fairness**: within a class, tenants are served round-robin
   (one item per turn), so a tenant that dumps 100 jobs cannot starve a
   tenant that submitted one.
3. **Starvation bound**: every ``starvation_bound``-th pop ignores both
   rules and serves the globally oldest item.  A continuous stream of
   high-priority work therefore delays a low-priority item by at most
   ``starvation_bound - 1`` pops, giving every admitted job a hard
   freshness guarantee instead of a probabilistic one.

Within one (tenant, priority) lane, order is FIFO.  Admission control
(caps, bounded depth) lives in the daemon — the queue orders what was
admitted; it never rejects.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Tuple


@dataclass
class _Entry:
    seq: int
    item: Any
    tenant: str
    priority: int


@dataclass
class _Lane:
    """One priority class: per-tenant FIFO lanes plus a rotation order."""

    tenants: Dict[str, Deque[int]] = field(default_factory=dict)
    rotation: Deque[str] = field(default_factory=deque)


class SweepQueue:
    """Priority + tenant-fair + starvation-bounded ordering (see module
    docstring).  Not thread-safe: the daemon mutates it only from its
    event loop."""

    def __init__(self, starvation_bound: int = 8) -> None:
        if starvation_bound < 1:
            raise ValueError("starvation_bound must be >= 1")
        self.starvation_bound = starvation_bound
        self._seq = 0
        self._pops = 0
        # Insertion order == global age order: the aged pop is the head.
        self._entries: "OrderedDict[int, _Entry]" = OrderedDict()
        self._lanes: Dict[int, _Lane] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)

    def depth_by_tenant(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for entry in self._entries.values():
            counts[entry.tenant] = counts.get(entry.tenant, 0) + 1
        return counts

    def push(self, item: Any, tenant: str, priority: int = 0) -> None:
        self._seq += 1
        entry = _Entry(self._seq, item, tenant, priority)
        self._entries[entry.seq] = entry
        lane = self._lanes.setdefault(priority, _Lane())
        fifo = lane.tenants.get(tenant)
        if fifo is None:
            fifo = lane.tenants[tenant] = deque()
            lane.rotation.append(tenant)
        fifo.append(entry.seq)

    def pop(self) -> Optional[Tuple[Any, str, int]]:
        """Next (item, tenant, priority), or ``None`` when empty."""
        if not self._entries:
            return None
        self._pops += 1
        if self._pops % self.starvation_bound == 0:
            entry = next(iter(self._entries.values()))
        else:
            entry = self._fair_pick()
        return self._take(entry)

    def pop_batch(self, limit: int) -> List[Tuple[Any, str, int]]:
        """Up to ``limit`` pops, each honouring :meth:`pop` semantics."""
        batch = []
        for _ in range(max(0, limit)):
            popped = self.pop()
            if popped is None:
                break
            batch.append(popped)
        return batch

    # -- internals ---------------------------------------------------

    def _fair_pick(self) -> _Entry:
        for priority in sorted(self._lanes, reverse=True):
            lane = self._lanes[priority]
            while lane.rotation:
                tenant = lane.rotation[0]
                fifo = lane.tenants[tenant]
                # Skip seqs already consumed by an aged pop.
                while fifo and fifo[0] not in self._entries:
                    fifo.popleft()
                if not fifo:
                    lane.rotation.popleft()
                    del lane.tenants[tenant]
                    continue
                lane.rotation.rotate(-1)  # this tenant goes to the back
                return self._entries[fifo.popleft()]
            del self._lanes[priority]  # every lane member was stale
        raise AssertionError("non-empty queue yielded no entry")

    def _take(self, entry: _Entry) -> Tuple[Any, str, int]:
        # The lane fifo may still hold the seq (aged-pop path); stale
        # seqs are skipped lazily in _fair_pick.
        del self._entries[entry.seq]
        return entry.item, entry.tenant, entry.priority
