"""Blocking client for the sweep server.

One :class:`ServerClient` is one connection: a hello/welcome handshake
at connect, then synchronous request/response exchanges using the same
framing helpers the TCP work-queue uses
(:mod:`repro.parallel.backend.tcp`).  Addresses are either
``host:port`` strings or filesystem paths (unix sockets).

The client is deliberately simple — one outstanding request at a time —
because the *load generator* gets its concurrency from many clients,
which is also how real tenants look to the server.
"""

from __future__ import annotations

import itertools
import socket
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.parallel.backend.tcp import recv_json, send_json
from repro.server import protocol


def connect_address(address: str,
                    timeout: Optional[float] = None) -> socket.socket:
    """Open a socket to ``address`` (``host:port`` or a unix path)."""
    if ":" in address:
        host, _, port = address.rpartition(":")
        sock = socket.create_connection((host, int(port)), timeout=timeout)
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass
        return sock
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.settimeout(timeout)
    sock.connect(address)
    return sock


@dataclass
class JobResult:
    """One streamed ``result`` frame, decoded."""

    workload: str
    key: str
    instructions: int
    source: str
    digest: str
    seconds: float
    payload: Optional[dict] = None


@dataclass
class SubmitOutcome:
    """What one ``submit`` produced: acceptance or a rejection envelope,
    plus the streamed results when accepted and waited for."""

    accepted: bool
    queued: int = 0
    cached: int = 0
    rejection: Optional[dict] = None
    results: List[JobResult] = field(default_factory=list)
    errors: List[dict] = field(default_factory=list)

    @property
    def retry_after(self) -> float:
        if self.rejection is None:
            return 0.0
        return float(self.rejection.get("retry_after") or 0.0)


class ServerClient:
    """Synchronous sweep-server connection (see module docstring)."""

    def __init__(self, address: str, tenant: str = "cli",
                 timeout: Optional[float] = 120.0) -> None:
        self.address = address
        self.tenant = tenant
        self._ids = itertools.count(1)
        self._sock = connect_address(address, timeout=timeout)
        send_json(self._sock, {"t": "hello",
                               "version": protocol.SERVER_PROTOCOL_VERSION,
                               "tenant": tenant})
        welcome = recv_json(self._sock)
        if welcome.get("t") != "welcome":
            self._sock.close()
            raise ConnectionError(f"bad welcome: {welcome!r}")
        self.server_pid = welcome.get("pid")
        self.draining = bool(welcome.get("draining"))

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServerClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- requests ---------------------------------------------------

    def ping(self) -> float:
        """Round-trip one ping; returns the RTT in seconds."""
        ident = next(self._ids)
        start = time.perf_counter()
        send_json(self._sock, {"t": "ping", "id": ident})
        reply = recv_json(self._sock)
        if reply.get("t") != "pong" or reply.get("id") != ident:
            raise ConnectionError(f"bad pong: {reply!r}")
        return time.perf_counter() - start

    def stats(self) -> dict:
        send_json(self._sock, {"t": "stats"})
        reply = recv_json(self._sock)
        if reply.get("t") != "stats":
            raise ConnectionError(f"bad stats reply: {reply!r}")
        return reply

    def drain(self) -> dict:
        send_json(self._sock, {"t": "drain"})
        reply = recv_json(self._sock)
        if reply.get("t") != "draining":
            raise ConnectionError(f"bad drain reply: {reply!r}")
        return reply

    def subscribe(self) -> None:
        """Opt this connection into the live telemetry event stream."""
        send_json(self._sock, {"t": "subscribe"})
        reply = recv_json(self._sock)
        if reply.get("t") != "subscribed":
            raise ConnectionError(f"bad subscribe reply: {reply!r}")

    def next_event(self) -> dict:
        """Next streamed telemetry event (after :meth:`subscribe`)."""
        while True:
            reply = recv_json(self._sock)
            if reply.get("t") == "event":
                return reply.get("event") or {}

    def submit(self, jobs: Sequence[Tuple[str, str, int]], priority: int = 0,
               detail: str = "full", wait: bool = True) -> SubmitOutcome:
        """Submit ``(workload, key, instructions)`` jobs.

        With ``wait`` (default) the call blocks until every unique
        job's ``result`` / ``job-error`` frame has streamed back.
        """
        ident = next(self._ids)
        unique = list(dict.fromkeys(tuple(job) for job in jobs))
        send_json(self._sock, {
            "t": "submit", "id": ident, "priority": priority,
            "detail": detail,
            "jobs": [{"workload": w, "key": k, "instructions": i}
                     for w, k, i in unique]})
        reply = self._next_for(ident)
        if reply.get("t") == "rejected":
            return SubmitOutcome(accepted=False, rejection=reply,
                                 queued=int(reply.get("queued") or 0))
        if reply.get("t") == "error":
            raise ConnectionError(f"submit error: {reply.get('error')!r}")
        if reply.get("t") != "accepted":
            raise ConnectionError(f"bad submit reply: {reply!r}")
        outcome = SubmitOutcome(accepted=True,
                                queued=int(reply.get("queued") or 0),
                                cached=int(reply.get("cached") or 0))
        if not wait:
            return outcome
        remaining = len(unique)
        while remaining:
            frame = self._next_for(ident)
            kind = frame.get("t")
            if kind == "result":
                outcome.results.append(JobResult(
                    workload=frame["workload"], key=frame["key"],
                    instructions=frame["instructions"],
                    source=frame.get("source", "?"),
                    digest=frame.get("digest", ""),
                    seconds=float(frame.get("seconds") or 0.0),
                    payload=frame.get("result")))
                remaining -= 1
            elif kind == "job-error":
                outcome.errors.append(frame)
                remaining -= 1
            else:
                raise ConnectionError(f"unexpected frame {kind!r}")
        return outcome

    def collect(self, count: int) -> List[dict]:
        """Read ``count`` result/job-error frames from earlier
        ``wait=False`` submissions, skipping interleaved events."""
        frames: List[dict] = []
        while len(frames) < count:
            reply = recv_json(self._sock)
            if reply.get("t") in ("result", "job-error"):
                frames.append(reply)
        return frames

    def _next_for(self, ident: int) -> dict:
        """Next frame for request ``ident``, skipping stream events."""
        while True:
            reply = recv_json(self._sock)
            if reply.get("t") == "event":
                continue
            if reply.get("id") not in (None, ident):
                continue  # stale frame from an abandoned request
            return reply


def wait_ready(address: str, timeout: float = 60.0,
               tenant: str = "probe") -> bool:
    """Poll ``address`` until a ping succeeds (daemon boot barrier)."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            with ServerClient(address, tenant=tenant, timeout=5.0) as client:
                client.ping()
                return True
        except (OSError, ConnectionError, ValueError):
            time.sleep(0.1)
    return False


def result_digests(results: Sequence[JobResult],
                   verify: bool = True) -> Dict[str, str]:
    """``"workload|key|instructions" -> digest`` for served results.

    With ``verify`` (and full payloads) the digest is *recomputed
    client-side* from the streamed result body, so a byte-identity diff
    against a serial run does not have to trust the server's word.
    """
    from repro.experiments import runner
    from repro.experiments.journal import result_digest

    digests: Dict[str, str] = {}
    for item in results:
        label = f"{item.workload}|{item.key}|{item.instructions}"
        if verify and item.payload is not None:
            digests[label] = result_digest(runner._from_json(item.payload))
        else:
            digests[label] = item.digest
    return digests
