"""The sweep server: a persistent prediction-as-a-service daemon.

One :class:`SweepServer` is an asyncio event loop accepting framed-JSON
connections (:mod:`repro.server.protocol`) on a unix socket and/or a
localhost TCP port.  It keeps the process warm between requests — the
packed trace store's mmap'd traces, the runner's in-memory result
cache, a running executor — so answering a repeat sweep costs a cache
lookup, not a process spin-up.

Request lifecycle::

    submit -> admission control -> SweepQueue -> dispatcher batch
           -> parallel.run_jobs(on_result=...) -> streamed result frames

*Admission control* happens before anything is queued: a job whose
result is already cached (and digest-verified against the completion
journal) is served immediately without occupying queue space; otherwise
the submission is rejected with a 429-style envelope when the tenant's
outstanding jobs would exceed ``REPRO_SERVER_TENANT_CAP`` or the queue
would exceed ``REPRO_SERVER_QUEUE`` (backpressure — clients honour the
``retry_after`` hint), or with 503 while draining.  Identical jobs from
different clients are coalesced: one computation, every waiter gets the
result.

*Dispatch* pops fairness-ordered batches (:class:`SweepQueue`) and runs
them through the existing executor (:func:`repro.parallel.run_jobs`) in
a worker thread, with the ``on_result`` hook streaming each job's
result frame the moment it settles — a slow job does not delay its
batch-mates' replies.  Completions are recorded in a
:class:`~repro.experiments.journal.RunJournal` exactly like a CLI run.

*Drain and resume*: SIGTERM (or a ``drain`` message) stops admission
(503), finishes every queued job, rewrites the pending journal and
exits cleanly.  Every *admitted* job is appended to
``server-pending.jsonl`` before it runs, so a crash loses no accepted
work: ``--resume`` re-enqueues pending jobs the completion journal does
not cover (tenant ``"recovered"``), while journalled jobs are re-served
from the digest-verified result cache without recomputation.

*Telemetry*: every ``server.*`` event goes to the normal
``REPRO_TELEMETRY`` sink, and any client may ``subscribe`` to the live
in-process event stream (:func:`repro.telemetry.add_listener`).
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import os
import signal
import socket
import threading
import time
import warnings
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple

from repro import parallel, telemetry
from repro.experiments import journal as journal_mod
from repro.experiments import runner
from repro.parallel.executor import SimJob
from repro.server import protocol
from repro.server.queue import SweepQueue

#: Tenant that re-enqueued crash-recovery jobs are billed to.
RECOVERED_TENANT = "recovered"


def _env_int(name: str, default: int, minimum: int = 1) -> int:
    """Parse an integer ``REPRO_SERVER_*`` knob; malformed values warn
    and fall back, like every other ``REPRO_*`` variable."""
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        value = int(raw)
        if value < minimum:
            raise ValueError(raw)
    except ValueError:
        warnings.warn(f"{name}={raw!r} is not an integer >= {minimum}; "
                      f"using {default}", RuntimeWarning, stacklevel=3)
        return default
    return value


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        value = float(raw)
        if value <= 0:
            raise ValueError(raw)
    except ValueError:
        warnings.warn(f"{name}={raw!r} is not a positive number; "
                      f"using {default}", RuntimeWarning, stacklevel=3)
        return default
    return value


@dataclass
class ServerConfig:
    """Everything a :class:`SweepServer` needs, resolved once at boot."""

    host: str = "127.0.0.1"
    port: Optional[int] = 0          # None: no TCP listener
    unix_path: Optional[str] = None  # None: no unix listener
    tenant_cap: int = 64
    max_queue: int = 256
    batch_size: int = 8
    workers: Optional[int] = None    # None: parallel.default_jobs()
    starvation_bound: int = 8
    retry_after: float = 0.5
    resume: bool = False
    warm: Tuple[str, ...] = ()       # workloads to pre-generate at boot
    warm_instructions: Optional[int] = None
    #: Test hook: boot with the dispatcher parked so admission control
    #: can be exercised deterministically; released by
    #: :meth:`SweepServer.release_dispatch_threadsafe` or a drain.
    hold_dispatch: bool = False

    @classmethod
    def from_env(cls, **overrides) -> "ServerConfig":
        config = cls(
            tenant_cap=_env_int("REPRO_SERVER_TENANT_CAP", cls.tenant_cap),
            max_queue=_env_int("REPRO_SERVER_QUEUE", cls.max_queue),
            batch_size=_env_int("REPRO_SERVER_BATCH", cls.batch_size),
            starvation_bound=_env_int("REPRO_SERVER_STARVATION",
                                      cls.starvation_bound),
            retry_after=_env_float("REPRO_SERVER_RETRY_AFTER",
                                   cls.retry_after))
        raw = os.environ.get("REPRO_SERVER_WORKERS", "").strip()
        if raw:
            config.workers = _env_int("REPRO_SERVER_WORKERS", 1)
        warm = os.environ.get("REPRO_SERVER_WARM", "").strip()
        if warm:
            config.warm = tuple(
                name.strip() for name in warm.split(",") if name.strip())
        for name, value in overrides.items():
            setattr(config, name, value)
        return config


@dataclass
class _Waiter:
    """One client's claim on one job's outcome."""

    conn: "_Conn"
    request_id: object
    tenant: str
    detail: str
    since: float


@dataclass
class _PendingJob:
    """A job admitted but not yet settled (queued or in flight)."""

    job: SimJob
    priority: int
    waiters: List[_Waiter] = field(default_factory=list)
    inflight: bool = False


class _Conn:
    """Per-connection state; writes go through the server so a dead
    peer is detected once and skipped thereafter."""

    __slots__ = ("reader", "writer", "tenant", "peer", "subscribed",
                 "closed")

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter, tenant: str,
                 peer: str) -> None:
        self.reader = reader
        self.writer = writer
        self.tenant = tenant
        self.peer = peer
        self.subscribed = False
        self.closed = False


class SweepServer:
    """Asyncio daemon serving simulation sweeps (see module docstring).

    Construct, then either ``asyncio.run(server.serve())`` (the
    ``python -m repro.server`` path) or use :class:`ServerThread` to
    embed it in tests and benchmarks.
    """

    def __init__(self, config: Optional[ServerConfig] = None) -> None:
        self.config = config or ServerConfig.from_env()
        self.queue = SweepQueue(self.config.starvation_bound)
        self.port: Optional[int] = None  # bound TCP port, once listening
        self._pending: Dict[SimJob, _PendingJob] = {}
        self._outstanding: Dict[str, int] = {}
        self._conns: Set[_Conn] = set()
        self._counts = {"requests": 0, "accepted": 0, "cached": 0,
                        "computed": 0, "errors": 0}
        self._rejects: Dict[str, int] = {}
        self._hold = bool(self.config.hold_dispatch)
        self._draining = False
        self._started = 0.0
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._wake: Optional[asyncio.Event] = None
        self._servers: List[asyncio.AbstractServer] = []
        self._exec = ThreadPoolExecutor(max_workers=1,
                                        thread_name_prefix="sweep-dispatch")
        cache_dir = journal_mod.default_path().parent
        self.journal_path = cache_dir / "server-journal.jsonl"
        self.pending_path = cache_dir / "server-pending.jsonl"
        self.journal: Optional[journal_mod.RunJournal] = None
        self._pending_fh = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def serve(self, ready: Optional[threading.Event] = None) -> None:
        """Run until drained; the caller owns the event loop."""
        self._loop = asyncio.get_running_loop()
        self._wake = asyncio.Event()
        self._started = time.time()
        self.journal = journal_mod.RunJournal.open(
            self.journal_path, resume=self.config.resume)
        recovered = self._recover_pending() if self.config.resume else 0
        if not self.config.resume:
            self._truncate_pending()
        self._warm()

        if self.config.unix_path is not None:
            path = Path(self.config.unix_path)
            with contextlib.suppress(OSError):
                path.unlink()
            path.parent.mkdir(parents=True, exist_ok=True)
            self._servers.append(await asyncio.start_unix_server(
                self._handle_client, path=str(path)))
        if self.config.port is not None:
            server = await asyncio.start_server(
                self._handle_client, self.config.host, self.config.port)
            self.port = server.sockets[0].getsockname()[1]
            self._servers.append(server)
        if not self._servers:
            raise ValueError("server needs a TCP port or a unix path")

        for sig in (signal.SIGTERM, signal.SIGINT):
            with contextlib.suppress(NotImplementedError, RuntimeError,
                                     ValueError):
                self._loop.add_signal_handler(sig, self.request_drain)

        telemetry.emit("server.start", port=self.port,
                       unix=self.config.unix_path, pid=os.getpid(),
                       resume=bool(self.config.resume), recovered=recovered,
                       journalled=len(self.journal))
        self._announce()
        if ready is not None:
            ready.set()
        try:
            await self._dispatch_loop()
        finally:
            await self._shutdown()

    def request_drain(self) -> None:
        """Stop admitting, finish queued work, then exit ``serve()``.

        Callable from the loop thread (signal handlers, the ``drain``
        message); cross-thread callers go through
        :meth:`request_drain_threadsafe`.
        """
        if self._draining:
            return
        self._draining = True
        self._hold = False  # a drain always finishes admitted work
        telemetry.emit("server.drain", queued=len(self.queue),
                       inflight=self._inflight_count())
        if self._wake is not None:
            self._wake.set()

    def request_drain_threadsafe(self) -> None:
        loop = self._loop
        if loop is not None and not loop.is_closed():
            with contextlib.suppress(RuntimeError):
                loop.call_soon_threadsafe(self.request_drain)

    def release_dispatch_threadsafe(self) -> None:
        """Un-park a ``hold_dispatch`` server (test hook)."""
        def release() -> None:
            self._hold = False
            if self._wake is not None:
                self._wake.set()

        loop = self._loop
        if loop is not None and not loop.is_closed():
            with contextlib.suppress(RuntimeError):
                loop.call_soon_threadsafe(release)

    async def _shutdown(self) -> None:
        for server in self._servers:
            server.close()
        for server in self._servers:
            with contextlib.suppress(Exception):
                await server.wait_closed()
        for conn in list(self._conns):
            self._close_conn(conn)
        self._rewrite_pending()
        if self.journal is not None:
            self.journal.close()
        if self._pending_fh is not None:
            with contextlib.suppress(OSError):
                self._pending_fh.close()
            self._pending_fh = None
        if self.config.unix_path is not None:
            with contextlib.suppress(OSError):
                Path(self.config.unix_path).unlink()
        self._exec.shutdown(wait=True)
        parallel.shutdown()
        telemetry.emit("server.stop", uptime=time.time() - self._started,
                       **self._counts)

    def _announce(self) -> None:
        where = []
        if self.port is not None:
            where.append(f"{self.config.host}:{self.port}")
        if self.config.unix_path is not None:
            where.append(self.config.unix_path)
        print(f"repro.server: listening on {' and '.join(where)}",
              flush=True)

    def _warm(self) -> None:
        """Pre-generate (and therefore mmap from the packed store) the
        configured workloads so first requests skip trace generation."""
        if not self.config.warm:
            return
        from repro.experiments.common import experiment_instructions
        from repro.workloads import catalog

        instructions = (self.config.warm_instructions
                        or experiment_instructions())
        start = time.perf_counter()
        for name in self.config.warm:
            try:
                catalog.generate_workload(name, instructions)
            except Exception as error:
                warnings.warn(f"cannot warm workload {name!r}: {error}",
                              RuntimeWarning, stacklevel=2)
        telemetry.emit("server.warm", workloads=list(self.config.warm),
                       instructions=instructions,
                       seconds=time.perf_counter() - start)

    # ------------------------------------------------------------------
    # Pending journal (crash-safe record of admitted jobs)
    # ------------------------------------------------------------------

    def _record_pending(self, job: SimJob, tenant: str,
                        priority: int) -> None:
        try:
            if self._pending_fh is None:
                self.pending_path.parent.mkdir(parents=True, exist_ok=True)
                self._pending_fh = open(self.pending_path, "a")
            json.dump({"workload": job.workload, "key": job.key,
                       "instructions": job.instructions, "tenant": tenant,
                       "priority": priority}, self._pending_fh,
                      separators=(",", ":"))
            self._pending_fh.write("\n")
            self._pending_fh.flush()
        except OSError as error:
            warnings.warn(f"pending journal write failed: {error}",
                          RuntimeWarning, stacklevel=2)

    def _truncate_pending(self) -> None:
        with contextlib.suppress(OSError):
            if self.pending_path.exists():
                self.pending_path.unlink()

    def _rewrite_pending(self) -> None:
        """At exit, keep only jobs that never settled (normally none)."""
        if self._pending_fh is not None:
            with contextlib.suppress(OSError):
                self._pending_fh.close()
            self._pending_fh = None
        leftover = list(self._pending.values())
        self._truncate_pending()
        for pending in leftover:
            self._record_pending(pending.job, RECOVERED_TENANT,
                                 pending.priority)

    def _recover_pending(self) -> int:
        """Re-enqueue admitted-but-unfinished jobs from a previous life.

        Jobs the completion journal covers need nothing: their results
        are in the digest-verified cache and will be served as hot hits.
        """
        try:
            text = self.pending_path.read_text()
        except OSError:
            return 0
        recovered = 0
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                job = SimJob(str(record["workload"]), str(record["key"]),
                             int(record["instructions"]))
                priority = int(record.get("priority", 0))
            except (KeyError, TypeError, ValueError):
                continue  # torn write mid-crash
            if (job.workload, job.key, job.instructions) in self.journal:
                continue
            if job in self._pending:
                continue
            self._pending[job] = _PendingJob(job, priority)
            self.queue.push(job, RECOVERED_TENANT, priority)
            recovered += 1
        self._truncate_pending()
        for pending in self._pending.values():
            self._record_pending(pending.job, RECOVERED_TENANT,
                                 pending.priority)
        if recovered:
            telemetry.emit("server.resume", requeued=recovered,
                           journalled=len(self.journal))
        if self._wake is not None and recovered:
            self._wake.set()
        return recovered

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def _inflight_count(self) -> int:
        return sum(1 for p in self._pending.values() if p.inflight)

    async def _dispatch_loop(self) -> None:
        assert self._loop is not None and self._wake is not None
        workers = self.config.workers or parallel.default_jobs()
        while True:
            if not self.queue:
                if self._draining and not self._pending:
                    return
                if self._draining and not self._inflight_count():
                    # Only never-settling waiters remain (shouldn't
                    # happen, but never hang a drain on them).
                    return
                self._wake.clear()
                await self._wake.wait()
                continue
            if self._hold:
                self._wake.clear()
                await self._wake.wait()
                continue
            batch = self.queue.pop_batch(self.config.batch_size)
            jobs = []
            for job, _tenant, _priority in batch:
                pending = self._pending.get(job)
                if pending is None:
                    continue  # settled while queued (shouldn't happen)
                pending.inflight = True
                jobs.append(job)
            if not jobs:
                continue
            telemetry.emit("server.dispatch", jobs=len(jobs),
                           depth=len(self.queue), workers=workers)
            loop = self._loop

            def stream(job: SimJob, result, source: str) -> None:
                loop.call_soon_threadsafe(self._settle_job, job, result,
                                          source)

            try:
                await loop.run_in_executor(
                    self._exec,
                    lambda: parallel.run_jobs(
                        jobs, max_workers=workers, journal=self.journal,
                        on_result=stream))
            except Exception as error:
                for job in jobs:
                    self._fail_job(job, error)

    def _settle_job(self, job: SimJob, result, source: str) -> None:
        pending = self._pending.pop(job, None)
        if pending is None:
            return
        digest = journal_mod.result_digest(result)
        payload = runner._to_json(result)
        now = time.monotonic()
        for waiter in pending.waiters:
            self._release(waiter.tenant)
            latency = now - waiter.since
            message = {"t": "result", "id": waiter.request_id,
                       "workload": job.workload, "key": job.key,
                       "instructions": job.instructions, "source": source,
                       "digest": digest, "seconds": round(latency, 6)}
            if waiter.detail == "full":
                message["result"] = payload
            self._send(waiter.conn, message)
            telemetry.emit("server.result", workload=job.workload,
                           key=job.key, instructions=job.instructions,
                           tenant=waiter.tenant, source=source,
                           seconds=latency)
        if not pending.waiters:
            # Recovered job with no client attached: still journalled
            # and cached; emit so the resume is observable.
            telemetry.emit("server.result", workload=job.workload,
                           key=job.key, instructions=job.instructions,
                           tenant=RECOVERED_TENANT, source=source,
                           seconds=0.0)
        if source == "computed":
            self._counts["computed"] += 1
        else:
            self._counts["cached"] += 1
        if self._wake is not None:
            self._wake.set()

    def _fail_job(self, job: SimJob, error: BaseException) -> None:
        pending = self._pending.pop(job, None)
        if pending is None:
            return
        self._counts["errors"] += 1
        telemetry.emit("server.job_error", workload=job.workload,
                       key=job.key, instructions=job.instructions,
                       error=type(error).__name__)
        for waiter in pending.waiters:
            self._release(waiter.tenant)
            self._send(waiter.conn, {
                "t": "job-error", "id": waiter.request_id,
                "workload": job.workload, "key": job.key,
                "instructions": job.instructions, "error": str(error)})
        if self._wake is not None:
            self._wake.set()

    def _release(self, tenant: str) -> None:
        count = self._outstanding.get(tenant, 0) - 1
        if count > 0:
            self._outstanding[tenant] = count
        else:
            self._outstanding.pop(tenant, None)

    # ------------------------------------------------------------------
    # Connections
    # ------------------------------------------------------------------

    def _send(self, conn: _Conn, message: dict) -> bool:
        if conn.closed:
            return False
        try:
            conn.writer.write(protocol.encode_json(message))
        except (ConnectionError, OSError):
            conn.closed = True
            return False
        return True

    def _close_conn(self, conn: _Conn) -> None:
        if conn in self._conns:
            self._conns.discard(conn)
            telemetry.emit("server.client_leave", tenant=conn.tenant,
                           peer=conn.peer)
        conn.closed = True
        conn.subscribed = False
        with contextlib.suppress(Exception):
            conn.writer.close()

    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        peername = writer.get_extra_info("peername")
        peer = (f"{peername[0]}:{peername[1]}"
                if isinstance(peername, tuple) else "unix")
        conn: Optional[_Conn] = None
        try:
            hello = await asyncio.wait_for(protocol.read_json(reader),
                                           timeout=10.0)
            if (hello.get("t") != "hello"
                    or hello.get("version")
                    != protocol.SERVER_PROTOCOL_VERSION):
                writer.write(protocol.encode_json(
                    {"t": "error", "error": "bad hello",
                     "version": protocol.SERVER_PROTOCOL_VERSION}))
                await writer.drain()
                return
            tenant = str(hello.get("tenant") or "anonymous")
            conn = _Conn(reader, writer, tenant, peer)
            self._conns.add(conn)
            telemetry.emit("server.client_join", tenant=tenant, peer=peer)
            self._send(conn, {"t": "welcome",
                              "version": protocol.SERVER_PROTOCOL_VERSION,
                              "pid": os.getpid(),
                              "draining": self._draining})
            await writer.drain()
            while True:
                message = await protocol.read_json(reader)
                self._counts["requests"] += 1
                kind = message.get("t")
                if kind == "submit":
                    self._handle_submit(conn, message)
                elif kind == "ping":
                    self._send(conn, {"t": "pong",
                                      "id": message.get("id")})
                elif kind == "stats":
                    self._send(conn, self._stats_message())
                elif kind == "subscribe":
                    self._subscribe(conn)
                elif kind == "drain":
                    self._send(conn, {"t": "draining",
                                      "queued": len(self.queue)})
                    self.request_drain()
                else:
                    self._send(conn, {"t": "error",
                                      "error": f"unknown message {kind!r}"})
                await writer.drain()
        except (ConnectionError, OSError, asyncio.TimeoutError):
            pass
        except asyncio.CancelledError:
            # Server teardown cancels handler tasks parked on a read;
            # completing normally keeps the stream protocol's done
            # callback from re-raising the cancellation into the loop's
            # exception handler (noisy, harmless otherwise).
            pass
        finally:
            if conn is not None:
                self._close_conn(conn)
            else:
                with contextlib.suppress(Exception):
                    writer.close()

    # ------------------------------------------------------------------
    # Requests
    # ------------------------------------------------------------------

    def _reject(self, conn: _Conn, request_id, code: int, reason: str,
                limit: int) -> None:
        self._rejects[reason] = self._rejects.get(reason, 0) + 1
        telemetry.emit("server.reject", tenant=conn.tenant, code=code,
                       reason=reason, queued=len(self.queue))
        self._send(conn, {"t": "rejected", "id": request_id, "code": code,
                          "reason": reason, "limit": limit,
                          "queued": len(self.queue),
                          "retry_after": self.config.retry_after})

    def _handle_submit(self, conn: _Conn, message: dict) -> None:
        request_id = message.get("id")
        raw_jobs = message.get("jobs")
        detail = message.get("detail") or "full"
        try:
            priority = int(message.get("priority") or 0)
        except (TypeError, ValueError):
            priority = 0
        jobs: List[SimJob] = []
        try:
            for entry in raw_jobs or ():
                jobs.append(SimJob(str(entry["workload"]),
                                   str(entry["key"]),
                                   int(entry["instructions"])))
        except (KeyError, TypeError, ValueError):
            self._send(conn, {"t": "error", "id": request_id,
                              "error": "malformed submit"})
            return
        if not jobs:
            self._send(conn, {"t": "error", "id": request_id,
                              "error": "empty submit"})
            return
        telemetry.emit("server.submit", tenant=conn.tenant,
                       jobs=len(jobs), priority=priority)
        if self._draining:
            self._reject(conn, request_id, 503, protocol.REASON_DRAINING,
                         limit=0)
            return

        # Partition into hot hits (served now, no queue space) and
        # misses, then admission-check only the misses — a cached sweep
        # must never be shed.
        hot: List[Tuple[SimJob, object]] = []
        misses: List[SimJob] = []
        for job in dict.fromkeys(jobs):
            cached = self._peek_verified(job)
            if cached is not None:
                hot.append((job, cached))
            else:
                misses.append(job)

        new = [job for job in misses if job not in self._pending]
        outstanding = self._outstanding.get(conn.tenant, 0)
        if outstanding + len(misses) > self.config.tenant_cap:
            self._reject(conn, request_id, 429, protocol.REASON_TENANT_CAP,
                         limit=self.config.tenant_cap)
            return
        if len(self.queue) + len(new) > self.config.max_queue:
            self._reject(conn, request_id, 429, protocol.REASON_QUEUE_FULL,
                         limit=self.config.max_queue)
            return

        now = time.monotonic()
        for job in misses:
            pending = self._pending.get(job)
            if pending is None:
                pending = self._pending[job] = _PendingJob(job, priority)
                self.queue.push(job, conn.tenant, priority)
                self._record_pending(job, conn.tenant, priority)
            pending.waiters.append(_Waiter(conn, request_id, conn.tenant,
                                           detail, now))
            self._outstanding[conn.tenant] = (
                self._outstanding.get(conn.tenant, 0) + 1)
        self._counts["accepted"] += len(misses)
        self._send(conn, {"t": "accepted", "id": request_id,
                          "jobs": len(jobs), "queued": len(self.queue),
                          "cached": len(hot)})
        for job, cached in hot:
            self._counts["cached"] += 1
            digest = journal_mod.result_digest(cached)
            message_out = {"t": "result", "id": request_id,
                           "workload": job.workload, "key": job.key,
                           "instructions": job.instructions,
                           "source": "cache", "digest": digest,
                           "seconds": round(time.monotonic() - now, 6)}
            if detail == "full":
                message_out["result"] = runner._to_json(cached)
            self._send(conn, message_out)
            telemetry.emit("server.result", workload=job.workload,
                           key=job.key, instructions=job.instructions,
                           tenant=conn.tenant, source="cache",
                           seconds=time.monotonic() - now)
        if misses and self._wake is not None:
            self._wake.set()

    def _peek_verified(self, job: SimJob):
        """A cached result, unless the journal proves it corrupt."""
        cached = runner.peek_result(job.workload, job.key, job.instructions)
        if cached is None or self.journal is None:
            return cached
        verdict = self.journal.matches(
            (job.workload, job.key, job.instructions), cached)
        if verdict is False:
            telemetry.emit("server.cache_corrupt", workload=job.workload,
                           key=job.key, instructions=job.instructions)
            runner.drop_result(job.workload, job.key, job.instructions)
            return None
        return cached

    def _stats_message(self) -> dict:
        return {"t": "stats", "uptime": round(time.time() - self._started, 3),
                "queued": len(self.queue),
                "inflight": self._inflight_count(),
                "draining": self._draining,
                "clients": len(self._conns),
                "served": {"cached": self._counts["cached"],
                           "computed": self._counts["computed"]},
                "errors": self._counts["errors"],
                "requests": self._counts["requests"],
                "accepted": self._counts["accepted"],
                "rejected": dict(self._rejects),
                "outstanding": dict(self._outstanding),
                "queue_by_tenant": self.queue.depth_by_tenant(),
                "journalled": len(self.journal or ())}

    # ------------------------------------------------------------------
    # Telemetry subscription
    # ------------------------------------------------------------------

    def _subscribe(self, conn: _Conn) -> None:
        if not any(c.subscribed for c in self._conns):
            telemetry.add_listener(self._on_event)
        conn.subscribed = True
        self._send(conn, {"t": "subscribed"})

    def _on_event(self, record: dict) -> None:
        loop = self._loop
        if loop is None or loop.is_closed():
            return
        with contextlib.suppress(RuntimeError):
            loop.call_soon_threadsafe(self._broadcast_event, record)

    def _broadcast_event(self, record: dict) -> None:
        subscribers = [c for c in self._conns if c.subscribed]
        if not subscribers:
            telemetry.remove_listener(self._on_event)
            return
        for conn in subscribers:
            self._send(conn, {"t": "event", "event": record})


class ServerThread:
    """Run a :class:`SweepServer` on a background thread (tests, the
    perf harness, the bench smoke gate).

    Context manager: entering boots the daemon and waits for its
    listeners; exiting requests a drain and joins the thread.
    """

    def __init__(self, config: Optional[ServerConfig] = None,
                 startup_timeout: float = 60.0) -> None:
        self.server = SweepServer(config)
        self.startup_timeout = startup_timeout
        self._ready = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._error: Optional[BaseException] = None

    @property
    def address(self) -> str:
        if self.server.config.unix_path is not None:
            return self.server.config.unix_path
        return f"{self.server.config.host}:{self.server.port}"

    def _run(self) -> None:
        try:
            asyncio.run(self.server.serve(ready=self._ready))
        except BaseException as error:  # surfaced by __enter__/stop
            self._error = error
            self._ready.set()

    def __enter__(self) -> "ServerThread":
        self._thread = threading.Thread(target=self._run,
                                        name="sweep-server", daemon=True)
        self._thread.start()
        if not self._ready.wait(self.startup_timeout):
            raise TimeoutError("sweep server did not start")
        if self._error is not None:
            raise RuntimeError("sweep server failed to start") \
                from self._error
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def stop(self, timeout: float = 60.0) -> None:
        self.server.request_drain_threadsafe()
        if self._thread is not None:
            self._thread.join(timeout)
            if self._thread.is_alive():
                warnings.warn("sweep server thread did not stop",
                              RuntimeWarning, stacklevel=2)
            self._thread = None


def _default_socket_dir() -> Path:
    return journal_mod.default_path().parent


def free_port() -> int:
    """An OS-assigned free TCP port (loadgen/test convenience)."""
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]
