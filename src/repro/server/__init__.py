"""Prediction-as-a-service: a persistent sweep server.

``python -m repro.server`` boots a daemon that keeps traces, caches and
the executor warm between requests and serves simulation sweeps over a
unix socket and/or localhost TCP with multi-tenant admission control;
``python -m repro.server.loadgen`` is the matching load-generator /
admin client.  See :mod:`repro.server.daemon` for the architecture and
:mod:`repro.server.protocol` for the wire format.
"""

from repro.server.daemon import (ServerConfig, ServerThread, SweepServer,
                                 free_port)
from repro.server.protocol import SERVER_PROTOCOL_VERSION
from repro.server.queue import SweepQueue

__all__ = [
    "SERVER_PROTOCOL_VERSION",
    "ServerConfig",
    "ServerThread",
    "SweepServer",
    "SweepQueue",
    "free_port",
]
