"""Branch working-set characterisation (paper §II-D, Fig 3).

Static branches are sorted by their misprediction count under the 64K TSL
baseline; the studies then ask (a) how mispredictions concentrate on the
hottest branches and how that changes with predictor capacity (Fig 3a),
and (b) how many *useful patterns* each branch needs under infinite
capacity (Fig 3b).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.predictors.infinite import InfiniteTage
from repro.predictors.presets import tage_config_64k
from repro.predictors.tage_sc_l import TageScL, TslConfig
from repro.sim.engine import run_simulation
from repro.sim.results import SimulationResult
from repro.traces.trace import Trace


def baseline_order(baseline: SimulationResult) -> List[int]:
    """Static branch PCs sorted by baseline mispredictions (descending)."""
    misp = baseline.per_pc_mispredictions
    pcs = list(baseline.per_pc_executions)
    pcs.sort(key=lambda pc: misp.get(pc, 0), reverse=True)
    return pcs


def cumulative_misprediction_fractions(
    result: SimulationResult,
    order: Sequence[int],
    normalise_to: SimulationResult,
) -> List[float]:
    """Fig 3a curve: cumulative mispredictions along ``order``.

    Normalised to the *baseline's* total so curves of different
    configurations are directly comparable (the paper normalises to
    64K TSL).
    """
    total = sum(normalise_to.per_pc_mispredictions.values())
    if total <= 0:
        return [0.0] * len(order)
    misp = result.per_pc_mispredictions
    out: List[float] = []
    acc = 0
    for pc in order:
        acc += misp.get(pc, 0)
        out.append(acc / total)
    return out


def top_branch_share(result: SimulationResult, order: Sequence[int],
                     top: int) -> float:
    """Fraction of ``result``'s mispredictions on the ``top`` hottest
    branches of ``order`` (paper: top 0.8% ≈ 40%)."""
    total = sum(result.per_pc_mispredictions.values())
    if total <= 0:
        return 0.0
    misp = result.per_pc_mispredictions
    return sum(misp.get(pc, 0) for pc in order[:top]) / total


@dataclass
class UsefulPatternsResult:
    """Fig 3b data: useful patterns per static branch."""

    counts_by_pc: Dict[int, int]
    order: List[int]

    @property
    def counts_in_order(self) -> List[int]:
        return [self.counts_by_pc.get(pc, 0) for pc in self.order]

    @property
    def mean(self) -> float:
        counts = [c for c in self.counts_by_pc.values() if c > 0]
        return sum(counts) / len(counts) if counts else 0.0

    def top_n_mean(self, n: int) -> float:
        top = self.counts_in_order[:n]
        return sum(top) / len(top) if top else 0.0


def useful_patterns_study(trace: Trace, baseline: SimulationResult,
                          warmup_instructions: int = 0) -> UsefulPatternsResult:
    """Run Inf TAGE with useful-pattern tracing (Fig 3b).

    A pattern is useful when it provides a correct prediction while the
    alternative prediction is wrong (§II-D).
    """
    config = TslConfig(tage=tage_config_64k(), sc_index_bits=8, name="Inf TAGE")
    tage = InfiniteTage(config.tage)
    tage.trace_useful = True
    predictor = TageScL(config, tage=tage)
    run_simulation(trace, predictor, warmup_instructions=warmup_instructions)
    return UsefulPatternsResult(
        counts_by_pc=tage.useful_pattern_counts(),
        order=baseline_order(baseline),
    )
