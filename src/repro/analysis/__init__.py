"""Analysis studies: working set (Fig 3), context locality (Fig 5),
LLBP effectiveness breakdown (Fig 15), workload characterization."""

from repro.analysis.working_set import (
    cumulative_misprediction_fractions,
    top_branch_share,
    useful_patterns_study,
)
from repro.analysis.contexts import patterns_per_context_study, ContextStudyResult
from repro.analysis.breakdown import override_breakdown, OverrideBreakdown

#: Lazily re-exported from :mod:`repro.analysis.characterize` — an eager
#: import here would trip runpy's double-import warning every time the
#: module is run as ``python -m repro.analysis.characterize``.
_CHARACTERIZE_EXPORTS = (
    "characterize",
    "characterize_trace",
    "characterize_workload",
    "measured_winner",
    "predicted_winner",
)


def __getattr__(name):
    if name in _CHARACTERIZE_EXPORTS:
        import importlib

        module = importlib.import_module("repro.analysis.characterize")
        # Bind every export now: the import above also set the package
        # attribute ``characterize`` to the *module*, which would shadow
        # the function of the same name on the next lookup.
        for export in _CHARACTERIZE_EXPORTS:
            globals()[export] = getattr(module, export)
        return globals()[name]
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "cumulative_misprediction_fractions",
    "top_branch_share",
    "useful_patterns_study",
    "patterns_per_context_study",
    "ContextStudyResult",
    "override_breakdown",
    "OverrideBreakdown",
    "characterize",
    "characterize_trace",
    "characterize_workload",
    "measured_winner",
    "predicted_winner",
]
