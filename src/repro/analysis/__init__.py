"""Analysis studies: working set (Fig 3), context locality (Fig 5),
LLBP effectiveness breakdown (Fig 15)."""

from repro.analysis.working_set import (
    cumulative_misprediction_fractions,
    top_branch_share,
    useful_patterns_study,
)
from repro.analysis.contexts import patterns_per_context_study, ContextStudyResult
from repro.analysis.breakdown import override_breakdown, OverrideBreakdown

__all__ = [
    "cumulative_misprediction_fractions",
    "top_branch_share",
    "useful_patterns_study",
    "patterns_per_context_study",
    "ContextStudyResult",
    "override_breakdown",
    "OverrideBreakdown",
]
