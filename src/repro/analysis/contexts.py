"""Context-locality validation (paper §IV, Fig 5).

The study re-runs the useful-pattern tracing of §II-D, but attributes
every useful pattern of the most-mispredicted branches to the *program
context* in which it proved useful — the hash of the ``W`` most recent
unconditional-branch PCs.  The paper's result: deeper contexts slice the
pattern space so that, at W=32, 95% of (branch, context) pairs need at
most nine patterns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

from repro.analysis.working_set import baseline_order
from repro.common.stats import percentile
from repro.predictors.infinite import InfiniteTage, PatternKey
from repro.predictors.presets import tage_config_64k
from repro.predictors.tage_sc_l import TageScL, TslConfig
from repro.sim.results import SimulationResult
from repro.traces.trace import Trace
from repro.traces.types import BranchType

_UNCOND_TYPES = {
    int(BranchType.JUMP), int(BranchType.CALL), int(BranchType.RET),
    int(BranchType.IND_JUMP), int(BranchType.IND_CALL),
}


@dataclass
class ContextStudyResult:
    """Patterns-per-context distribution for one context depth W."""

    window: int
    counts: List[int]  # unique useful patterns per (branch, context) pair

    def percentile(self, p: float) -> int:
        if not self.counts:
            return 0
        return int(percentile(sorted(self.counts), p))

    @property
    def p50(self) -> int:
        return self.percentile(50)

    @property
    def p95(self) -> int:
        return self.percentile(95)


def _context_hash(window: Sequence[int], bits: int = 30,
                  shift: int = 2) -> int:
    value = 0
    for position, pc in enumerate(reversed(window)):
        value ^= (pc >> 2) << (shift * position)
    mask = (1 << bits) - 1
    return (value ^ (value >> bits)) & mask


def patterns_per_context_study(
    trace: Trace,
    baseline: SimulationResult,
    windows: Sequence[int] = (0, 2, 4, 8, 16, 32),
    top_branches: int = 128,
    warmup_instructions: int = 0,
) -> List[ContextStudyResult]:
    """Reproduce Fig 5 for ``trace``.

    Runs one Inf-TAGE simulation; every useful-pattern event for a
    top-``top_branches`` branch is attributed, per requested window depth
    W, to the context formed by the last W unconditional-branch PCs
    (W=0: a single global context — the paging-scheme view).
    """
    top: Set[int] = set(baseline_order(baseline)[:top_branches])
    max_window = max(windows)
    window_pcs: List[int] = [0] * max(max_window, 1)

    # (W, branch, context) -> set of patterns
    patterns: Dict[Tuple[int, int, int], Set[PatternKey]] = {}

    config = TslConfig(tage=tage_config_64k(), sc_index_bits=8, name="Inf TAGE")
    tage = InfiniteTage(config.tage)
    tage.trace_useful = True
    predictor = TageScL(config, tage=tage)

    contexts_now: Dict[int, int] = {w: 0 for w in windows}

    def on_useful(pc: int, pattern: PatternKey) -> None:
        if pc not in top:
            return
        for w in windows:
            key = (w, pc, contexts_now[w])
            patterns.setdefault(key, set()).add(pattern)

    tage.useful_callback = on_useful

    instructions = 0
    for pc, btype, taken_i, target, gap in trace.iter_tuples():
        instructions += gap
        taken = taken_i == 1
        if btype == 0:
            if instructions > warmup_instructions:
                meta = predictor.predict(pc)
            else:
                meta = predictor.lookup(pc)
            predictor.train(pc, taken, meta)
        predictor.update_history(pc, btype, taken, target)
        if btype in _UNCOND_TYPES:
            window_pcs.append(pc)
            window_pcs.pop(0)
            for w in windows:
                if w > 0:
                    contexts_now[w] = _context_hash(window_pcs[-w:])

    results = []
    for w in windows:
        counts = [len(v) for (ww, _pc, _ctx), v in patterns.items() if ww == w]
        results.append(ContextStudyResult(window=w, counts=counts))
    return results
