"""Workload characterization: metrics that explain the family ranking.

One pass over a workload's conditional branches computes, per workload:

* ``taken_rate`` — fraction of conditional executions taken;
* ``branch_entropy`` — execution-weighted mean of the per-PC outcome
  entropy ``H(p_taken)``; 0 = every branch fully biased, 1 = every
  branch a coin flip;
* ``taken_skew`` — execution-weighted mean of ``|2 p_taken - 1|``, the
  bias a bimodal counter can exploit (1 = fully biased);
* ``transition_entropy`` — conditional entropy ``H(outcome | pc, prev
  outcome at pc)``: how much a 1-bit local history explains;
* ``history_entropy[L]`` — conditional entropy ``H(outcome | pc,
  last-L global outcomes)`` for several ``L``: the ceiling on what an
  ``L``-bit global-history predictor (gshare and friends) can learn;
* ``context_entropy`` — conditional entropy ``H(outcome | pc, CCID)``
  where the CCID is LLBP's rolling context signature
  (:class:`repro.llbp.rcr.RollingContextRegister` at the default
  :class:`~repro.llbp.config.LLBPConfig`): the ceiling on what a
  context-keyed pattern store can learn *without* history.

All entropies are in bits per conditional branch.  The pipeline then
asks the cached runner (:mod:`repro.experiments.runner`) for each
predictor family's measured MPKI — the ``run_many`` batch API keeps the
sweep backend-aware (``REPRO_BACKEND``) — and pins a ``predicted_winner``
derived *only from the metrics* next to the ``measured_winner`` derived
from MPKI.  The prediction rule is deliberately simple (see
:func:`predicted_winner`); its hit rate over the catalog is asserted in
``tests/analysis/test_characterize.py``.

The artifact is byte-deterministic: floats are rounded to
:data:`DIGITS` places and serialised with sorted keys, so the same
workloads + budget produce the same bytes on any engine or backend —
CI diffs a local artifact against a TCP-backend one.

CLI::

    python -m repro.analysis.characterize [--workloads all|A,B,...]
        [--instructions N] [--out FILE] [--check FILE] [--no-mpki]
"""

from __future__ import annotations

import argparse
import hashlib
import json
import math
import sys
import time
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence

from repro import telemetry
from repro.llbp.config import LLBPConfig
from repro.llbp.rcr import RollingContextRegister
from repro.traces.trace import Trace
from repro.traces.types import BranchType
from repro.workloads import adversarial
from repro.workloads.catalog import generate_workload, workload_names

#: Global-history window lengths probed by ``history_entropy``.
HISTORY_LENGTHS = (2, 4, 8, 12)

#: Predictor families ranked by the pipeline, in report order.
FAMILIES = ("gshare", "bimode", "percep", "tsl64", "llbp")

#: Decimal places kept in the artifact — the byte-determinism contract.
DIGITS = 6

#: Artifact schema version; bump when fields change meaning.
SCHEMA = 1

#: Pinned inputs for the perf-trajectory gate (``scripts/bench.py``):
#: the metrics-only artifact for these workloads at this budget must
#: hash to the ``digest_sha256`` committed in BENCH_engine.json's
#: ``characterization`` section.  Metrics never touch an engine or a
#: backend, so the digest is deterministic on any host.
BENCH_WORKLOADS = ("Kafka", "adv:xor")
BENCH_INSTRUCTIONS = 60_000


def _entropy(p: float) -> float:
    """Binary entropy H(p) in bits, 0 at the endpoints."""
    if p <= 0.0 or p >= 1.0:
        return 0.0
    return -(p * math.log2(p) + (1.0 - p) * math.log2(1.0 - p))


def _conditional_entropy(buckets: Iterable[List[int]]) -> float:
    """H(outcome | bucket) from per-bucket [not-taken, taken] counts."""
    total = 0
    weighted = 0.0
    for not_taken, taken in buckets:
        n = not_taken + taken
        total += n
        weighted += n * _entropy(taken / n)
    return weighted / total if total else 0.0


def characterize_trace(trace: Trace) -> Dict[str, object]:
    """The single-pass metric computation (pure, engine-independent)."""
    cond = int(BranchType.COND)
    exec_counts: Dict[int, int] = {}
    taken_counts: Dict[int, int] = {}
    prev_outcome: Dict[int, int] = {}
    transitions: Dict[tuple, List[int]] = {}
    masks = [(1 << length) - 1 for length in HISTORY_LENGTHS]
    history_buckets: List[Dict[tuple, List[int]]] = [{} for _ in HISTORY_LENGTHS]
    context_buckets: Dict[tuple, List[int]] = {}
    rcr = RollingContextRegister(LLBPConfig())
    history = 0

    for pc, branch_type, taken, _target, _gap in trace.iter_tuples():
        if branch_type == cond:
            exec_counts[pc] = exec_counts.get(pc, 0) + 1
            if taken:
                taken_counts[pc] = taken_counts.get(pc, 0) + 1

            key = (pc, prev_outcome.get(pc, 0))
            bucket = transitions.get(key)
            if bucket is None:
                bucket = transitions[key] = [0, 0]
            bucket[taken] += 1
            prev_outcome[pc] = taken

            for buckets, mask in zip(history_buckets, masks):
                key = (pc, history & mask)
                bucket = buckets.get(key)
                if bucket is None:
                    bucket = buckets[key] = [0, 0]
                bucket[taken] += 1

            key = (pc, rcr.ccid)
            bucket = context_buckets.get(key)
            if bucket is None:
                bucket = context_buckets[key] = [0, 0]
            bucket[taken] += 1

            history = (history << 1) | taken
        if rcr.qualifies(branch_type):
            rcr.push(pc)

    total = sum(exec_counts.values())
    if total == 0:
        raise ValueError(f"trace {trace.name!r} has no conditional branches")
    taken_total = sum(taken_counts.values())
    branch_entropy = 0.0
    taken_skew = 0.0
    for pc, execs in exec_counts.items():
        p = taken_counts.get(pc, 0) / execs
        branch_entropy += execs * _entropy(p)
        taken_skew += execs * abs(2.0 * p - 1.0)

    return {
        "cond_branches": total,
        "static_branches": len(exec_counts),
        "taken_rate": taken_total / total,
        "branch_entropy": branch_entropy / total,
        "taken_skew": taken_skew / total,
        "transition_entropy": _conditional_entropy(transitions.values()),
        "history_entropy": {
            str(length): _conditional_entropy(buckets.values())
            for length, buckets in zip(HISTORY_LENGTHS, history_buckets)
        },
        "context_entropy": _conditional_entropy(context_buckets.values()),
    }


def characterize_workload(name: str,
                          instructions: Optional[int] = None) -> Dict[str, object]:
    """Metrics for one workload (catalog or ``adv:`` name)."""
    from repro.experiments.runner import _resolve_instructions

    instructions = _resolve_instructions(instructions)
    start = time.perf_counter() if telemetry.enabled() else 0.0
    trace = generate_workload(name, instructions)
    metrics = characterize_trace(trace)
    telemetry.emit("characterize.workload", workload=name,
                   instructions=instructions,
                   seconds=time.perf_counter() - start)
    return metrics


def predicted_winner(metrics: Dict[str, object]) -> str:
    """Name the family the metrics alone say should win (lowest MPKI).

    The rule reads the entropy ladder, most decisive signal first:

    1. If the longest probed window explains nearly everything
       (``history_entropy`` at the deepest probe under 0.05 bits) every
       family lands near zero MPKI and the ranking degenerates to
       warmup noise; per-window counters (gshare) converge in a single
       visit, so gshare is named.
    2. If even the longest probe explains almost nothing (over 0.85
       bits) the structure — if any — lies beyond the probe horizon,
       and only the long-history families can reach it; among them the
       hashed perceptron's threshold training warms fastest.
    3. If the context signature explains materially more than static
       bias (``context_entropy`` below 90% of ``branch_entropy``),
       context-keyed pattern sets pay for themselves: LLBP.
    4. Otherwise lengthening the history is the only lever that still
       pays, which is TAGE's home turf: the base TSL is named.

    Structural failure modes — table aliasing (``adv:alias``),
    cross-segment XOR (``adv:xor``) — are invisible to entropy metrics
    by design, so the rule never names Bi-Mode: its diagnostic role is
    the ``taken_skew`` column plus the adversarial suite itself.  The
    rule's hit rate over the 14-workload catalog is asserted in
    ``tests/analysis/test_characterize.py``.
    """
    ladder = metrics["history_entropy"]
    longest = ladder[str(HISTORY_LENGTHS[-1])]
    context = metrics["context_entropy"]
    bias = metrics["branch_entropy"]

    if longest < 0.05:
        return "gshare"
    if longest > 0.85:
        return "percep"
    if context < 0.9 * bias:
        return "llbp"
    return "tsl64"


def measured_winner(mpki: Dict[str, float],
                    families: Sequence[str] = FAMILIES) -> str:
    """The family with the lowest MPKI (ties: first in ``families``)."""
    return min(families, key=lambda family: (mpki[family], families.index(family)))


def characterize(workloads: Optional[Sequence[str]] = None,
                 instructions: Optional[int] = None,
                 families: Sequence[str] = FAMILIES,
                 max_workers: Optional[int] = None,
                 with_mpki: bool = True) -> Dict[str, object]:
    """Build the full characterization artifact (a plain dict)."""
    from repro.experiments.runner import _resolve_instructions, run_many

    if workloads is None:
        workloads = workload_names()
    instructions = _resolve_instructions(instructions)
    start = time.perf_counter() if telemetry.enabled() else 0.0

    results = {}
    if with_mpki:
        pairs = [(workload, key) for workload in workloads for key in families]
        results = run_many(pairs, instructions=instructions,
                           max_workers=max_workers)

    entries: Dict[str, Dict[str, object]] = {}
    for workload in workloads:
        metrics = characterize_workload(workload, instructions)
        entry: Dict[str, object] = {
            "metrics": metrics,
            "predicted_winner": predicted_winner(metrics),
        }
        if with_mpki:
            mpki = {key: results[(workload, key)].mpki for key in families}
            entry["mpki"] = mpki
            entry["measured_winner"] = measured_winner(mpki, families)
        entries[workload] = entry

    artifact: Dict[str, object] = {
        "schema": SCHEMA,
        "instructions": instructions,
        "families": list(families) if with_mpki else [],
        "history_lengths": list(HISTORY_LENGTHS),
        "workloads": entries,
    }
    telemetry.emit("characterize.run", workloads=len(entries),
                   instructions=instructions, with_mpki=with_mpki,
                   seconds=time.perf_counter() - start)
    return artifact


# ---------------------------------------------------------------------------
# Serialisation: byte-deterministic by construction.

def _round_floats(value):
    if isinstance(value, float):
        return round(value, DIGITS)
    if isinstance(value, dict):
        return {k: _round_floats(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_round_floats(v) for v in value]
    return value


def artifact_json(artifact: Dict[str, object]) -> str:
    """Canonical serialisation: rounded floats, sorted keys, trailing
    newline — byte-identical across engines, backends and platforms."""
    return json.dumps(_round_floats(artifact), sort_keys=True, indent=2) + "\n"


def write_artifact(artifact: Dict[str, object], path: Path) -> None:
    Path(path).write_text(artifact_json(artifact))


def bench_digest() -> str:
    """sha256 of the pinned metrics-only artifact — what the bench gate
    recomputes and compares against the committed trajectory."""
    artifact = characterize(BENCH_WORKLOADS, instructions=BENCH_INSTRUCTIONS,
                            with_mpki=False)
    return hashlib.sha256(artifact_json(artifact).encode("ascii")).hexdigest()


def render_table(artifact: Dict[str, object]) -> str:
    """Fixed-width summary table of the artifact."""
    from repro.experiments.common import format_table

    families = artifact["families"]
    longest = str(artifact["history_lengths"][-1])
    rows = []
    for workload, entry in artifact["workloads"].items():
        metrics = entry["metrics"]
        row = {
            "workload": workload,
            "H(br)": metrics["branch_entropy"],
            "H(trans)": metrics["transition_entropy"],
            f"H(hist{longest})": metrics["history_entropy"][longest],
            "H(ctx)": metrics["context_entropy"],
            "predicted": entry["predicted_winner"],
        }
        if families:
            for family in families:
                row[family] = entry["mpki"][family]
            row["measured"] = entry["measured_winner"]
        rows.append(row)
    columns = ["workload", "H(br)", "H(trans)", f"H(hist{longest})",
               "H(ctx)", *families, "predicted"]
    if families:
        columns.append("measured")
    return format_table(rows, columns)


# ---------------------------------------------------------------------------
# CLI.

def _parse_workloads(value: str) -> List[str]:
    if value.lower() == "all":
        return workload_names()
    if value.lower() == "adv":
        return adversarial.adversarial_names()
    # An adv: name may itself contain commas (adv:hist,l=4): a bare
    # tok=val part belongs to the preceding adv: name, not the list.
    names: List[str] = []
    for part in value.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" in part and names and adversarial.is_adversarial(names[-1]):
            names[-1] += "," + part
        else:
            names.append(part)
    known = set(workload_names())
    for name in names:
        if name not in known and not adversarial.is_adversarial(name):
            raise SystemExit(f"unknown workload {name!r}")
    return names


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.characterize",
        description="Characterize workloads and rank predictor families.")
    parser.add_argument("--workloads", default="all",
                        help="comma list, 'all' (catalog), or 'adv' "
                             "(adversarial suite); adv:* names allowed")
    parser.add_argument("--instructions", type=int, default=None,
                        help="per-workload budget (default: REPRO_INSTRUCTIONS)")
    parser.add_argument("--out", type=Path, default=None,
                        help="write the JSON artifact here")
    parser.add_argument("--check", type=Path, default=None,
                        help="byte-compare the artifact against this file; "
                             "exit 1 on any difference")
    parser.add_argument("--no-mpki", action="store_true",
                        help="metrics only: skip the family MPKI sweep")
    args = parser.parse_args(argv)

    artifact = characterize(_parse_workloads(args.workloads),
                            instructions=args.instructions,
                            with_mpki=not args.no_mpki)
    text = artifact_json(artifact)
    if args.out:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(text)
        print(f"wrote {args.out}")
    if args.check:
        expected = args.check.read_text()
        if text != expected:
            print(f"MISMATCH against {args.check}", file=sys.stderr)
            return 1
        print(f"byte-identical to {args.check}")
    print(render_table(artifact))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
