"""LLBP prediction breakdown (paper §VII-G, Fig 15)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.sim.results import SimulationResult


@dataclass
class OverrideBreakdown:
    """Fig 15's categories, as fractions of all conditional predictions."""

    predictions: int
    provided: float            # LLBP matched a pattern
    no_override: float         # matched, but shorter than TAGE's provider
    good_override: float       # LLBP right where the baseline was wrong
    bad_override: float        # LLBP wrong where the baseline was right
    both_correct: float        # redundant override
    both_wrong: float

    @property
    def override_rate_of_provided(self) -> float:
        """Share of LLBP-provided predictions that override (paper: 77%)."""
        if self.provided <= 0:
            return 0.0
        return (self.provided - self.no_override) / self.provided

    @property
    def bad_share_of_overrides(self) -> float:
        """Share of overrides that are incorrect (paper: 6.8%)."""
        overrides = self.provided - self.no_override
        if overrides <= 0:
            return 0.0
        return (self.bad_override + self.both_wrong) / overrides

    @property
    def redundant_share_of_overrides(self) -> float:
        """Share of overrides where the baseline agreed (paper: 59%)."""
        overrides = self.provided - self.no_override
        if overrides <= 0:
            return 0.0
        return (self.both_correct + self.both_wrong) / overrides


def override_breakdown(result: SimulationResult) -> OverrideBreakdown:
    """Extract Fig 15's breakdown from an LLBP simulation result."""
    return breakdown_from_counts(result.extra)


def breakdown_from_counts(extra: Mapping[str, float]) -> OverrideBreakdown:
    predictions = int(extra.get("predictions", 0))
    if predictions <= 0:
        raise ValueError("result does not carry LLBP prediction counts")

    def frac(key: str) -> float:
        return extra.get(key, 0) / predictions

    return OverrideBreakdown(
        predictions=predictions,
        provided=frac("llbp_provided"),
        no_override=frac("no_override"),
        good_override=frac("override_good"),
        bad_override=frac("override_bad"),
        both_correct=frac("override_both_correct"),
        both_wrong=frac("override_both_wrong"),
    )
