"""Trace-level statistics.

These are the workload-characterisation numbers §IV of the paper leans on:
the conditional/unconditional branch mix (the paper measures ~3.89
conditional branches per unconditional branch, with unconditional branches
being ~20% of all branches and calls/returns ~14%), branch working-set
size, and taken rates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from repro.traces.trace import Trace
from repro.traces.types import BranchType


@dataclass
class TraceStats:
    """Aggregate statistics of one trace."""

    name: str
    num_branches: int
    num_instructions: int
    num_conditional: int
    num_unconditional: int
    num_calls: int
    num_returns: int
    num_indirect: int
    unique_pcs: int
    unique_conditional_pcs: int
    taken_rate: float
    per_type: Dict[BranchType, int] = field(default_factory=dict)

    @property
    def cond_per_uncond(self) -> float:
        """Conditional branches per unconditional branch (§IV: ~3.89)."""
        if self.num_unconditional == 0:
            return float("inf")
        return self.num_conditional / self.num_unconditional

    @property
    def uncond_fraction(self) -> float:
        if self.num_branches == 0:
            return 0.0
        return self.num_unconditional / self.num_branches

    @property
    def call_ret_fraction(self) -> float:
        if self.num_branches == 0:
            return 0.0
        return (self.num_calls + self.num_returns) / self.num_branches

    @property
    def branches_per_instruction(self) -> float:
        if self.num_instructions == 0:
            return 0.0
        return self.num_branches / self.num_instructions


def compute_stats(trace: Trace) -> TraceStats:
    """Compute :class:`TraceStats` for ``trace`` in a single pass."""
    types = trace.types
    per_type: Dict[BranchType, int] = {}
    for bt in BranchType:
        per_type[bt] = int((types == int(bt)).sum())

    cond = per_type[BranchType.COND]
    uncond = len(trace) - cond
    cond_mask = types == int(BranchType.COND)
    cond_taken = int(trace.takens[cond_mask].sum())

    return TraceStats(
        name=trace.name,
        num_branches=len(trace),
        num_instructions=trace.num_instructions,
        num_conditional=cond,
        num_unconditional=uncond,
        num_calls=per_type[BranchType.CALL] + per_type[BranchType.IND_CALL],
        num_returns=per_type[BranchType.RET],
        num_indirect=per_type[BranchType.IND_JUMP] + per_type[BranchType.IND_CALL],
        unique_pcs=int(np.unique(trace.pcs).size),
        unique_conditional_pcs=int(np.unique(trace.pcs[cond_mask]).size),
        taken_rate=(cond_taken / cond) if cond else 0.0,
        per_type=per_type,
    )
