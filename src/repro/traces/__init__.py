"""Branch-trace substrate: record model, container, file I/O, statistics.

The simulator is trace-driven, like the paper's artifact: a trace is a
sequence of retired branch records, each carrying the branch PC, its type
(conditional, jump, call, return, or their indirect variants), the resolved
direction and target, and the number of instructions fetched since the
previous branch (so MPKI and the timing model have an instruction base).
"""

from repro.traces.types import BranchType, BranchRecord, is_unconditional, is_call, is_return
from repro.traces.trace import Trace, TraceBuilder
from repro.traces.io import save_trace, load_trace
from repro.traces.stats import TraceStats, compute_stats
from repro.traces.store import (
    TraceStore,
    TraceStoreError,
    pack_trace,
    read_packed,
    write_packed,
)

__all__ = [
    "BranchType",
    "BranchRecord",
    "is_unconditional",
    "is_call",
    "is_return",
    "Trace",
    "TraceBuilder",
    "save_trace",
    "load_trace",
    "TraceStats",
    "compute_stats",
    "TraceStore",
    "TraceStoreError",
    "pack_trace",
    "read_packed",
    "write_packed",
]
