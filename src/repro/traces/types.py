"""Branch record model.

Branch types follow the taxonomy the paper uses in §IV: conditional
branches are what the predictor predicts; unconditional branches (jumps,
calls, returns and their indirect forms) are what forms *program context*.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum


class BranchType(IntEnum):
    """Branch categories; integer-valued so traces pack into numpy arrays."""

    COND = 0        # conditional direct branch
    JUMP = 1        # unconditional direct jump
    CALL = 2        # direct call
    RET = 3         # return
    IND_JUMP = 4    # indirect jump
    IND_CALL = 5    # indirect call


_UNCONDITIONAL = frozenset(
    {BranchType.JUMP, BranchType.CALL, BranchType.RET,
     BranchType.IND_JUMP, BranchType.IND_CALL}
)
_CALLS = frozenset({BranchType.CALL, BranchType.IND_CALL})


def is_unconditional(branch_type: BranchType) -> bool:
    return branch_type in _UNCONDITIONAL


def is_call(branch_type: BranchType) -> bool:
    return branch_type in _CALLS


def is_return(branch_type: BranchType) -> bool:
    return branch_type == BranchType.RET


def is_indirect(branch_type: BranchType) -> bool:
    return branch_type in (BranchType.IND_JUMP, BranchType.IND_CALL)


@dataclass(frozen=True)
class BranchRecord:
    """A single retired branch.

    Attributes:
        pc: address of the branch instruction.
        branch_type: category of the branch.
        taken: resolved direction (always True for unconditional branches).
        target: resolved target address.
        instr_gap: instructions retired since the previous branch record,
            inclusive of this branch (>= 1).  Summing gaps gives the
            instruction count used for MPKI.
    """

    pc: int
    branch_type: BranchType
    taken: bool
    target: int
    instr_gap: int = 1

    def __post_init__(self) -> None:
        if self.instr_gap < 1:
            raise ValueError("instr_gap must be >= 1")
        if is_unconditional(self.branch_type) and not self.taken:
            raise ValueError("unconditional branches are always taken")

    @property
    def is_conditional(self) -> bool:
        return self.branch_type == BranchType.COND

    @property
    def is_unconditional(self) -> bool:
        return is_unconditional(self.branch_type)
