"""Struct-of-arrays trace container.

Traces routinely hold hundreds of thousands of branch records; storing a
Python object per record would dominate memory and iteration time.  The
``Trace`` class keeps five parallel numpy arrays and exposes both bulk
(array) access for analysis code and a fast tuple iterator for the
simulation loop.
"""

from __future__ import annotations

from itertools import chain
from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro.traces.types import BranchRecord, BranchType

# The tuple layout yielded by Trace.iter_tuples(): hot-loop code unpacks
# these positionally, so the order is part of the API.
BranchTuple = Tuple[int, int, int, int, int]  # (pc, type, taken, target, gap)


class Trace:
    """An immutable sequence of branch records backed by numpy arrays.

    ``aux`` carries optional derived columns keyed by string — the array
    engine's precomputed hash/fold columns live there (persisted by the
    packed store when the trace came from it).  ``store_path`` is the
    packed-store file backing this trace, or ``None`` for in-memory
    traces; consumers use it to persist freshly derived aux columns.
    Neither participates in trace equality or length checks.
    """

    __slots__ = ("pcs", "types", "takens", "targets", "gaps", "name",
                 "aux", "store_path")

    def __init__(
        self,
        pcs: np.ndarray,
        types: np.ndarray,
        takens: np.ndarray,
        targets: np.ndarray,
        gaps: np.ndarray,
        name: str = "trace",
    ) -> None:
        n = len(pcs)
        for arr, label in ((types, "types"), (takens, "takens"),
                           (targets, "targets"), (gaps, "gaps")):
            if len(arr) != n:
                raise ValueError(f"array {label!r} length mismatch")
        self.pcs = np.asarray(pcs, dtype=np.uint64)
        self.types = np.asarray(types, dtype=np.uint8)
        self.takens = np.asarray(takens, dtype=np.uint8)
        self.targets = np.asarray(targets, dtype=np.uint64)
        self.gaps = np.asarray(gaps, dtype=np.uint16)
        self.name = name
        self.aux: dict = {}
        self.store_path = None

    def __len__(self) -> int:
        return len(self.pcs)

    @property
    def num_instructions(self) -> int:
        """Total retired instructions represented by this trace."""
        return int(self.gaps.sum())

    @property
    def num_conditional(self) -> int:
        return int((self.types == int(BranchType.COND)).sum())

    def record(self, i: int) -> BranchRecord:
        """Materialise record ``i`` as a :class:`BranchRecord` (slow path)."""
        return BranchRecord(
            pc=int(self.pcs[i]),
            branch_type=BranchType(int(self.types[i])),
            taken=bool(self.takens[i]),
            target=int(self.targets[i]),
            instr_gap=int(self.gaps[i]),
        )

    #: Records per chunk converted to Python ints at a time; bounds peak
    #: list memory on multi-million-record traces without measurable
    #: per-record overhead (``chain``/``zip`` iterate at C speed).
    CHUNK_RECORDS = 1 << 16

    def iter_chunks(self, start: int = 0, stop: Optional[int] = None,
                    chunk: int = CHUNK_RECORDS) -> Iterator[zip]:
        """Yield zips of ``(pc, type, taken, target, gap)`` per chunk.

        Each chunk converts its slice of the five columns with a single
        ``tolist()`` call; iterating the resulting Python lists is several
        times faster than indexing numpy scalars per record.  Hot loops
        that want to avoid any per-record generator overhead can consume
        the chunks directly.
        """
        if stop is None:
            stop = len(self.pcs)
        pcs, types, takens = self.pcs, self.types, self.takens
        targets, gaps = self.targets, self.gaps
        for lo in range(start, stop, chunk):
            hi = lo + chunk
            if hi > stop:
                hi = stop
            yield zip(
                pcs[lo:hi].tolist(),
                types[lo:hi].tolist(),
                takens[lo:hi].tolist(),
                targets[lo:hi].tolist(),
                gaps[lo:hi].tolist(),
            )

    def iter_tuples(self, start: int = 0,
                    stop: Optional[int] = None) -> Iterator[BranchTuple]:
        """Yield ``(pc, type, taken, target, gap)`` tuples of Python ints
        for records ``[start, stop)`` (the whole trace by default)."""
        return chain.from_iterable(self.iter_chunks(start, stop))

    def slice(self, start: int, stop: int) -> "Trace":
        """Return a sub-trace of records ``[start, stop)``."""
        return Trace(
            self.pcs[start:stop],
            self.types[start:stop],
            self.takens[start:stop],
            self.targets[start:stop],
            self.gaps[start:stop],
            name=f"{self.name}[{start}:{stop}]",
        )

    def truncate_to_instructions(self, max_instructions: int) -> "Trace":
        """Return the longest prefix with at most ``max_instructions``."""
        cumulative = np.cumsum(self.gaps.astype(np.int64))
        stop = int(np.searchsorted(cumulative, max_instructions, side="right"))
        return self.slice(0, stop)


class TraceBuilder:
    """Accumulates records and produces an immutable :class:`Trace`."""

    def __init__(self, name: str = "trace") -> None:
        self.name = name
        self._pcs: List[int] = []
        self._types: List[int] = []
        self._takens: List[int] = []
        self._targets: List[int] = []
        self._gaps: List[int] = []

    def __len__(self) -> int:
        return len(self._pcs)

    @property
    def num_instructions(self) -> int:
        return sum(self._gaps)

    def append(self, pc: int, branch_type: BranchType, taken: bool,
               target: int, instr_gap: int = 1) -> None:
        if instr_gap < 1:
            raise ValueError("instr_gap must be >= 1")
        self._pcs.append(pc)
        self._types.append(int(branch_type))
        self._takens.append(1 if taken else 0)
        self._targets.append(target)
        self._gaps.append(instr_gap)

    def append_record(self, record: BranchRecord) -> None:
        self.append(record.pc, record.branch_type, record.taken,
                    record.target, record.instr_gap)

    def build(self) -> Trace:
        return Trace(
            np.array(self._pcs, dtype=np.uint64),
            np.array(self._types, dtype=np.uint8),
            np.array(self._takens, dtype=np.uint8),
            np.array(self._targets, dtype=np.uint64),
            np.array(self._gaps, dtype=np.uint16),
            name=self.name,
        )
