"""Trace persistence.

Traces are stored as compressed ``.npz`` bundles of the five column arrays
plus the trace name.  This plays the role of the ChampSim trace format in
the paper's artifact: generate once, simulate many times.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Union

import numpy as np

from repro.traces.trace import Trace

_FORMAT_VERSION = 1


def save_trace(trace: Trace, path: Union[str, Path]) -> None:
    """Write ``trace`` to ``path`` (created atomically via a temp file)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    # The temp name embeds the pid so concurrent writers (parallel
    # experiment workers generating the same trace) never rename each
    # other's in-progress file out from under the os.replace below.
    tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
    with open(tmp, "wb") as fh:
        np.savez_compressed(
            fh,
            version=np.array([_FORMAT_VERSION]),
            name=np.array([trace.name]),
            pcs=trace.pcs,
            types=trace.types,
            takens=trace.takens,
            targets=trace.targets,
            gaps=trace.gaps,
        )
    os.replace(tmp, path)


def load_trace(path: Union[str, Path]) -> Trace:
    """Load a trace previously written by :func:`save_trace`."""
    with np.load(path, allow_pickle=False) as data:
        version = int(data["version"][0])
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported trace format version {version}")
        return Trace(
            data["pcs"],
            data["types"],
            data["takens"],
            data["targets"],
            data["gaps"],
            name=str(data["name"][0]),
        )
