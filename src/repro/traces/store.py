"""Packed-binary trace store: one decode-ready file per generated trace.

The ``.npz`` cache (:mod:`repro.traces.io`) is a portable interchange
format, but it is the wrong shape for the batched simulation path: every
load pays zlib decompression and materialises five freshly allocated
arrays *per process*, so a pool of workers simulating the same workload
holds as many private copies of the trace as there are workers.

The store keeps each trace as a flat packed-binary file instead — a
fixed header, the five column arrays laid out raw (struct-of-arrays, no
pickle anywhere), and a trailing SHA-256 digest:

    magic "RPTB" | version u16 | name_len u16 | n_records u64
    | name utf-8 | pad to 16 | pcs u64[n] | targets u64[n]
    | gaps u16[n] | types u8[n] | takens u8[n] | sha256[32]

Properties the simulator relies on:

* **memory-mapped loading** — :func:`read_packed` maps the file
  read-only and wraps the columns as zero-copy numpy views, so every
  worker process simulating the same workload shares one set of
  physical pages through the page cache instead of holding a private
  decompressed copy;
* **content-addressed cache** — :class:`TraceStore` names files by a
  digest of the full generation request (workload, seed, instruction
  budget, generator version), so a stale or renamed spec can never
  answer for a different trace;
* **atomic publish** — writers stage under a pid-suffixed temp name and
  ``os.replace`` into place, so concurrent workers generating the same
  workload never expose a torn file;
* **corruption detection** — magic, version, length and the trailing
  digest are all verified on open; any mismatch raises
  :class:`TraceStoreError`, which the cache turns into a miss (the file
  is dropped and the trace regenerated).

Telemetry: every cache probe emits ``trace.store_hit`` or
``trace.store_miss`` (the miss event distinguishes absent files from
corrupt ones), alongside the pre-existing ``trace.cache`` accounting.
"""

from __future__ import annotations

import hashlib
import mmap
import os
import struct
from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro import telemetry
from repro.traces.trace import Trace

_MAGIC = b"RPTB"
_FORMAT_VERSION = 1
_HEADER = struct.Struct("<4sHHQ")  # magic, version, name_len, n_records
_ALIGN = 16
_DIGEST_BYTES = 32

#: Version of the workload *generator* whose output the store caches;
#: mirrors the ``-v4`` tag in the legacy ``.npz`` cache file names.  Bump
#: together with that tag whenever generated traces change.
TRACE_GENERATION = 4

#: (dtype, per-record bytes) for each column, in on-disk order.  64-bit
#: columns come first so every offset stays naturally aligned for numpy.
_COLUMNS = (
    ("pcs", np.uint64),
    ("targets", np.uint64),
    ("gaps", np.uint16),
    ("types", np.uint8),
    ("takens", np.uint8),
)


class TraceStoreError(ValueError):
    """A packed trace file is missing, truncated, or corrupt."""


def enabled() -> bool:
    """Is the packed store the active trace-cache backend?

    ``REPRO_TRACE_STORE=0`` falls back to the legacy ``.npz`` cache.
    """
    return os.environ.get("REPRO_TRACE_STORE", "1") != "0"


def _padding(offset: int) -> int:
    return (-offset) % _ALIGN


def pack_trace(trace: Trace) -> bytes:
    """Serialise ``trace`` to the packed binary format (digest included)."""
    name = trace.name.encode("utf-8")
    if len(name) > 0xFFFF:
        raise ValueError("trace name too long to pack")
    parts = [_HEADER.pack(_MAGIC, _FORMAT_VERSION, len(name), len(trace)),
             name]
    parts.append(b"\x00" * _padding(sum(map(len, parts))))
    for column, dtype in _COLUMNS:
        array = getattr(trace, column)
        parts.append(np.ascontiguousarray(array, dtype=dtype).tobytes())
    payload = b"".join(parts)
    return payload + hashlib.sha256(payload).digest()


def write_packed(trace: Trace, path: Union[str, Path]) -> None:
    """Write ``trace`` to ``path`` atomically (pid-temp + rename)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
    try:
        with open(tmp, "wb") as fh:
            fh.write(pack_trace(trace))
        os.replace(tmp, path)
    except OSError:
        # The store is a cache; failing to publish must not fail the
        # run that generated the trace.
        try:
            os.unlink(tmp)
        except OSError:
            pass


def _unpack(buffer, path: Path) -> Trace:
    view = memoryview(buffer)
    if len(view) < _HEADER.size + _DIGEST_BYTES:
        raise TraceStoreError(f"{path}: truncated packed trace")
    magic, version, name_len, n = _HEADER.unpack_from(view, 0)
    if magic != _MAGIC:
        raise TraceStoreError(f"{path}: not a packed trace (bad magic)")
    if version != _FORMAT_VERSION:
        raise TraceStoreError(
            f"{path}: unsupported packed-trace version {version}")
    offset = _HEADER.size + name_len
    offset += _padding(offset)
    record_bytes = sum(np.dtype(dtype).itemsize for _, dtype in _COLUMNS)
    expected = offset + n * record_bytes + _DIGEST_BYTES
    if len(view) != expected:
        raise TraceStoreError(
            f"{path}: truncated packed trace "
            f"({len(view)} bytes, expected {expected})")
    digest = hashlib.sha256(view[:-_DIGEST_BYTES]).digest()
    if digest != bytes(view[-_DIGEST_BYTES:]):
        raise TraceStoreError(f"{path}: digest mismatch (corrupt file)")
    name = bytes(view[_HEADER.size:_HEADER.size + name_len]).decode("utf-8")
    columns = {}
    for column, dtype in _COLUMNS:
        columns[column] = np.frombuffer(buffer, dtype=dtype, count=n,
                                        offset=offset)
        offset += n * np.dtype(dtype).itemsize
    return Trace(columns["pcs"], columns["types"], columns["takens"],
                 columns["targets"], columns["gaps"], name=name)


def read_packed(path: Union[str, Path], use_mmap: bool = True) -> Trace:
    """Load a packed trace, verifying its structure and digest.

    With ``use_mmap`` (the default) the column arrays are read-only
    zero-copy views over a shared memory mapping of the file; without it
    the file is read into process-private memory.  Raises
    :class:`TraceStoreError` on any structural or checksum problem.
    """
    path = Path(path)
    try:
        with open(path, "rb") as fh:
            if use_mmap:
                try:
                    buffer = mmap.mmap(fh.fileno(), 0,
                                       access=mmap.ACCESS_READ)
                except (ValueError, OSError):  # empty file / no mmap
                    buffer = fh.read()
            else:
                buffer = fh.read()
    except OSError as error:
        raise TraceStoreError(f"{path}: unreadable ({error})") from error
    return _unpack(buffer, path)


def _default_root() -> Path:
    env = os.environ.get("REPRO_CACHE_DIR")
    base = Path(env) if env else Path.home() / ".cache" / "repro-llbp"
    return base / "traces"


class TraceStore:
    """Content-addressed on-disk cache of packed workload traces."""

    def __init__(self, root: Optional[Union[str, Path]] = None) -> None:
        self.root = Path(root) if root is not None else _default_root()

    @staticmethod
    def key(name: str, seed: int, instructions: int) -> str:
        """Digest of the full generation request — the content address."""
        spec = (f"{name}|seed={seed}|instructions={instructions}"
                f"|gen=v{TRACE_GENERATION}|fmt=v{_FORMAT_VERSION}")
        return hashlib.sha256(spec.encode()).hexdigest()

    def path_for(self, name: str, seed: int, instructions: int) -> Path:
        digest = self.key(name, seed, instructions)
        return self.root / f"{name}-{digest[:16]}.rpt"

    def load(self, name: str, seed: int,
             instructions: int) -> Optional[Trace]:
        """Return the cached trace, or ``None`` on a miss.

        A structurally invalid or checksum-failing file is removed and
        reported as a miss, so the caller regenerates over it.
        """
        path = self.path_for(name, seed, instructions)
        if not path.exists():
            telemetry.emit("trace.store_miss", workload=name,
                           instructions=instructions, reason="absent")
            return None
        try:
            trace = read_packed(path)
        except TraceStoreError as error:
            telemetry.emit("trace.store_miss", workload=name,
                           instructions=instructions, reason="corrupt",
                           error=str(error))
            try:
                os.unlink(path)
            except OSError:
                pass
            return None
        telemetry.emit("trace.store_hit", workload=name,
                       instructions=instructions,
                       records=len(trace), path=str(path))
        return trace

    def store(self, trace: Trace, name: str, seed: int,
              instructions: int) -> Path:
        """Publish ``trace`` under its content address; returns the path."""
        path = self.path_for(name, seed, instructions)
        write_packed(trace, path)
        return path
