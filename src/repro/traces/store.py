"""Packed-binary trace store: one decode-ready file per generated trace.

The ``.npz`` cache (:mod:`repro.traces.io`) is a portable interchange
format, but it is the wrong shape for the batched simulation path: every
load pays zlib decompression and materialises five freshly allocated
arrays *per process*, so a pool of workers simulating the same workload
holds as many private copies of the trace as there are workers.

The store keeps each trace as a flat packed-binary file instead — a
fixed header, the five column arrays laid out raw (struct-of-arrays, no
pickle anywhere), and a trailing SHA-256 digest:

    magic "RPTB" | version u16 | name_len u16 | n_records u64
    | name utf-8 | pad to 16 | pcs u64[n] | targets u64[n]
    | gaps u16[n] | types u8[n] | takens u8[n] | sha256[32]

Format v2 appends zero or more *aux sections* after the main digest,
each carrying one derived column array (the array engine's precomputed
hash/fold columns, :mod:`repro.sim.columns`) and each self-checksummed
so corruption never poisons the branch data:

    magic "RPAX" | key_len u16 | dtype u16 | ncols u16 | nrows u64
    | key utf-8 | pad to 16 | data | sha256[32]

v1 files (no aux sections) read fine under v2 — they simply surface an
empty ``Trace.aux``; a *future* version still fails loudly in
:func:`read_packed` (and degrades to a regenerating cache miss in
:class:`TraceStore.load`, with a ``trace.store_stale`` event).  A
corrupt or truncated aux section is dropped — the main trace loads, the
missing columns are recomputed and republished.

Properties the simulator relies on:

* **memory-mapped loading** — :func:`read_packed` maps the file
  read-only and wraps the columns as zero-copy numpy views, so every
  worker process simulating the same workload shares one set of
  physical pages through the page cache instead of holding a private
  decompressed copy;
* **content-addressed cache** — :class:`TraceStore` names files by a
  digest of the full generation request (workload, seed, instruction
  budget, generator version), so a stale or renamed spec can never
  answer for a different trace;
* **atomic publish** — writers stage under a pid-suffixed temp name and
  ``os.replace`` into place, so concurrent workers generating the same
  workload never expose a torn file;
* **corruption detection** — magic, version, length and the trailing
  digest are all verified on open; any mismatch raises
  :class:`TraceStoreError`, which the cache turns into a miss (the file
  is dropped and the trace regenerated).

Telemetry: every cache probe emits ``trace.store_hit`` or
``trace.store_miss`` (the miss event distinguishes absent files from
corrupt ones), alongside the pre-existing ``trace.cache`` accounting.
"""

from __future__ import annotations

import hashlib
import mmap
import os
import struct
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from repro import telemetry
from repro.traces.trace import Trace

_MAGIC = b"RPTB"
_FORMAT_VERSION = 2
#: Versions :func:`read_packed` accepts: v1 files predate aux sections
#: and read back with an empty ``aux`` dict.
_READABLE_VERSIONS = (1, 2)
#: Version baked into the content address.  Deliberately pinned at 1:
#: v2 changed only the *container* (optional appended sections), not the
#: branch data, so existing cached traces stay addressable.
_ADDRESS_VERSION = 1
_HEADER = struct.Struct("<4sHHQ")  # magic, version, name_len, n_records
_ALIGN = 16
_DIGEST_BYTES = 32

_AUX_MAGIC = b"RPAX"
# magic, key_len, dtype_code, ncols, nrows
_AUX_HEADER = struct.Struct("<4sHHHQ")
_AUX_DTYPES = {
    1: np.dtype(np.uint16),
    2: np.dtype(np.uint32),
    3: np.dtype(np.uint64),
    4: np.dtype(np.uint8),
}
_AUX_CODES = {dtype: code for code, dtype in _AUX_DTYPES.items()}

#: Version of the workload *generator* whose output the store caches;
#: mirrors the ``-v4`` tag in the legacy ``.npz`` cache file names.  Bump
#: together with that tag whenever generated traces change.
TRACE_GENERATION = 4

#: (dtype, per-record bytes) for each column, in on-disk order.  64-bit
#: columns come first so every offset stays naturally aligned for numpy.
_COLUMNS = (
    ("pcs", np.uint64),
    ("targets", np.uint64),
    ("gaps", np.uint16),
    ("types", np.uint8),
    ("takens", np.uint8),
)


class TraceStoreError(ValueError):
    """A packed trace file is missing, truncated, or corrupt."""


def enabled() -> bool:
    """Is the packed store the active trace-cache backend?

    ``REPRO_TRACE_STORE=0`` falls back to the legacy ``.npz`` cache.
    """
    return os.environ.get("REPRO_TRACE_STORE", "1") != "0"


def _padding(offset: int) -> int:
    return (-offset) % _ALIGN


def _pack_aux_section(key: str, array: np.ndarray, offset: int) -> bytes:
    """Serialise one aux column section starting at file ``offset``."""
    data = np.ascontiguousarray(array)
    try:
        code = _AUX_CODES[data.dtype]
    except KeyError:
        raise ValueError(
            f"aux column {key!r} has unsupported dtype {data.dtype}") from None
    if data.ndim == 1:
        nrows, ncols = len(data), 1
    elif data.ndim == 2:
        nrows, ncols = data.shape
    else:
        raise ValueError(f"aux column {key!r} must be 1-D or 2-D")
    key_bytes = key.encode("utf-8")
    if len(key_bytes) > 0xFFFF or ncols > 0xFFFF:
        raise ValueError(f"aux column {key!r} too large to pack")
    header = _AUX_HEADER.pack(_AUX_MAGIC, len(key_bytes), code, ncols, nrows)
    pad = b"\x00" * _padding(offset + len(header) + len(key_bytes))
    body = b"".join((header, key_bytes, pad, data.tobytes()))
    return body + hashlib.sha256(body).digest()


def pack_trace(trace: Trace) -> bytes:
    """Serialise ``trace`` to the packed binary format (digest included).

    Any arrays in ``trace.aux`` are appended as self-checksummed aux
    sections (sorted by key, so packing is deterministic).
    """
    name = trace.name.encode("utf-8")
    if len(name) > 0xFFFF:
        raise ValueError("trace name too long to pack")
    parts = [_HEADER.pack(_MAGIC, _FORMAT_VERSION, len(name), len(trace)),
             name]
    parts.append(b"\x00" * _padding(sum(map(len, parts))))
    for column, dtype in _COLUMNS:
        array = getattr(trace, column)
        parts.append(np.ascontiguousarray(array, dtype=dtype).tobytes())
    payload = b"".join(parts)
    sections = [payload + hashlib.sha256(payload).digest()]
    offset = len(sections[0])
    for key in sorted(trace.aux):
        section = _pack_aux_section(key, trace.aux[key], offset)
        sections.append(section)
        offset += len(section)
    return b"".join(sections)


def write_packed(trace: Trace, path: Union[str, Path]) -> None:
    """Write ``trace`` to ``path`` atomically (pid-temp + rename)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
    try:
        with open(tmp, "wb") as fh:
            fh.write(pack_trace(trace))
        os.replace(tmp, path)
    except OSError:
        # The store is a cache; failing to publish must not fail the
        # run that generated the trace.
        try:
            os.unlink(tmp)
        except OSError:
            pass


class TraceStoreVersionError(TraceStoreError):
    """A packed trace file uses a format version this build cannot read."""


def _unpack_aux(buffer, view, start: int, path: Path) -> Dict[str, np.ndarray]:
    """Parse aux sections from ``start`` to end-of-file.

    Aux columns are a derived cache riding along with the trace: any
    structural or checksum problem drops the offending section (and the
    rest of the file) with a ``trace.store_stale`` event rather than
    failing the trace load — the caller recomputes and republishes.
    Sections already verified are kept.
    """
    aux: Dict[str, np.ndarray] = {}
    pos = start
    try:
        while pos < len(view):
            if len(view) - pos < _AUX_HEADER.size:
                raise TraceStoreError(f"{path}: truncated aux header")
            magic, key_len, code, ncols, nrows = _AUX_HEADER.unpack_from(
                view, pos)
            if magic != _AUX_MAGIC:
                raise TraceStoreError(f"{path}: bad aux magic")
            try:
                dtype = _AUX_DTYPES[code]
            except KeyError:
                raise TraceStoreError(
                    f"{path}: unknown aux dtype code {code}") from None
            data_off = pos + _AUX_HEADER.size + key_len
            data_off += _padding(data_off)
            end = data_off + nrows * ncols * dtype.itemsize + _DIGEST_BYTES
            if end > len(view):
                raise TraceStoreError(f"{path}: truncated aux section")
            digest = hashlib.sha256(view[pos:end - _DIGEST_BYTES]).digest()
            if digest != bytes(view[end - _DIGEST_BYTES:end]):
                raise TraceStoreError(f"{path}: aux digest mismatch")
            key_start = pos + _AUX_HEADER.size
            key = bytes(view[key_start:key_start + key_len]).decode("utf-8")
            array = np.frombuffer(buffer, dtype=dtype, count=nrows * ncols,
                                  offset=data_off)
            aux[key] = array if ncols == 1 else array.reshape(nrows, ncols)
            pos = end
    except TraceStoreError as error:
        telemetry.emit("trace.store_stale", path=str(path),
                       reason="aux-corrupt", error=str(error))
    return aux


def _unpack(buffer, path: Path) -> Trace:
    view = memoryview(buffer)
    if len(view) < _HEADER.size + _DIGEST_BYTES:
        raise TraceStoreError(f"{path}: truncated packed trace")
    magic, version, name_len, n = _HEADER.unpack_from(view, 0)
    if magic != _MAGIC:
        raise TraceStoreError(f"{path}: not a packed trace (bad magic)")
    if version not in _READABLE_VERSIONS:
        raise TraceStoreVersionError(
            f"{path}: unsupported packed-trace version {version}")
    offset = _HEADER.size + name_len
    offset += _padding(offset)
    record_bytes = sum(np.dtype(dtype).itemsize for _, dtype in _COLUMNS)
    expected = offset + n * record_bytes + _DIGEST_BYTES
    if (len(view) != expected) if version == 1 else (len(view) < expected):
        raise TraceStoreError(
            f"{path}: truncated packed trace "
            f"({len(view)} bytes, expected {expected})")
    digest = hashlib.sha256(view[:expected - _DIGEST_BYTES]).digest()
    if digest != bytes(view[expected - _DIGEST_BYTES:expected]):
        raise TraceStoreError(f"{path}: digest mismatch (corrupt file)")
    name = bytes(view[_HEADER.size:_HEADER.size + name_len]).decode("utf-8")
    columns = {}
    for column, dtype in _COLUMNS:
        columns[column] = np.frombuffer(buffer, dtype=dtype, count=n,
                                        offset=offset)
        offset += n * np.dtype(dtype).itemsize
    trace = Trace(columns["pcs"], columns["types"], columns["takens"],
                  columns["targets"], columns["gaps"], name=name)
    if version >= 2 and expected < len(view):
        trace.aux.update(_unpack_aux(buffer, view, expected, path))
    return trace


def read_packed(path: Union[str, Path], use_mmap: bool = True) -> Trace:
    """Load a packed trace, verifying its structure and digest.

    With ``use_mmap`` (the default) the column arrays are read-only
    zero-copy views over a shared memory mapping of the file; without it
    the file is read into process-private memory.  Raises
    :class:`TraceStoreError` on any structural or checksum problem.
    """
    path = Path(path)
    try:
        with open(path, "rb") as fh:
            if use_mmap:
                try:
                    buffer = mmap.mmap(fh.fileno(), 0,
                                       access=mmap.ACCESS_READ)
                except (ValueError, OSError):  # empty file / no mmap
                    buffer = fh.read()
            else:
                buffer = fh.read()
    except OSError as error:
        raise TraceStoreError(f"{path}: unreadable ({error})") from error
    return _unpack(buffer, path)


def _default_root() -> Path:
    env = os.environ.get("REPRO_CACHE_DIR")
    base = Path(env) if env else Path.home() / ".cache" / "repro-llbp"
    return base / "traces"


class TraceStore:
    """Content-addressed on-disk cache of packed workload traces."""

    def __init__(self, root: Optional[Union[str, Path]] = None) -> None:
        self.root = Path(root) if root is not None else _default_root()

    @staticmethod
    def key(name: str, seed: int, instructions: int) -> str:
        """Digest of the full generation request — the content address."""
        spec = (f"{name}|seed={seed}|instructions={instructions}"
                f"|gen=v{TRACE_GENERATION}|fmt=v{_ADDRESS_VERSION}")
        return hashlib.sha256(spec.encode()).hexdigest()

    def path_for(self, name: str, seed: int, instructions: int) -> Path:
        digest = self.key(name, seed, instructions)
        return self.root / f"{name}-{digest[:16]}.rpt"

    def load(self, name: str, seed: int,
             instructions: int) -> Optional[Trace]:
        """Return the cached trace, or ``None`` on a miss.

        A structurally invalid or checksum-failing file is removed and
        reported as a miss, so the caller regenerates over it.
        """
        path = self.path_for(name, seed, instructions)
        if not path.exists():
            telemetry.emit("trace.store_miss", workload=name,
                           instructions=instructions, reason="absent")
            return None
        try:
            trace = read_packed(path)
        except TraceStoreError as error:
            reason = ("version"
                      if isinstance(error, TraceStoreVersionError)
                      else "corrupt")
            if reason == "version":
                # A file from a different build: structurally sound,
                # just not readable here.  Flag it as stale (regenerated
                # below), distinct from on-disk corruption.
                telemetry.emit("trace.store_stale", workload=name,
                               instructions=instructions, path=str(path),
                               reason="version", error=str(error))
            telemetry.emit("trace.store_miss", workload=name,
                           instructions=instructions, reason=reason,
                           error=str(error))
            try:
                os.unlink(path)
            except OSError:
                pass
            return None
        trace.store_path = path
        telemetry.emit("trace.store_hit", workload=name,
                       instructions=instructions,
                       records=len(trace), path=str(path))
        return trace

    def store(self, trace: Trace, name: str, seed: int,
              instructions: int) -> Path:
        """Publish ``trace`` under its content address; returns the path."""
        path = self.path_for(name, seed, instructions)
        write_packed(trace, path)
        trace.store_path = path
        return path


def append_aux(path: Union[str, Path],
               arrays: Dict[str, np.ndarray]) -> bool:
    """Merge derived columns into the packed file at ``path``.

    Read-modify-publish: the file is reread privately (not mmapped),
    the aux dict updated, and the whole file atomically republished.
    Concurrent appenders may lose each other's columns — acceptable for
    a derived-data cache, the loser simply recomputes next run.  Returns
    ``False`` (without raising) if the file is unreadable.
    """
    try:
        trace = read_packed(path, use_mmap=False)
    except TraceStoreError:
        return False
    trace.aux.update(arrays)
    write_packed(trace, path)
    return True
