"""repro: a pure-Python reproduction of "The Last-Level Branch Predictor".

Subpackages:

* :mod:`repro.common`     — bit/counter/RNG/associativity primitives.
* :mod:`repro.traces`     — branch-trace model, container, I/O, statistics.
* :mod:`repro.workloads`  — synthetic server-workload generator + catalog.
* :mod:`repro.predictors` — bimodal/gshare/TAGE/SC/loop/TAGE-SC-L and the
  infinite-capacity limit configurations.
* :mod:`repro.llbp`       — the Last-Level Branch Predictor itself.
* :mod:`repro.sim`        — trace-driven engine, timing core model, L1-I.
* :mod:`repro.energy`     — CACTI-like latency/energy model.
* :mod:`repro.analysis`   — working-set / context-locality / breakdown studies.
* :mod:`repro.experiments`— one module per paper table/figure.

Quickstart::

    from repro.workloads import generate_workload
    from repro.predictors import tsl_64k
    from repro.llbp import LLBPConfig, LLBPTageScL
    from repro.sim import run_simulation

    trace = generate_workload("NodeApp", 600_000)
    baseline = run_simulation(trace, tsl_64k())
    llbp = run_simulation(trace, LLBPTageScL(LLBPConfig()))
    print(baseline.mpki, llbp.mpki)
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
