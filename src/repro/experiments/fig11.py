"""Fig 11: LLBP <-> PB transfer bandwidth vs the L1-I miss traffic.

Paper: 16-entry PB moves 9.9 read + 2.2 write bits/instruction; a
64-entry PB cuts the total ~19% (8.6 read bits/instr, ~41% below the
L1-I's miss traffic); a 256-entry PB drops below one byte/instruction.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.common.stats import mean
from repro.experiments.common import (
    experiment_instructions,
    experiment_workloads,
    format_table,
)
from repro.experiments.runner import get_result
from repro.sim.icache import simulate_icache
from repro.workloads.catalog import generate_workload

PB_SIZES = (16, 64, 256)


def run(workloads: Optional[Sequence[str]] = None) -> List[Dict[str, object]]:
    if workloads is None:
        workloads = experiment_workloads()[:3]

    rows: List[Dict[str, object]] = []
    for entries in PB_SIZES:
        key = "llbp" if entries == 64 else f"llbp:pb={entries}"
        reads: List[float] = []
        writes: List[float] = []
        for workload in workloads:
            result = get_result(workload, key)
            # Counters cover the whole run; normalise by all instructions.
            instructions = result.instructions + result.warmup_instructions
            reads.append(result.extra.get("read_bits", 0) / instructions)
            writes.append(result.extra.get("write_bits", 0) / instructions)
        rows.append({
            "structure": f"{entries}-entry PB",
            "read_bits_per_instr": mean(reads),
            "write_bits_per_instr": mean(writes),
            "total_bits_per_instr": mean(reads) + mean(writes),
        })

    # Yardstick: L1-I miss traffic (demand + next-line prefetch).
    instructions = experiment_instructions()
    icache_bits: List[float] = []
    for workload in workloads:
        trace = generate_workload(workload, instructions)
        icache = simulate_icache(trace, warmup_instructions=instructions // 3)
        icache_bits.append(icache.bits_per_instruction)
    rows.append({
        "structure": "L1I misses",
        "read_bits_per_instr": mean(icache_bits),
        "write_bits_per_instr": 0.0,
        "total_bits_per_instr": mean(icache_bits),
    })
    return rows


def format_rows(rows: List[Dict[str, object]]) -> str:
    return format_table(
        rows,
        ["structure", "read_bits_per_instr", "write_bits_per_instr",
         "total_bits_per_instr"],
    )


def jobs():
    """Simulation jobs this figure needs, for parallel prewarming."""
    return [(workload, "llbp" if entries == 64 else f"llbp:pb={entries}")
            for entries in PB_SIZES
            for workload in experiment_workloads()[:3]]
