"""Fig 9: branch MPKI reduction over 64K TSL.

Paper: LLBP 0.5-25.9% (avg 8.9%); LLBP-0Lat avg 9.9% (LLBP reaches ~90%
of the no-latency ideal); 512K TSL avg 27.3% (~3x LLBP).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.common.stats import mean
from repro.experiments.common import experiment_workloads, format_table
from repro.experiments.runner import get_result

CONFIGS = ("llbp", "llbp:lat0", "tsl512")
LABELS = {"llbp": "LLBP", "llbp:lat0": "LLBP-0Lat", "tsl512": "512K TSL"}


def run(workloads: Optional[Sequence[str]] = None) -> List[Dict[str, object]]:
    if workloads is None:
        workloads = experiment_workloads()

    rows: List[Dict[str, object]] = []
    for workload in workloads:
        base = get_result(workload, "tsl64")
        row: Dict[str, object] = {"workload": workload, "base_mpki": base.mpki}
        for key in CONFIGS:
            result = get_result(workload, key)
            row[LABELS[key]] = result.mpki_reduction_vs(base)
        rows.append(row)

    summary: Dict[str, object] = {"workload": "Mean",
                                  "base_mpki": mean(r["base_mpki"] for r in rows)}
    for key in CONFIGS:
        summary[LABELS[key]] = mean(r[LABELS[key]] for r in rows)
    rows.append(summary)
    return rows


def format_rows(rows: List[Dict[str, object]]) -> str:
    return format_table(rows, ["workload", "base_mpki", *LABELS.values()])


def jobs():
    """Simulation jobs this figure needs, for parallel prewarming."""
    return [(workload, key)
            for workload in experiment_workloads()
            for key in ("tsl64",) + CONFIGS]
