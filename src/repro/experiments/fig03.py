"""Fig 3: working-set study on the Tomcat-like workload.

(a) Cumulative mispredictions over static branches (sorted by 64K TSL
    misses) for 64K/128K/256K/512K/1M/Inf TSL.  Paper: the top 0.8% of
    branches cause ~40% of misses; capacity doublings shave 6.4%, 7.1%,
    7.3%, 4.1%; Inf reduces ~35%.
(b) Useful patterns per static branch under infinite capacity.  Paper:
    average ~14 patterns; the 100 most-mispredicted branches have >100.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.working_set import (
    baseline_order,
    top_branch_share,
    useful_patterns_study,
)
from repro.experiments.common import experiment_instructions, format_table
from repro.experiments.runner import get_result
from repro.workloads.catalog import generate_workload

CONFIGS = ("tsl64", "tsl128", "tsl256", "tsl512", "tsl1m", "inf-tsl")
DEFAULT_WORKLOAD = "Tomcat"


def run(workload: str = DEFAULT_WORKLOAD,
        top_fraction: float = 0.008) -> Dict[str, object]:
    baseline = get_result(workload, "tsl64")
    order = baseline_order(baseline)
    top_n = max(1, int(len(order) * top_fraction))

    rows: List[Dict[str, object]] = []
    previous_misses: Optional[int] = None
    for key in CONFIGS:
        result = get_result(workload, key)
        misses = result.mispredictions
        reduction_vs_base = (
            100.0 * (baseline.mispredictions - misses) / baseline.mispredictions
            if baseline.mispredictions else 0.0
        )
        reduction_vs_prev = (
            100.0 * (previous_misses - misses) / previous_misses
            if previous_misses else 0.0
        )
        rows.append({
            "config": key,
            "mpki": result.mpki,
            "misses_vs_64k": misses / baseline.mispredictions if baseline.mispredictions else 0.0,
            "reduction_vs_64k_pct": reduction_vs_base,
            "reduction_vs_prev_pct": reduction_vs_prev,
            "top_branch_share": top_branch_share(result, order, top_n),
        })
        previous_misses = misses

    # Fig 3b: useful patterns per branch under infinite capacity.
    instructions = experiment_instructions()
    trace = generate_workload(workload, instructions)
    patterns = useful_patterns_study(
        trace, baseline,
        warmup_instructions=int(instructions / 3),
    )

    return {
        "workload": workload,
        "static_branches": len(order),
        "top_n": top_n,
        "rows": rows,
        "patterns_mean": patterns.mean,
        "patterns_top100_mean": patterns.top_n_mean(100),
        "patterns_in_order_top20": patterns.counts_in_order[:20],
    }


def format_rows(data: Dict[str, object]) -> str:
    header = (
        f"workload={data['workload']} static_branches={data['static_branches']} "
        f"top_n={data['top_n']}\n"
        f"useful patterns/branch: mean={data['patterns_mean']:.1f} "
        f"top100_mean={data['patterns_top100_mean']:.1f}\n"
    )
    return header + format_table(
        data["rows"],
        ["config", "mpki", "misses_vs_64k", "reduction_vs_64k_pct",
         "reduction_vs_prev_pct", "top_branch_share"],
    )


def jobs():
    """Simulation jobs this figure needs, for parallel prewarming."""
    return [(DEFAULT_WORKLOAD, key) for key in CONFIGS]
