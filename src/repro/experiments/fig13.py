"""Fig 13: CID sensitivity — history source x prefetch distance D.

Paper: with D=0 all sources sit at 3.5-4.8% MPKI reduction (prefetches
arrive too late); unconditional-branch history peaks at D=4 (8.9%);
call/return-only is too coarse; including conditional branches ("All")
degrades with D because their volatility makes upcoming contexts
unpredictable.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.common.stats import mean
from repro.experiments.common import experiment_workloads, format_table
from repro.experiments.runner import get_result

SOURCES = ("uncond", "callret", "all")
DISTANCES = (0, 4, 8)


def run(workloads: Optional[Sequence[str]] = None,
        sources: Sequence[str] = SOURCES,
        distances: Sequence[int] = DISTANCES) -> List[Dict[str, object]]:
    if workloads is None:
        workloads = experiment_workloads()[:2]

    rows: List[Dict[str, object]] = []
    for source in sources:
        for distance in distances:
            key = f"llbp:src={source},d={distance}"
            reductions = []
            for workload in workloads:
                base = get_result(workload, "tsl64")
                result = get_result(workload, key)
                reductions.append(result.mpki_reduction_vs(base))
            rows.append({
                "source": source,
                "D": distance,
                "mpki_reduction_pct": mean(reductions),
            })
    return rows


def format_rows(rows: List[Dict[str, object]]) -> str:
    return format_table(rows, ["source", "D", "mpki_reduction_pct"])


def jobs():
    """Simulation jobs this figure needs, for parallel prewarming."""
    pairs = []
    for source in SOURCES:
        for distance in DISTANCES:
            for workload in experiment_workloads()[:2]:
                pairs.append((workload, "tsl64"))
                pairs.append((workload, f"llbp:src={source},d={distance}"))
    return pairs
