"""Fig 12: access-frequency-weighted energy relative to 64K TSL.

Paper: all LLBP structures together consume 51-57% of 64K TSL's energy;
LLBP + baseline = 1.53x; a 512K TSL = ~4.5x; the 64-entry PB is the
sweet spot.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.common.stats import mean
from repro.energy.model import EnergyModel
from repro.experiments.common import experiment_workloads, format_table
from repro.experiments.runner import get_result

PB_SIZES = (16, 64, 256)


def run(workloads: Optional[Sequence[str]] = None) -> List[Dict[str, object]]:
    if workloads is None:
        workloads = experiment_workloads()[:3]
    model = EnergyModel()

    rows: List[Dict[str, object]] = []

    def add_row(name: str, components: Dict[str, float]) -> None:
        total = sum(components.values())
        rows.append({"design": name, **components, "total_rel": total})

    # Compute per-workload breakdowns normalised to that workload's 64K
    # TSL energy, then average across workloads.
    designs: Dict[str, List[Dict[str, float]]] = {}
    for workload in workloads:
        baseline = model.tsl_design("64KiB TSL")
        scaled = model.tsl_design("512KiB TSL", capacity_kib=512)
        per_design = {
            "64KiB TSL": baseline,
            "512KiB TAGE": scaled,
        }
        for entries in PB_SIZES:
            key = "llbp" if entries == 64 else f"llbp:pb={entries}"
            result = get_result(workload, key)
            extra = result.extra
            per_design[f"{entries}-Entry PB"] = model.llbp_design(
                predictions=int(extra.get("predictions", 1)),
                cd_accesses=int(extra.get("cd_accesses", 0)),
                llbp_accesses=int(extra.get("llbp_accesses", 0)),
                pb_entries=entries,
            )
        scale = baseline.total
        for name, breakdown in per_design.items():
            norm = {k: v / scale for k, v in breakdown.components.items()}
            designs.setdefault(name, []).append(norm)

    component_names = ["TAGE-SC-L", "CD", "PB", "LLBP"]
    for name, norms in designs.items():
        merged: Dict[str, float] = {}
        for comp in component_names:
            values = [n.get(comp, 0.0) for n in norms]
            merged[comp] = mean(values)
        add_row(name, merged)
    return rows


def format_rows(rows: List[Dict[str, object]]) -> str:
    return format_table(
        rows, ["design", "TAGE-SC-L", "CD", "PB", "LLBP", "total_rel"]
    )


def jobs():
    """Simulation jobs this figure needs, for parallel prewarming."""
    return [(workload, "llbp" if entries == 64 else f"llbp:pb={entries}")
            for entries in PB_SIZES
            for workload in experiment_workloads()[:3]]
