"""Tables I-III: workload suite, core parameters, latency/energy."""

from __future__ import annotations

from typing import Dict, List

from repro.energy.model import table3_rows
from repro.experiments.common import (
    experiment_instructions,
    format_table,
)
from repro.sim.core import CoreParams
from repro.traces.stats import compute_stats
from repro.workloads.catalog import WORKLOADS, generate_workload


def table1(include_trace_stats: bool = False) -> List[Dict[str, object]]:
    """Table I: the workload catalog (optionally with trace statistics)."""
    rows: List[Dict[str, object]] = []
    instructions = experiment_instructions()
    for name, spec in WORKLOADS.items():
        row: Dict[str, object] = {
            "workload": name,
            "description": spec.description,
            "functions": spec.num_functions,
            "complex_sites": spec.num_complex,
        }
        if include_trace_stats:
            stats = compute_stats(generate_workload(name, instructions))
            row.update({
                "branches": stats.num_branches,
                "static_cond_pcs": stats.unique_conditional_pcs,
                "cond_per_uncond": stats.cond_per_uncond,
                "callret_frac": stats.call_ret_fraction,
            })
        rows.append(row)
    return rows


def format_table1(rows: List[Dict[str, object]]) -> str:
    columns = list(rows[0].keys()) if rows else []
    return format_table(rows, columns)


def table2() -> List[Dict[str, object]]:
    """Table II: simulated processor parameters."""
    params = CoreParams()
    return [
        {"parameter": "Core", "value": (
            f"{params.frequency_ghz:g}GHz, {params.fetch_width}-way OoO, "
            f"{params.rob_entries} ROB, {params.lq_entries}/{params.sq_entries} LQ/SQ")},
        {"parameter": "Branch Pred", "value": "64KiB TAGE-SC-L (capacity-scaled, DESIGN.md §1)"},
        {"parameter": "BTB", "value": f"{params.btb_entries // 1024}K entry, {params.btb_ways}-way"},
        {"parameter": "Caches", "value": (
            f"{params.l1i_kib}KiB {params.l1i_ways}-way L1-I, "
            f"{params.l1d_kib}KiB {params.l1d_ways}-way L1-D, "
            f"{params.l2_mib}MiB L2, {params.llc_mib}MiB LLC")},
        {"parameter": "Timing model", "value": (
            f"base CPI {params.base_cpi}, "
            f"misprediction penalty {params.mispredict_penalty:g} cycles")},
    ]


def format_table2(rows: List[Dict[str, object]]) -> str:
    return format_table(rows, ["parameter", "value"])


def table3() -> List[Dict[str, object]]:
    """Table III: relative access latency and energy of LLBP structures."""
    rows = []
    for entry in table3_rows():
        rows.append({
            "component": entry.name,
            "rel_latency": entry.relative_latency,
            "cycles": entry.latency_cycles,
            "rel_energy": entry.relative_energy,
        })
    return rows


def format_table3(rows: List[Dict[str, object]]) -> str:
    return format_table(rows, ["component", "rel_latency", "cycles", "rel_energy"])
