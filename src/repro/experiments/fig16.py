"""Fig 16 (extension): characterization metrics vs family MPKI grid.

Not a paper figure — an extension pairing each workload's
characterization metrics (:mod:`repro.analysis.characterize`) with the
measured MPKI of every predictor family, over the experiment workload
subset *plus* the adversarial stress suite.  On the catalog the grid
shows the metrics tracking the family ranking (the predicted-winner
column); on the ``adv:`` rows it shows the ranking inverting exactly
where each stressor's target family is structurally blind.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.characterize import (
    FAMILIES,
    HISTORY_LENGTHS,
    characterize_workload,
    measured_winner,
    predicted_winner,
)
from repro.experiments.common import experiment_workloads, format_table
from repro.experiments.runner import run_batch
from repro.workloads.adversarial import adversarial_names

CONFIGS = FAMILIES
LABELS = {key: key for key in CONFIGS}


def figure_workloads() -> List[str]:
    """The grid's rows: the experiment subset, then the stress suite."""
    return [*experiment_workloads(), *adversarial_names()]


def run(workloads: Optional[Sequence[str]] = None) -> List[Dict[str, object]]:
    if workloads is None:
        workloads = figure_workloads()

    longest = str(HISTORY_LENGTHS[-1])
    rows: List[Dict[str, object]] = []
    for workload in workloads:
        metrics = characterize_workload(workload)
        results = run_batch(workload, CONFIGS)
        mpki = {key: result.mpki for key, result in zip(CONFIGS, results)}
        row: Dict[str, object] = {
            "workload": workload,
            "H(br)": metrics["branch_entropy"],
            f"H(hist{longest})": metrics["history_entropy"][longest],
            "H(ctx)": metrics["context_entropy"],
            "skew": metrics["taken_skew"],
        }
        row.update({LABELS[key]: mpki[key] for key in CONFIGS})
        row["predicted"] = predicted_winner(metrics)
        row["measured"] = measured_winner(mpki, CONFIGS)
        rows.append(row)
    return rows


def format_rows(rows: List[Dict[str, object]]) -> str:
    longest = str(HISTORY_LENGTHS[-1])
    return format_table(rows, ["workload", "H(br)", f"H(hist{longest})",
                               "H(ctx)", "skew", *LABELS.values(),
                               "predicted", "measured"])


def jobs():
    """Simulation jobs this figure needs, for parallel prewarming."""
    return [(workload, key)
            for workload in figure_workloads()
            for key in CONFIGS]
