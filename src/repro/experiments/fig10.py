"""Fig 10: speedup over 64K TSL via the analytic core model.

Paper (ChampSim): LLBP +0.63% avg, LLBP-0Lat +0.71%, 512K TSL +1.26%,
perfect conditional BP +3.6% (noting their core model under-reports the
perfect-BP headroom versus the hardware top-down study).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.common.stats import geomean
from repro.experiments.common import experiment_workloads, format_table
from repro.experiments.runner import get_result
from repro.sim.core import CoreModel

CONFIGS = ("llbp", "llbp:lat0", "tsl512", "perfect")
LABELS = {
    "llbp": "LLBP",
    "llbp:lat0": "LLBP-0Lat",
    "tsl512": "512K TSL",
    "perfect": "Perfect BP",
}


def run(workloads: Optional[Sequence[str]] = None,
        core: Optional[CoreModel] = None) -> List[Dict[str, object]]:
    if workloads is None:
        workloads = experiment_workloads()
    if core is None:
        core = CoreModel()

    rows: List[Dict[str, object]] = []
    for workload in workloads:
        base_timing = core.timing(get_result(workload, "tsl64"))
        row: Dict[str, object] = {"workload": workload}
        for key in CONFIGS:
            timing = core.timing(get_result(workload, key))
            row[LABELS[key]] = timing.speedup_over(base_timing)
        rows.append(row)

    summary: Dict[str, object] = {"workload": "GMean"}
    for key in CONFIGS:
        summary[LABELS[key]] = geomean(r[LABELS[key]] for r in rows)
    rows.append(summary)
    return rows


def format_rows(rows: List[Dict[str, object]]) -> str:
    return format_table(rows, ["workload", *LABELS.values()])


def jobs():
    """Simulation jobs this figure needs, for parallel prewarming."""
    return [(workload, key)
            for workload in experiment_workloads()
            for key in ("tsl64",) + CONFIGS]
