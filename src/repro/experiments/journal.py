"""Checkpoint journal: durable record of completed simulation jobs.

A figure run is a long sweep of (workload, predictor-key, instructions)
jobs.  The result cache already stores each job's *bytes*; the journal,
an append-only JSONL file next to the cache, stores the *fact* that the
job finished and a digest of what it produced.  That small difference is
what makes crash recovery trustworthy:

* after a crash or SIGINT, ``python -m repro.experiments --resume``
  re-executes only jobs absent from the journal — finished work
  survives;
* a cache entry that *exists* but whose digest contradicts the journal
  (torn write, disk trouble, stale tooling) is detected and re-run
  instead of silently poisoning a figure.

Each line is one JSON object.  The first is a header pinning the
journal format and the runner's ``RESULTS_VERSION``; a journal from an
incompatible version is discarded wholesale (its entries describe
results the current code would not reproduce).  Entry lines are flushed
as they are written, so the journal is always at most one job behind
reality — the worst a crash can lose is the job in flight.  Unreadable
or truncated lines are skipped on load, mirroring the result cache's
corruption tolerance.
"""

from __future__ import annotations

import hashlib
import json
import os
import warnings
from pathlib import Path
from typing import Dict, Optional, Set, TextIO, Tuple, Union

from repro import telemetry

#: (workload, predictor key, instructions) — matches SimJob's fields.
JobKey = Tuple[str, str, int]

_FORMAT_VERSION = 1


def result_digest(result) -> str:
    """Canonical content digest of a :class:`SimulationResult`."""
    from repro.experiments.runner import _to_json

    payload = json.dumps(_to_json(result), sort_keys=True,
                         separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()


def default_path() -> Path:
    """The journal's on-disk home, next to the result cache."""
    env = os.environ.get("REPRO_CACHE_DIR")
    base = Path(env) if env else Path.home() / ".cache" / "repro-llbp"
    return base / "journal.jsonl"


class RunJournal:
    """Append-only completion journal with digest verification.

    Use :meth:`open` (fresh run truncates, ``resume=True`` loads);
    :meth:`record` / :meth:`record_result` append, :meth:`__contains__`
    and :meth:`matches` query.  Safe to pass where no journalling is
    wanted: every consumer treats ``None`` as "off".
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._digests: Dict[JobKey, str] = {}
        self._fh: Optional[TextIO] = None
        self._warned_write_failure = False

    @classmethod
    def open(cls, path: Union[str, Path, None] = None,
             resume: bool = False) -> "RunJournal":
        """Open the journal at ``path`` (default :func:`default_path`).

        A fresh run (``resume=False``) starts an empty journal,
        discarding any previous one; ``resume=True`` loads the previous
        run's completions so finished jobs can be skipped.
        """
        journal = cls(path if path is not None else default_path())
        if resume:
            journal._load()
        else:
            journal._truncate()
        return journal

    # -- querying ---------------------------------------------------

    def __len__(self) -> int:
        return len(self._digests)

    def __contains__(self, job: JobKey) -> bool:
        return tuple(job) in self._digests

    def completed(self) -> Set[JobKey]:
        """The set of jobs the journal records as finished."""
        return set(self._digests)

    def digest(self, job: JobKey) -> Optional[str]:
        return self._digests.get(tuple(job))

    def matches(self, job: JobKey, result) -> Optional[bool]:
        """Does ``result`` match what the journal saw for ``job``?

        ``None`` when the journal has no opinion (job never recorded);
        ``False`` is the corruption signal — the caller holds bytes that
        differ from what a completed run produced.
        """
        expected = self._digests.get(tuple(job))
        if expected is None:
            return None
        return expected == result_digest(result)

    # -- recording --------------------------------------------------

    def record(self, job: JobKey, digest: str) -> None:
        """Append one completion (idempotent per job)."""
        job = tuple(job)
        if self._digests.get(job) == digest:
            return
        self._digests[job] = digest
        workload, key, instructions = job
        self._append({"workload": workload, "key": key,
                      "instructions": int(instructions), "digest": digest})

    def record_result(self, job: JobKey, result) -> None:
        """Append one completion, digesting ``result`` for verification."""
        self.record(job, result_digest(result))

    def close(self) -> None:
        if self._fh is not None:
            try:
                self._fh.close()
            except OSError:
                pass
            self._fh = None

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- file plumbing ----------------------------------------------

    def _results_version(self) -> int:
        from repro.experiments.runner import RESULTS_VERSION

        return RESULTS_VERSION

    def _header(self) -> dict:
        return {"journal": _FORMAT_VERSION,
                "results_version": self._results_version()}

    def _append(self, record: dict) -> None:
        try:
            if self._fh is None:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                fresh = not self.path.exists() or self.path.stat().st_size == 0
                self._fh = open(self.path, "a")
                if fresh:
                    self._write_line(self._header())
            self._write_line(record)
        except OSError as error:
            # Journalling is best-effort, like the result cache: losing
            # a checkpoint must never take down the run it checkpoints.
            # But not silently — a dead journal means --resume will
            # re-execute this run's completions — so the first failure
            # warns and lands in telemetry.  The handle is dropped and
            # the open retried on the next record, in case the
            # condition (full disk, transient I/O error) clears.
            self.close()
            if not self._warned_write_failure:
                self._warned_write_failure = True
                warnings.warn(
                    f"checkpoint journal write to {self.path} failed "
                    f"({error}); completed jobs may be re-executed on "
                    "--resume", RuntimeWarning, stacklevel=4)
                telemetry.emit("journal.write_failed", path=str(self.path),
                               error=type(error).__name__)

    def _write_line(self, record: dict) -> None:
        assert self._fh is not None
        json.dump(record, self._fh, separators=(",", ":"))
        self._fh.write("\n")
        self._fh.flush()

    def _truncate(self) -> None:
        try:
            if self.path.exists():
                self.path.unlink()
        except OSError:
            pass

    def _load(self) -> None:
        try:
            text = self.path.read_text()
        except OSError:
            return
        entries: Dict[JobKey, str] = {}
        header_ok = False
        for i, line in enumerate(text.splitlines()):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue  # torn write mid-crash; later lines may be fine
            if not isinstance(record, dict):
                continue
            if i == 0 or "journal" in record:
                header_ok = (record.get("journal") == _FORMAT_VERSION and
                             record.get("results_version")
                             == self._results_version())
                continue
            try:
                job = (str(record["workload"]), str(record["key"]),
                       int(record["instructions"]))
                entries[job] = str(record["digest"])
            except (KeyError, TypeError, ValueError):
                continue
        if header_ok:
            self._digests = entries
        else:
            # Different format or RESULTS_VERSION: these completions
            # describe results the current code would not produce.
            self._truncate()
