"""Fig 15: breakdown of LLBP predictions.

Paper: LLBP provides a prediction for 14.8% of dynamic conditional
branches; of those it overrides the baseline in 77%; only 6.8% of
overrides are incorrect; 59% are redundant (baseline agreed).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.breakdown import override_breakdown
from repro.common.stats import mean
from repro.experiments.common import experiment_workloads, format_table
from repro.experiments.runner import get_result


def run(workloads: Optional[Sequence[str]] = None) -> Dict[str, object]:
    if workloads is None:
        workloads = experiment_workloads()

    per_workload: List[Dict[str, object]] = []
    for workload in workloads:
        b = override_breakdown(get_result(workload, "llbp"))
        per_workload.append({
            "workload": workload,
            "provided_pct": 100 * b.provided,
            "no_override_pct": 100 * b.no_override,
            "good_pct": 100 * b.good_override,
            "bad_pct": 100 * b.bad_override,
            "both_correct_pct": 100 * b.both_correct,
            "both_wrong_pct": 100 * b.both_wrong,
            "override_rate_pct": 100 * b.override_rate_of_provided,
            "bad_share_pct": 100 * b.bad_share_of_overrides,
            "redundant_share_pct": 100 * b.redundant_share_of_overrides,
        })

    summary = {"workload": "Mean"}
    for key in per_workload[0]:
        if key != "workload":
            summary[key] = mean(r[key] for r in per_workload)
    per_workload.append(summary)
    return {"rows": per_workload}


def format_rows(data: Dict[str, object]) -> str:
    return format_table(
        data["rows"],
        ["workload", "provided_pct", "no_override_pct", "good_pct", "bad_pct",
         "both_correct_pct", "both_wrong_pct", "override_rate_pct",
         "bad_share_pct", "redundant_share_pct"],
    )


def jobs():
    """Simulation jobs this figure needs, for parallel prewarming."""
    return [(workload, "llbp") for workload in experiment_workloads()]
