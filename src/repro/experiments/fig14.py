"""Fig 14: sensitivity to the number of pattern sets and patterns per set.

Paper (LLBP-0Lat, no bucketing): 16K contexts x 8 patterns gives 11%
reduction; doubling to 16 patterns adds 2.6%; 32 and 64 diminish; MPKI
reduction scales with context count until ~14K (the chosen design point,
~512KiB).  Capacities here are scaled by CAPACITY_SCALE (DESIGN.md §1):
the paper's 8K-128K context range maps to 2K-32K.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.common.stats import mean
from repro.experiments.common import experiment_workloads, format_table
from repro.experiments.runner import get_result
from repro.llbp.config import LLBPConfig

#: cd_set_bits values; contexts = 2**bits * 7 ways.
SET_BITS = (8, 9, 10, 11)
PATTERNS = (8, 16, 32)


def run(workloads: Optional[Sequence[str]] = None,
        set_bits: Sequence[int] = SET_BITS,
        pattern_sizes: Sequence[int] = PATTERNS) -> List[Dict[str, object]]:
    if workloads is None:
        workloads = experiment_workloads()[:1]

    rows: List[Dict[str, object]] = []
    for bits in set_bits:
        for patterns in pattern_sizes:
            key = f"llbp:lat0,unbucketed,cd_bits={bits},ps={patterns}"
            reductions = []
            for workload in workloads:
                base = get_result(workload, "tsl64")
                result = get_result(workload, key)
                reductions.append(result.mpki_reduction_vs(base))
            config = LLBPConfig()
            contexts = (1 << bits) * config.cd_ways
            capacity_kib = contexts * patterns * config.pattern_bits / 8 / 1024
            rows.append({
                "contexts": contexts,
                "patterns_per_set": patterns,
                "capacity_kib": capacity_kib,
                "mpki_reduction_pct": mean(reductions),
            })
    return rows


def format_rows(rows: List[Dict[str, object]]) -> str:
    return format_table(
        rows,
        ["contexts", "patterns_per_set", "capacity_kib", "mpki_reduction_pct"],
    )


def jobs():
    """Simulation jobs this figure needs, for parallel prewarming."""
    pairs = []
    for bits in SET_BITS:
        for patterns in PATTERNS:
            for workload in experiment_workloads()[:1]:
                pairs.append((workload, "tsl64"))
                pairs.append(
                    (workload,
                     f"llbp:lat0,unbucketed,cd_bits={bits},ps={patterns}"))
    return pairs
