"""Shared experiment configuration and formatting."""

from __future__ import annotations

import os
from typing import Dict, List, Sequence

from repro.workloads.catalog import workload_names

#: Default instruction budget per workload.  The paper simulates 200M
#: instructions; shapes stabilise much earlier on the proportionally
#: scaled synthetic workloads, and a single-core Python simulation has to
#: be frugal.  Override with REPRO_INSTRUCTIONS.
DEFAULT_INSTRUCTIONS = 800_000

#: Representative subset covering the catalog's extremes: strongest LLBP
#: gain (NodeApp), indirect-heavy (PHPWiki), largest Java working set
#: (Tomcat), easiest (Kafka), and two Google-trace analogues.
DEFAULT_WORKLOADS = ("NodeApp", "PHPWiki", "Tomcat", "Kafka", "Merced", "Whiskey")


def experiment_instructions() -> int:
    value = os.environ.get("REPRO_INSTRUCTIONS")
    if value:
        parsed = int(value)
        if parsed <= 0:
            raise ValueError("REPRO_INSTRUCTIONS must be positive")
        return parsed
    return DEFAULT_INSTRUCTIONS


def experiment_workloads() -> List[str]:
    value = os.environ.get("REPRO_WORKLOADS", "").strip()
    if not value:
        return list(DEFAULT_WORKLOADS)
    if value.lower() == "all":
        return workload_names()
    names = [name.strip() for name in value.split(",") if name.strip()]
    known = set(workload_names())
    unknown = [n for n in names if n not in known]
    if unknown:
        raise ValueError(f"unknown workloads in REPRO_WORKLOADS: {unknown}")
    return names


def format_table(rows: Sequence[Dict[str, object]],
                 columns: Sequence[str]) -> str:
    """Render rows as a fixed-width text table (for bench output)."""
    if not rows:
        return "(no rows)"

    def fmt(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.3f}"
        return str(value)

    widths = {c: len(c) for c in columns}
    rendered = []
    for row in rows:
        cells = {c: fmt(row.get(c, "")) for c in columns}
        for c in columns:
            widths[c] = max(widths[c], len(cells[c]))
        rendered.append(cells)

    header = "  ".join(c.ljust(widths[c]) for c in columns)
    lines = [header, "  ".join("-" * widths[c] for c in columns)]
    for cells in rendered:
        lines.append("  ".join(cells[c].ljust(widths[c]) for c in columns))
    return "\n".join(lines)
