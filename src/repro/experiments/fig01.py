"""Fig 1: execution cycles wasted on conditional branch mispredictions.

Paper (Sapphire Rapids hardware study): 3.6-20% of cycles, 9.2% average.
Here: the 64K TSL simulation's MPKI through the analytic core model.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.common.stats import geomean
from repro.experiments.common import experiment_workloads, format_table
from repro.experiments.runner import get_result
from repro.sim.core import CoreModel


def run(workloads: Optional[Sequence[str]] = None,
        core: Optional[CoreModel] = None) -> List[Dict[str, object]]:
    if workloads is None:
        workloads = experiment_workloads()
    if core is None:
        core = CoreModel()

    rows: List[Dict[str, object]] = []
    for workload in workloads:
        result = get_result(workload, "tsl64")
        timing = core.timing(result)
        rows.append({
            "workload": workload,
            "mpki": result.mpki,
            "wasted_cycles_pct": 100.0 * timing.wasted_fraction,
        })
    rows.append({
        "workload": "GMean",
        "mpki": geomean(max(r["mpki"], 1e-9) for r in rows),
        "wasted_cycles_pct": geomean(
            max(r["wasted_cycles_pct"], 1e-9) for r in rows
        ),
    })
    return rows


def format_rows(rows: List[Dict[str, object]]) -> str:
    return format_table(rows, ["workload", "mpki", "wasted_cycles_pct"])


def jobs():
    """Simulation jobs this figure needs, for parallel prewarming."""
    return [(workload, "tsl64") for workload in experiment_workloads()]
