"""Regenerate the paper's full evaluation from the command line.

Usage::

    python -m repro.experiments [fig01 fig02 ... table3] [--jobs N]
                                [--engine NAME] [--telemetry [DIR]]
                                [--backend NAME] [--workers SPEC]
                                [--resume] [--retries N] [--job-timeout S]

With no experiment names every experiment runs (simulation results are
cached, so reruns are cheap).  ``--jobs`` controls how many worker
processes prewarm the result cache before the (serial) formatting pass;
it defaults to the CPU count, or REPRO_JOBS when set.  Honours
REPRO_WORKLOADS / REPRO_INSTRUCTIONS.

``--engine array`` (or ``REPRO_ENGINE=array``) runs every simulation on
the array engine — bit-identical results, several times faster for the
TAGE-SC-L/LLBP families; the Python engine stays the default oracle.

``--backend tcp`` (or ``REPRO_BACKEND=tcp``) shards the prewarm across
``python -m repro.worker`` processes — ``--workers`` names either a
loopback worker count or ``host:port,...`` listeners on other machines
(REPRO_BACKEND_WORKERS) — byte-identical to a local run, with traces
shared through the content-addressed store.

The run is fault-tolerant: failed simulations retry with backoff
(``--retries`` / REPRO_RETRIES), hung workers are killed after
``--job-timeout`` seconds (REPRO_JOB_TIMEOUT) and their pool rebuilt,
and completed jobs are checkpointed to a journal next to the result
cache.  After a crash or Ctrl-C, ``--resume`` re-executes only the
unfinished jobs — and re-runs any cached result whose bytes no longer
match the digest the journal recorded.

``--telemetry [DIR]`` (or ``REPRO_TELEMETRY=DIR``) records structured
events — per-figure timings, simulation phases, cache hits, worker
activity, retry/timeout/resume accounting — as JSONL under ``DIR``
(default ``telemetry/``); summarize them afterwards with
``python scripts/report.py DIR``.
"""

from __future__ import annotations

import argparse
import dataclasses
import os
import sys
import time

from repro import parallel, telemetry
from repro.parallel import backend as backend_mod
from repro.sim import engine as engine_mod
from repro.experiments import (
    fig01, fig02, fig03, fig05, fig09, fig10, fig11, fig12, fig13, fig14,
    fig15, fig16, tables,
)
from repro.experiments.journal import RunJournal
from repro.parallel.retry import RetryPolicy

_EXPERIMENTS = {
    "table1": ("Table I — workloads",
               lambda: tables.format_table1(tables.table1()), None),
    "table2": ("Table II — simulated core",
               lambda: tables.format_table2(tables.table2()), None),
    "table3": ("Table III — latency/energy",
               lambda: tables.format_table3(tables.table3()), None),
    "fig01": ("Fig 1 — wasted cycles",
              lambda: fig01.format_rows(fig01.run()), fig01.jobs),
    "fig02": ("Fig 2 — TAGE in the limit",
              lambda: fig02.format_rows(fig02.run()), fig02.jobs),
    "fig03": ("Fig 3 — working set (Tomcat)",
              lambda: fig03.format_rows(fig03.run()), fig03.jobs),
    "fig05": ("Fig 5 — context locality",
              lambda: fig05.format_rows(fig05.run()), fig05.jobs),
    "fig09": ("Fig 9 — MPKI reduction",
              lambda: fig09.format_rows(fig09.run()), fig09.jobs),
    "fig10": ("Fig 10 — speedup",
              lambda: fig10.format_rows(fig10.run()), fig10.jobs),
    "fig11": ("Fig 11 — bandwidth",
              lambda: fig11.format_rows(fig11.run()), fig11.jobs),
    "fig12": ("Fig 12 — energy",
              lambda: fig12.format_rows(fig12.run()), fig12.jobs),
    "fig13": ("Fig 13 — CID sensitivity",
              lambda: fig13.format_rows(fig13.run()), fig13.jobs),
    "fig14": ("Fig 14 — pattern sets",
              lambda: fig14.format_rows(fig14.run()), fig14.jobs),
    "fig15": ("Fig 15 — LLBP effectiveness",
              lambda: fig15.format_rows(fig15.run()), fig15.jobs),
    "fig16": ("Fig 16 — scenario characterization grid (extension)",
              lambda: fig16.format_rows(fig16.run()), fig16.jobs),
}


def _prewarm(names, workers: int, policy: RetryPolicy,
             journal: RunJournal, resume: bool) -> None:
    """Fan every named experiment's simulations across worker processes.

    The experiments themselves then run serially against a warm cache,
    so their output (and ordering) is unchanged from a serial run.
    With ``resume``, jobs the journal already records as complete are
    served from cache (after digest verification) instead of re-run.
    """
    pairs = []
    for name in names:
        manifest = _EXPERIMENTS[name][2]
        if manifest is not None:
            pairs.extend(manifest())
    jobs = parallel.make_jobs(pairs)
    unique = list(dict.fromkeys(jobs))
    if resume:
        journaled = sum(1 for job in unique if tuple(job) in journal)
        telemetry.emit("experiment.resume", journaled=journaled,
                       total=len(unique), journal=str(journal.path))
        if journaled:
            print(f"[resume] journal {journal.path}: {journaled}/"
                  f"{len(unique)} simulations already complete")
    if not unique:
        return
    start = time.time()
    parallel.run_jobs(jobs, max_workers=workers, policy=policy,
                      journal=journal)
    if workers > 1:
        print(f"[prewarm] {len(unique)} simulations with {workers} workers "
              f"({time.time() - start:.1f}s)")


def main(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's figures and tables.")
    parser.add_argument("names", nargs="*", metavar="experiment",
                        help="experiments to run (default: all)")
    parser.add_argument("-j", "--jobs", type=int, default=None,
                        help="worker processes for the simulation prewarm "
                             "(default: REPRO_JOBS or the CPU count; "
                             "1 disables the pool)")
    parser.add_argument("--telemetry", nargs="?", const="telemetry",
                        default=None, metavar="DIR",
                        help="record structured run telemetry as JSONL "
                             "under DIR (default: ./telemetry)")
    parser.add_argument("--engine", choices=engine_mod.ENGINES,
                        default=None,
                        help="simulation engine for every run (default: "
                             "REPRO_ENGINE or python); the array engine "
                             "is bit-identical where supported and falls "
                             "back to python elsewhere")
    parser.add_argument("--backend", choices=("local", "tcp"),
                        default=None,
                        help="execution backend for the simulation prewarm "
                             "(default: REPRO_BACKEND or local); tcp "
                             "shards batched tasks across repro.worker "
                             "processes")
    parser.add_argument("--workers", default=None, metavar="SPEC",
                        help="tcp-backend workers: a loopback worker count "
                             "or a comma-separated host:port list of "
                             "'python -m repro.worker --listen' processes "
                             "(default: REPRO_BACKEND_WORKERS; implies "
                             "--backend tcp)")
    parser.add_argument("--resume", action="store_true",
                        help="continue an interrupted run: skip every "
                             "simulation the checkpoint journal records "
                             "as complete (and whose cached result still "
                             "matches its digest)")
    parser.add_argument("--retries", type=int, default=None, metavar="N",
                        help="attempts per simulation before giving up "
                             "(default: REPRO_RETRIES or 3)")
    parser.add_argument("--job-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="kill and retry any simulation running longer "
                             "than this (default: REPRO_JOB_TIMEOUT or "
                             "no timeout)")
    args = parser.parse_args(argv)

    names = args.names or list(_EXPERIMENTS)
    unknown = [n for n in names if n not in _EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}; known: {list(_EXPERIMENTS)}")
        return 2

    if args.telemetry is not None:
        # Via the environment, so prewarm workers inherit it.
        telemetry.configure(args.telemetry)

    if args.engine is not None:
        # Also via the environment: run_simulation consults REPRO_ENGINE
        # in-process and in every prewarm worker.
        os.environ[engine_mod.ENGINE_ENV_VAR] = args.engine

    if args.workers is not None:
        # Like --engine: the executor consults REPRO_BACKEND* when it
        # builds the backend for the prewarm batch.
        os.environ[backend_mod.ENV_WORKERS] = args.workers
        if args.backend is None:
            args.backend = "tcp"
    if args.backend is not None:
        os.environ[backend_mod.ENV_BACKEND] = args.backend

    policy = RetryPolicy.from_env()
    overrides = {}
    if args.retries is not None:
        overrides["max_attempts"] = max(1, args.retries)
    if args.job_timeout is not None:
        overrides["timeout"] = (args.job_timeout
                                if args.job_timeout > 0 else None)
    if overrides:
        policy = dataclasses.replace(policy, **overrides)

    journal = RunJournal.open(resume=args.resume)
    workers = args.jobs if args.jobs is not None else parallel.default_jobs()
    interrupted = False
    try:
        # Even a serial run goes through the prewarm pass: it is the
        # only path that records completions to the journal and
        # re-verifies cached results against their journalled digests.
        with telemetry.phase("experiment.prewarm", experiments=names,
                             workers=workers):
            _prewarm(names, workers, policy, journal, args.resume)

        run_start = time.time()
        for i, name in enumerate(names):
            title, runner, _ = _EXPERIMENTS[name]
            # Heartbeat *before* each experiment: a consumer tailing the
            # JSONL sees progress even while a long figure is running.
            telemetry.emit("experiment.heartbeat", completed=i,
                           total=len(names), current=name)
            start = time.time()
            body = runner()
            elapsed = time.time() - start
            telemetry.emit("experiment.figure", name=name, title=title,
                           seconds=elapsed)
            print(f"\n=== {title} ({elapsed:.1f}s) ===")
            print(body)
        telemetry.emit("experiment.run", experiments=names,
                       seconds=time.time() - run_start)
    except KeyboardInterrupt:
        interrupted = True
        telemetry.emit("experiment.interrupted", journaled=len(journal),
                       journal=str(journal.path))
        print(f"\ninterrupted — completed work is journalled in "
              f"{journal.path};\nresume with: python -m repro.experiments "
              f"--resume " + " ".join(args.names), file=sys.stderr)
    finally:
        parallel.shutdown()
        journal.close()
        if args.telemetry is not None:
            print(f"\n[telemetry] events in {args.telemetry}/ — summarize "
                  f"with: python scripts/report.py {args.telemetry}")
    return 130 if interrupted else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
