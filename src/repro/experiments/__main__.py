"""Regenerate the paper's full evaluation from the command line.

Usage::

    python -m repro.experiments [fig01 fig02 ... table3]

With no arguments every experiment runs (simulation results are cached,
so reruns are cheap).  Honours REPRO_WORKLOADS / REPRO_INSTRUCTIONS.
"""

from __future__ import annotations

import sys
import time

from repro.experiments import (
    fig01, fig02, fig03, fig05, fig09, fig10, fig11, fig12, fig13, fig14,
    fig15, tables,
)

_EXPERIMENTS = {
    "table1": ("Table I — workloads",
               lambda: tables.format_table1(tables.table1())),
    "table2": ("Table II — simulated core",
               lambda: tables.format_table2(tables.table2())),
    "table3": ("Table III — latency/energy",
               lambda: tables.format_table3(tables.table3())),
    "fig01": ("Fig 1 — wasted cycles",
              lambda: fig01.format_rows(fig01.run())),
    "fig02": ("Fig 2 — TAGE in the limit",
              lambda: fig02.format_rows(fig02.run())),
    "fig03": ("Fig 3 — working set (Tomcat)",
              lambda: fig03.format_rows(fig03.run())),
    "fig05": ("Fig 5 — context locality",
              lambda: fig05.format_rows(fig05.run())),
    "fig09": ("Fig 9 — MPKI reduction",
              lambda: fig09.format_rows(fig09.run())),
    "fig10": ("Fig 10 — speedup",
              lambda: fig10.format_rows(fig10.run())),
    "fig11": ("Fig 11 — bandwidth",
              lambda: fig11.format_rows(fig11.run())),
    "fig12": ("Fig 12 — energy",
              lambda: fig12.format_rows(fig12.run())),
    "fig13": ("Fig 13 — CID sensitivity",
              lambda: fig13.format_rows(fig13.run())),
    "fig14": ("Fig 14 — pattern sets",
              lambda: fig14.format_rows(fig14.run())),
    "fig15": ("Fig 15 — LLBP effectiveness",
              lambda: fig15.format_rows(fig15.run())),
}


def main(argv) -> int:
    names = argv or list(_EXPERIMENTS)
    unknown = [n for n in names if n not in _EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}; known: {list(_EXPERIMENTS)}")
        return 2
    for name in names:
        title, runner = _EXPERIMENTS[name]
        start = time.time()
        body = runner()
        print(f"\n=== {title} ({time.time() - start:.1f}s) ===")
        print(body)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
