"""Experiment harness: one module per paper table/figure.

Every module exposes a ``run(...)`` function returning structured rows
(lists of dicts) plus a ``format_rows`` helper; the benchmark suite under
``benchmarks/`` invokes these and prints the same rows the paper reports.
Simulation results are cached on disk (keyed by workload, instruction
budget, predictor configuration and a results version) so figures sharing
configurations — e.g. the 64K TSL baseline — pay for them once.

Environment knobs (all optional):

* ``REPRO_INSTRUCTIONS`` — instruction budget per trace (default 800000).
* ``REPRO_WORKLOADS``    — comma-separated workload names, or ``all``
  (default: a 6-workload representative subset).
* ``REPRO_RESULT_CACHE`` — set to ``0`` to disable the result cache.
* ``REPRO_CACHE_DIR``    — cache directory (traces + results).
"""

from repro.experiments.common import (
    experiment_workloads,
    experiment_instructions,
    format_table,
)
from repro.experiments.runner import get_result, clear_memory_cache

__all__ = [
    "experiment_workloads",
    "experiment_instructions",
    "format_table",
    "get_result",
    "clear_memory_cache",
]
