"""Fig 5: patterns per context vs context depth W.

Paper (top-128 most-mispredicted branches): W=0 p50=298/p95=2384;
W=8 p50=2/p95=25; W=32 p50=1/p95=9 — deepening the context slices the
pattern space by orders of magnitude.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.analysis.contexts import patterns_per_context_study
from repro.experiments.common import experiment_instructions, format_table
from repro.experiments.runner import get_result
from repro.workloads.catalog import generate_workload

DEFAULT_WINDOWS = (0, 2, 4, 8, 16, 32)
DEFAULT_WORKLOAD = "Tomcat"


def run(workload: str = DEFAULT_WORKLOAD,
        windows: Sequence[int] = DEFAULT_WINDOWS,
        top_branches: int = 128) -> List[Dict[str, object]]:
    instructions = experiment_instructions()
    baseline = get_result(workload, "tsl64")
    trace = generate_workload(workload, instructions)
    results = patterns_per_context_study(
        trace, baseline,
        windows=windows,
        top_branches=top_branches,
        warmup_instructions=int(instructions / 3),
    )
    rows: List[Dict[str, object]] = []
    for res in results:
        rows.append({
            "W": res.window,
            "contexts": len(res.counts),
            "p50": res.p50,
            "p95": res.p95,
            "max": max(res.counts) if res.counts else 0,
        })
    return rows


def format_rows(rows: List[Dict[str, object]]) -> str:
    return format_table(rows, ["W", "contexts", "p50", "p95", "max"])


def jobs():
    """Simulation jobs this figure needs, for parallel prewarming."""
    return [(DEFAULT_WORKLOAD, "tsl64")]
