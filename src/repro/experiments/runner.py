"""Predictor registry and the cached simulation runner.

Predictor keys are strings so results can be cached on disk and shared
across figures.  Plain keys name the paper's standard configurations;
``llbp`` keys accept a parameter suffix for the sensitivity studies:

    llbp                       the evaluated design (timed prefetch)
    llbp:lat0                  LLBP-0Lat
    llbp:lat0,w=16,d=0         context window / prefetch distance override
    llbp:src=callret           RCR source (uncond | callret | all)
    llbp:cd_bits=10,ps=32      directory sets / patterns per set
    llbp:unbucketed,lru        ablation switches
    llbp:exclusive             the paper's exclusive provider training

Results are cached under the cache directory keyed by (workload,
instructions, key, RESULTS_VERSION); bump RESULTS_VERSION whenever
predictor or workload behaviour changes.
"""

from __future__ import annotations

import dataclasses
import json
import os
import time
from pathlib import Path
from typing import Callable, Dict, Optional

from repro import telemetry
from repro.llbp.config import ContextSource, LLBPConfig
from repro.llbp.predictor import LLBPTageScL
from repro.predictors.base import BranchPredictor
from repro.predictors.bimodal import Bimodal
from repro.predictors.gshare import GShare
from repro.predictors.perfect import PerfectPredictor
from repro.predictors.presets import tage_infinite, tsl_64k, tsl_infinite, tsl_scaled
from repro.sim.engine import run_simulation
from repro.sim.multi import run_simulation_batch
from repro.sim.results import SimulationResult
from repro.workloads.catalog import generate_workload

RESULTS_VERSION = 6  # v6: prefetch_delivered joined SimulationResult.extra

_SIMPLE_FACTORIES: Dict[str, Callable[[], BranchPredictor]] = {
    "bimodal": Bimodal,
    "gshare": GShare,
    "perfect": PerfectPredictor,
    "tsl64": tsl_64k,
    "tsl128": lambda: tsl_scaled(2),
    "tsl256": lambda: tsl_scaled(4),
    "tsl512": lambda: tsl_scaled(8),
    "tsl1m": lambda: tsl_scaled(16),
    "inf-tage": tage_infinite,
    "inf-tsl": tsl_infinite,
}

_SOURCES = {
    "uncond": ContextSource.UNCONDITIONAL,
    "callret": ContextSource.CALL_RET,
    "all": ContextSource.ALL,
}


def _parse_llbp_key(spec: str) -> LLBPConfig:
    config = LLBPConfig()
    if not spec:
        return config
    changes: Dict[str, object] = {}
    for token in spec.split(","):
        token = token.strip()
        if not token:
            continue
        if token == "lat0":
            changes["simulate_timing"] = False
        elif token == "virt":
            # §V-A's future-work variant: pattern sets live in the L2
            # rather than a dedicated array, so fetches pay an L2-like
            # latency instead of the 6-cycle dedicated-array access.
            changes["prefetch_latency_cycles"] = 16
        elif token == "unbucketed":
            changes["bucketed"] = False
        elif token == "lru":
            changes["cd_replacement"] = "lru"
        elif token == "exclusive":
            changes["exclusive_provider_training"] = True
        elif token == "frontend":
            changes["model_frontend_redirects"] = True
        elif token == "noguard":
            changes["weak_override_guard"] = False
        elif "=" in token:
            name, value = token.split("=", 1)
            if name == "w":
                changes["context_window"] = int(value)
            elif name == "d":
                changes["prefetch_distance"] = int(value)
            elif name == "src":
                changes["context_source"] = _SOURCES[value]
            elif name == "cd_bits":
                changes["cd_set_bits"] = int(value)
            elif name == "ps":
                changes["patterns_per_set"] = int(value)
            elif name == "pb":
                changes["pb_entries"] = int(value)
            elif name == "lat":
                changes["prefetch_latency_cycles"] = int(value)
            else:
                raise ValueError(f"unknown LLBP parameter {name!r}")
        else:
            raise ValueError(f"unknown LLBP token {token!r}")
    if changes.get("bucketed") is False and "patterns_per_set" in changes:
        # Unbucketed sets of arbitrary size keep the full slot-length list.
        pass
    return dataclasses.replace(config, **changes)


def resolve_predictor(key: str) -> BranchPredictor:
    """Instantiate the predictor named by ``key`` (see module docstring)."""
    if key in _SIMPLE_FACTORIES:
        return _SIMPLE_FACTORIES[key]()
    if key == "llbp":
        return LLBPTageScL(LLBPConfig())
    if key.startswith("llbp:"):
        return LLBPTageScL(_parse_llbp_key(key[len("llbp:"):]))
    raise KeyError(f"unknown predictor key {key!r}")


def _cache_dir() -> Path:
    env = os.environ.get("REPRO_CACHE_DIR")
    base = Path(env) if env else Path.home() / ".cache" / "repro-llbp"
    return base / "results"


def _cache_enabled() -> bool:
    return os.environ.get("REPRO_RESULT_CACHE", "1") != "0"


def _cache_path(workload: str, instructions: int, key: str) -> Path:
    safe = key.replace(":", "_").replace(",", "+").replace("=", "-")
    return _cache_dir() / f"{workload}-i{instructions}-{safe}-v{RESULTS_VERSION}.json"


def _to_json(result: SimulationResult) -> dict:
    return {
        "workload": result.workload,
        "predictor": result.predictor,
        "instructions": result.instructions,
        "warmup_instructions": result.warmup_instructions,
        "branches": result.branches,
        "cond_branches": result.cond_branches,
        "mispredictions": result.mispredictions,
        "per_pc_mispredictions": {str(k): v for k, v in result.per_pc_mispredictions.items()},
        "per_pc_executions": {str(k): v for k, v in result.per_pc_executions.items()},
        "extra": result.extra,
    }


def _from_json(data: dict) -> SimulationResult:
    return SimulationResult(
        workload=data["workload"],
        predictor=data["predictor"],
        instructions=data["instructions"],
        warmup_instructions=data["warmup_instructions"],
        branches=data["branches"],
        cond_branches=data["cond_branches"],
        mispredictions=data["mispredictions"],
        per_pc_mispredictions={int(k): v for k, v in data["per_pc_mispredictions"].items()},
        per_pc_executions={int(k): v for k, v in data["per_pc_executions"].items()},
        extra=data.get("extra", {}),
    )


_memory_cache: Dict[tuple, SimulationResult] = {}


def clear_memory_cache() -> None:
    _memory_cache.clear()


def _read_cache(path: Path) -> Optional[SimulationResult]:
    """Load a cached result; a missing or unreadable file is a miss.

    Truncated or corrupt cache files (an interrupted writer on another
    cache implementation, disk trouble) must never take the run down —
    the result is simply recomputed and the file rewritten.
    """
    try:
        with open(path) as fh:
            return _from_json(json.load(fh))
    except (OSError, ValueError, KeyError, TypeError):
        return None


def _write_cache(path: Path, result: SimulationResult) -> None:
    """Atomically publish a result file (write-temp + rename).

    The temp name embeds the pid so concurrent writers (the parallel
    executor's workers) never clobber each other's in-progress file;
    ``os.replace`` makes the final publish atomic, so readers only ever
    see complete files.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
    try:
        with open(tmp, "w") as fh:
            json.dump(_to_json(result), fh)
        os.replace(tmp, path)
    except OSError:
        # Caching is best-effort; never fail the simulation over it.
        try:
            os.unlink(tmp)
        except OSError:
            pass


def _resolve_instructions(instructions: Optional[int]) -> int:
    if instructions is None:
        from repro.experiments.common import experiment_instructions

        return experiment_instructions()
    return instructions


def peek_result(workload: str, key: str,
                instructions: Optional[int] = None) -> Optional[SimulationResult]:
    """Return the cached result if one exists, without simulating."""
    instructions = _resolve_instructions(instructions)
    memo = (workload, key, instructions)
    cached = _memory_cache.get(memo)
    if cached is not None:
        telemetry.emit("runner.result", workload=workload, key=key,
                       instructions=instructions, source="memory")
        return cached
    if not _cache_enabled():
        return None
    result = _read_cache(_cache_path(workload, instructions, key))
    if result is not None:
        _memory_cache[memo] = result
        telemetry.emit("runner.result", workload=workload, key=key,
                       instructions=instructions, source="disk")
    return result


def seed_result(workload: str, key: str, instructions: int,
                result: SimulationResult) -> None:
    """Install an externally computed result into the in-memory cache."""
    _memory_cache[(workload, key, instructions)] = result


def drop_result(workload: str, key: str,
                instructions: Optional[int] = None) -> None:
    """Evict one result from the memory *and* disk caches.

    The fault-tolerance layer calls this when a checkpoint journal
    proves a cached entry corrupt (digest mismatch): the poisoned bytes
    must not answer the retry that replaces them.
    """
    instructions = _resolve_instructions(instructions)
    _memory_cache.pop((workload, key, instructions), None)
    try:
        os.unlink(_cache_path(workload, instructions, key))
    except OSError:
        pass


def get_result(workload: str, key: str,
               instructions: Optional[int] = None) -> SimulationResult:
    """Simulate ``key`` on ``workload`` (or return the cached result)."""
    instructions = _resolve_instructions(instructions)

    cached = peek_result(workload, key, instructions)
    if cached is not None:
        return cached

    start = time.perf_counter() if telemetry.enabled() else 0.0
    trace = generate_workload(workload, instructions)
    predictor = resolve_predictor(key)
    result = run_simulation(trace, predictor, collect_per_pc=True)
    telemetry.emit("runner.result", workload=workload, key=key,
                   instructions=instructions, source="simulated",
                   seconds=time.perf_counter() - start)

    if _cache_enabled():
        _write_cache(_cache_path(workload, instructions, key), result)
    _memory_cache[(workload, key, instructions)] = result
    return result


def run_batch(workload: str, keys, instructions: Optional[int] = None):
    """Simulate many predictors over ``workload`` in one decode pass.

    The counterpart of calling :func:`get_result` once per key, with the
    trace generated/loaded once and all cache misses simulated by
    :func:`repro.sim.multi.run_simulation_batch` (bit-identical to the
    per-key path, caches included).  Keys already cached are returned
    from cache and excluded from the pass; duplicate keys are simulated
    once.  Returns one :class:`SimulationResult` per key, in order.
    """
    instructions = _resolve_instructions(instructions)
    results: Dict[str, SimulationResult] = {}
    missing = []
    for key in dict.fromkeys(keys):
        cached = peek_result(workload, key, instructions)
        if cached is not None:
            results[key] = cached
        else:
            missing.append(key)

    if missing:
        start = time.perf_counter() if telemetry.enabled() else 0.0
        trace = generate_workload(workload, instructions)
        predictors = [resolve_predictor(key) for key in missing]
        batch = run_simulation_batch(trace, predictors, collect_per_pc=True)
        seconds = time.perf_counter() - start
        for key, result in zip(missing, batch):
            telemetry.emit("runner.result", workload=workload, key=key,
                           instructions=instructions, source="batched",
                           batched=len(missing), seconds=seconds)
            if _cache_enabled():
                _write_cache(_cache_path(workload, instructions, key), result)
            _memory_cache[(workload, key, instructions)] = result
            results[key] = result
    return [results[key] for key in keys]


def run_many(pairs, instructions: Optional[int] = None,
             max_workers: Optional[int] = None) -> Dict[tuple, SimulationResult]:
    """Batch API: run many (workload, key) pairs, in parallel when useful.

    Returns ``{(workload, key): result}``.  With ``max_workers=1`` (or a
    single cache miss) this degenerates to serial ``get_result`` calls;
    results are identical either way.
    """
    from repro.parallel import make_jobs, run_jobs

    jobs = make_jobs(pairs, instructions)
    by_job = run_jobs(jobs, max_workers=max_workers)
    return {(job.workload, job.key): result
            for job, result in by_job.items()}
