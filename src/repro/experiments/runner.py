"""The cached simulation runner (and deprecated predictor-key shims).

Predictor keys are strings so results can be cached on disk and shared
across figures; the key grammar now lives in
:mod:`repro.predictors.registry` (``parse_key`` / ``make_predictor``).
The ``resolve_predictor`` / ``_parse_llbp_key`` helpers that used to
define it here remain as thin shims that emit ``DeprecationWarning``.

Results are cached under the cache directory keyed by (workload,
instructions, key, RESULTS_VERSION); bump RESULTS_VERSION whenever
predictor or workload behaviour changes.
"""

from __future__ import annotations

import json
import os
import time
import warnings
from pathlib import Path
from typing import Dict, Optional

from repro import telemetry
from repro.llbp.config import LLBPConfig
from repro.predictors import registry
from repro.predictors.base import BranchPredictor
from repro.sim.engine import run_simulation
from repro.sim.multi import run_simulation_batch
from repro.sim.results import SimulationResult
from repro.workloads.catalog import generate_workload

RESULTS_VERSION = 6  # v6: prefetch_delivered joined SimulationResult.extra


def _parse_llbp_key(spec: str) -> LLBPConfig:
    """Deprecated: use :func:`repro.predictors.registry.parse_llbp_spec`."""
    warnings.warn(
        "_parse_llbp_key is deprecated; use "
        "repro.predictors.registry.parse_llbp_spec",
        DeprecationWarning, stacklevel=2)
    return registry.parse_llbp_spec(spec)


def resolve_predictor(key: str) -> BranchPredictor:
    """Deprecated: use :func:`repro.predictors.registry.make_predictor`."""
    warnings.warn(
        "resolve_predictor is deprecated; use "
        "repro.predictors.registry.make_predictor",
        DeprecationWarning, stacklevel=2)
    return registry.make_predictor(key)


def _cache_dir() -> Path:
    env = os.environ.get("REPRO_CACHE_DIR")
    base = Path(env) if env else Path.home() / ".cache" / "repro-llbp"
    return base / "results"


def _cache_enabled() -> bool:
    return os.environ.get("REPRO_RESULT_CACHE", "1") != "0"


def _cache_path(workload: str, instructions: int, key: str) -> Path:
    def _safe(part: str) -> str:
        return part.replace(":", "_").replace(",", "+").replace("=", "-")
    return _cache_dir() / (f"{_safe(workload)}-i{instructions}-{_safe(key)}"
                           f"-v{RESULTS_VERSION}.json")


def _to_json(result: SimulationResult) -> dict:
    return {
        "workload": result.workload,
        "predictor": result.predictor,
        "instructions": result.instructions,
        "warmup_instructions": result.warmup_instructions,
        "branches": result.branches,
        "cond_branches": result.cond_branches,
        "mispredictions": result.mispredictions,
        "per_pc_mispredictions": {str(k): v for k, v in result.per_pc_mispredictions.items()},
        "per_pc_executions": {str(k): v for k, v in result.per_pc_executions.items()},
        "extra": result.extra,
    }


def _from_json(data: dict) -> SimulationResult:
    return SimulationResult(
        workload=data["workload"],
        predictor=data["predictor"],
        instructions=data["instructions"],
        warmup_instructions=data["warmup_instructions"],
        branches=data["branches"],
        cond_branches=data["cond_branches"],
        mispredictions=data["mispredictions"],
        per_pc_mispredictions={int(k): v for k, v in data["per_pc_mispredictions"].items()},
        per_pc_executions={int(k): v for k, v in data["per_pc_executions"].items()},
        extra=data.get("extra", {}),
    )


_memory_cache: Dict[tuple, SimulationResult] = {}


def clear_memory_cache() -> None:
    _memory_cache.clear()


def _read_cache(path: Path) -> Optional[SimulationResult]:
    """Load a cached result; a missing or unreadable file is a miss.

    Truncated or corrupt cache files (an interrupted writer on another
    cache implementation, disk trouble) must never take the run down —
    the result is simply recomputed and the file rewritten.
    """
    try:
        with open(path) as fh:
            return _from_json(json.load(fh))
    except (OSError, ValueError, KeyError, TypeError):
        return None


def _write_cache(path: Path, result: SimulationResult) -> None:
    """Atomically publish a result file (write-temp + rename).

    The temp name embeds the pid so concurrent writers (the parallel
    executor's workers) never clobber each other's in-progress file;
    ``os.replace`` makes the final publish atomic, so readers only ever
    see complete files.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
    try:
        with open(tmp, "w") as fh:
            json.dump(_to_json(result), fh)
        os.replace(tmp, path)
    except OSError:
        # Caching is best-effort; never fail the simulation over it.
        try:
            os.unlink(tmp)
        except OSError:
            pass


def _resolve_instructions(instructions: Optional[int]) -> int:
    if instructions is None:
        from repro.experiments.common import experiment_instructions

        return experiment_instructions()
    return instructions


def peek_result(workload: str, key: str,
                instructions: Optional[int] = None) -> Optional[SimulationResult]:
    """Return the cached result if one exists, without simulating."""
    instructions = _resolve_instructions(instructions)
    memo = (workload, key, instructions)
    cached = _memory_cache.get(memo)
    if cached is not None:
        telemetry.emit("runner.result", workload=workload, key=key,
                       instructions=instructions, source="memory")
        return cached
    if not _cache_enabled():
        return None
    result = _read_cache(_cache_path(workload, instructions, key))
    if result is not None:
        _memory_cache[memo] = result
        telemetry.emit("runner.result", workload=workload, key=key,
                       instructions=instructions, source="disk")
    return result


def seed_result(workload: str, key: str, instructions: int,
                result: SimulationResult) -> None:
    """Install an externally computed result into the in-memory cache."""
    _memory_cache[(workload, key, instructions)] = result


def drop_result(workload: str, key: str,
                instructions: Optional[int] = None) -> None:
    """Evict one result from the memory *and* disk caches.

    The fault-tolerance layer calls this when a checkpoint journal
    proves a cached entry corrupt (digest mismatch): the poisoned bytes
    must not answer the retry that replaces them.
    """
    instructions = _resolve_instructions(instructions)
    _memory_cache.pop((workload, key, instructions), None)
    try:
        os.unlink(_cache_path(workload, instructions, key))
    except OSError:
        pass


def get_result(workload: str, key: str,
               instructions: Optional[int] = None) -> SimulationResult:
    """Simulate ``key`` on ``workload`` (or return the cached result)."""
    instructions = _resolve_instructions(instructions)

    cached = peek_result(workload, key, instructions)
    if cached is not None:
        return cached

    start = time.perf_counter() if telemetry.enabled() else 0.0
    trace = generate_workload(workload, instructions)
    predictor = registry.make_predictor(key)
    result = run_simulation(trace, predictor, collect_per_pc=True)
    telemetry.emit("runner.result", workload=workload, key=key,
                   instructions=instructions, source="simulated",
                   seconds=time.perf_counter() - start)

    if _cache_enabled():
        _write_cache(_cache_path(workload, instructions, key), result)
    _memory_cache[(workload, key, instructions)] = result
    return result


def run_batch(workload: str, keys, instructions: Optional[int] = None):
    """Simulate many predictors over ``workload`` in one decode pass.

    The counterpart of calling :func:`get_result` once per key, with the
    trace generated/loaded once and all cache misses simulated by
    :func:`repro.sim.multi.run_simulation_batch` (bit-identical to the
    per-key path, caches included).  Keys already cached are returned
    from cache and excluded from the pass; duplicate keys are simulated
    once.  Returns one :class:`SimulationResult` per key, in order.
    """
    instructions = _resolve_instructions(instructions)
    results: Dict[str, SimulationResult] = {}
    missing = []
    for key in dict.fromkeys(keys):
        cached = peek_result(workload, key, instructions)
        if cached is not None:
            results[key] = cached
        else:
            missing.append(key)

    if missing:
        start = time.perf_counter() if telemetry.enabled() else 0.0
        trace = generate_workload(workload, instructions)
        predictors = [registry.make_predictor(key) for key in missing]
        batch = run_simulation_batch(trace, predictors, collect_per_pc=True)
        seconds = time.perf_counter() - start
        for key, result in zip(missing, batch):
            telemetry.emit("runner.result", workload=workload, key=key,
                           instructions=instructions, source="batched",
                           batched=len(missing), seconds=seconds)
            if _cache_enabled():
                _write_cache(_cache_path(workload, instructions, key), result)
            _memory_cache[(workload, key, instructions)] = result
            results[key] = result
    return [results[key] for key in keys]


def run_many(pairs, instructions: Optional[int] = None,
             max_workers: Optional[int] = None) -> Dict[tuple, SimulationResult]:
    """Batch API: run many (workload, key) pairs, in parallel when useful.

    Returns ``{(workload, key): result}``.  With ``max_workers=1`` (or a
    single cache miss) this degenerates to serial ``get_result`` calls;
    results are identical either way.
    """
    from repro.parallel import make_jobs, run_jobs

    jobs = make_jobs(pairs, instructions)
    by_job = run_jobs(jobs, max_workers=max_workers)
    return {(job.workload, job.key): result
            for job, result in by_job.items()}
