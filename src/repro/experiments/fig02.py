"""Fig 2: branch MPKI of 64K TSL vs Inf TAGE vs Inf TSL.

Paper: 64K TSL avg 2.91 MPKI; Inf TSL reduces by 36.5% (avg 1.55); Inf
TAGE (unbounded TAGE tables only) captures ~87% of Inf TSL's gain.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.common.stats import mean
from repro.experiments.common import experiment_workloads, format_table
from repro.experiments.runner import get_result

CONFIGS = ("tsl64", "inf-tage", "inf-tsl")


def run(workloads: Optional[Sequence[str]] = None) -> List[Dict[str, object]]:
    if workloads is None:
        workloads = experiment_workloads()

    rows: List[Dict[str, object]] = []
    for workload in workloads:
        row: Dict[str, object] = {"workload": workload}
        for key in CONFIGS:
            row[key] = get_result(workload, key).mpki
        rows.append(row)

    summary: Dict[str, object] = {"workload": "Mean"}
    for key in CONFIGS:
        summary[key] = mean(r[key] for r in rows)
    rows.append(summary)
    return rows


def reductions(rows: List[Dict[str, object]]) -> Dict[str, float]:
    """Average MPKI reduction of the infinite configurations vs 64K TSL."""
    mean_row = rows[-1]
    base = mean_row["tsl64"]
    out = {}
    for key in ("inf-tage", "inf-tsl"):
        out[key] = 100.0 * (base - mean_row[key]) / base if base else 0.0
    if out["inf-tsl"] > 0:
        out["inf-tage_share_of_inf-tsl"] = 100.0 * out["inf-tage"] / out["inf-tsl"]
    return out


def format_rows(rows: List[Dict[str, object]]) -> str:
    return format_table(rows, ["workload", *CONFIGS])


def jobs():
    """Simulation jobs this figure needs, for parallel prewarming."""
    return [(workload, key)
            for workload in experiment_workloads() for key in CONFIGS]
