"""Bi-Mode: choice predictor + taken/not-taken direction banks.

Lee, Chen & Mudge, "The Bi-Mode Branch Predictor" (MICRO 1997), as
popularised by the ChampSim reference implementation.  The destructive
aliasing of a single gshare table is split across two direction banks:
branches whose choice counter says "mostly taken" index the taken bank,
the rest index the not-taken bank, so branches of opposite bias no
longer fight over one counter.

Update rule (per the paper): the *selected* direction bank always
trains toward the outcome; the choice table trains toward the outcome
unless the choice was wrong but the selected direction bank was right
(the bank absorbed the exception, keep the choice stable).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.predictors.base import BranchPredictor


@dataclass(frozen=True)
class BiModeConfig:
    """Geometry of a :class:`BiMode` predictor (registry family ``bimode:``)."""

    choice_bits: int = 13      # log2 entries in the PC-indexed choice table
    direction_bits: int = 13   # log2 entries in each direction bank
    history_bits: int = 13     # global-history length folded into the banks

    def __post_init__(self) -> None:
        if self.choice_bits < 1 or self.direction_bits < 1:
            raise ValueError("choice_bits and direction_bits must be >= 1")
        if not 1 <= self.history_bits <= 64:
            raise ValueError("history_bits must be in [1, 64]")

    def storage_bits(self) -> int:
        return 2 * (1 << self.choice_bits) + 2 * 2 * (1 << self.direction_bits)


class BiMode(BranchPredictor):
    """Choice table (PC-indexed) steering two gshare-style direction banks."""

    name = "bimode"

    def __init__(self, config: BiModeConfig = BiModeConfig()) -> None:
        super().__init__()
        self.config = config
        self._cmask = (1 << config.choice_bits) - 1
        self._dmask = (1 << config.direction_bits) - 1
        self._hist_mask = (1 << config.history_bits) - 1
        self.choice = [0] * (1 << config.choice_bits)
        # Direction banks are biased at reset: the taken bank weakly taken,
        # the not-taken bank weakly not-taken, matching their roles.
        self.taken_bank = [0] * (1 << config.direction_bits)
        self.nottaken_bank = [-1] * (1 << config.direction_bits)
        self.history = 0

    def _indices(self, pc: int) -> "tuple[int, int]":
        ci = (pc >> 2) & self._cmask
        di = ((pc >> 2) ^ self.history) & self._dmask
        return ci, di

    def predict(self, pc: int) -> bool:
        self.stats.lookups += 1
        ci, di = self._indices(pc)
        bank = self.taken_bank if self.choice[ci] >= 0 else self.nottaken_bank
        return bank[di] >= 0

    def train(self, pc: int, taken: bool, meta: bool) -> None:
        if bool(meta) != taken:
            self.stats.mispredictions += 1
        # history is unchanged between predict and train, so the indices
        # recompute to the same values the prediction used.
        ci, di = self._indices(pc)
        cv = self.choice[ci]
        choice_taken = cv >= 0
        bank = self.taken_bank if choice_taken else self.nottaken_bank
        direction = bank[di] >= 0
        # Choice: train toward the outcome unless the choice missed but
        # the selected bank covered for it.
        if not (choice_taken != taken and direction == taken):
            if taken:
                if cv < 1:
                    self.choice[ci] = cv + 1
            elif cv > -2:
                self.choice[ci] = cv - 1
        # Selected direction bank always trains toward the outcome.
        v = bank[di]
        if taken:
            if v < 1:
                bank[di] = v + 1
        elif v > -2:
            bank[di] = v - 1

    def update_history(self, pc: int, branch_type: int, taken: bool,
                       target: int) -> None:
        if branch_type == 0:  # BranchType.COND
            self.history = ((self.history << 1) | (1 if taken else 0)) & self._hist_mask

    def storage_bits(self) -> int:
        return self.config.storage_bits()

    def state_arrays(self) -> dict:
        import numpy as np

        return {
            "choice": np.array(self.choice, dtype=np.int8),
            "taken_bank": np.array(self.taken_bank, dtype=np.int8),
            "nottaken_bank": np.array(self.nottaken_bank, dtype=np.int8),
            "history": np.array(self.history, dtype=np.uint64),
        }
