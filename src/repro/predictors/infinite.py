"""Infinite-capacity TAGE tables for the limit study (§II-C).

Following the paper's methodology: hash functions and table count are
unchanged, but every pattern is additionally tagged with the full branch
PC and associativity is unbounded — so capacity evictions and destructive
aliasing disappear while the algorithmic behaviour (provider selection,
geometric histories) is preserved.

The class also hosts the *useful pattern* instrumentation behind the
working-set studies (Figs 3b and 5): a pattern is useful when it provides
a correct prediction while the alternative prediction is wrong; an
optional callback receives each useful event so analysis code can
attribute it to a static branch or to a program context.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.predictors.history import GlobalHistory
from repro.predictors.tage import Tage, TageConfig, TageResult

# A pattern's identity: (table, index, tag, pc).
PatternKey = Tuple[int, int, int, int]


class InfiniteTage(Tage):
    """TAGE with per-PC-tagged, unbounded-associativity tables."""

    name = "tage-inf"

    def __init__(self, config: TageConfig, history: Optional[GlobalHistory] = None) -> None:
        # Reuse Tage's folded-history setup but replace array tables.
        super().__init__(config, history)
        del self.ctrs, self.tags, self.useful, self._valid
        n = config.num_tables
        # table -> {(idx, tag, pc): [ctr, useful]}
        self.entries: List[Dict[Tuple[int, int, int], List[int]]] = [
            dict() for _ in range(n)
        ]
        # Rebuild the match rows over the dict tables (the inherited rows
        # reference the deleted array tables).
        self._match_rows = [(t, t + 1, e) for t, e in enumerate(self.entries)]
        self.trace_useful = False
        self.useful_patterns: Dict[int, Set[PatternKey]] = {}
        self.useful_callback: Optional[Callable[[int, PatternKey], None]] = None

    # -- prediction ----------------------------------------------------------

    def lookup(self, pc: int) -> TageResult:
        idx_mask = self._idx_mask
        tag_mask = self._tag_mask
        pcx = pc >> 2
        path = self.history.path
        path_mix = pcx ^ (path ^ (path >> self.config.index_bits))

        indices: List[int] = []
        tags: List[int] = []
        append_index = indices.append
        append_tag = tags.append
        provider = -1
        alt = -1
        fv = iter(self.folded.values)
        for (t, sh, entries_t), f0, f1, f2 in zip(self._match_rows,
                                                  fv, fv, fv):
            idx = ((pcx >> sh) ^ f0 ^ path_mix) & idx_mask
            tag = (pcx ^ f1 ^ (f2 << 1)) & tag_mask
            append_index(idx)
            append_tag(tag)
            if (idx, tag, pc) in entries_t:
                alt = provider
                provider = t

        res = TageResult.__new__(TageResult)
        res.indices = indices
        res.tags = tags
        res.bim_pred = bim_pred = self.bimodal.lookup(pc)
        res.provider = provider
        if provider >= 0:
            ctr = self.entries[provider][(indices[provider], tags[provider], pc)][0]
            res.provider_ctr = ctr
            res.provider_pred = provider_pred = ctr >= 0
            res.provider_weak = weak = ctr == 0 or ctr == -1
            res.alt_provider = alt
            if alt >= 0:
                alt_pred = self.entries[alt][(indices[alt], tags[alt], pc)][0] >= 0
            else:
                alt_pred = bim_pred
            res.alt_pred = alt_pred
            if weak and self._use_alt >= self._use_alt_mid:
                res.used_alt = True
                res.pred = alt_pred
            else:
                res.used_alt = False
                res.pred = provider_pred
        else:
            res.provider_ctr = 0
            res.provider_pred = False
            res.provider_weak = False
            res.alt_provider = -1
            res.used_alt = False
            res.alt_pred = bim_pred
            res.pred = bim_pred
        return res

    # -- training ------------------------------------------------------------

    def update(self, pc: int, taken: bool, res: TageResult,
               suppress_provider: bool = False,
               suppress_alloc: bool = False) -> None:
        provider = res.provider
        mispredicted = res.pred != taken

        if provider >= 0:
            key = (res.indices[provider], res.tags[provider], pc)
            entry = self.entries[provider][key]
            if res.provider_pred != res.alt_pred:
                if res.provider_pred == taken:
                    entry[1] = 1
                    self._record_useful(pc, provider, key)
                elif entry[1] > 0:
                    entry[1] = 0
                if res.provider_weak:
                    if res.alt_pred == taken and self._use_alt < self._use_alt_max:
                        self._use_alt += 1
                    elif res.provider_pred == taken and self._use_alt > 0:
                        self._use_alt -= 1
            if not suppress_provider:
                ctr = entry[0]
                if taken:
                    if ctr < self._ctr_hi:
                        entry[0] = ctr + 1
                elif ctr > self._ctr_lo:
                    entry[0] = ctr - 1
                if res.provider_weak and res.alt_provider < 0:
                    self.bimodal.update(pc, taken)
        elif not suppress_provider:
            self.bimodal.update(pc, taken)

        if mispredicted and not suppress_alloc:
            self.allocate(pc, taken, res)

    def allocate(self, pc: int, taken: bool, res: TageResult) -> None:
        """Allocate longer-history patterns; never fails (infinite space)."""
        provider = res.provider
        n = self.config.num_tables
        if provider >= n - 1:
            return
        start = provider + 1
        if start < n - 1 and self._rng.chance(1, 2):
            start += 1
        allocated = 0
        t = start
        while t < n and allocated < self.config.max_allocations:
            key = (res.indices[t], res.tags[t], pc)
            if key not in self.entries[t]:
                self.entries[t][key] = [0 if taken else -1, 0]
                allocated += 1
                t += 2
            else:
                t += 1

    # -- instrumentation ----------------------------------------------------------

    def _record_useful(self, pc: int, table: int, key: Tuple[int, int, int]) -> None:
        if not self.trace_useful:
            return
        pattern: PatternKey = (table, key[0], key[1], pc)
        self.useful_patterns.setdefault(pc, set()).add(pattern)
        if self.useful_callback is not None:
            self.useful_callback(pc, pattern)

    def useful_pattern_counts(self) -> Dict[int, int]:
        """Unique useful patterns observed per static branch PC."""
        return {pc: len(keys) for pc, keys in self.useful_patterns.items()}

    def num_patterns(self) -> int:
        """Total live patterns across all tables."""
        return sum(len(t) for t in self.entries)

    def storage_bits(self) -> int:
        entry_bits = self.config.counter_bits + self.config.tag_bits + 1
        return self.bimodal.storage_bits() + self.num_patterns() * entry_bits
