"""TAGE-SC-L: the paper's baseline predictor (64K TSL) and its scaled kin.

Composition order (following Seznec's TAGE-SC-L and §V-B's description of
where LLBP hooks in):

1. TAGE produces a base prediction.
2. An external provider (LLBP) may *override* the TAGE prediction when it
   matched a pattern with an equal-or-longer history (`base_override`).
3. The statistical corrector may flip the (possibly overridden) base
   prediction when statistically confident.
4. The loop predictor overrides everything when confident and trusted.

The lookup/finalize/train split lets the LLBP composite interpose at
step 2 without duplicating the SC/loop logic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.predictors.base import BranchPredictor
from repro.predictors.history import GlobalHistory
from repro.predictors.loop import LoopPredictor, LoopResult
from repro.predictors.statistical import ScResult, StatisticalCorrector
from repro.predictors.tage import Tage, TageConfig, TageResult


@dataclass(frozen=True)
class TslConfig:
    """Configuration of the composed TAGE-SC-L."""

    tage: TageConfig
    sc_index_bits: int = 10
    sc_history_lengths: Tuple[int, ...] = (3, 6, 11, 18, 27)
    loop_index_bits: int = 4
    loop_ways: int = 4
    use_sc: bool = True
    use_loop: bool = True
    name: str = "tsl"


class TslResult:
    """Combined metadata from one TAGE-SC-L lookup (``__slots__``)."""

    __slots__ = ("tage", "loop", "sc", "base_pred", "base_overridden", "pred")

    def __init__(self, tage: TageResult, loop: Optional[LoopResult],
                 sc: Optional[ScResult], base_pred: bool,
                 base_overridden: bool, pred: bool) -> None:
        self.tage = tage
        self.loop = loop
        self.sc = sc
        self.base_pred = base_pred            # TAGE pred, possibly overridden by LLBP
        self.base_overridden = base_overridden  # an external provider overrode TAGE
        self.pred = pred                      # final prediction


class TageScL(BranchPredictor):
    """The composed TAGE-SC-L predictor."""

    name = "tage-sc-l"

    def __init__(self, config: TslConfig, history: Optional[GlobalHistory] = None,
                 tage: Optional[Tage] = None) -> None:
        super().__init__()
        self.config = config
        self.tage = tage if tage is not None else Tage(config.tage, history)
        self.history = self.tage.history
        self.sc = (
            StatisticalCorrector(config.sc_history_lengths, config.sc_index_bits)
            if config.use_sc else None
        )
        self.loop = (
            LoopPredictor(config.loop_index_bits, config.loop_ways)
            if config.use_loop else None
        )

    # -- prediction ------------------------------------------------------------

    def lookup(self, pc: int, base_override: Optional[Tuple[bool, int]] = None,
               tage_res: Optional[TageResult] = None) -> TslResult:
        """Full lookup.

        ``base_override``: optional ``(direction, provider_ctr)`` from an
        external longest-history provider (LLBP); when given, it replaces
        TAGE's base prediction before SC/loop post-processing.
        ``tage_res``: a TAGE lookup already performed for this branch (the
        LLBP composite computes it first to compare history lengths).
        """
        if tage_res is None:
            tage_res = self.tage.lookup(pc)
        if base_override is not None:
            base_pred, provider_ctr = base_override
            base_overridden = True
            provider_valid = True
        else:
            base_pred = tage_res.pred
            provider_ctr = tage_res.provider_ctr
            base_overridden = False
            provider_valid = tage_res.provider >= 0

        pred = base_pred
        sc_res = None
        if self.sc is not None:
            sc_res = self.sc.lookup(pc, base_pred, provider_ctr, provider_valid)
            if sc_res.use:
                pred = sc_res.pred

        loop_res = None
        if self.loop is not None:
            loop_res = self.loop.lookup(pc)
            if loop_res.valid and self.loop.use_loop:
                pred = loop_res.pred

        return TslResult(tage_res, loop_res, sc_res, base_pred,
                         base_overridden, pred)

    def predict(self, pc: int) -> TslResult:
        self.stats.lookups += 1
        return self.lookup(pc)

    # -- training ----------------------------------------------------------------

    def train(self, pc: int, taken: bool, meta: TslResult,
              suppress_tage_provider: bool = False,
              suppress_tage_alloc: bool = False) -> None:
        """Train all components on the resolved outcome.

        The suppress flags implement §V-D's provider-based training when
        LLBP is the providing component.
        """
        if meta.pred != taken:
            self.stats.mispredictions += 1

        if self.loop is not None and meta.loop is not None:
            if meta.loop.valid:
                self.loop.train_withloop(meta.loop.pred, meta.base_pred, taken)
            self.loop.update(pc, taken, meta.loop,
                             tage_mispredicted=meta.base_pred != taken)

        if self.sc is not None and meta.sc is not None:
            self.sc.train(pc, taken, meta.sc)
            self.sc.push_outcome(taken)

        self.tage.update(
            pc, taken, meta.tage,
            suppress_provider=suppress_tage_provider,
            suppress_alloc=suppress_tage_alloc,
        )

    # -- history --------------------------------------------------------------------

    def update_history(self, pc: int, branch_type: int, taken: bool,
                       target: int) -> None:
        self.history.push_branch(pc, branch_type == 0, taken)

    def storage_bits(self) -> int:
        bits = self.tage.storage_bits()
        if self.sc is not None:
            bits += self.sc.storage_bits()
        if self.loop is not None:
            bits += self.loop.storage_bits()
        return bits

    def state_arrays(self) -> dict:
        """Snapshot of all mutable component state as numpy arrays.

        TAGE keys are prefixed ``tage/``, corrector keys ``sc/`` and
        loop-predictor keys ``loop/``; used by the engine-equivalence
        tests to assert the Python and array engines leave identical
        predictor state behind.
        """
        import numpy as np

        arrays = {f"tage/{key}": value
                  for key, value in self.tage.state_arrays().items()}
        if self.sc is not None:
            sc = self.sc
            arrays["sc/bias"] = np.array(sc.bias_table, dtype=np.int16)
            arrays["sc/tables"] = np.array(sc.tables, dtype=np.int16)
            arrays["sc/history"] = np.array(sc.history, dtype=np.uint64)
            arrays["sc/threshold"] = np.array(
                [sc.threshold, sc._tc], dtype=np.int64)
        if self.loop is not None:
            loop = self.loop
            arrays["loop/entries"] = np.array(
                [[e.tag, e.past_iter, e.current_iter, e.confidence,
                  e.age, int(e.direction)]
                 for ways in loop.table for e in ways], dtype=np.int64)
            arrays["loop/withloop"] = np.array(loop.withloop, dtype=np.int64)
            arrays["loop/rng"] = np.array(loop._rng.state, dtype=np.uint64)
        return arrays
