"""Global-history state shared by TAGE-style predictors.

A :class:`GlobalHistory` owns the direction-history buffer and the path
history; :class:`HistorySet` attaches folded registers (index fold plus
two tag folds per configured component, following Seznec's TAGE) to a
``GlobalHistory`` so several consumers (the TAGE tables and LLBP's pattern
tags) can fold the *same* history stream at different widths.

History policy (matching common TAGE implementations): every branch
inserts one bit — the outcome for conditional branches, a PC-derived bit
for unconditional ones — and two PC bits into the 32-bit path history.

The fold update is the hottest non-engine code in the simulator: every
retired branch updates three folds per component across every attached
consumer (a 64K TSL alone carries 21 folds).  ``HistorySet`` therefore
keeps the fold state in flat parallel lists of ints and applies the
incremental XOR-fold inline — semantically identical to chaining
:class:`repro.common.bitops.FoldedHistory` registers (the tests
cross-check against that reference) but without 3 method calls and ~12
attribute loads per component per branch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.common.bitops import HistoryBuffer

PATH_BITS = 16
_PATH_MASK = (1 << PATH_BITS) - 1


@dataclass(frozen=True)
class HistorySpec:
    """Folding geometry of one history consumer (one TAGE table)."""

    length: int
    index_bits: int
    tag_bits: int

    def __post_init__(self) -> None:
        if self.length < 1:
            raise ValueError("history length must be >= 1")
        if self.index_bits < 1 or self.tag_bits < 1:
            raise ValueError("fold widths must be >= 1")


class GlobalHistory:
    """The raw speculative history state: direction bits + path history."""

    __slots__ = ("buffer", "path", "_consumers")

    def __init__(self, capacity: int = 4096) -> None:
        self.buffer = HistoryBuffer(capacity)
        self.path = 0
        self._consumers: List["HistorySet"] = []

    def attach(self, consumer: "HistorySet") -> None:
        self._consumers.append(consumer)

    def push_branch(self, pc: int, is_conditional: bool, taken: bool) -> None:
        """Insert the history bit for a retired branch of any type."""
        if is_conditional:
            bit = 1 if taken else 0
        else:
            # Unconditional branches inject an address bit so different
            # control-flow paths through the same region diverge.
            bit = (pc >> 2) & 1
        buffer = self.buffer
        bits = buffer._bits
        head = buffer._head
        for consumer in self._consumers:
            consumer._push(bits, head, bit)
        # Inline of buffer.push(bit) — one call per retired branch adds up
        # (bit is already 0/1 here, so the & 1 is dropped too).
        bits[head] = bit
        buffer._head = (head + 1) % buffer._capacity
        buffer._count += 1
        self.path = ((self.path << 1) | ((pc >> 2) & 1)) & _PATH_MASK


class HistorySet:
    """Folded registers for a list of :class:`HistorySpec` components.

    For each component the set maintains three folds: one at
    ``index_bits`` (table index), one at ``tag_bits`` and one at
    ``tag_bits - 1`` (the classic double-fold that decorrelates tags from
    indices).  ``index_fold``, ``tag_fold`` and ``tag_fold2`` expose the
    current values as plain ints for hot-loop use; ``values`` is the flat
    backing list ``[idx0, tag0, tag2_0, idx1, tag1, tag2_1, ...]`` which
    hot loops (TAGE/LLBP lookup) may read directly but must never mutate
    or rebind.
    """

    __slots__ = ("specs", "values", "_params", "_stride", "_push")

    def __init__(self, history: GlobalHistory, specs: Sequence[HistorySpec],
                 tag_only: bool = False,
                 fold_widths: Optional[Sequence[int]] = None) -> None:
        self.specs = list(specs)
        capacity = history.buffer.capacity
        self._stride = len(fold_widths) if fold_widths else (2 if tag_only else 3)
        self.values: List[int] = []
        # One parameter tuple per component:
        # (age, out0, w0, m0, out1, w1, m1[, out2, w2, m2]) where out is
        # pre-shifted to ``1 << (length % width)`` — a single
        # sequence-unpack in _push replaces nine list-index loads.
        # ``tag_only`` drops the index fold: when index_bits == tag_bits
        # the two folds are always equal (LLBP's pattern-tag sets), so
        # maintaining both wastes a third of the fold work.  An explicit
        # ``fold_widths`` overrides both layouts — used when some folds a
        # component needs are already maintained by another set over the
        # same history (LLBP borrowing TAGE's tag folds).
        self._params: List[Tuple[int, ...]] = []
        for spec in self.specs:
            if spec.length > capacity:
                raise ValueError(
                    f"history length {spec.length} exceeds the buffer "
                    f"capacity {capacity}")
            if fold_widths:
                widths: Tuple[int, ...] = tuple(fold_widths)
            elif tag_only:
                widths = (spec.tag_bits, max(1, spec.tag_bits - 1))
            else:
                widths = (spec.index_bits, spec.tag_bits,
                          max(1, spec.tag_bits - 1))
            params: List[int] = [spec.length - 1]
            for width in widths:
                self.values.append(0)
                params.extend((1 << (spec.length % width), width,
                               (1 << width) - 1))
            self._params.append(tuple(params))
        self._push = _compile_push(self._params, self.values)
        history.attach(self)

    def __len__(self) -> int:
        return len(self.specs)

    def index_fold(self, i: int) -> int:
        # A tag-only set's index fold equals its tag fold by construction.
        return self.values[self._stride * i]

    def tag_fold(self, i: int) -> int:
        return self.values[self._stride * i + (1 if self._stride == 3 else 0)]

    def tag_fold2(self, i: int) -> int:
        # Last fold of the component; with a single fold it coincides
        # with the tag fold.
        return self.values[self._stride * i + self._stride - 1]

    def folds(self, i: int) -> Tuple[int, int, int]:
        j = self._stride * i
        values = self.values
        if self._stride == 3:
            return values[j], values[j + 1], values[j + 2]
        if self._stride == 2:
            return values[j], values[j], values[j + 1]
        return values[j], values[j], values[j]

    def reset(self) -> None:
        values = self.values
        for j in range(len(values)):
            values[j] = 0


def _compile_push(params: Sequence[Tuple[int, ...]],
                  values: List[int],
                  value_indices: Optional[Sequence[Sequence[int]]] = None,
                  copies: Optional[Sequence[Tuple[int, str, int]]] = None,
                  sources: Optional[dict] = None) -> "Callable":
    """Compile a specialised fold-update function for one fold set.

    The returned function is what :meth:`GlobalHistory.push_branch` calls
    per retired branch: it folds the incoming bit into every register,
    reading ``bits``/``head`` (the history buffer's backing list and write
    position *before* the push) so ``bits[head-1-age]`` is the bit leaving
    each window — Python's negative-index wraparound provides the circular
    addressing (ages are bounded by the capacity check in ``__init__``).

    This is by far the hottest code in the simulator (three folds per TAGE
    table per retired branch), so the incremental XOR-fold is *generated*:
    the loop over components is unrolled and every width, mask, out-shift
    and value index is baked in as a constant, then specialised four ways —
    the incoming bit selects a branch and each component's outgoing bit
    selects a body, so both single-bit terms collapse into constants.
    Semantically identical to chaining ``FoldedHistory.update`` calls (the
    tests cross-check against that reference).

    ``value_indices`` (one row of ``values`` slots per component, parallel
    to each component's fold triples) decouples slot assignment from
    sequential order, and ``copies`` appends ``values[dst] = name[src]``
    assignments executed after the computed folds, with ``sources``
    binding each name to its backing list.  Together they let the batched
    engine (:mod:`repro.sim.multi`) compile *partial* fold sets: a fold
    register is a pure function of (history length, fold width, bit
    stream), so any register another set already maintains over the same
    stream can be copied instead of recomputed.
    """
    if value_indices is None:
        value_indices = []
        j = 0
        for tup in params:
            nf = (len(tup) - 1) // 3
            value_indices.append(list(range(j, j + nf)))
            j += nf

    def emit(out: List[str], indent: str, new_bit: int) -> None:
        for ci, tup in enumerate(params):
            age, folds = tup[0], tup[1:]
            orr = " | 1" if new_bit else ""
            out.append(f"{indent}if bits[base - {age}]:")
            for body_old in (True, False):
                if not body_old:
                    out.append(f"{indent}else:")
                for k in range(0, len(folds), 3):
                    p, w, m = folds[k], folds[k + 1], folds[k + 2]
                    jj = value_indices[ci][k // 3]
                    xor = f" ^ {p}" if body_old else ""
                    out.append(f"{indent}    v = (values[{jj}] << 1{orr}){xor}")
                    out.append(f"{indent}    v ^= v >> {w}")
                    out.append(f"{indent}    values[{jj}] = v & {m}")

    defaults = ", ".join(["values=values"]
                         + [f"{name}={name}" for name in (sources or {})])
    lines = [f"def _push(bits, head, new_bit, {defaults}):"]
    if params:
        lines.append("    base = head - 1")
        lines.append("    if new_bit:")
        emit(lines, "        ", 1)
        lines.append("    else:")
        emit(lines, "        ", 0)
    elif not copies:
        lines.append("    pass")
    # Coalesce copy rows into slice assignments where destination and
    # source slots advance in lockstep (the common whole-set-duplicate
    # case collapses to a single ``values[:] = other``-style copy).
    pending = list(copies or ())
    while pending:
        dst, name, src = pending[0]
        run = 1
        while (run < len(pending)
               and pending[run][1] == name
               and pending[run][0] == dst + run
               and pending[run][2] == src + run):
            run += 1
        if run > 2:
            lines.append(
                f"    values[{dst}:{dst + run}] = {name}[{src}:{src + run}]")
        else:
            for d, n, s in pending[:run]:
                lines.append(f"    values[{d}] = {n}[{s}]")
        pending = pending[run:]
    namespace = {"values": values}
    namespace.update(sources or {})
    exec(compile("\n".join(lines), "<fold-push>", "exec"), namespace)
    return namespace["_push"]



def geometric_lengths(minimum: int, maximum: int, count: int) -> List[int]:
    """Geometrically spaced history lengths, deduplicated and increasing."""
    if count < 2:
        raise ValueError("need at least two lengths")
    if minimum < 1 or maximum <= minimum:
        raise ValueError("invalid length range")
    ratio = (maximum / minimum) ** (1.0 / (count - 1))
    lengths: List[int] = []
    value = float(minimum)
    for _ in range(count):
        candidate = int(round(value))
        if lengths and candidate <= lengths[-1]:
            candidate = lengths[-1] + 1
        lengths.append(candidate)
        value *= ratio
    return lengths
