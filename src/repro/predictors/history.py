"""Global-history state shared by TAGE-style predictors.

A :class:`GlobalHistory` owns the direction-history buffer and the path
history; :class:`HistorySet` attaches folded registers (index fold plus
two tag folds per configured component, following Seznec's TAGE) to a
``GlobalHistory`` so several consumers (the TAGE tables and LLBP's pattern
tags) can fold the *same* history stream at different widths.

History policy (matching common TAGE implementations): every branch
inserts one bit — the outcome for conditional branches, a PC-derived bit
for unconditional ones — and two PC bits into the 32-bit path history.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.common.bitops import FoldedHistory, HistoryBuffer

PATH_BITS = 16


@dataclass(frozen=True)
class HistorySpec:
    """Folding geometry of one history consumer (one TAGE table)."""

    length: int
    index_bits: int
    tag_bits: int

    def __post_init__(self) -> None:
        if self.length < 1:
            raise ValueError("history length must be >= 1")
        if self.index_bits < 1 or self.tag_bits < 1:
            raise ValueError("fold widths must be >= 1")


class GlobalHistory:
    """The raw speculative history state: direction bits + path history."""

    __slots__ = ("buffer", "path", "_consumers")

    def __init__(self, capacity: int = 4096) -> None:
        self.buffer = HistoryBuffer(capacity)
        self.path = 0
        self._consumers: List["HistorySet"] = []

    def attach(self, consumer: "HistorySet") -> None:
        self._consumers.append(consumer)

    def push_branch(self, pc: int, is_conditional: bool, taken: bool) -> None:
        """Insert the history bit for a retired branch of any type."""
        if is_conditional:
            bit = 1 if taken else 0
        else:
            # Unconditional branches inject an address bit so different
            # control-flow paths through the same region diverge.
            bit = (pc >> 2) & 1
        buffer = self.buffer
        for consumer in self._consumers:
            consumer._pre_push(buffer)
        buffer.push(bit)
        for consumer in self._consumers:
            consumer._post_push(bit)
        self.path = ((self.path << 1) | ((pc >> 2) & 1)) & ((1 << PATH_BITS) - 1)


class HistorySet:
    """Folded registers for a list of :class:`HistorySpec` components.

    For each component the set maintains three folds: one at
    ``index_bits`` (table index), one at ``tag_bits`` and one at
    ``tag_bits - 1`` (the classic double-fold that decorrelates tags from
    indices).  ``index_fold``, ``tag_fold`` and ``tag_fold2`` expose the
    current values as plain ints for hot-loop use.
    """

    def __init__(self, history: GlobalHistory, specs: Sequence[HistorySpec]) -> None:
        self.specs = list(specs)
        self._folds: List[Tuple[FoldedHistory, FoldedHistory, FoldedHistory]] = []
        self._old_ages: List[int] = []
        for spec in self.specs:
            idx = FoldedHistory(spec.length, spec.index_bits)
            tag1 = FoldedHistory(spec.length, spec.tag_bits)
            tag2 = FoldedHistory(spec.length, max(1, spec.tag_bits - 1))
            self._folds.append((idx, tag1, tag2))
            self._old_ages.append(spec.length - 1)
        self._pending_old: List[int] = [0] * len(self.specs)
        history.attach(self)

    def __len__(self) -> int:
        return len(self.specs)

    def _pre_push(self, buffer: HistoryBuffer) -> None:
        bit = buffer.bit
        old = self._pending_old
        for i, age in enumerate(self._old_ages):
            old[i] = bit(age)

    def _post_push(self, new_bit: int) -> None:
        old = self._pending_old
        for i, folds in enumerate(self._folds):
            old_bit = old[i]
            folds[0].update(new_bit, old_bit)
            folds[1].update(new_bit, old_bit)
            folds[2].update(new_bit, old_bit)

    def index_fold(self, i: int) -> int:
        return self._folds[i][0].value

    def tag_fold(self, i: int) -> int:
        return self._folds[i][1].value

    def tag_fold2(self, i: int) -> int:
        return self._folds[i][2].value

    def folds(self, i: int) -> Tuple[int, int, int]:
        f = self._folds[i]
        return f[0].value, f[1].value, f[2].value

    def reset(self) -> None:
        for idx, tag1, tag2 in self._folds:
            idx.reset()
            tag1.reset()
            tag2.reset()


def geometric_lengths(minimum: int, maximum: int, count: int) -> List[int]:
    """Geometrically spaced history lengths, deduplicated and increasing."""
    if count < 2:
        raise ValueError("need at least two lengths")
    if minimum < 1 or maximum <= minimum:
        raise ValueError("invalid length range")
    ratio = (maximum / minimum) ** (1.0 / (count - 1))
    lengths: List[int] = []
    value = float(minimum)
    for _ in range(count):
        candidate = int(round(value))
        if lengths and candidate <= lengths[-1]:
            candidate = lengths[-1] + 1
        lengths.append(candidate)
        value *= ratio
    return lengths
