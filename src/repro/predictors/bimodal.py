"""Bimodal predictor: TAGE's untagged fallback table (§II-B)."""

from __future__ import annotations

from repro.predictors.base import BranchPredictor


class Bimodal(BranchPredictor):
    """PC-indexed table of 2-bit saturating counters.

    Values live in [-2, 1]; ``>= 0`` predicts taken.  This is both a
    standalone baseline and the BIM fallback inside :class:`~repro.predictors.tage.Tage`.
    """

    name = "bimodal"

    def __init__(self, index_bits: int = 13) -> None:
        super().__init__()
        if index_bits < 1:
            raise ValueError("index_bits must be >= 1")
        self.index_bits = index_bits
        self._mask = (1 << index_bits) - 1
        self.table = [0] * (1 << index_bits)

    def _index(self, pc: int) -> int:
        return (pc >> 2) & self._mask

    def lookup(self, pc: int) -> bool:
        return self.table[self._index(pc)] >= 0

    def predict(self, pc: int) -> bool:
        self.stats.lookups += 1
        return self.lookup(pc)

    def train(self, pc: int, taken: bool, meta: bool) -> None:
        if bool(meta) != taken:
            self.stats.mispredictions += 1
        self.update(pc, taken)

    def update(self, pc: int, taken: bool) -> None:
        i = self._index(pc)
        v = self.table[i]
        if taken:
            if v < 1:
                self.table[i] = v + 1
        elif v > -2:
            self.table[i] = v - 1

    def storage_bits(self) -> int:
        return 2 * (1 << self.index_bits)
