"""Loop predictor: TAGE-SC-L's loop-exit component (§II-B).

Tracks loops with regular trip counts in a small set-associative table and
predicts the exit iteration once confident.  A global WITHLOOP counter
learns whether trusting the loop predictor over TAGE pays off.
"""

from __future__ import annotations

from typing import Optional

from repro.common.rng import XorShift32
from repro.predictors.base import BranchPredictor


class _LoopEntry:
    __slots__ = ("tag", "past_iter", "current_iter", "confidence", "age",
                 "direction")

    CONF_MAX = 3
    AGE_MAX = 255

    def __init__(self) -> None:
        self.tag = 0
        self.past_iter = 0
        self.current_iter = 0
        self.confidence = 0
        self.age = 0
        self.direction = True  # direction while the loop is iterating


class LoopResult:
    """Outcome of a loop-predictor lookup (``__slots__``: one per branch)."""

    __slots__ = ("valid", "pred", "hit", "way", "set_index")

    def __init__(self, valid: bool = False, pred: bool = False,
                 hit: bool = False, way: int = -1, set_index: int = 0) -> None:
        self.valid = valid            # confident prediction available
        self.pred = pred
        self.hit = hit
        self.way = way
        self.set_index = set_index


class LoopPredictor(BranchPredictor):
    """Set-associative loop table with confidence and age-based replacement."""

    name = "loop"

    def __init__(self, index_bits: int = 4, ways: int = 4,
                 tag_bits: int = 14, seed: int = 0x10057) -> None:
        super().__init__()
        self.index_bits = index_bits
        self.ways = ways
        self.tag_bits = tag_bits
        self._sets = 1 << index_bits
        self._set_mask = self._sets - 1
        self._tag_shift = 2 + index_bits
        self._tag_mask = (1 << tag_bits) - 1
        self.table = [[_LoopEntry() for _ in range(ways)] for _ in range(self._sets)]
        self._rng = XorShift32(seed)
        # WITHLOOP: signed confidence that loop predictions beat TAGE.
        self.withloop = -1
        self._withloop_lo, self._withloop_hi = -64, 63

    def _set_index(self, pc: int) -> int:
        return (pc >> 2) & (self._sets - 1)

    def _tag(self, pc: int) -> int:
        return (pc >> (2 + self.index_bits)) & self._tag_mask

    def lookup(self, pc: int) -> LoopResult:
        set_index = (pc >> 2) & self._set_mask
        res = LoopResult.__new__(LoopResult)
        res.valid = False
        res.pred = False
        res.hit = False
        res.way = -1
        res.set_index = set_index
        tag = (pc >> self._tag_shift) & self._tag_mask
        for way, entry in enumerate(self.table[set_index]):
            if entry.age > 0 and entry.tag == tag:
                res.hit = True
                res.way = way
                if entry.confidence == _LoopEntry.CONF_MAX and entry.past_iter > 0:
                    res.valid = True
                    exiting = entry.current_iter + 1 >= entry.past_iter
                    res.pred = (not entry.direction) if exiting else entry.direction
                break
        return res

    def predict(self, pc: int) -> LoopResult:
        self.stats.lookups += 1
        return self.lookup(pc)

    def train(self, pc: int, taken: bool, meta: LoopResult) -> None:
        if meta.valid and meta.pred != taken:
            self.stats.mispredictions += 1
        self.update(pc, taken, meta, tage_mispredicted=False)

    @property
    def use_loop(self) -> bool:
        """Whether confident loop predictions should override TAGE."""
        return self.withloop >= 0

    def train_withloop(self, loop_pred: bool, tage_pred: bool, taken: bool) -> None:
        if loop_pred == tage_pred:
            return
        if loop_pred == taken:
            if self.withloop < self._withloop_hi:
                self.withloop += 1
        elif self.withloop > self._withloop_lo:
            self.withloop -= 1

    def update(self, pc: int, taken: bool, res: LoopResult,
               tage_mispredicted: bool) -> None:
        """Train the hitting entry; maybe allocate after a TAGE mispredict."""
        if res.hit:
            entry = self.table[res.set_index][res.way]
            if res.valid:
                # Age confident entries that mispredict out of the table.
                if res.pred != taken:
                    entry.age = 0
                    entry.confidence = 0
                    entry.current_iter = 0
                    return
                if entry.age < _LoopEntry.AGE_MAX:
                    entry.age += 1

            if taken == entry.direction:
                entry.current_iter += 1
                if entry.past_iter and entry.current_iter > entry.past_iter:
                    # Loop ran longer than learned: trip count is irregular.
                    entry.confidence = 0
                    entry.past_iter = 0
                    entry.current_iter = 0
            else:
                # Exit observed: check against the learned trip count.
                observed = entry.current_iter + 1
                if entry.past_iter == 0:
                    entry.past_iter = observed
                elif entry.past_iter == observed:
                    if entry.confidence < _LoopEntry.CONF_MAX:
                        entry.confidence += 1
                else:
                    entry.past_iter = observed
                    entry.confidence = 0
                entry.current_iter = 0
        elif tage_mispredicted and not taken and self._rng.chance(1, 4):
            # Allocate on mispredicted not-taken outcomes (likely loop
            # exits); pick the oldest way.
            self._allocate(pc)

    def _allocate(self, pc: int) -> None:
        set_index = self._set_index(pc)
        ways = self.table[set_index]
        victim: Optional[_LoopEntry] = None
        for entry in ways:
            if victim is None or entry.age < victim.age:
                victim = entry
        assert victim is not None
        if victim.age > 0 and not self._rng.chance(1, 2):
            victim.age -= 1  # age out instead of replacing a live entry
            return
        victim.tag = self._tag(pc)
        victim.past_iter = 0
        victim.current_iter = 0
        victim.confidence = 0
        victim.age = 64
        victim.direction = True

    def storage_bits(self) -> int:
        # tag + past + current (14b each) + conf (2) + age (8) + dir (1)
        entry_bits = self.tag_bits + 14 + 14 + 2 + 8 + 1
        return self._sets * self.ways * entry_bits
