"""Common predictor interface and statistics.

The simulation engine drives predictors through three calls per branch:

1. ``predict(pc)`` for conditional branches — returns a metadata object
   whose truthiness-independent ``pred`` field is the predicted direction
   (metadata carries whatever the predictor needs to train later);
2. ``train(pc, taken, meta)`` — resolve the conditional branch;
3. ``update_history(pc, branch_type, taken, target)`` — called for *every*
   branch (conditional and unconditional) so global history, path history
   and — for LLBP — the rolling context register stay in sync.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict


@dataclass
class PredictorStats:
    """Counters every predictor keeps; the engine aggregates them."""

    lookups: int = 0
    mispredictions: int = 0
    extra: Dict[str, int] = field(default_factory=dict)

    def bump(self, key: str, amount: int = 1) -> None:
        self.extra[key] = self.extra.get(key, 0) + amount


class BranchPredictor:
    """Abstract predictor; see module docstring for the driving protocol."""

    name = "abstract"

    def __init__(self) -> None:
        self.stats = PredictorStats()

    def predict(self, pc: int) -> Any:
        """Predict the direction of the conditional branch at ``pc``.

        Returns an opaque metadata object with at least a boolean ``pred``
        attribute (or is itself a bool for trivial predictors).
        """
        raise NotImplementedError

    def train(self, pc: int, taken: bool, meta: Any) -> None:
        """Train on the resolved outcome of a prior ``predict`` call."""
        raise NotImplementedError

    def update_history(self, pc: int, branch_type: int, taken: bool,
                       target: int) -> None:
        """Observe a retired branch of any type (history maintenance)."""

    def storage_bits(self) -> int:
        """Approximate state budget in bits (for Table III-style reporting)."""
        return 0

    @staticmethod
    def pred_of(meta: Any) -> bool:
        """Extract the predicted direction from a ``predict`` result."""
        if isinstance(meta, bool):
            return meta
        return bool(meta.pred)
