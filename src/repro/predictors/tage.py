"""TAGE: TAgged GEometric history length predictor (§II-B).

Implements the full TAGE algorithm the paper describes: an untagged
bimodal fallback plus N tagged tables indexed by hashes of PC and
geometrically longer global histories (via the shared folded-history
machinery), longest-match provider selection, use-alt-on-newly-allocated
arbitration, usefulness-guided replacement and tick-throttled allocation.

The implementation is split into ``lookup`` and ``update`` so composite
predictors (TAGE-SC-L, and LLBP which arbitrates against the provider's
history length) can interpose between prediction and training.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.common.rng import XorShift32
from repro.predictors.base import BranchPredictor
from repro.predictors.bimodal import Bimodal
from repro.predictors.history import GlobalHistory, HistorySet, HistorySpec


@dataclass(frozen=True)
class TageConfig:
    """Geometry and tuning of a TAGE instance."""

    history_lengths: Tuple[int, ...]
    index_bits: int = 10
    tag_bits: int = 12
    counter_bits: int = 3
    bimodal_index_bits: int = 13
    max_allocations: int = 2
    use_alt_bits: int = 4
    tick_threshold: int = 1024
    seed: int = 0xBADC0DE

    def __post_init__(self) -> None:
        if len(self.history_lengths) < 1:
            raise ValueError("need at least one tagged table")
        if list(self.history_lengths) != sorted(set(self.history_lengths)):
            raise ValueError("history lengths must be strictly increasing")
        if self.index_bits < 1 or self.tag_bits < 2:
            raise ValueError("invalid table geometry")

    @property
    def num_tables(self) -> int:
        return len(self.history_lengths)

    def specs(self) -> List[HistorySpec]:
        return [
            HistorySpec(length, self.index_bits, self.tag_bits)
            for length in self.history_lengths
        ]


class TageResult:
    """Everything ``lookup`` learned, consumed later by ``update``.

    A ``__slots__`` class rather than a dataclass: one is allocated per
    conditional branch, so construction and attribute-access speed matter.
    """

    __slots__ = ("pred", "provider", "provider_pred", "provider_ctr",
                 "provider_weak", "alt_pred", "alt_provider", "used_alt",
                 "bim_pred", "indices", "tags")

    def __init__(self, pred: bool = False, provider: int = -1,
                 provider_pred: bool = False, provider_ctr: int = 0,
                 provider_weak: bool = False, alt_pred: bool = False,
                 alt_provider: int = -1, used_alt: bool = False,
                 bim_pred: bool = False,
                 indices: Optional[List[int]] = None,
                 tags: Optional[List[int]] = None) -> None:
        self.pred = pred
        self.provider = provider             # table index; -1 = bimodal provided
        self.provider_pred = provider_pred
        self.provider_ctr = provider_ctr
        self.provider_weak = provider_weak
        self.alt_pred = alt_pred
        self.alt_provider = alt_provider     # table index of the alt match; -1 = bimodal
        self.used_alt = used_alt
        self.bim_pred = bim_pred
        self.indices = [] if indices is None else indices
        self.tags = [] if tags is None else tags

    @property
    def provider_length_rank(self) -> int:
        """Provider table number + 1 (0 when the bimodal provided).

        LLBP compares history lengths through this rank (§V-B: "a 6-bit
        adder is sufficient to compare the table index ... with the history
        length field").
        """
        return self.provider + 1


def _compile_match(num_tables: int, idx_mask: int, tag_mask: int,
                   values: List[int], tags: List[List[int]],
                   memo: Optional[List] = None,
                   seq: Optional[List[int]] = None):
    """Compile the unrolled per-instance table-match core of ``lookup``.

    Runs once per conditional branch, against every table, so the loop is
    generated with all geometry (pc shifts, masks) baked in as constants
    and the fold registers unpacked into locals in one go.  The fold-value
    list and the per-table tag lists are bound as default arguments; both
    are mutated in place by their owners (``HistorySet`` / ``allocate``)
    and never rebound, so the binding stays valid for the instance's life.
    Semantically identical to looping ``compute_index``/``compute_tag``
    with a sequential longest-match scan.

    With ``memo``/``seq`` the compiled core additionally publishes the
    per-lookup hashes as ``memo[:] = seq[0], pcx, indices, tags`` — the
    hook the batched engine (:mod:`repro.sim.multi`) uses to let
    identical-geometry followers skip hashing (see ``_compile_scan``).
    The stores are baked into the generated body, so a leader pays four
    list writes per lookup and no extra call indirection.
    """
    lines = []
    add = lines.append
    defaults = ", ".join(
        ["values=values"] + [f"T{t}=T{t}" for t in range(num_tables)]
        + (["memo=memo", "seq=seq"] if memo is not None else []))
    add(f"def _match(pcx, path_mix, {defaults}):")
    names = ", ".join(f"f{j}" for j in range(3 * num_tables))
    add(f"    {names} = values")
    add("    provider = -1")
    add("    alt = -1")
    for t in range(num_tables):
        j = 3 * t
        add(f"    i{t} = ((pcx >> {t + 1}) ^ f{j} ^ path_mix) & {idx_mask}")
        add(f"    g{t} = (pcx ^ f{j + 1} ^ (f{j + 2} << 1)) & {tag_mask}")
        add(f"    if T{t}[i{t}] == g{t}:")
        add("        alt = provider")
        add(f"        provider = {t}")
    idx_list = f"[{', '.join(f'i{t}' for t in range(num_tables))}]"
    tag_list = f"[{', '.join(f'g{t}' for t in range(num_tables))}]"
    if memo is None:
        add(f"    return {idx_list}, {tag_list}, provider, alt")
    else:
        add("    memo[0] = seq[0]")
        add("    memo[1] = pcx")
        add(f"    memo[2] = indices = {idx_list}")
        add(f"    memo[3] = tags_out = {tag_list}")
        add("    return indices, tags_out, provider, alt")
    namespace = {"values": values, "memo": memo, "seq": seq}
    for t in range(num_tables):
        namespace[f"T{t}"] = tags[t]
    exec(compile("\n".join(lines), "<tage-match>", "exec"), namespace)
    return namespace["_match"]


def _compile_scan(num_tables: int, tags: List[List[int]]):
    """Compile the longest-match scan alone, for precomputed hashes.

    The batched engine gives identical-geometry TAGE instances one shared
    hash computation per branch (their folded histories and path history
    follow bit-identical trajectories); what still differs per instance is
    which of its *own* tagged entries match.  The returned function scans
    this instance's tag tables against an already-computed
    ``indices``/``tags`` pair and returns ``(provider, alt)`` exactly as
    the tail of ``_match`` would.
    """
    lines = []
    add = lines.append
    defaults = ", ".join(f"T{t}=T{t}" for t in range(num_tables))
    comma = "," if num_tables == 1 else ""
    add(f"def _scan(indices, tags, {defaults}):")
    add("    " + ", ".join(f"i{t}" for t in range(num_tables))
        + comma + " = indices")
    add("    " + ", ".join(f"g{t}" for t in range(num_tables))
        + comma + " = tags")
    add("    provider = -1")
    add("    alt = -1")
    for t in range(num_tables):
        add(f"    if T{t}[i{t}] == g{t}:")
        add("        alt = provider")
        add(f"        provider = {t}")
    add("    return provider, alt")
    namespace = {}
    for t in range(num_tables):
        namespace[f"T{t}"] = tags[t]
    exec(compile("\n".join(lines), "<tage-scan>", "exec"), namespace)
    return namespace["_scan"]


class Tage(BranchPredictor):
    """Finite-capacity TAGE over a shared :class:`GlobalHistory`."""

    name = "tage"

    def __init__(self, config: TageConfig, history: Optional[GlobalHistory] = None) -> None:
        super().__init__()
        self.config = config
        self.history = history if history is not None else GlobalHistory()
        self.folded = HistorySet(self.history, config.specs())
        self.bimodal = Bimodal(config.bimodal_index_bits)
        n = config.num_tables
        size = 1 << config.index_bits
        self._size = size
        self._idx_mask = size - 1
        self._tag_mask = (1 << config.tag_bits) - 1
        ctr_hi = (1 << (config.counter_bits - 1)) - 1
        self._ctr_hi = ctr_hi
        self._ctr_lo = -(ctr_hi + 1)
        # Parallel per-table arrays: prediction counters, tags, useful bits.
        # Tags start at the -1 sentinel: computed tags are always >= 0, so
        # an unallocated entry can never match and the hot match loop
        # needs no separate valid check (``_valid`` is still maintained
        # for allocation bookkeeping and tests).
        self.ctrs: List[List[int]] = [[0] * size for _ in range(n)]
        self.tags: List[List[int]] = [[-1] * size for _ in range(n)]
        self.useful: List[List[int]] = [[0] * size for _ in range(n)]
        self._valid: List[List[bool]] = [[False] * size for _ in range(n)]
        # Generated, fully-unrolled table-match core (see _compile_match).
        # It captures the fold-value list and the per-table tag lists by
        # object identity; both are only ever mutated in place, so the
        # compiled function never goes stale.
        self._match = _compile_match(
            n, self._idx_mask, self._tag_mask, self.folded.values, self.tags)
        self._path_shift = config.index_bits
        self._rng = XorShift32(config.seed)
        self._use_alt_mid = 1 << (config.use_alt_bits - 1)
        self._use_alt = self._use_alt_mid  # start at the mid-point
        self._use_alt_max = (1 << config.use_alt_bits) - 1
        self._tick = 0

    # -- hashing -------------------------------------------------------------

    def compute_index(self, pc: int, table: int) -> int:
        pcx = pc >> 2
        fold = self.folded.index_fold(table)
        path = self.history.path
        h = pcx ^ (pcx >> (table + 1)) ^ fold ^ (path ^ (path >> self.config.index_bits))
        return h & self._idx_mask

    def compute_tag(self, pc: int, table: int) -> int:
        pcx = pc >> 2
        _, tag1, tag2 = self.folded.folds(table)
        return (pcx ^ tag1 ^ (tag2 << 1)) & self._tag_mask

    # -- prediction ----------------------------------------------------------

    def lookup(self, pc: int) -> TageResult:
        pcx = pc >> 2
        path = self.history.path
        indices, tags, provider, alt = self._match(
            pcx, pcx ^ (path ^ (path >> self._path_shift)))

        # Built via __new__ with every slot stored exactly once: one
        # TageResult per conditional branch makes default-then-overwrite
        # construction measurable.
        res = TageResult.__new__(TageResult)
        res.indices = indices
        res.tags = tags
        res.bim_pred = bim_pred = self.bimodal.lookup(pc)
        res.provider = provider
        if provider >= 0:
            ctr = self.ctrs[provider][indices[provider]]
            res.provider_ctr = ctr
            res.provider_pred = provider_pred = ctr >= 0
            res.provider_weak = weak = ctr == 0 or ctr == -1
            res.alt_provider = alt
            if alt >= 0:
                alt_pred = self.ctrs[alt][indices[alt]] >= 0
            else:
                alt_pred = bim_pred
            res.alt_pred = alt_pred
            # Newly-allocated entries are unreliable; a global counter
            # decides whether to trust the alternative instead.
            if weak and self._use_alt >= self._use_alt_mid:
                res.used_alt = True
                res.pred = alt_pred
            else:
                res.used_alt = False
                res.pred = provider_pred
        else:
            res.provider_ctr = 0
            res.provider_pred = False
            res.provider_weak = False
            res.alt_provider = -1
            res.used_alt = False
            res.alt_pred = bim_pred
            res.pred = bim_pred
        return res

    def predict(self, pc: int) -> TageResult:
        self.stats.lookups += 1
        return self.lookup(pc)

    # -- training ------------------------------------------------------------

    def train(self, pc: int, taken: bool, meta: TageResult) -> None:
        if meta.pred != taken:
            self.stats.mispredictions += 1
        self.update(pc, taken, meta)

    def update(self, pc: int, taken: bool, res: TageResult,
               suppress_provider: bool = False,
               suppress_alloc: bool = False) -> None:
        """Train TAGE on the resolved branch.

        ``suppress_provider`` cancels the provider-counter update (used
        when LLBP overrode and is the training provider, §V-D);
        ``suppress_alloc`` cancels new-entry allocation.
        """
        provider = res.provider
        mispredicted = res.pred != taken

        if provider >= 0:
            idx = res.indices[provider]
            if res.provider_pred != res.alt_pred:
                # Usefulness: provider disagreed with alt; reward if right.
                if res.provider_pred == taken:
                    self.useful[provider][idx] = 1
                else:
                    u = self.useful[provider][idx]
                    if u > 0:
                        self.useful[provider][idx] = u - 1
                # Track whether trusting alt on weak entries pays off.
                if res.provider_weak:
                    if res.alt_pred == taken and self._use_alt < self._use_alt_max:
                        self._use_alt += 1
                    elif res.provider_pred == taken and self._use_alt > 0:
                        self._use_alt -= 1
            if not suppress_provider:
                ctr = self.ctrs[provider][idx]
                if taken:
                    if ctr < self._ctr_hi:
                        self.ctrs[provider][idx] = ctr + 1
                elif ctr > self._ctr_lo:
                    self.ctrs[provider][idx] = ctr - 1
                # Weak providers also train the alt path so the fallback
                # stays warm (standard TAGE practice).
                if res.provider_weak and res.alt_provider < 0:
                    self.bimodal.update(pc, taken)
        else:
            if not suppress_provider:
                self.bimodal.update(pc, taken)

        if mispredicted and not suppress_alloc:
            self.allocate(pc, taken, res)

    def allocate(self, pc: int, taken: bool, res: TageResult) -> None:
        """Allocate new entries with longer history after a misprediction."""
        provider = res.provider
        n = self.config.num_tables
        if provider >= n - 1:
            return
        start = provider + 1
        # Randomised start (Seznec): avoids always burning the next table.
        if start < n - 1 and self._rng.chance(1, 2):
            start += 1

        allocated = 0
        failures = 0
        t = start
        while t < n and allocated < self.config.max_allocations:
            idx = res.indices[t]
            if self.useful[t][idx] == 0:
                self.tags[t][idx] = res.tags[t]
                self.ctrs[t][idx] = 0 if taken else -1
                self._valid[t][idx] = True
                allocated += 1
                t += 2  # spread allocations across history lengths
            else:
                failures += 1
                t += 1

        # Tick throttle: when allocation keeps failing, usefulness bits are
        # stale — clear them all so the predictor can adapt (u is 1 bit, so
        # "halving" == clearing).
        self._tick += failures - allocated
        if self._tick < 0:
            self._tick = 0
        elif self._tick >= self.config.tick_threshold:
            self._tick = 0
            for t in range(n):
                useful_t = self.useful[t]
                for i in range(self._size):
                    useful_t[i] = 0

    # -- bookkeeping -----------------------------------------------------------

    def update_history(self, pc: int, branch_type: int, taken: bool,
                       target: int) -> None:
        self.history.push_branch(pc, branch_type == 0, taken)

    def storage_bits(self) -> int:
        entry_bits = self.config.counter_bits + self.config.tag_bits + 1
        return (
            self.bimodal.storage_bits()
            + self.config.num_tables * self._size * entry_bits
        )

    def state_arrays(self) -> dict:
        """Snapshot of the mutable table state as numpy arrays.

        Covers everything training touches — tagged tables, bimodal,
        use-alt and tick counters, allocation RNG — so two engines that
        processed the same trace must produce equal dicts.  History folds
        are excluded: they are a pure function of the branch stream.
        """
        import numpy as np

        return {
            "ctrs": np.array(self.ctrs, dtype=np.int16),
            "tags": np.array(self.tags, dtype=np.int64),
            "useful": np.array(self.useful, dtype=np.int16),
            "bimodal": np.array(self.bimodal.table, dtype=np.int16),
            "use_alt": np.array(self._use_alt, dtype=np.int64),
            "tick": np.array(self._tick, dtype=np.int64),
            "rng": np.array(self._rng.state, dtype=np.uint64),
        }
