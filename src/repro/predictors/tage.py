"""TAGE: TAgged GEometric history length predictor (§II-B).

Implements the full TAGE algorithm the paper describes: an untagged
bimodal fallback plus N tagged tables indexed by hashes of PC and
geometrically longer global histories (via the shared folded-history
machinery), longest-match provider selection, use-alt-on-newly-allocated
arbitration, usefulness-guided replacement and tick-throttled allocation.

The implementation is split into ``lookup`` and ``update`` so composite
predictors (TAGE-SC-L, and LLBP which arbitrates against the provider's
history length) can interpose between prediction and training.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.common.rng import XorShift32
from repro.predictors.base import BranchPredictor
from repro.predictors.bimodal import Bimodal
from repro.predictors.history import GlobalHistory, HistorySet, HistorySpec


@dataclass(frozen=True)
class TageConfig:
    """Geometry and tuning of a TAGE instance."""

    history_lengths: Tuple[int, ...]
    index_bits: int = 10
    tag_bits: int = 12
    counter_bits: int = 3
    bimodal_index_bits: int = 13
    max_allocations: int = 2
    use_alt_bits: int = 4
    tick_threshold: int = 1024
    seed: int = 0xBADC0DE

    def __post_init__(self) -> None:
        if len(self.history_lengths) < 1:
            raise ValueError("need at least one tagged table")
        if list(self.history_lengths) != sorted(set(self.history_lengths)):
            raise ValueError("history lengths must be strictly increasing")
        if self.index_bits < 1 or self.tag_bits < 2:
            raise ValueError("invalid table geometry")

    @property
    def num_tables(self) -> int:
        return len(self.history_lengths)

    def specs(self) -> List[HistorySpec]:
        return [
            HistorySpec(length, self.index_bits, self.tag_bits)
            for length in self.history_lengths
        ]


@dataclass
class TageResult:
    """Everything ``lookup`` learned, consumed later by ``update``."""

    pred: bool = False
    provider: int = -1           # table index; -1 = bimodal provided
    provider_pred: bool = False
    provider_ctr: int = 0
    provider_weak: bool = False
    alt_pred: bool = False
    alt_provider: int = -1       # table index of the alt match; -1 = bimodal
    used_alt: bool = False
    bim_pred: bool = False
    indices: List[int] = field(default_factory=list)
    tags: List[int] = field(default_factory=list)

    @property
    def provider_length_rank(self) -> int:
        """Provider table number + 1 (0 when the bimodal provided).

        LLBP compares history lengths through this rank (§V-B: "a 6-bit
        adder is sufficient to compare the table index ... with the history
        length field").
        """
        return self.provider + 1


class Tage(BranchPredictor):
    """Finite-capacity TAGE over a shared :class:`GlobalHistory`."""

    name = "tage"

    def __init__(self, config: TageConfig, history: Optional[GlobalHistory] = None) -> None:
        super().__init__()
        self.config = config
        self.history = history if history is not None else GlobalHistory()
        self.folded = HistorySet(self.history, config.specs())
        self.bimodal = Bimodal(config.bimodal_index_bits)
        n = config.num_tables
        size = 1 << config.index_bits
        self._size = size
        self._idx_mask = size - 1
        self._tag_mask = (1 << config.tag_bits) - 1
        ctr_hi = (1 << (config.counter_bits - 1)) - 1
        self._ctr_hi = ctr_hi
        self._ctr_lo = -(ctr_hi + 1)
        # Parallel per-table arrays: prediction counters, tags, useful bits.
        self.ctrs: List[List[int]] = [[0] * size for _ in range(n)]
        self.tags: List[List[int]] = [[0] * size for _ in range(n)]
        self.useful: List[List[int]] = [[0] * size for _ in range(n)]
        self._valid: List[List[bool]] = [[False] * size for _ in range(n)]
        self._rng = XorShift32(config.seed)
        self._use_alt = 1 << (config.use_alt_bits - 1)  # mid-point
        self._use_alt_max = (1 << config.use_alt_bits) - 1
        self._tick = 0

    # -- hashing -------------------------------------------------------------

    def compute_index(self, pc: int, table: int) -> int:
        pcx = pc >> 2
        fold = self.folded.index_fold(table)
        path = self.history.path
        h = pcx ^ (pcx >> (table + 1)) ^ fold ^ (path ^ (path >> self.config.index_bits))
        return h & self._idx_mask

    def compute_tag(self, pc: int, table: int) -> int:
        pcx = pc >> 2
        _, tag1, tag2 = self.folded.folds(table)
        return (pcx ^ tag1 ^ (tag2 << 1)) & self._tag_mask

    # -- prediction ----------------------------------------------------------

    def lookup(self, pc: int) -> TageResult:
        config = self.config
        n = config.num_tables
        idx_mask = self._idx_mask
        tag_mask = self._tag_mask
        pcx = pc >> 2
        path = self.history.path
        path_mix = path ^ (path >> config.index_bits)
        folds = self.folded.folds

        res = TageResult()
        indices = res.indices
        tags = res.tags
        provider = -1
        alt = -1
        for t in range(n):
            f_idx, f_tag1, f_tag2 = folds(t)
            idx = (pcx ^ (pcx >> (t + 1)) ^ f_idx ^ path_mix) & idx_mask
            tag = (pcx ^ f_tag1 ^ (f_tag2 << 1)) & tag_mask
            indices.append(idx)
            tags.append(tag)
            if self._valid[t][idx] and self.tags[t][idx] == tag:
                alt = provider
                provider = t

        res.bim_pred = self.bimodal.lookup(pc)
        if provider >= 0:
            ctr = self.ctrs[provider][indices[provider]]
            res.provider = provider
            res.provider_ctr = ctr
            res.provider_pred = ctr >= 0
            res.provider_weak = ctr in (0, -1)
            res.alt_provider = alt
            if alt >= 0:
                res.alt_pred = self.ctrs[alt][indices[alt]] >= 0
            else:
                res.alt_pred = res.bim_pred
            # Newly-allocated entries are unreliable; a global counter
            # decides whether to trust the alternative instead.
            if res.provider_weak and self._use_alt >= (1 << (self.config.use_alt_bits - 1)):
                res.used_alt = True
                res.pred = res.alt_pred
            else:
                res.pred = res.provider_pred
        else:
            res.alt_pred = res.bim_pred
            res.pred = res.bim_pred
        return res

    def predict(self, pc: int) -> TageResult:
        self.stats.lookups += 1
        return self.lookup(pc)

    # -- training ------------------------------------------------------------

    def train(self, pc: int, taken: bool, meta: TageResult) -> None:
        if meta.pred != taken:
            self.stats.mispredictions += 1
        self.update(pc, taken, meta)

    def update(self, pc: int, taken: bool, res: TageResult,
               suppress_provider: bool = False,
               suppress_alloc: bool = False) -> None:
        """Train TAGE on the resolved branch.

        ``suppress_provider`` cancels the provider-counter update (used
        when LLBP overrode and is the training provider, §V-D);
        ``suppress_alloc`` cancels new-entry allocation.
        """
        provider = res.provider
        mispredicted = res.pred != taken

        if provider >= 0:
            idx = res.indices[provider]
            if res.provider_pred != res.alt_pred:
                # Usefulness: provider disagreed with alt; reward if right.
                if res.provider_pred == taken:
                    self.useful[provider][idx] = 1
                else:
                    u = self.useful[provider][idx]
                    if u > 0:
                        self.useful[provider][idx] = u - 1
                # Track whether trusting alt on weak entries pays off.
                if res.provider_weak:
                    if res.alt_pred == taken and self._use_alt < self._use_alt_max:
                        self._use_alt += 1
                    elif res.provider_pred == taken and self._use_alt > 0:
                        self._use_alt -= 1
            if not suppress_provider:
                ctr = self.ctrs[provider][idx]
                if taken:
                    if ctr < self._ctr_hi:
                        self.ctrs[provider][idx] = ctr + 1
                elif ctr > self._ctr_lo:
                    self.ctrs[provider][idx] = ctr - 1
                # Weak providers also train the alt path so the fallback
                # stays warm (standard TAGE practice).
                if res.provider_weak and res.alt_provider < 0:
                    self.bimodal.update(pc, taken)
        else:
            if not suppress_provider:
                self.bimodal.update(pc, taken)

        if mispredicted and not suppress_alloc:
            self.allocate(pc, taken, res)

    def allocate(self, pc: int, taken: bool, res: TageResult) -> None:
        """Allocate new entries with longer history after a misprediction."""
        provider = res.provider
        n = self.config.num_tables
        if provider >= n - 1:
            return
        start = provider + 1
        # Randomised start (Seznec): avoids always burning the next table.
        if start < n - 1 and self._rng.chance(1, 2):
            start += 1

        allocated = 0
        failures = 0
        t = start
        while t < n and allocated < self.config.max_allocations:
            idx = res.indices[t]
            if self.useful[t][idx] == 0:
                self.tags[t][idx] = res.tags[t]
                self.ctrs[t][idx] = 0 if taken else -1
                self._valid[t][idx] = True
                allocated += 1
                t += 2  # spread allocations across history lengths
            else:
                failures += 1
                t += 1

        # Tick throttle: when allocation keeps failing, usefulness bits are
        # stale — clear them all so the predictor can adapt (u is 1 bit, so
        # "halving" == clearing).
        self._tick += failures - allocated
        if self._tick < 0:
            self._tick = 0
        elif self._tick >= self.config.tick_threshold:
            self._tick = 0
            for t in range(n):
                useful_t = self.useful[t]
                for i in range(self._size):
                    useful_t[i] = 0

    # -- bookkeeping -----------------------------------------------------------

    def update_history(self, pc: int, branch_type: int, taken: bool,
                       target: int) -> None:
        self.history.push_branch(pc, branch_type == 0, taken)

    def storage_bits(self) -> int:
        entry_bits = self.config.counter_bits + self.config.tag_bits + 1
        return (
            self.bimodal.storage_bits()
            + self.config.num_tables * self._size * entry_bits
        )
