"""GShare: global-history XOR predictor.

Included as the related-work substrate (§VIII discusses Jiménez's
pre-selection technique in the context of a gshare predictor) and as an
easy-to-reason-about baseline for tests.
"""

from __future__ import annotations

from repro.predictors.base import BranchPredictor


class GShare(BranchPredictor):
    """Classic gshare: ``index = pc ^ global_history``, 2-bit counters."""

    name = "gshare"

    def __init__(self, index_bits: int = 14, history_bits: int = 14) -> None:
        super().__init__()
        if index_bits < 1 or history_bits < 1:
            raise ValueError("index_bits and history_bits must be >= 1")
        self.index_bits = index_bits
        self.history_bits = history_bits
        self._mask = (1 << index_bits) - 1
        self._hist_mask = (1 << history_bits) - 1
        self.table = [0] * (1 << index_bits)
        self.history = 0

    def _index(self, pc: int) -> int:
        return ((pc >> 2) ^ self.history) & self._mask

    def predict(self, pc: int) -> bool:
        self.stats.lookups += 1
        return self.table[self._index(pc)] >= 0

    def train(self, pc: int, taken: bool, meta: bool) -> None:
        if bool(meta) != taken:
            self.stats.mispredictions += 1
        i = self._index(pc)
        v = self.table[i]
        if taken:
            if v < 1:
                self.table[i] = v + 1
        elif v > -2:
            self.table[i] = v - 1

    def update_history(self, pc: int, branch_type: int, taken: bool,
                       target: int) -> None:
        # gshare traditionally tracks only conditional outcomes.
        if branch_type == 0:  # BranchType.COND
            self.history = ((self.history << 1) | (1 if taken else 0)) & self._hist_mask

    def storage_bits(self) -> int:
        return 2 * (1 << self.index_bits)

    def state_arrays(self) -> dict:
        """Snapshot of the mutable predictor state as numpy arrays.

        Every engine (Python or array) must leave identical state behind
        for the same trace; the equivalence tests compare these dicts.
        """
        import numpy as np

        return {
            "table": np.array(self.table, dtype=np.int8),
            "history": np.array(self.history, dtype=np.uint64),
        }
