"""Perfect conditional branch predictor: the upper bound of Fig 10."""

from __future__ import annotations

from repro.predictors.base import BranchPredictor


class PerfectPredictor(BranchPredictor):
    """An oracle: the engine resolves its prediction as always correct.

    ``predict`` returns None; the engine treats None metadata from this
    predictor as "predicted == outcome".  ``train`` counts lookups only.
    """

    name = "perfect"

    def predict(self, pc: int) -> None:
        self.stats.lookups += 1
        return None

    def train(self, pc: int, taken: bool, meta: None) -> None:
        return

    @staticmethod
    def pred_of(meta: None) -> bool:  # pragma: no cover - engine special-cases
        raise TypeError("perfect predictor has no materialised prediction")
