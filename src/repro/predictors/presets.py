"""Named predictor configurations used throughout the paper.

* ``tsl_64k``      — the 64KiB-class TAGE-SC-L baseline ("64K TSL").
* ``tsl_scaled``   — the same design with TAGE table entries scaled by a
  power-of-two factor (128K…1M TSL; the paper's 512K TSL is factor 8).
* ``tage_infinite``— unbounded TAGE tables, baseline-sized SC and loop
  ("Inf TAGE").
* ``tsl_infinite`` — unbounded TAGE tables plus enlarged SC/loop
  ("Inf TSL").

The 21 baseline history lengths are a geometric ladder from 4 to 3000
that contains, as a subset, the 16 lengths LLBP uses (§VI); matching
lengths is what lets LLBP arbitrate against TAGE by comparing history
lengths directly.
"""

from __future__ import annotations

from typing import Optional

from repro.predictors.history import GlobalHistory
from repro.predictors.infinite import InfiniteTage
from repro.predictors.tage import TageConfig
from repro.predictors.tage_sc_l import TageScL, TslConfig

#: Baseline TAGE history lengths (21 tables, §VI: "64K TSL uses 21
#: different history lengths").
TAGE_HISTORY_LENGTHS = (
    4, 6, 8, 12, 16, 21, 26, 38, 54, 78, 112, 161,
    232, 336, 482, 695, 1000, 1444, 2048, 2560, 3000,
)

#: The 12 distinct lengths LLBP draws its 16 slots from (§VI; the four
#: starred duplicates reuse a length with a modified hash).
LLBP_HISTORY_LENGTHS = (
    12, 26, 54, 78, 112, 161, 232, 336, 482, 695, 1444, 3000,
)

# Every LLBP length must exist in the baseline ladder for length-rank
# arbitration to be meaningful.
assert set(LLBP_HISTORY_LENGTHS) <= set(TAGE_HISTORY_LENGTHS)


def _log2_exact(value: int) -> int:
    if value < 1 or value & (value - 1):
        raise ValueError("scale factor must be a positive power of two")
    return value.bit_length() - 1


#: All predictor capacities are scaled down by this factor relative to the
#: paper's hardware sizes, matching the ~4x scale-down of the synthetic
#: workloads' branch working sets versus the paper's server traces
#: (DESIGN.md §1).  Named sizes ("64K TSL", "512K TSL") keep the paper's
#: names; they denote the same *relative* capacity points.
CAPACITY_SCALE = 4


def tage_config_64k(seed: int = 0xBADC0DE) -> TageConfig:
    """TAGE geometry of the 64K-class baseline.

    The paper's 64K TSL uses 1K entries per table; divided by
    :data:`CAPACITY_SCALE` that is 256 entries (index_bits=8).
    """
    return TageConfig(
        history_lengths=TAGE_HISTORY_LENGTHS,
        index_bits=8,
        tag_bits=12,
        bimodal_index_bits=11,
        seed=seed,
    )


def tsl_64k(history: Optional[GlobalHistory] = None, seed: int = 0xBADC0DE) -> TageScL:
    """The paper's baseline: 64KiB-class TAGE-SC-L."""
    config = TslConfig(tage=tage_config_64k(seed), sc_index_bits=8, name="64K TSL")
    return TageScL(config, history)


def tsl_scaled(factor: int, history: Optional[GlobalHistory] = None,
               seed: int = 0xBADC0DE) -> TageScL:
    """TSL with TAGE table entries scaled by ``factor`` (a power of two).

    Matches the paper's scaling methodology (§VI): only the TAGE pattern
    tables grow; SC and the loop predictor stay at baseline size.
    """
    extra_bits = _log2_exact(factor)
    base = tage_config_64k(seed)
    config = TslConfig(
        tage=TageConfig(
            history_lengths=base.history_lengths,
            index_bits=base.index_bits + extra_bits,
            tag_bits=base.tag_bits,
            bimodal_index_bits=base.bimodal_index_bits + extra_bits,
            seed=seed,
        ),
        sc_index_bits=8,
        name=f"{64 * factor}K TSL",
    )
    return TageScL(config, history)


def tage_infinite(history: Optional[GlobalHistory] = None,
                  seed: int = 0xBADC0DE) -> TageScL:
    """Inf TAGE: unbounded TAGE tables, baseline-size SC and loop."""
    config = TslConfig(tage=tage_config_64k(seed), sc_index_bits=8, name="Inf TAGE")
    tage = InfiniteTage(config.tage, history)
    return TageScL(config, tage=tage)


def tsl_infinite(history: Optional[GlobalHistory] = None,
                 seed: int = 0xBADC0DE) -> TageScL:
    """Inf TSL: unbounded TAGE tables plus enlarged auxiliary components."""
    config = TslConfig(
        tage=tage_config_64k(seed),
        sc_index_bits=14,
        loop_index_bits=8,
        name="Inf TSL",
    )
    tage = InfiniteTage(config.tage, history)
    return TageScL(config, tage=tage)
