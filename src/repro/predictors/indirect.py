"""ITTAGE-style indirect-branch target predictor.

Indirect calls/jumps resolve their target from data, so a plain BTB only
captures the most recent target.  ITTAGE (Seznec's indirect variant of
TAGE) keeps *targets* in tagged tables indexed by PC and geometrically
longer global history, choosing the longest matching entry.

In this reproduction the indirect predictor's role is front-end
redirects: a wrong indirect target flushes the pipeline and resets
LLBP's prefetcher (the PHPWiki effect, §VII-A).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.common.rng import XorShift32
from repro.predictors.history import GlobalHistory, HistorySet, HistorySpec


@dataclass(frozen=True)
class IttageConfig:
    """Geometry of the indirect predictor."""

    history_lengths: tuple = (2, 5, 11, 21, 43, 86)
    index_bits: int = 8
    tag_bits: int = 10
    confidence_bits: int = 2
    seed: int = 0x17746

    def __post_init__(self) -> None:
        if list(self.history_lengths) != sorted(set(self.history_lengths)):
            raise ValueError("history lengths must be strictly increasing")
        if self.index_bits < 1 or self.tag_bits < 2:
            raise ValueError("invalid geometry")

    @property
    def num_tables(self) -> int:
        return len(self.history_lengths)


@dataclass
class IndirectResult:
    """Metadata of one indirect lookup."""

    target: int = 0            # 0 = no prediction
    provider: int = -1         # table, -1 = base table
    indices: List[int] = None
    tags: List[int] = None
    base_index: int = 0


class IndirectPredictor:
    """ITTAGE: tagged geometric-history target tables over a base table."""

    name = "ittage"

    def __init__(self, config: IttageConfig = IttageConfig(),
                 history: Optional[GlobalHistory] = None) -> None:
        self.config = config
        self.history = history if history is not None else GlobalHistory()
        self.folded = HistorySet(self.history, [
            HistorySpec(length, config.index_bits, config.tag_bits)
            for length in config.history_lengths
        ])
        size = 1 << config.index_bits
        self._size = size
        self._idx_mask = size - 1
        self._tag_mask = (1 << config.tag_bits) - 1
        n = config.num_tables
        self.targets = [[0] * size for _ in range(n)]
        self.tags = [[0] * size for _ in range(n)]
        self.confidence = [[0] * size for _ in range(n)]
        self._valid = [[False] * size for _ in range(n)]
        # Base table: last-seen target per PC (a small BTB-like table).
        self.base_targets = [0] * size
        self._conf_max = (1 << config.confidence_bits) - 1
        self._rng = XorShift32(config.seed)
        self.lookups = 0
        self.mispredictions = 0

    # -- hashing --------------------------------------------------------------

    def _index(self, pc: int, table: int) -> int:
        pcx = pc >> 2
        return (pcx ^ (pcx >> (table + 1)) ^ self.folded.index_fold(table)) & self._idx_mask

    def _tag(self, pc: int, table: int) -> int:
        pcx = pc >> 2
        _, tag1, tag2 = self.folded.folds(table)
        return (pcx ^ tag1 ^ (tag2 << 1)) & self._tag_mask

    # -- prediction -------------------------------------------------------------

    def lookup(self, pc: int) -> IndirectResult:
        res = IndirectResult(indices=[], tags=[])
        res.base_index = (pc >> 2) & self._idx_mask
        provider = -1
        for t in range(self.config.num_tables):
            idx = self._index(pc, t)
            tag = self._tag(pc, t)
            res.indices.append(idx)
            res.tags.append(tag)
            if self._valid[t][idx] and self.tags[t][idx] == tag:
                provider = t
        res.provider = provider
        if provider >= 0:
            res.target = self.targets[provider][res.indices[provider]]
        else:
            res.target = self.base_targets[res.base_index]
        return res

    def predict(self, pc: int) -> IndirectResult:
        self.lookups += 1
        return self.lookup(pc)

    # -- training ----------------------------------------------------------------

    def train(self, pc: int, actual_target: int, res: IndirectResult) -> bool:
        """Train on the resolved target; returns True when predicted right."""
        correct = res.target == actual_target and res.target != 0

        if res.provider >= 0:
            t, idx = res.provider, res.indices[res.provider]
            if self.targets[t][idx] == actual_target:
                if self.confidence[t][idx] < self._conf_max:
                    self.confidence[t][idx] += 1
            elif self.confidence[t][idx] > 0:
                self.confidence[t][idx] -= 1
            else:
                self.targets[t][idx] = actual_target
        self.base_targets[res.base_index] = actual_target

        if not correct:
            self.mispredictions += 1
            self._allocate(pc, actual_target, res)
        return correct

    def _allocate(self, pc: int, target: int, res: IndirectResult) -> None:
        start = res.provider + 1
        if start < self.config.num_tables - 1 and self._rng.chance(1, 2):
            start += 1
        for t in range(start, self.config.num_tables):
            idx = res.indices[t]
            if not self._valid[t][idx] or self.confidence[t][idx] == 0:
                self._valid[t][idx] = True
                self.tags[t][idx] = res.tags[t]
                self.targets[t][idx] = target
                self.confidence[t][idx] = 0
                return
            self.confidence[t][idx] -= 1

    # -- bookkeeping -----------------------------------------------------------------

    def update_history(self, pc: int, branch_type: int, taken: bool,
                       target: int) -> None:
        self.history.push_branch(pc, branch_type == 0, taken)

    @property
    def misprediction_rate(self) -> float:
        return self.mispredictions / self.lookups if self.lookups else 0.0

    def storage_bits(self) -> int:
        entry = 32 + self.config.tag_bits + self.config.confidence_bits
        return (self.config.num_tables * self._size * entry
                + self._size * 32)
