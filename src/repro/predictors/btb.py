"""Branch target buffer (Table II: 16K-entry, 8-way).

The BTB caches decoded branch targets; a BTB miss on a taken branch is a
front-end redirect, which — like a direction misprediction — resets
LLBP's prefetch pipeline (§VI: "After a misprediction (BTB miss and
misprediction), all in-flight prefetches get squashed").
"""

from __future__ import annotations

from repro.common.assoc import SetAssociative


class BranchTargetBuffer:
    """Set-associative PC -> target cache with LRU replacement."""

    def __init__(self, entries: int = 16384, ways: int = 8) -> None:
        if entries <= 0 or ways <= 0 or entries % ways:
            raise ValueError("entries must be a positive multiple of ways")
        self.entries = entries
        self.ways = ways
        self._table: SetAssociative[int] = SetAssociative(entries // ways, ways)
        self.lookups = 0
        self.misses = 0
        self.wrong_target = 0

    @staticmethod
    def _key(pc: int) -> int:
        return pc >> 2

    def predict(self, pc: int) -> int:
        """Predicted target for the branch at ``pc`` (0 = miss)."""
        self.lookups += 1
        target = self._table.get(self._key(pc))
        if target is None:
            self.misses += 1
            return 0
        return target

    def update(self, pc: int, target: int) -> None:
        self._table.insert(self._key(pc), target)

    def predict_and_update(self, pc: int, actual_target: int) -> bool:
        """One-shot helper: predict, record stats, train; True = correct."""
        predicted = self.predict(pc)
        correct = predicted == actual_target
        if predicted and not correct:
            self.wrong_target += 1
        self.update(pc, actual_target)
        return correct

    @property
    def miss_rate(self) -> float:
        return self.misses / self.lookups if self.lookups else 0.0

    def storage_bits(self) -> int:
        # tag (~16b) + target (~32b) per entry.
        return self.entries * 48
