"""The predictor registry: one public factory for every predictor key.

Predictor keys are strings so results can be cached on disk and shared
across figures.  Historically the parsing lived in
``repro.experiments.runner`` (``resolve_predictor`` / ``_parse_llbp_key``);
this module is the single public home for that grammar:

* :func:`parse_key` — key string → :class:`PredictorSpec` (family plus a
  fully resolved config), without building tables;
* :func:`make_predictor` — key string → live predictor instance;
* :func:`key_of` — predictor instance → canonical key string (the inverse
  of :func:`make_predictor`, config-wise);
* :func:`known_keys` — every plain key the registry accepts.

Grammar
-------

Plain keys name the paper's standard configurations (``bimodal``,
``gshare``, ``perfect``, ``tsl64`` … ``tsl1m``, ``inf-tage``, ``inf-tsl``,
``llbp``).  ``llbp`` accepts a ``:``-separated parameter suffix of
comma-separated tokens for the sensitivity studies::

    llbp                       the evaluated design (timed prefetch)
    llbp:lat0                  LLBP-0Lat
    llbp:lat0,w=16,d=0         context window / prefetch distance override
    llbp:src=callret           RCR source (uncond | callret | all)
    llbp:cd_bits=10,ps=32      directory sets / patterns per set
    llbp:unbucketed,lru        ablation switches
    llbp:exclusive             the paper's exclusive provider training

The token grammar is *declarative*: each family lists flag tokens (a bare
word pinning one config field to one value) and parameter tokens
(``name=value`` with a parser per name).  Unknown plain keys raise
``KeyError``; malformed suffix tokens raise ``ValueError`` — the same
error contract the deprecated helpers always had, which the experiment
CLIs and cache filenames rely on.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Optional, Tuple

from repro.llbp.config import ContextSource, LLBPConfig
from repro.llbp.predictor import LLBPTageScL
from repro.predictors.base import BranchPredictor
from repro.predictors.bimodal import Bimodal
from repro.predictors.gshare import GShare
from repro.predictors.perfect import PerfectPredictor
from repro.predictors.presets import tage_infinite, tsl_64k, tsl_infinite, tsl_scaled
from repro.predictors.tage_sc_l import TageScL


@dataclasses.dataclass(frozen=True)
class PredictorSpec:
    """A parsed predictor key: the family plus its resolved config.

    ``config`` is ``None`` for families without tunable tokens (every
    plain key except ``llbp``); for ``llbp`` it is the fully resolved
    :class:`LLBPConfig` with every token applied.
    """

    family: str
    config: Optional[LLBPConfig] = None


# ---------------------------------------------------------------------------
# Families without a token grammar: one factory per plain key.

_SIMPLE_FACTORIES: Dict[str, Callable[[], BranchPredictor]] = {
    "bimodal": Bimodal,
    "gshare": GShare,
    "perfect": PerfectPredictor,
    "tsl64": tsl_64k,
    "tsl128": lambda: tsl_scaled(2),
    "tsl256": lambda: tsl_scaled(4),
    "tsl512": lambda: tsl_scaled(8),
    "tsl1m": lambda: tsl_scaled(16),
    "inf-tage": tage_infinite,
    "inf-tsl": tsl_infinite,
}

#: TSL preset configs carry a display name; it doubles as the reverse map
#: for :func:`key_of` (each preset's name is unique by construction).
_TSL_NAME_TO_KEY = {
    "64K TSL": "tsl64",
    "128K TSL": "tsl128",
    "256K TSL": "tsl256",
    "512K TSL": "tsl512",
    "1024K TSL": "tsl1m",
    "Inf TAGE": "inf-tage",
    "Inf TSL": "inf-tsl",
}

# ---------------------------------------------------------------------------
# The LLBP token grammar, declaratively.  A flag token pins one config
# field to one value; a parameter token parses ``name=value`` into one
# field.  Order matters for :func:`key_of`: the canonical key emits flags
# first, in declaration order, then parameters.

#: token -> (config field, pinned value)
_LLBP_FLAGS: Tuple[Tuple[str, str, object], ...] = (
    ("lat0", "simulate_timing", False),
    # §V-A's future-work variant: pattern sets live in the L2 rather than
    # a dedicated array, so fetches pay an L2-like latency instead of the
    # 6-cycle dedicated-array access.
    ("virt", "prefetch_latency_cycles", 16),
    ("unbucketed", "bucketed", False),
    ("lru", "cd_replacement", "lru"),
    ("exclusive", "exclusive_provider_training", True),
    ("frontend", "model_frontend_redirects", True),
    ("noguard", "weak_override_guard", False),
)

_SOURCES = {
    "uncond": ContextSource.UNCONDITIONAL,
    "callret": ContextSource.CALL_RET,
    "all": ContextSource.ALL,
}


def _parse_source(value: str) -> ContextSource:
    return _SOURCES[value]


#: token name -> (config field, value parser, value formatter)
_LLBP_PARAMS: Tuple[Tuple[str, str, Callable, Callable], ...] = (
    ("w", "context_window", int, str),
    ("d", "prefetch_distance", int, str),
    ("src", "context_source", _parse_source, lambda v: v.value),
    ("cd_bits", "cd_set_bits", int, str),
    ("ps", "patterns_per_set", int, str),
    ("pb", "pb_entries", int, str),
    ("lat", "prefetch_latency_cycles", int, str),
)

_LLBP_FLAG_MAP = {token: (field, value) for token, field, value in _LLBP_FLAGS}
_LLBP_PARAM_MAP = {token: (field, parse) for token, field, parse, _ in _LLBP_PARAMS}


def parse_llbp_spec(spec: str) -> LLBPConfig:
    """Parse an ``llbp`` key suffix (the part after ``llbp:``).

    Whitespace around tokens and empty tokens are ignored.  Raises
    ``ValueError`` for unknown tokens/parameters and for token
    combinations :class:`LLBPConfig` itself rejects (e.g. ``ps=48``
    without ``unbucketed``).
    """
    config = LLBPConfig()
    if not spec:
        return config
    changes: Dict[str, object] = {}
    for token in spec.split(","):
        token = token.strip()
        if not token:
            continue
        if token in _LLBP_FLAG_MAP:
            field, value = _LLBP_FLAG_MAP[token]
            changes[field] = value
        elif "=" in token:
            name, value = token.split("=", 1)
            try:
                field, parse = _LLBP_PARAM_MAP[name]
            except KeyError:
                raise ValueError(f"unknown LLBP parameter {name!r}") from None
            changes[field] = parse(value)
        else:
            raise ValueError(f"unknown LLBP token {token!r}")
    return dataclasses.replace(config, **changes)


def llbp_key_suffix(config: LLBPConfig) -> str:
    """Canonical token list for ``config`` (inverse of :func:`parse_llbp_spec`).

    Raises ``ValueError`` if some field deviating from the default has no
    token spelling (such a config cannot round-trip through a key).
    """
    default = LLBPConfig()
    handled = set()
    tokens = []
    for token, field, value in _LLBP_FLAGS:
        if field in handled:
            continue
        if getattr(config, field) == value != getattr(default, field):
            tokens.append(token)
            handled.add(field)
    for token, field, _, fmt in _LLBP_PARAMS:
        if field in handled:
            continue
        current = getattr(config, field)
        if current != getattr(default, field):
            tokens.append(f"{token}={fmt(current)}")
            handled.add(field)
    for field in dataclasses.fields(config):
        if field.name in handled:
            continue
        if getattr(config, field.name) != getattr(default, field.name):
            raise ValueError(
                f"LLBPConfig.{field.name} deviates from the default but has "
                f"no key token; this config cannot be expressed as a key")
    return ",".join(tokens)


def parse_key(key: str) -> PredictorSpec:
    """Parse ``key`` into a :class:`PredictorSpec` without building tables.

    Raises ``KeyError`` for unknown plain keys and ``ValueError`` for a
    malformed ``llbp`` suffix.
    """
    if key in _SIMPLE_FACTORIES:
        return PredictorSpec(family=key)
    if key == "llbp":
        return PredictorSpec(family="llbp", config=LLBPConfig())
    if key.startswith("llbp:"):
        return PredictorSpec(family="llbp",
                             config=parse_llbp_spec(key[len("llbp:"):]))
    raise KeyError(f"unknown predictor key {key!r}")


def make_predictor(key: str) -> BranchPredictor:
    """Instantiate the predictor named by ``key`` (see module docstring)."""
    spec = parse_key(key)
    if spec.family == "llbp":
        return LLBPTageScL(spec.config)
    return _SIMPLE_FACTORIES[spec.family]()


def key_of(predictor: BranchPredictor) -> str:
    """Canonical registry key for ``predictor``.

    The inverse of :func:`make_predictor` up to configuration:
    ``parse_key(key_of(p))`` resolves to the same family and config.
    Raises ``ValueError`` for predictors the registry cannot express.
    """
    if isinstance(predictor, LLBPTageScL):
        suffix = llbp_key_suffix(predictor.config)
        return f"llbp:{suffix}" if suffix else "llbp"
    if isinstance(predictor, TageScL):
        name = predictor.config.name
        try:
            return _TSL_NAME_TO_KEY[name]
        except KeyError:
            raise ValueError(
                f"no registry key for TageScL preset named {name!r}") from None
    if type(predictor) is Bimodal:
        return "bimodal"
    if type(predictor) is GShare:
        return "gshare"
    if type(predictor) is PerfectPredictor:
        return "perfect"
    raise ValueError(f"no registry key for {type(predictor).__name__}")


def known_keys() -> Tuple[str, ...]:
    """Every plain key the registry accepts (``llbp`` takes a suffix too)."""
    return tuple(_SIMPLE_FACTORIES) + ("llbp",)
