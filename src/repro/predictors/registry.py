"""The predictor registry: one public factory for every predictor key.

Predictor keys are strings so results can be cached on disk and shared
across figures.  Historically the parsing lived in
``repro.experiments.runner`` (``resolve_predictor`` / ``_parse_llbp_key``);
this module is the single public home for that grammar:

* :func:`parse_key` — key string → :class:`PredictorSpec` (family plus a
  fully resolved config), without building tables;
* :func:`make_predictor` — key string → live predictor instance;
* :func:`key_of` — predictor instance → canonical key string (the inverse
  of :func:`make_predictor`, config-wise);
* :func:`known_keys` — every plain key the registry accepts.

Grammar
-------

Plain keys name the paper's standard configurations (``bimodal``,
``gshare``, ``perfect``, ``tsl64`` … ``tsl1m``, ``inf-tage``, ``inf-tsl``,
``llbp``).  ``llbp`` accepts a ``:``-separated parameter suffix of
comma-separated tokens for the sensitivity studies::

    llbp                       the evaluated design (timed prefetch)
    llbp:lat0                  LLBP-0Lat
    llbp:lat0,w=16,d=0         context window / prefetch distance override
    llbp:src=callret           RCR source (uncond | callret | all)
    llbp:cd_bits=10,ps=32      directory sets / patterns per set
    llbp:unbucketed,lru        ablation switches
    llbp:exclusive             the paper's exclusive provider training

``tsl:`` names a TAGE-SC-L geometry off the preset ladder, for the
design-space exploration harness (:mod:`repro.explore`)::

    tsl:x=4                    TAGE entries scaled 4x (== tsl256)
    tsl:t=11                   11 tagged tables subsampled from the ladder
    tsl:x=2,t=15,tag=10,sc=9   scale, table count, tag bits, SC index bits

``bimode:`` and ``percep:`` name the PR-10 comparison families (plain
``bimode`` / ``percep`` are the default geometries)::

    bimode:c=14,d=14,h=12      choice bits, direction-bank bits, history
    percep:t=4,r=11,h=24       tables, row bits, total history bits
    percep:w=6,theta=40        weight width, training threshold

The token grammar is *declarative*: each family lists flag tokens (a bare
word pinning one config field to one value) and parameter tokens
(``name=value`` with a parser per name).  Unknown plain keys raise
``KeyError``; malformed suffix tokens raise ``ValueError`` — the same
error contract the deprecated helpers always had, which the experiment
CLIs and cache filenames rely on.

A key has exactly one *canonical* spelling (:func:`canonical_key`):
flags before parameters, tokens in declaration order, defaults omitted,
and a parameterised spelling that lands on a preset collapses to the
preset's plain key (``tsl:x=4`` → ``tsl256``, ``llbp:`` → ``llbp``).
Cache filenames and the explore harness dedup through it.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Optional, Tuple, Union

from repro.llbp.config import ContextSource, LLBPConfig
from repro.llbp.predictor import LLBPTageScL
from repro.predictors.base import BranchPredictor
from repro.predictors.bimodal import Bimodal
from repro.predictors.bimode import BiMode, BiModeConfig
from repro.predictors.gshare import GShare
from repro.predictors.perceptron import (
    HashedPerceptron,
    PerceptronConfig,
    default_threshold,
)
from repro.predictors.perfect import PerfectPredictor
from repro.predictors.presets import (
    TAGE_HISTORY_LENGTHS,
    tage_config_64k,
    tage_infinite,
    tsl_64k,
    tsl_infinite,
    tsl_scaled,
)
from repro.predictors.tage import TageConfig
from repro.predictors.tage_sc_l import TageScL, TslConfig


@dataclasses.dataclass(frozen=True)
class PredictorSpec:
    """A parsed predictor key: the family plus its resolved config.

    ``config`` is ``None`` for families without tunable tokens; for
    ``llbp`` it is the fully resolved :class:`LLBPConfig` with every
    token applied, for ``tsl`` the resolved :class:`TslGeometry`, and
    for ``bimode``/``percep`` the :class:`BiModeConfig` /
    :class:`PerceptronConfig`.
    """

    family: str
    config: Union[LLBPConfig, "TslGeometry", BiModeConfig,
                  PerceptronConfig, None] = None


# ---------------------------------------------------------------------------
# Families without a token grammar: one factory per plain key.

_SIMPLE_FACTORIES: Dict[str, Callable[[], BranchPredictor]] = {
    "bimodal": Bimodal,
    "gshare": GShare,
    "perfect": PerfectPredictor,
    "tsl64": tsl_64k,
    "tsl128": lambda: tsl_scaled(2),
    "tsl256": lambda: tsl_scaled(4),
    "tsl512": lambda: tsl_scaled(8),
    "tsl1m": lambda: tsl_scaled(16),
    "inf-tage": tage_infinite,
    "inf-tsl": tsl_infinite,
}

#: TSL preset configs carry a display name; it doubles as the reverse map
#: for :func:`key_of` (each preset's name is unique by construction).
_TSL_NAME_TO_KEY = {
    "64K TSL": "tsl64",
    "128K TSL": "tsl128",
    "256K TSL": "tsl256",
    "512K TSL": "tsl512",
    "1024K TSL": "tsl1m",
    "Inf TAGE": "inf-tage",
    "Inf TSL": "inf-tsl",
}

# ---------------------------------------------------------------------------
# The ``tsl:`` token grammar: TAGE-SC-L geometry off the preset ladder.
# All parameters default to the 64K TSL baseline, so the empty suffix is
# the baseline itself and pure power-of-two scales collapse to the named
# presets (which keeps one canonical key — and one cache file — per
# geometry).


@dataclasses.dataclass(frozen=True)
class TslGeometry:
    """A ``tsl:`` key's resolved geometry (defaults == 64K TSL).

    ``scale`` multiplies the TAGE table entry counts (power of two, the
    paper's §VI scaling methodology); ``tables`` picks that many history
    lengths from the 21-length baseline ladder, subsampled end-to-end so
    any table count still spans 4…3000 (:func:`tsl_history_lengths`);
    ``tag_bits`` and ``sc_index_bits`` size the tagged entries and the
    statistical corrector.
    """

    scale: int = 1
    tables: int = len(TAGE_HISTORY_LENGTHS)
    tag_bits: int = 12
    sc_index_bits: int = 8

    def __post_init__(self) -> None:
        if self.scale < 1 or self.scale & (self.scale - 1):
            raise ValueError("tsl scale (x=) must be a positive power of two")
        if not 1 <= self.tables <= len(TAGE_HISTORY_LENGTHS):
            raise ValueError(
                f"tsl table count (t=) must be in "
                f"1..{len(TAGE_HISTORY_LENGTHS)}")
        if self.tag_bits < 2:
            raise ValueError("tsl tag bits (tag=) must be at least 2")
        if self.sc_index_bits < 1:
            raise ValueError("tsl SC index bits (sc=) must be positive")


#: token name -> (geometry field, value parser, value formatter)
_TSL_PARAMS: Tuple[Tuple[str, str, Callable, Callable], ...] = (
    ("x", "scale", int, str),
    ("t", "tables", int, str),
    ("tag", "tag_bits", int, str),
    ("sc", "sc_index_bits", int, str),
)

_TSL_PARAM_MAP = {token: (field, parse) for token, field, parse, _ in _TSL_PARAMS}

#: pure power-of-two scale deviations land on the preset ladder.
_TSL_SCALE_TO_KEY = {1: "tsl64", 2: "tsl128", 4: "tsl256", 8: "tsl512",
                     16: "tsl1m"}


def parse_tsl_spec(spec: str) -> TslGeometry:
    """Parse a ``tsl`` key suffix (the part after ``tsl:``).

    Same contract as :func:`parse_llbp_spec`: whitespace and empty
    tokens are ignored, unknown tokens raise ``ValueError``, and so do
    values :class:`TslGeometry` itself rejects.
    """
    changes: Dict[str, int] = {}
    for token in spec.split(","):
        token = token.strip()
        if not token:
            continue
        if "=" not in token:
            raise ValueError(f"unknown TSL token {token!r}")
        name, value = token.split("=", 1)
        try:
            field, parse = _TSL_PARAM_MAP[name]
        except KeyError:
            raise ValueError(f"unknown TSL parameter {name!r}") from None
        changes[field] = parse(value)
    return TslGeometry(**changes)


def tsl_key_suffix(geometry: TslGeometry) -> str:
    """Canonical token list for ``geometry`` (inverse of :func:`parse_tsl_spec`)."""
    default = TslGeometry()
    tokens = []
    for token, field, _, fmt in _TSL_PARAMS:
        current = getattr(geometry, field)
        if current != getattr(default, field):
            tokens.append(f"{token}={fmt(current)}")
    return ",".join(tokens)


def tsl_canonical_key(geometry: TslGeometry) -> str:
    """Canonical key for ``geometry``: a preset name where one matches."""
    suffix = tsl_key_suffix(geometry)
    if not suffix:
        return "tsl64"
    if suffix == f"x={geometry.scale}":
        preset = _TSL_SCALE_TO_KEY.get(geometry.scale)
        if preset is not None:
            return preset
    return f"tsl:{suffix}"


def tsl_history_lengths(tables: int) -> Tuple[int, ...]:
    """``tables`` lengths subsampled from the baseline 21-length ladder.

    Both endpoints (4 and 3000) are always kept for ``tables >= 2`` so a
    shallower TAGE still spans the full geometric range; the single-table
    degenerate case keeps the shortest history.  The result is strictly
    increasing, as :class:`~repro.predictors.tage.TageConfig` requires.
    """
    ladder = TAGE_HISTORY_LENGTHS
    if not 1 <= tables <= len(ladder):
        raise ValueError(f"table count must be in 1..{len(ladder)}")
    if tables == 1:
        return (ladder[0],)
    step = (len(ladder) - 1) / (tables - 1)
    return tuple(ladder[round(i * step)] for i in range(tables))


def _make_tsl(geometry: TslGeometry) -> TageScL:
    canonical = tsl_canonical_key(geometry)
    if canonical in _SIMPLE_FACTORIES:
        # A geometry that IS a preset must build the preset, so caches,
        # display names and key_of cannot tell the two spellings apart.
        return _SIMPLE_FACTORIES[canonical]()
    extra_bits = geometry.scale.bit_length() - 1
    base = tage_config_64k()
    config = TslConfig(
        tage=TageConfig(
            history_lengths=tsl_history_lengths(geometry.tables),
            index_bits=base.index_bits + extra_bits,
            tag_bits=geometry.tag_bits,
            bimodal_index_bits=base.bimodal_index_bits + extra_bits,
            seed=base.seed,
        ),
        sc_index_bits=geometry.sc_index_bits,
        name=canonical,
    )
    return TageScL(config)

# ---------------------------------------------------------------------------
# The ``bimode:`` and ``percep:`` token grammars.  Both follow the tsl
# pattern: every parameter defaults to the family's standard geometry,
# so the empty suffix collapses to the plain key.

#: token name -> (BiModeConfig field, value parser, value formatter)
_BIMODE_PARAMS: Tuple[Tuple[str, str, Callable, Callable], ...] = (
    ("c", "choice_bits", int, str),
    ("d", "direction_bits", int, str),
    ("h", "history_bits", int, str),
)

_BIMODE_PARAM_MAP = {token: (field, parse)
                     for token, field, parse, _ in _BIMODE_PARAMS}

#: token name -> (PerceptronConfig field, value parser, value formatter)
_PERCEP_PARAMS: Tuple[Tuple[str, str, Callable, Callable], ...] = (
    ("t", "tables", int, str),
    ("r", "row_bits", int, str),
    ("w", "weight_bits", int, str),
    ("h", "history_bits", int, str),
    ("theta", "threshold", int, str),
)

_PERCEP_PARAM_MAP = {token: (field, parse)
                     for token, field, parse, _ in _PERCEP_PARAMS}


def _parse_param_spec(spec: str, param_map: Dict, family: str) -> Dict:
    """Shared ``name=value`` token parser for the bimode/percep grammars."""
    changes: Dict[str, int] = {}
    for token in spec.split(","):
        token = token.strip()
        if not token:
            continue
        if "=" not in token:
            raise ValueError(f"unknown {family} token {token!r}")
        name, value = token.split("=", 1)
        try:
            field, parse = param_map[name]
        except KeyError:
            raise ValueError(f"unknown {family} parameter {name!r}") from None
        changes[field] = parse(value)
    return changes


def parse_bimode_spec(spec: str) -> BiModeConfig:
    """Parse a ``bimode`` key suffix (the part after ``bimode:``)."""
    return BiModeConfig(**_parse_param_spec(spec, _BIMODE_PARAM_MAP, "bimode"))


def bimode_key_suffix(config: BiModeConfig) -> str:
    """Canonical token list for ``config`` (defaults omitted)."""
    default = BiModeConfig()
    tokens = []
    for token, field, _, fmt in _BIMODE_PARAMS:
        current = getattr(config, field)
        if current != getattr(default, field):
            tokens.append(f"{token}={fmt(current)}")
    return ",".join(tokens)


def bimode_canonical_key(config: BiModeConfig) -> str:
    suffix = bimode_key_suffix(config)
    return f"bimode:{suffix}" if suffix else "bimode"


def parse_percep_spec(spec: str) -> PerceptronConfig:
    """Parse a ``percep`` key suffix (the part after ``percep:``)."""
    return PerceptronConfig(**_parse_param_spec(spec, _PERCEP_PARAM_MAP,
                                                "percep"))


def percep_key_suffix(config: PerceptronConfig) -> str:
    """Canonical token list for ``config`` (defaults omitted).

    An explicit ``theta=`` equal to the classic fit for the config's
    history length is dropped: ``percep:theta=122`` and ``percep`` are
    the same predictor, so they must share one key (and one cache file).
    """
    if (config.threshold is not None
            and config.threshold == default_threshold(config.history_bits)):
        config = dataclasses.replace(config, threshold=None)
    default = PerceptronConfig()
    tokens = []
    for token, field, _, fmt in _PERCEP_PARAMS:
        current = getattr(config, field)
        if current != getattr(default, field):
            tokens.append(f"{token}={fmt(current)}")
    return ",".join(tokens)


def percep_canonical_key(config: PerceptronConfig) -> str:
    suffix = percep_key_suffix(config)
    return f"percep:{suffix}" if suffix else "percep"


# ---------------------------------------------------------------------------
# The LLBP token grammar, declaratively.  A flag token pins one config
# field to one value; a parameter token parses ``name=value`` into one
# field.  Order matters for :func:`key_of`: the canonical key emits flags
# first, in declaration order, then parameters.

#: token -> (config field, pinned value)
_LLBP_FLAGS: Tuple[Tuple[str, str, object], ...] = (
    ("lat0", "simulate_timing", False),
    # §V-A's future-work variant: pattern sets live in the L2 rather than
    # a dedicated array, so fetches pay an L2-like latency instead of the
    # 6-cycle dedicated-array access.
    ("virt", "prefetch_latency_cycles", 16),
    ("unbucketed", "bucketed", False),
    ("lru", "cd_replacement", "lru"),
    ("exclusive", "exclusive_provider_training", True),
    ("frontend", "model_frontend_redirects", True),
    ("noguard", "weak_override_guard", False),
)

_SOURCES = {
    "uncond": ContextSource.UNCONDITIONAL,
    "callret": ContextSource.CALL_RET,
    "all": ContextSource.ALL,
}


def _parse_source(value: str) -> ContextSource:
    return _SOURCES[value]


#: token name -> (config field, value parser, value formatter)
_LLBP_PARAMS: Tuple[Tuple[str, str, Callable, Callable], ...] = (
    ("w", "context_window", int, str),
    ("d", "prefetch_distance", int, str),
    ("src", "context_source", _parse_source, lambda v: v.value),
    ("cd_bits", "cd_set_bits", int, str),
    ("ps", "patterns_per_set", int, str),
    ("pb", "pb_entries", int, str),
    ("lat", "prefetch_latency_cycles", int, str),
)

_LLBP_FLAG_MAP = {token: (field, value) for token, field, value in _LLBP_FLAGS}
_LLBP_PARAM_MAP = {token: (field, parse) for token, field, parse, _ in _LLBP_PARAMS}


def parse_llbp_spec(spec: str) -> LLBPConfig:
    """Parse an ``llbp`` key suffix (the part after ``llbp:``).

    Whitespace around tokens and empty tokens are ignored.  Raises
    ``ValueError`` for unknown tokens/parameters and for token
    combinations :class:`LLBPConfig` itself rejects (e.g. ``ps=48``
    without ``unbucketed``).
    """
    config = LLBPConfig()
    if not spec:
        return config
    changes: Dict[str, object] = {}
    for token in spec.split(","):
        token = token.strip()
        if not token:
            continue
        if token in _LLBP_FLAG_MAP:
            field, value = _LLBP_FLAG_MAP[token]
            changes[field] = value
        elif "=" in token:
            name, value = token.split("=", 1)
            try:
                field, parse = _LLBP_PARAM_MAP[name]
            except KeyError:
                raise ValueError(f"unknown LLBP parameter {name!r}") from None
            changes[field] = parse(value)
        else:
            raise ValueError(f"unknown LLBP token {token!r}")
    return dataclasses.replace(config, **changes)


def llbp_key_suffix(config: LLBPConfig) -> str:
    """Canonical token list for ``config`` (inverse of :func:`parse_llbp_spec`).

    Raises ``ValueError`` if some field deviating from the default has no
    token spelling (such a config cannot round-trip through a key).
    """
    default = LLBPConfig()
    handled = set()
    tokens = []
    for token, field, value in _LLBP_FLAGS:
        if field in handled:
            continue
        if getattr(config, field) == value != getattr(default, field):
            tokens.append(token)
            handled.add(field)
    for token, field, _, fmt in _LLBP_PARAMS:
        if field in handled:
            continue
        current = getattr(config, field)
        if current != getattr(default, field):
            tokens.append(f"{token}={fmt(current)}")
            handled.add(field)
    for field in dataclasses.fields(config):
        if field.name in handled:
            continue
        if getattr(config, field.name) != getattr(default, field.name):
            raise ValueError(
                f"LLBPConfig.{field.name} deviates from the default but has "
                f"no key token; this config cannot be expressed as a key")
    return ",".join(tokens)


def parse_key(key: str) -> PredictorSpec:
    """Parse ``key`` into a :class:`PredictorSpec` without building tables.

    Raises ``KeyError`` for unknown plain keys and ``ValueError`` for a
    malformed ``llbp`` suffix.
    """
    if key in _SIMPLE_FACTORIES:
        return PredictorSpec(family=key)
    if key == "llbp":
        return PredictorSpec(family="llbp", config=LLBPConfig())
    if key.startswith("llbp:"):
        return PredictorSpec(family="llbp",
                             config=parse_llbp_spec(key[len("llbp:"):]))
    if key.startswith("tsl:"):
        return PredictorSpec(family="tsl",
                             config=parse_tsl_spec(key[len("tsl:"):]))
    if key == "bimode":
        return PredictorSpec(family="bimode", config=BiModeConfig())
    if key.startswith("bimode:"):
        return PredictorSpec(family="bimode",
                             config=parse_bimode_spec(key[len("bimode:"):]))
    if key == "percep":
        return PredictorSpec(family="percep", config=PerceptronConfig())
    if key.startswith("percep:"):
        return PredictorSpec(family="percep",
                             config=parse_percep_spec(key[len("percep:"):]))
    raise KeyError(f"unknown predictor key {key!r}")


def canonical_key(key: str) -> str:
    """The canonical spelling of ``key`` (see module docstring).

    Idempotent, and consistent with :func:`key_of`:
    ``canonical_key(k) == key_of(make_predictor(k))`` for every key the
    registry can instantiate.  Same errors as :func:`parse_key`.
    """
    spec = parse_key(key)
    if spec.family == "llbp":
        suffix = llbp_key_suffix(spec.config)
        return f"llbp:{suffix}" if suffix else "llbp"
    if spec.family == "tsl":
        return tsl_canonical_key(spec.config)
    if spec.family == "bimode":
        return bimode_canonical_key(spec.config)
    if spec.family == "percep":
        return percep_canonical_key(spec.config)
    return spec.family


def make_predictor(key: str) -> BranchPredictor:
    """Instantiate the predictor named by ``key`` (see module docstring)."""
    spec = parse_key(key)
    if spec.family == "llbp":
        return LLBPTageScL(spec.config)
    if spec.family == "tsl":
        return _make_tsl(spec.config)
    if spec.family == "bimode":
        return BiMode(spec.config)
    if spec.family == "percep":
        return HashedPerceptron(spec.config)
    return _SIMPLE_FACTORIES[spec.family]()


def key_of(predictor: BranchPredictor) -> str:
    """Canonical registry key for ``predictor``.

    The inverse of :func:`make_predictor` up to configuration:
    ``parse_key(key_of(p))`` resolves to the same family and config.
    Raises ``ValueError`` for predictors the registry cannot express.
    """
    if isinstance(predictor, LLBPTageScL):
        suffix = llbp_key_suffix(predictor.config)
        return f"llbp:{suffix}" if suffix else "llbp"
    if isinstance(predictor, TageScL):
        name = predictor.config.name
        if name.startswith("tsl:"):
            # Parameterised geometries carry their canonical key as the
            # display name (set by _make_tsl).
            return name
        try:
            return _TSL_NAME_TO_KEY[name]
        except KeyError:
            raise ValueError(
                f"no registry key for TageScL preset named {name!r}") from None
    if type(predictor) is BiMode:
        return bimode_canonical_key(predictor.config)
    if type(predictor) is HashedPerceptron:
        return percep_canonical_key(predictor.config)
    if type(predictor) is Bimodal:
        return "bimodal"
    if type(predictor) is GShare:
        return "gshare"
    if type(predictor) is PerfectPredictor:
        return "perfect"
    raise ValueError(f"no registry key for {type(predictor).__name__}")


def known_keys() -> Tuple[str, ...]:
    """Every plain key the registry accepts (some take a suffix too)."""
    return tuple(_SIMPLE_FACTORIES) + ("llbp", "bimode", "percep")


def parameterized_families() -> Tuple[str, ...]:
    """Families that accept a ``:``-separated token suffix."""
    return ("llbp", "tsl", "bimode", "percep")
