"""Hashed perceptron: signed-weight tables over folded global history.

Jiménez & Lin, "Dynamic Branch Prediction with Perceptrons" (HPCA
2001), in the table-hashed form used by production cores: instead of
one weight per history bit, the global history is cut into equal
segments, each segment is XOR-folded down to the table index width and
hashed with the PC, and one signed weight is read per table.  The
prediction is the sign of the summed weights; training bumps every
contributing weight toward the outcome whenever the prediction was
wrong *or* the sum's magnitude is below the training threshold
(threshold training keeps weights calibrated instead of saturating).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import NamedTuple, Optional

from repro.predictors.base import BranchPredictor


def default_threshold(history_bits: int) -> int:
    """The classic perceptron threshold fit: floor(1.93 * h + 14)."""
    return int(1.93 * history_bits + 14)


@dataclass(frozen=True)
class PerceptronConfig:
    """Geometry of a :class:`HashedPerceptron` (registry family ``percep:``)."""

    tables: int = 8           # weight tables; table 0 is the PC-indexed bias
    row_bits: int = 10        # log2 rows per table
    weight_bits: int = 8      # signed weight width
    history_bits: int = 56    # total global history, split over tables-1 segments
    threshold: Optional[int] = None  # None -> default_threshold(history_bits)

    def __post_init__(self) -> None:
        if self.tables < 2:
            raise ValueError("tables must be >= 2 (bias + at least one history table)")
        if not 1 <= self.row_bits <= 24:
            raise ValueError("row_bits must be in [1, 24]")
        if not 2 <= self.weight_bits <= 16:
            raise ValueError("weight_bits must be in [2, 16]")
        if not 1 <= self.history_bits <= 64:
            raise ValueError("history_bits must be in [1, 64]")
        if self.history_bits % (self.tables - 1) != 0:
            raise ValueError("history_bits must divide evenly over tables-1 segments")
        if self.threshold is not None and self.threshold < 1:
            raise ValueError("threshold must be >= 1")

    @property
    def segment_bits(self) -> int:
        return self.history_bits // (self.tables - 1)

    def effective_threshold(self) -> int:
        if self.threshold is not None:
            return self.threshold
        return default_threshold(self.history_bits)

    def storage_bits(self) -> int:
        return self.tables * (1 << self.row_bits) * self.weight_bits


class PerceptronMeta(NamedTuple):
    pred: bool
    total: int


def fold_segment(value: int, row_bits: int) -> int:
    """XOR-fold ``value`` down to ``row_bits`` bits."""
    mask = (1 << row_bits) - 1
    folded = 0
    while value:
        folded ^= value & mask
        value >>= row_bits
    return folded


class HashedPerceptron(BranchPredictor):
    """Sum of per-table signed weights indexed by pc ^ folded history."""

    name = "percep"

    def __init__(self, config: PerceptronConfig = PerceptronConfig()) -> None:
        super().__init__()
        self.config = config
        self._rmask = (1 << config.row_bits) - 1
        self._hist_mask = (1 << config.history_bits) - 1
        self._seg_mask = (1 << config.segment_bits) - 1
        self._theta = config.effective_threshold()
        self._wmin = -(1 << (config.weight_bits - 1))
        self._wmax = (1 << (config.weight_bits - 1)) - 1
        self.tables = [[0] * (1 << config.row_bits) for _ in range(config.tables)]
        self.history = 0

    def _indices(self, pc: int) -> "list[int]":
        base = (pc >> 2) & self._rmask
        indices = [base]
        seg_bits = self.config.segment_bits
        for t in range(1, self.config.tables):
            segment = (self.history >> ((t - 1) * seg_bits)) & self._seg_mask
            indices.append((base ^ fold_segment(segment, self.config.row_bits))
                           & self._rmask)
        return indices

    def predict(self, pc: int) -> PerceptronMeta:
        self.stats.lookups += 1
        total = 0
        for table, idx in zip(self.tables, self._indices(pc)):
            total += table[idx]
        return PerceptronMeta(pred=total >= 0, total=total)

    def train(self, pc: int, taken: bool, meta: PerceptronMeta) -> None:
        if meta.pred != taken:
            self.stats.mispredictions += 1
        if meta.pred == taken and abs(meta.total) > self._theta:
            return
        step = 1 if taken else -1
        for table, idx in zip(self.tables, self._indices(pc)):
            w = table[idx] + step
            if self._wmin <= w <= self._wmax:
                table[idx] = w

    def update_history(self, pc: int, branch_type: int, taken: bool,
                       target: int) -> None:
        if branch_type == 0:  # BranchType.COND
            self.history = ((self.history << 1) | (1 if taken else 0)) & self._hist_mask

    def storage_bits(self) -> int:
        return self.config.storage_bits()

    def state_arrays(self) -> dict:
        import numpy as np

        arrays = {
            "table%d" % t: np.array(rows, dtype=np.int32)
            for t, rows in enumerate(self.tables)
        }
        arrays["history"] = np.array(self.history, dtype=np.uint64)
        return arrays
