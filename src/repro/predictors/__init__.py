"""Branch predictors: the baseline stack the paper builds on.

The package provides every predictor configuration the paper evaluates:

* ``Bimodal`` and ``GShare`` — classic baselines (gshare is the substrate
  of the related-work comparison in §VIII).
* ``Tage`` — the core TAgged GEometric predictor with folded-history
  hashing, usefulness-guided replacement and tick-throttled allocation.
* ``LoopPredictor`` and ``StatisticalCorrector`` — TAGE-SC-L's auxiliary
  components.
* ``TageScL`` — the composed TAGE-SC-L, size-scalable (64K … 1M).
* Infinite-capacity variants (``Inf TAGE`` / ``Inf TSL``) for the limit
  study of §II-C.
* ``PerfectPredictor`` — the speedup upper bound of Fig 10.

``presets`` names the exact configurations used throughout the paper.
"""

from repro.predictors.base import BranchPredictor, PredictorStats
from repro.predictors.history import HistorySpec, HistorySet, GlobalHistory
from repro.predictors.bimodal import Bimodal
from repro.predictors.bimode import BiMode, BiModeConfig
from repro.predictors.gshare import GShare
from repro.predictors.perceptron import HashedPerceptron, PerceptronConfig
from repro.predictors.tage import Tage, TageConfig, TageResult
from repro.predictors.loop import LoopPredictor
from repro.predictors.statistical import StatisticalCorrector
from repro.predictors.tage_sc_l import TageScL, TslConfig
from repro.predictors.perfect import PerfectPredictor
from repro.predictors.btb import BranchTargetBuffer
from repro.predictors.indirect import IndirectPredictor, IttageConfig
from repro.predictors.presets import (
    tsl_64k,
    tsl_scaled,
    tsl_infinite,
    tage_infinite,
    TAGE_HISTORY_LENGTHS,
    LLBP_HISTORY_LENGTHS,
)

__all__ = [
    "BranchPredictor",
    "PredictorStats",
    "HistorySpec",
    "HistorySet",
    "GlobalHistory",
    "Bimodal",
    "BiMode",
    "BiModeConfig",
    "GShare",
    "HashedPerceptron",
    "PerceptronConfig",
    "Tage",
    "TageConfig",
    "TageResult",
    "LoopPredictor",
    "StatisticalCorrector",
    "TageScL",
    "TslConfig",
    "PerfectPredictor",
    "BranchTargetBuffer",
    "IndirectPredictor",
    "IttageConfig",
    "tsl_64k",
    "tsl_scaled",
    "tsl_infinite",
    "tage_infinite",
    "TAGE_HISTORY_LENGTHS",
    "LLBP_HISTORY_LENGTHS",
]
