"""Statistical corrector: TAGE-SC-L's second auxiliary component (§II-B).

A GEHL-style perceptron-like corrector: several tables of signed counters
indexed by PC hashed with different slices of (its own) global outcome
history, plus a bias table keyed by (PC, TAGE's prediction) and a term
derived from TAGE's provider confidence.  When the weighted sum disagrees
with TAGE and its magnitude clears a dynamically-adapted threshold, the
corrector flips the prediction — catching statistically biased branches
TAGE mis-learns.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple


class ScResult:
    """Outcome of a corrector lookup (``__slots__``: allocated per branch)."""

    __slots__ = ("sum", "pred", "use", "base_pred", "indices", "bias_index")

    def __init__(self, sum: int = 0, pred: bool = False, use: bool = False,
                 base_pred: bool = False, indices: Tuple[int, ...] = (),
                 bias_index: int = 0) -> None:
        self.sum = sum
        self.pred = pred              # corrector's own direction
        self.use = use                # confident enough to override TAGE
        self.base_pred = base_pred    # the prediction being corrected
        self.indices = indices
        self.bias_index = bias_index


def _compile_vote(hist_masks: Sequence[int], index_bits: int, mask: int,
                  tables: List[List[int]]):
    """Compile the unrolled per-component hash-and-vote core of ``lookup``.

    History masks, pc shifts and the index mask are baked in as constants;
    the counter tables are bound by identity (mutated in place by
    ``train``, never rebound).  Returns ``(indices, vote)`` where ``vote``
    is the sum of the centred component counters,
    ``sum(2 * table[idx] + 1)`` — equivalent to hashing each component
    with ``_component_index`` and accumulating.
    """
    n = len(hist_masks)
    lines = []
    add = lines.append
    add(f"def _vote(pcx, history, "
        f"{', '.join(f'T{c}=T{c}' for c in range(n))}):")
    for c, hist_mask in enumerate(hist_masks):
        add(f"    h = history & {hist_mask}")
        add(f"    i{c} = (pcx ^ (pcx >> {c + 2}) ^ h ^ (h >> {index_bits}))"
            f" & {mask}")
    indices = ", ".join(f"i{c}" for c in range(n)) + ("," if n == 1 else "")
    votes = " + ".join(f"T{c}[i{c}]" for c in range(n))
    add(f"    return ({indices}), 2 * ({votes}) + {n}")
    namespace = {f"T{c}": table for c, table in enumerate(tables)}
    exec(compile("\n".join(lines), "<sc-vote>", "exec"), namespace)
    return namespace["_vote"]


class StatisticalCorrector:
    """GEHL-style corrector with a dynamic confidence threshold."""

    # Counter range: 6-bit signed.
    CTR_LO, CTR_HI = -32, 31

    def __init__(self, history_lengths: Sequence[int] = (3, 6, 11, 18, 27),
                 index_bits: int = 10, seed: int = 0) -> None:
        if not history_lengths:
            raise ValueError("need at least one history component")
        self.history_lengths = tuple(history_lengths)
        self.index_bits = index_bits
        self._mask = (1 << index_bits) - 1
        # Per-component history-window masks, precomputed for lookup.
        self._hist_masks = tuple((1 << length) - 1 for length in self.history_lengths)
        self.tables: List[List[int]] = [
            [0] * (1 << index_bits) for _ in self.history_lengths
        ]
        # Generated, unrolled component-vote core (see _compile_vote); the
        # tables are bound by identity and mutated in place, so the
        # compiled function never goes stale.
        self._vote = _compile_vote(
            self._hist_masks, index_bits, self._mask, self.tables)
        self.bias_table = [0] * (1 << index_bits)
        self.history = 0  # corrector-local outcome history
        self.threshold = 6
        self._tc = 0  # threshold-adaptation counter
        self.overrides = 0
        self.good_overrides = 0

    # -- lookup ---------------------------------------------------------------

    def _component_index(self, pc: int, component: int) -> int:
        length = self.history_lengths[component]
        h = self.history & ((1 << length) - 1)
        pcx = pc >> 2
        return (pcx ^ (pcx >> (component + 2)) ^ h ^ (h >> self.index_bits)) & self._mask

    def lookup(self, pc: int, base_pred: bool, provider_ctr: int,
               provider_valid: bool) -> ScResult:
        pcx = pc >> 2
        bias_index = (pcx * 2 + (1 if base_pred else 0)) & self._mask
        # The generated core hashes every history window and accumulates
        # the centred component votes (equivalent to summing
        # ``2 * table[_component_index(pc, c)] + 1`` over components).
        indices, vote = self._vote(pcx, self.history)
        total = 2 * self.bias_table[bias_index] + 1 + vote
        # TAGE's confidence participates in the vote (centered magnitude).
        if provider_valid:
            conf = abs(2 * provider_ctr + 1)
            total += (conf + 1) * (2 if base_pred else -2)
        else:
            total += 4 if base_pred else -4

        res = ScResult.__new__(ScResult)
        res.sum = total
        res.pred = pred = total >= 0
        res.base_pred = base_pred
        res.indices = indices
        res.bias_index = bias_index
        res.use = pred != base_pred and abs(total) >= self.threshold
        return res

    # -- training ---------------------------------------------------------------

    def train(self, pc: int, taken: bool, res: ScResult) -> None:
        final_pred = res.pred if res.use else res.base_pred
        if res.use:
            self.overrides += 1
            if res.pred == taken:
                self.good_overrides += 1

        # Threshold adaptation: when the corrector disagreed with TAGE,
        # nudge the confidence bar toward fewer harmful flips.
        if res.pred != res.base_pred:
            if res.pred == taken:
                self._tc -= 1
                if self._tc <= -64:
                    self._tc = 0
                    if self.threshold > 4:
                        self.threshold -= 1
            else:
                self._tc += 1
                if self._tc >= 64:
                    self._tc = 0
                    if self.threshold < 64:
                        self.threshold += 1

        # Train counters on a final misprediction or low confidence.
        if final_pred != taken or abs(res.sum) < 4 * self.threshold:
            self._adjust(self.bias_table, res.bias_index, taken)
            for table, idx in zip(self.tables, res.indices):
                self._adjust(table, idx, taken)

    def _adjust(self, table: List[int], idx: int, taken: bool) -> None:
        v = table[idx]
        if taken:
            if v < self.CTR_HI:
                table[idx] = v + 1
        elif v > self.CTR_LO:
            table[idx] = v - 1

    # -- history ------------------------------------------------------------------

    def push_outcome(self, taken: bool) -> None:
        self.history = ((self.history << 1) | (1 if taken else 0)) & ((1 << 64) - 1)

    def storage_bits(self) -> int:
        entries = (len(self.tables) + 1) * (1 << self.index_bits)
        return entries * 6
