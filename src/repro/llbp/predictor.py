"""The composite predictor: LLBP alongside an unmodified TAGE-SC-L (§V).

Prediction path (Fig 7): the pattern buffer is indexed by the current
context ID; the matching pattern with the longest history is compared —
by history length — against TAGE's provider, and the longer of the two
supplies the base prediction, which then flows through the baseline's
statistical corrector and loop predictor as usual.

Training (§V-D): only the providing component updates its counter.  When
the provider mispredicts, LLBP allocates a pattern with the next-longer
history in the current context's pattern set (creating the context in the
directory first if needed — step 1), and TAGE runs its normal allocation
for its own mispredictions.

Timing (§V-C): prefetches are issued on context-forming branches using
the D-advanced prefetch CID and arrive after the CD+LLBP latency; final
mispredictions squash in-flight prefetches and restart prefetching, which
is where late pattern sets can cost LLBP coverage.
"""

from __future__ import annotations

from typing import List, Optional

from repro import telemetry
from repro.common.rng import XorShift32
from repro.llbp.config import LLBPConfig
from repro.llbp.pattern import PatternSet
from repro.llbp.pattern_buffer import PatternBuffer
from repro.llbp.prefetch import PrefetchEngine
from repro.llbp.rcr import RollingContextRegister
from repro.llbp.storage import ContextDirectory
from repro.predictors.base import BranchPredictor
from repro.predictors.history import GlobalHistory, HistorySet, HistorySpec
from repro.predictors.presets import TAGE_HISTORY_LENGTHS, tsl_64k
from repro.predictors.tage_sc_l import TageScL, TslResult


class LLBPMeta:
    """Per-prediction metadata carried from ``predict`` to ``train``."""

    __slots__ = ("tsl", "ccid", "pattern_set", "slot", "slot_tags",
                 "llbp_pred", "llbp_rank", "overrode")

    def __init__(self, tsl: TslResult, ccid: int,
                 pattern_set: Optional[PatternSet], slot: int,
                 slot_tags: Optional[List[int]], llbp_pred: bool,
                 llbp_rank: int, overrode: bool) -> None:
        self.tsl = tsl
        self.ccid = ccid
        self.pattern_set = pattern_set
        self.slot = slot                # matching pattern slot, -1 = no match
        self.slot_tags = slot_tags      # computed tags per hash slot
        self.llbp_pred = llbp_pred
        self.llbp_rank = llbp_rank      # history-length rank of the match
        self.overrode = overrode

    @property
    def pred(self) -> bool:
        return self.tsl.pred


def _compile_slot_tags(slot_folds, tag_mask: int, values: List[int],
                       second_values: List[int],
                       memo: Optional[List] = None,
                       seq: Optional[List[int]] = None):
    """Compile an unrolled slot-tag hash: one list literal, no loop.

    Per-slot shifts, salts and fold indices are baked in as constants;
    the fold-value lists are bound by identity (mutated in place by their
    ``HistorySet`` owners, never rebound).  ``second_values`` holds each
    slot's second (width ``ptb - 1``) fold — usually the baseline TAGE's
    own tag-fold list, borrowed rather than duplicated.  Semantically
    identical to looping over ``_slot_folds`` and hashing each slot.

    With ``memo``/``seq`` the hash additionally publishes its result as
    ``memo[:] = seq[0], pcx, tags`` so the batched engine can hand the
    list to an identical-geometry LLBP stepped later on the same branch
    (slot tags are a pure function of the shared history stream).
    """
    exprs = [
        f"(pcx ^ (pcx >> {sh}) ^ values[{ja}] ^ (second[{jb}] << 1)"
        f" ^ {salt}) & {tag_mask}"
        for sh, salt, ja, jb in slot_folds
    ]
    body = "[" + ",\n            ".join(exprs) + "]"
    if memo is None:
        lines = ["def _slot_tags(pcx, values=values, second=second):",
                 "    return " + body]
    else:
        lines = ["def _slot_tags(pcx, values=values, second=second,"
                 " memo=memo, seq=seq):",
                 "    memo[0] = seq[0]",
                 "    memo[1] = pcx",
                 "    memo[2] = tags = " + body,
                 "    return tags"]
    namespace = {"values": values, "second": second_values,
                 "memo": memo, "seq": seq}
    exec(compile("\n".join(lines), "<slot-tags>", "exec"), namespace)
    return namespace["_slot_tags"]


class LLBPTageScL(BranchPredictor):
    """LLBP backing a TAGE-SC-L baseline (the paper's evaluated design)."""

    name = "llbp"

    def __init__(self, config: LLBPConfig = LLBPConfig(),
                 baseline: Optional[TageScL] = None,
                 seed: int = 0x11BB) -> None:
        super().__init__()
        self.config = config
        self.tsl = baseline if baseline is not None else tsl_64k()
        if not config.simulate_timing:
            self.name = "llbp-0lat"
        self.history: GlobalHistory = self.tsl.history
        # Folded registers for the 16 hash slots, fed by the same history
        # stream as the baseline TAGE (§V-B).
        # Tag-only: LLBP never indexes by a folded history, and with
        # index_bits == tag_bits the index fold would just duplicate the
        # tag fold — tag_only drops it, cutting a third of the fold work.
        # Starred (duplicate-length) slots share identical fold values, so
        # only unique lengths carry registers; per-slot rows map back.
        unique: dict = {}
        for length in config.slot_lengths:
            if length not in unique:
                unique[length] = len(unique)
        ptb = config.pattern_tag_bits
        specs = [HistorySpec(length, ptb, ptb) for length in unique]
        # Second fold (width ptb-1): when the baseline TAGE folds the very
        # same history lengths at that width (the standard geometry —
        # slot lengths are TAGE lengths and tag_bits == ptb - 1), its tag
        # folds are bit-identical registers, so borrow them instead of
        # maintaining duplicates.  Otherwise keep a private pair.
        tage_cfg = self.tsl.tage.config
        tage_lengths = tage_cfg.history_lengths
        if (tage_cfg.tag_bits == ptb - 1
                and all(length in tage_lengths for length in unique)):
            self.folded = HistorySet(self.history, specs, fold_widths=(ptb,))
            second_values = self.tsl.tage.folded.values
            second = {
                length: 3 * tage_lengths.index(length) + 1 for length in unique
            }
            first_stride = 1
        else:
            self.folded = HistorySet(self.history, specs, tag_only=True)
            second_values = self.folded.values
            second = {length: 2 * unique[length] + 1 for length in unique}
            first_stride = 2
        # Per-slot (pc shift, salt, fold indices) rows for compute_slot_tags;
        # ja indexes this set's values, jb the (possibly borrowed) second
        # fold's list.
        self._slot_folds = [
            (h + 2, h * 0x9E5, first_stride * unique[length], second[length])
            for h, length in enumerate(config.slot_lengths)
        ]
        self._slot_second = second_values
        self._slot_tags = _compile_slot_tags(
            self._slot_folds, (1 << ptb) - 1,
            self.folded.values, second_values)
        # History-length rank of each hash slot, in TAGE-table units, so a
        # small comparison arbitrates between the two predictors (§V-B).
        self._slot_rank = [
            TAGE_HISTORY_LENGTHS.index(length) + 1 for length in config.slot_lengths
        ]
        # Allocation candidates per provider rank (the hash slots whose
        # history is longer), precomputed — ranks are small and fixed.
        max_rank = max(self._slot_rank)
        self._alloc_candidates = [
            [h for h, rank in enumerate(self._slot_rank) if rank > pr]
            for pr in range(max_rank + 2)
        ]
        self._tag_mask = (1 << config.pattern_tag_bits) - 1

        self.rcr = RollingContextRegister(config)
        self.directory = ContextDirectory(config)
        self.buffer = PatternBuffer(config)
        self.prefetcher = PrefetchEngine(config, self.directory, self.buffer)
        self._rng = XorShift32(seed)
        self._now = 0
        self._cd_accesses = 0
        # Optional front-end redirect modelling (§VI / §VII-A).
        self.btb = None
        self.indirect = None
        if config.model_frontend_redirects:
            from repro.predictors.btb import BranchTargetBuffer
            from repro.predictors.indirect import IndirectPredictor

            self.btb = BranchTargetBuffer()
            self.indirect = IndirectPredictor(history=self.history)
        # Fig 15 breakdown counters.
        self.counts = {
            "predictions": 0,
            "llbp_provided": 0,
            "no_override": 0,
            "override_good": 0,
            "override_bad": 0,
            "override_both_correct": 0,
            "override_both_wrong": 0,
            "pb_miss_with_context": 0,
            "allocations": 0,
            "context_creations": 0,
        }

    # -- hashing ---------------------------------------------------------------

    def compute_slot_tags(self, pc: int) -> List[int]:
        """Tags for all 16 hash slots (H1..H16 in Fig 7).

        Starred slots (duplicate lengths) fold the same history at the
        same width but mix the PC differently — the slot index acts as the
        hash salt (§VI: "a modified hash function").
        """
        return self._slot_tags(pc >> 2)

    # -- prediction ---------------------------------------------------------------

    def predict(self, pc: int) -> LLBPMeta:
        self.stats.lookups += 1
        self.counts["predictions"] += 1

        ccid = self.rcr.ccid
        pattern_set = self.buffer.get(ccid)
        if pattern_set is None and ccid in self.directory:
            self.counts["pb_miss_with_context"] += 1

        slot = -1
        slot_tags: Optional[List[int]] = None
        llbp_pred = False
        llbp_rank = 0
        llbp_weak = False
        if pattern_set is not None:
            slot_tags = self.compute_slot_tags(pc)
            slot = pattern_set.find_longest(slot_tags)
            if slot >= 0:
                ctr = pattern_set.counter(slot)
                llbp_pred = ctr >= 0
                llbp_weak = ctr in (0, -1)
                llbp_rank = self._slot_rank[pattern_set.hash_slot(slot)]

        tage_res = self.tsl.tage.lookup(pc)
        overrode = slot >= 0 and llbp_rank >= tage_res.provider_length_rank
        if (overrode and llbp_weak and self.config.weak_override_guard
                and tage_res.provider >= 0 and not tage_res.provider_weak):
            # A freshly-allocated pattern defers to an established TAGE
            # provider (the LLBP analogue of use-alt-on-newly-allocated).
            overrode = False
        if slot >= 0:
            self.counts["llbp_provided"] += 1
            if not overrode:
                self.counts["no_override"] += 1

        override = None
        if overrode:
            override = (llbp_pred, pattern_set.counter(slot))
        tsl_res = self.tsl.lookup(pc, base_override=override, tage_res=tage_res)

        return LLBPMeta(
            tsl=tsl_res,
            ccid=ccid,
            pattern_set=pattern_set,
            slot=slot,
            slot_tags=slot_tags,
            llbp_pred=llbp_pred,
            llbp_rank=llbp_rank,
            overrode=overrode,
        )

    # -- training -------------------------------------------------------------------

    def train(self, pc: int, taken: bool, meta: LLBPMeta) -> None:
        mispredicted = meta.pred != taken
        if mispredicted:
            self.stats.mispredictions += 1

        exclusive = self.config.exclusive_provider_training
        if meta.overrode:
            tage_pred = meta.tsl.tage.pred
            if meta.llbp_pred == taken:
                key = "override_both_correct" if tage_pred == taken else "override_good"
            else:
                key = "override_both_wrong" if tage_pred != taken else "override_bad"
            self.counts[key] += 1
            # LLBP provided: its pattern always trains; TAGE's provider
            # cancels its update only under the paper's exclusive policy.
            meta.pattern_set.update_counter(meta.slot, taken)
            self.tsl.train(pc, taken, meta.tsl, suppress_tage_provider=exclusive)
        else:
            if meta.slot >= 0 and not exclusive:
                meta.pattern_set.update_counter(meta.slot, taken)
            self.tsl.train(pc, taken, meta.tsl)

        # Provider misprediction drives LLBP pattern allocation (§V-D).
        if meta.tsl.base_pred != taken:
            provider_rank = meta.llbp_rank if meta.overrode \
                else meta.tsl.tage.provider_length_rank
            self._allocate(pc, taken, meta, provider_rank)

        # A final misprediction resets the pipeline: squash in-flight
        # prefetches and restart from the checkpointed RCR state, re-running
        # the whole D-deep prefetch pipeline (§V-C, §V-E2).
        if mispredicted and self.config.simulate_timing:
            self.prefetcher.squash()
            for distance in range(self.config.prefetch_distance + 1):
                self.prefetcher.issue(self.rcr.cid_at(distance), self._now)

    def _allocate(self, pc: int, taken: bool, meta: LLBPMeta,
                  provider_rank: int) -> None:
        """Allocate a longer-history pattern in the current context."""
        slot_tags = meta.slot_tags
        if slot_tags is None and meta.pattern_set is not None:
            slot_tags = self.compute_slot_tags(pc)
        self._allocate_parts(pc, taken, meta.ccid, meta.pattern_set,
                             slot_tags, provider_rank, self._now)

    def _allocate_parts(self, pc: int, taken: bool, ccid: int,
                        pattern_set: Optional[PatternSet],
                        slot_tags: Optional[List[int]],
                        provider_rank: int, now: int) -> None:
        """:meth:`_allocate` with every input explicit (no meta object).

        The array engine calls this directly: it carries precomputed
        slot tags and its own local clock, and must not fall back to
        :meth:`compute_slot_tags` (its folded registers never advance).
        """
        # Find the shortest LLBP history longer than the provider's, with
        # the same one-step randomisation TAGE's allocator uses.
        table = self._alloc_candidates
        candidates = (table[provider_rank]
                      if provider_rank < len(table) else [])
        if not candidates:
            return
        pick = candidates[0]
        if len(candidates) > 1 and self._rng.chance(1, 2):
            pick = candidates[1]

        if pattern_set is None:
            if ccid in self.directory:
                # Context exists but was not resident at predict time:
                # demand-fetch it for future use; allocating into a
                # non-resident set is not possible in hardware.
                self.prefetcher.issue(ccid, now)
                return
            # Step 1: start tracking this context.
            pattern_set, _ = self.directory.insert(ccid)
            self.buffer.fill(ccid, pattern_set, self.directory)
            self.counts["context_creations"] += 1

        if slot_tags is None:
            slot_tags = self.compute_slot_tags(pc)
        pattern_set.allocate(pick, slot_tags[pick], taken)
        self.counts["allocations"] += 1

    # -- history / timing ---------------------------------------------------------------

    def update_history(self, pc: int, branch_type: int, taken: bool,
                       target: int) -> None:
        if self.btb is not None:
            self._model_redirects(pc, branch_type, taken, target)
        self.tsl.update_history(pc, branch_type, taken, target)
        if self.rcr.qualifies(branch_type):
            changed = self.rcr.push(pc)
            if changed:
                self._cd_accesses += 1
            self.prefetcher.issue(self.rcr.prefetch_cid, self._now)

    def _model_redirects(self, pc: int, branch_type: int, taken: bool,
                         target: int) -> None:
        """BTB misses and wrong indirect targets reset prefetching (§VI)."""
        flush = False
        if branch_type in (4, 5):  # IND_JUMP / IND_CALL
            res = self.indirect.predict(pc)
            if not self.indirect.train(pc, target, res):
                flush = True
                self.counts["indirect_flushes"] = (
                    self.counts.get("indirect_flushes", 0) + 1)
        if taken and not self.btb.predict_and_update(pc, target):
            flush = True
            self.counts["btb_flushes"] = self.counts.get("btb_flushes", 0) + 1
        if flush and self.config.simulate_timing:
            self.prefetcher.squash()
            for distance in range(self.config.prefetch_distance + 1):
                self.prefetcher.issue(self.rcr.cid_at(distance), self._now)

    def advance(self, instructions: int) -> None:
        self._now += instructions
        self.prefetcher.drain(self._now)

    # -- reporting ------------------------------------------------------------------------

    def storage_bits(self) -> int:
        return (self.tsl.storage_bits() + self.config.storage_bits
                + self.config.cd_bits
                + self.config.pb_entries * self.config.pattern_set_bits)

    def state_arrays(self) -> dict:
        """Snapshot of all mutable state as numpy arrays.

        Baseline TAGE-SC-L keys are prefixed ``tsl/``; the context
        directory (``cd/``) flattens every resident pattern set in
        set-major, insertion order (the order is replacement-visible, so
        it is part of the state); ``pb/`` records buffer residency in
        LRU order; ``rcr/pcs`` captures the context register (its CIDs
        and accumulators are derived from it).  Raw RCR accumulators are
        intentionally excluded: they can exceed 64 bits.
        """
        import numpy as np

        arrays = {f"tsl/{key}": value
                  for key, value in self.tsl.state_arrays().items()}
        cd_rows, valid, tags, ctrs, hslots = [], [], [], [], []
        for set_index, entries in enumerate(self.directory._sets):
            for cid, ps in entries.items():
                cd_rows.append((set_index, cid, int(ps.dirty)))
                valid.append([int(v) for v in ps.valid])
                tags.append(ps.tags)
                ctrs.append(ps.ctrs)
                hslots.append(ps.hslots)
        arrays["cd/entries"] = np.array(cd_rows, dtype=np.int64).reshape(-1, 3)
        arrays["cd/valid"] = np.array(valid, dtype=np.int8).reshape(
            len(cd_rows), -1)
        arrays["cd/tags"] = np.array(tags, dtype=np.int64).reshape(
            len(cd_rows), -1)
        arrays["cd/ctrs"] = np.array(ctrs, dtype=np.int16).reshape(
            len(cd_rows), -1)
        arrays["cd/hslots"] = np.array(hslots, dtype=np.int16).reshape(
            len(cd_rows), -1)
        arrays["pb/entries"] = np.array(
            [(set_index, cid)
             for set_index, entries in enumerate(self.buffer._sets)
             for cid in entries], dtype=np.int64).reshape(-1, 2)
        arrays["rcr/pcs"] = np.array(self.rcr._pcs, dtype=np.uint64)
        arrays["now"] = np.array(self._now, dtype=np.int64)
        arrays["rng"] = np.array(self._rng.state, dtype=np.uint64)
        return arrays

    def bandwidth_bits(self) -> dict:
        """Read/write traffic between LLBP storage and the PB (Fig 11)."""
        set_bits = self.config.pattern_set_bits
        return {
            "read_bits": self.buffer.fills * set_bits,
            "write_bits": self.buffer.writebacks * set_bits,
        }

    def access_counts(self) -> dict:
        """Structure access counts for the energy model (Fig 12)."""
        return {
            "pb_accesses": self.buffer.hits + self.buffer.misses,
            "cd_accesses": self._cd_accesses,
            "llbp_accesses": self.buffer.fills + self.buffer.writebacks,
        }

    def finalize_stats(self) -> None:
        """Fold component counters into ``stats.extra`` for the engine."""
        extra = self.stats.extra
        extra.update(self.counts)
        extra.update(self.access_counts())
        extra.update(self.bandwidth_bits())
        extra["prefetch_issued"] = self.prefetcher.issued
        extra["prefetch_delivered"] = self.prefetcher.delivered
        extra["prefetch_squashed"] = self.prefetcher.squashed
        extra["cd_occupancy_pct"] = int(100 * self.directory.occupancy())
        # Surface the structure counters the figures never print —
        # pattern-buffer hit rate and prefetch timeliness — through the
        # telemetry stream (no-op unless REPRO_TELEMETRY is set).
        telemetry.emit(
            "llbp.counters", predictor=self.name,
            pb_hits=self.buffer.hits, pb_misses=self.buffer.misses,
            fills=self.buffer.fills, writebacks=self.buffer.writebacks,
            prefetch_issued=self.prefetcher.issued,
            prefetch_delivered=self.prefetcher.delivered,
            prefetch_squashed=self.prefetcher.squashed,
            prefetch_directory_misses=self.prefetcher.directory_misses,
            cd_occupancy_pct=extra["cd_occupancy_pct"])
