"""The Last-Level Branch Predictor (LLBP) — the paper's contribution.

The package mirrors Fig 7's four hardware components:

* :mod:`repro.llbp.rcr`            — the Rolling Context Register and the
  position-shifted XOR context-ID hash (§V-C, §V-E3);
* :mod:`repro.llbp.pattern`        — patterns and bucketed pattern sets,
  kept sorted by history length (§V-B, §V-D);
* :mod:`repro.llbp.storage`        — the context directory + bulk pattern
  set storage with confidence-based replacement (§V-A, §V-D step 1);
* :mod:`repro.llbp.pattern_buffer` — the in-core pattern buffer (§V-A);
* :mod:`repro.llbp.prefetch`       — pattern-set prefetching with latency
  and squash-on-mispredict modelling (§V-C);
* :mod:`repro.llbp.predictor`      — the composite predictor: LLBP beside
  an unmodified TAGE-SC-L, arbitrated by history length (§V-B).
"""

from repro.llbp.config import LLBPConfig, ContextSource
from repro.llbp.rcr import RollingContextRegister
from repro.llbp.pattern import Pattern, PatternSet
from repro.llbp.storage import ContextDirectory
from repro.llbp.pattern_buffer import PatternBuffer
from repro.llbp.prefetch import PrefetchEngine
from repro.llbp.predictor import LLBPTageScL, LLBPMeta

__all__ = [
    "LLBPConfig",
    "ContextSource",
    "RollingContextRegister",
    "Pattern",
    "PatternSet",
    "ContextDirectory",
    "PatternBuffer",
    "PrefetchEngine",
    "LLBPTageScL",
    "LLBPMeta",
]
