"""Context directory + bulk pattern-set storage (§V-A, §V-D step 1).

Functionally the CD (tag array) and the LLBP storage (data array) form
one associative map from context ID to pattern set, which is how this
module models them; the split into separate hardware arrays only matters
for the latency/energy model (:mod:`repro.energy`).

Replacement follows §V-D step 1: LRU is a poor fit, so the default policy
evicts the pattern set with the fewest high-confidence patterns (tracked
as a 2-bit counter per CD entry).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.llbp.config import LLBPConfig
from repro.llbp.pattern import PatternSet


class ContextDirectory:
    """Set-associative map: context ID -> pattern set."""

    def __init__(self, config: LLBPConfig) -> None:
        self.config = config
        self.num_sets = 1 << config.cd_set_bits
        self.ways = config.cd_ways
        self._sets: List[Dict[int, PatternSet]] = [dict() for _ in range(self.num_sets)]
        self.insertions = 0
        self.evictions = 0

    def __len__(self) -> int:
        return sum(len(s) for s in self._sets)

    def __contains__(self, cid: int) -> bool:
        return cid in self._sets[cid % self.num_sets]

    def lookup(self, cid: int) -> Optional[PatternSet]:
        s = self._sets[cid % self.num_sets]
        ps = s.get(cid)
        if ps is not None and self.config.cd_replacement == "lru":
            del s[cid]
            s[cid] = ps
        return ps

    def insert(self, cid: int) -> Tuple[PatternSet, Optional[int]]:
        """Create (or return) the pattern set for ``cid``.

        Returns ``(pattern_set, evicted_cid)``; ``evicted_cid`` is None
        when no eviction was needed or the cid was already present.
        """
        s = self._sets[cid % self.num_sets]
        existing = s.get(cid)
        if existing is not None:
            return existing, None

        evicted = None
        if len(s) >= self.ways:
            victim = self._pick_victim(s)
            del s[victim]
            evicted = victim
            self.evictions += 1

        ps = PatternSet(
            self.config.patterns_per_set,
            self.config.bucket_size,
            self.config.counter_bits,
        )
        s[cid] = ps
        self.insertions += 1
        return ps, evicted

    def _pick_victim(self, s: Dict[int, PatternSet]) -> int:
        if self.config.cd_replacement == "lru":
            return next(iter(s))
        # Confidence policy: evict the set with the fewest high-confidence
        # patterns; ties fall to the least recently inserted.
        victim = None
        victim_conf = None
        for cid, ps in s.items():
            conf = ps.high_confidence_count()
            if victim_conf is None or conf < victim_conf:
                victim = cid
                victim_conf = conf
        assert victim is not None
        return victim

    def remove(self, cid: int) -> None:
        self._sets[cid % self.num_sets].pop(cid, None)

    def occupancy(self) -> float:
        return len(self) / (self.num_sets * self.ways)
