"""Patterns and pattern sets (§V-B, §V-D).

A pattern is (tag, prediction counter, history-length field); a pattern
set is a fixed-size group of patterns belonging to one program context.
Patterns are kept sorted by history length so the longest matching
pattern can be selected with the same cascade TAGE uses; with bucketing
enabled (the evaluated design) each group of four slots is restricted to
four consecutive history lengths, which is what lets the hardware store
the length field in two bits (§V-D).

The *hash slot* of a pattern indexes the configured list of (history
length, hash salt) combinations — 16 in the paper's design, four lengths
appearing twice with a modified hash ("starred" lengths).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence


@dataclass
class Pattern:
    """A materialised view of one pattern slot (for inspection/tests)."""

    valid: bool
    tag: int
    counter: int
    hash_slot: int

    @property
    def taken(self) -> bool:
        return self.counter >= 0

    @property
    def confidence(self) -> int:
        """Centered counter magnitude |2c + 1| (1 = weakest)."""
        return abs(2 * self.counter + 1)


class PatternSet:
    """One context's patterns, stored as parallel slot arrays."""

    __slots__ = ("size", "bucket_size", "ctr_lo", "ctr_hi",
                 "valid", "tags", "ctrs", "hslots", "dirty", "vdesc")

    def __init__(self, size: int, bucket_size: int, counter_bits: int = 3) -> None:
        if size < 1 or bucket_size < 1 or size % bucket_size:
            raise ValueError("bucket size must divide the set size")
        self.size = size
        self.bucket_size = bucket_size
        self.ctr_hi = (1 << (counter_bits - 1)) - 1
        self.ctr_lo = -(1 << (counter_bits - 1))
        self.valid = [False] * size
        self.tags = [0] * size
        self.ctrs = [0] * size
        self.hslots = list(range(size)) if bucket_size != size else [0] * size
        self.dirty = False
        #: Valid slot indices in descending order — the ``find_longest``
        #: scan order.  Sets are typically far from full, so iterating
        #: this instead of all slots skips the invalid tail; ``allocate``
        #: is the only mutation point for validity, so it owns the cache.
        self.vdesc: list = []

    # -- prediction ------------------------------------------------------------

    def find_longest(self, slot_tags: Sequence[int]) -> int:
        """Index of the longest matching pattern, or -1.

        ``slot_tags[h]`` is the computed tag for hash slot ``h``.  Because
        slots are kept sorted by history length, the right-most valid match
        is the longest one — the same multiplexer cascade as TAGE (§V-B).
        """
        tags = self.tags
        hslots = self.hslots
        for i in self.vdesc:
            if tags[i] == slot_tags[hslots[i]]:
                return i
        return -1

    def counter(self, slot: int) -> int:
        return self.ctrs[slot]

    def taken(self, slot: int) -> bool:
        return self.ctrs[slot] >= 0

    def hash_slot(self, slot: int) -> int:
        return self.hslots[slot]

    # -- training --------------------------------------------------------------

    def update_counter(self, slot: int, taken: bool) -> None:
        c = self.ctrs[slot]
        if taken:
            if c < self.ctr_hi:
                self.ctrs[slot] = c + 1
                self.dirty = True
        elif c > self.ctr_lo:
            self.ctrs[slot] = c - 1
            self.dirty = True

    def allocate(self, hash_slot: int, tag: int, taken: bool) -> int:
        """Insert a new pattern for ``hash_slot`` (§V-D steps 2-4).

        The victim is the least-confident pattern in the slot region
        allowed to hold this history length (the bucket, or the whole set
        when unbucketed); invalid slots are preferred.  The region is then
        re-sorted by history length.  Returns the slot written.
        """
        if self.bucket_size == self.size:
            lo, hi = 0, self.size
        else:
            bucket = hash_slot // self.bucket_size
            lo = bucket * self.bucket_size
            hi = lo + self.bucket_size

        victim = -1
        victim_conf = None
        for i in range(lo, hi):
            if not self.valid[i]:
                victim = i
                break
            conf = abs(2 * self.ctrs[i] + 1)
            if victim_conf is None or conf < victim_conf:
                victim = i
                victim_conf = conf

        self.valid[victim] = True
        self.tags[victim] = tag
        self.ctrs[victim] = 0 if taken else -1
        self.hslots[victim] = hash_slot
        self.dirty = True
        self._sort_region(lo, hi)
        self.vdesc = [i for i in range(self.size - 1, -1, -1) if self.valid[i]]
        # After sorting, locate the slot that now holds the new pattern.
        for i in range(lo, hi):
            if self.valid[i] and self.tags[i] == tag and self.hslots[i] == hash_slot:
                return i
        return victim  # pragma: no cover - defensive

    def _sort_region(self, lo: int, hi: int) -> None:
        """Keep valid patterns sorted by hash slot (== history length)."""
        region = sorted(
            range(lo, hi),
            key=lambda i: (not self.valid[i], self.hslots[i] if self.valid[i] else 0),
        )
        self.valid[lo:hi] = [self.valid[i] for i in region]
        self.tags[lo:hi] = [self.tags[i] for i in region]
        self.ctrs[lo:hi] = [self.ctrs[i] for i in region]
        self.hslots[lo:hi] = [self.hslots[i] for i in region]
        # Invalid slots sort to the back of each region; with buckets the
        # global order across buckets holds because bucket b only contains
        # hash slots [b*size, (b+1)*size).

    # -- replacement metadata ------------------------------------------------------

    def high_confidence_count(self, cap: int = 3) -> int:
        """Number of high-confidence patterns, saturated at ``cap``.

        This is the 2-bit replacement counter stored in the context
        directory (§V-D step 1).
        """
        count = 0
        for i in range(self.size):
            if self.valid[i]:
                c = self.ctrs[i]
                if c >= self.ctr_hi - 1 or c <= self.ctr_lo + 1:
                    count += 1
                    if count >= cap:
                        return cap
        return count

    def num_valid(self) -> int:
        return sum(self.valid)

    def pattern(self, slot: int) -> Pattern:
        return Pattern(
            valid=self.valid[slot],
            tag=self.tags[slot],
            counter=self.ctrs[slot],
            hash_slot=self.hslots[slot],
        )

    def is_sorted(self) -> bool:
        """Invariant check used by tests: valid slots ascend by hash slot."""
        if self.bucket_size == self.size:
            regions = [(0, self.size)]
        else:
            regions = [(b, b + self.bucket_size)
                       for b in range(0, self.size, self.bucket_size)]
        for lo, hi in regions:
            prev: Optional[int] = None
            seen_invalid = False
            for i in range(lo, hi):
                if not self.valid[i]:
                    seen_invalid = True
                    continue
                if seen_invalid:
                    return False  # valid pattern after an invalid slot
                if prev is not None and self.hslots[i] < prev:
                    return False
                prev = self.hslots[i]
        return True
