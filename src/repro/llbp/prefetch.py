"""Pattern-set prefetching (§V-C).

On every context-forming branch the RCR produces a *prefetch CID* — the
context that becomes current ``D`` such branches from now.  The engine
checks the context directory and, on a hit, schedules the pattern set to
arrive in the pattern buffer after the CD+LLBP access latency.  After a
pipeline reset (branch misprediction) all in-flight prefetches are
squashed and prefetching restarts from the current RCR state, which is
the one window where LLBP's latency can be exposed (§V-C, §VII-A).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.llbp.config import LLBPConfig
from repro.llbp.pattern_buffer import PatternBuffer
from repro.llbp.storage import ContextDirectory


class PrefetchEngine:
    """FIFO of in-flight pattern-set fetches with arrival times."""

    def __init__(self, config: LLBPConfig, directory: ContextDirectory,
                 buffer: PatternBuffer) -> None:
        self.config = config
        self.directory = directory
        self.buffer = buffer
        self._inflight: List[Tuple[int, int]] = []  # (arrival_instr, cid)
        self.issued = 0
        self.delivered = 0
        self.directory_misses = 0
        self.squashed = 0

    @property
    def latency(self) -> int:
        return self.config.prefetch_latency_instructions

    def issue(self, cid: int, now: int) -> None:
        """Start fetching ``cid``'s pattern set if it exists and is absent."""
        if cid in self.buffer:
            return
        if self.directory.lookup(cid) is None:
            self.directory_misses += 1
            return
        self.issued += 1
        if self.latency == 0:
            self._deliver(cid)
        else:
            self._inflight.append((now + self.latency, cid))

    def drain(self, now: int) -> None:
        """Deliver every prefetch whose arrival time has passed."""
        while self._inflight and self._inflight[0][0] <= now:
            _, cid = self._inflight.pop(0)
            self._deliver(cid)

    def _deliver(self, cid: int) -> None:
        ps = self.directory.lookup(cid)
        if ps is not None and cid not in self.buffer:
            self.buffer.fill(cid, ps, self.directory)
            # Timeliness numerator: issues that actually landed in the PB
            # (vs. squashed in flight or evicted/superseded on arrival).
            self.delivered += 1

    def squash(self) -> None:
        """Drop all in-flight prefetches (pipeline reset, §V-C)."""
        self.squashed += len(self._inflight)
        self._inflight.clear()

    def inflight_count(self) -> int:
        return len(self._inflight)
