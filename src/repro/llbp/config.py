"""LLBP configuration (paper §VI, scaled per DESIGN.md §1).

The evaluated design: 16 patterns per set in four buckets of four, 13-bit
pattern tags, 3-bit counters, a 7-way context directory, a 64-entry 4-way
pattern buffer, W=8 / D=4 context hashing over unconditional branches, and
a 6-cycle prefetch latency.  The number of pattern sets is divided by the
same CAPACITY_SCALE as the baseline predictors (paper: 14K sets / 512KB).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple

from repro.predictors.presets import TAGE_HISTORY_LENGTHS

#: The 16 history-length slots of a pattern set (§VI).  Four lengths appear
#: twice ("starred"): same length, different hash salt.
LLBP_SLOT_LENGTHS: Tuple[int, ...] = (
    12, 26, 54, 54, 78, 78, 112, 112, 161, 161, 232, 336, 482, 695, 1444, 3000,
)


class ContextSource(enum.Enum):
    """Which branches feed the rolling context register (Fig 13)."""

    UNCONDITIONAL = "uncond"   # all unconditional branches (the paper's pick)
    CALL_RET = "callret"       # only calls and returns
    ALL = "all"                # every branch


@dataclass(frozen=True)
class LLBPConfig:
    """All knobs of the LLBP design."""

    # Pattern sets.
    patterns_per_set: int = 16
    buckets: int = 4
    bucketed: bool = True
    pattern_tag_bits: int = 13
    counter_bits: int = 3
    slot_lengths: Tuple[int, ...] = LLBP_SLOT_LENGTHS

    # Context directory / backing storage geometry.
    cd_set_bits: int = 9          # paper: 11 (2048 sets); scaled /4
    cd_ways: int = 7
    cid_bits: int = 14

    # Pattern buffer.
    pb_entries: int = 64
    pb_ways: int = 4

    # Context hashing (§V-C / §V-E3).
    context_window: int = 8       # W
    prefetch_distance: int = 4    # D
    context_source: ContextSource = ContextSource.UNCONDITIONAL
    position_shift: int = 2       # per-position PC shift in the CID hash

    # Prefetch timing.
    prefetch_latency_cycles: int = 6
    instructions_per_cycle: float = 1.75  # converts cycles to trace distance
    simulate_timing: bool = True          # False = LLBP-0Lat

    # Replacement policy of the context directory ("confidence" or "lru").
    cd_replacement: str = "confidence"

    # Training-policy deviations from the paper's §V-D description (see
    # DESIGN.md §4).  With ``weak_override_guard`` a newly-allocated
    # (weak-counter) LLBP pattern does not override an established TAGE
    # provider — mirroring TAGE's own use-alt-on-newly-allocated logic.
    # With ``exclusive_provider_training=False`` TAGE keeps training its
    # provider even when LLBP overrides, and LLBP trains its matching
    # pattern even when TAGE provides; the paper's exclusive policy is
    # available as an ablation (benchmarks/test_ablations.py) and is
    # harmful on the synthetic workloads, whose override-redundancy rate
    # is higher than the paper's.
    weak_override_guard: bool = True
    exclusive_provider_training: bool = False

    # Optional front-end redirect modelling (§VI: "After a misprediction
    # (BTB miss and misprediction), all in-flight prefetches get
    # squashed").  When enabled the composite predictor also runs a BTB
    # and an ITTAGE-style indirect target predictor, and wrong indirect
    # targets / BTB misses reset the prefetch pipeline — the effect that
    # makes PHPWiki LLBP's worst case in the paper (§VII-A).
    model_frontend_redirects: bool = False

    def __post_init__(self) -> None:
        if self.patterns_per_set < 1:
            raise ValueError("need at least one pattern per set")
        if self.bucketed:
            if self.patterns_per_set % self.buckets:
                raise ValueError("patterns_per_set must divide into buckets")
            if len(self.slot_lengths) != self.patterns_per_set:
                raise ValueError("slot_lengths must cover every pattern slot")
        if list(self.slot_lengths) != sorted(self.slot_lengths):
            raise ValueError("slot lengths must be non-decreasing")
        unknown = set(self.slot_lengths) - set(TAGE_HISTORY_LENGTHS)
        if unknown:
            raise ValueError(
                f"slot lengths {sorted(unknown)} not in the baseline TAGE ladder"
            )
        if self.context_window < 1 or self.prefetch_distance < 0:
            raise ValueError("invalid context window / prefetch distance")
        if self.cd_replacement not in ("confidence", "lru"):
            raise ValueError("cd_replacement must be 'confidence' or 'lru'")

    @property
    def num_pattern_sets(self) -> int:
        return (1 << self.cd_set_bits) * self.cd_ways

    @property
    def bucket_size(self) -> int:
        return self.patterns_per_set // self.buckets if self.bucketed else self.patterns_per_set

    @property
    def prefetch_latency_instructions(self) -> int:
        if not self.simulate_timing:
            return 0
        return int(round(self.prefetch_latency_cycles * self.instructions_per_cycle))

    @property
    def pattern_bits(self) -> int:
        """Bits per pattern: counter + tag + 2-bit history-length field."""
        return self.counter_bits + self.pattern_tag_bits + 2

    @property
    def pattern_set_bits(self) -> int:
        """Bits per pattern set (paper: 288 for the evaluated design)."""
        return self.patterns_per_set * self.pattern_bits

    @property
    def storage_bits(self) -> int:
        """Backing-storage capacity (the paper's "LLBP capacity")."""
        return self.num_pattern_sets * self.pattern_set_bits

    @property
    def cd_bits(self) -> int:
        """Context-directory capacity: tag + 2-bit replacement counter."""
        tag_bits = max(1, self.cid_bits - self.cd_set_bits)
        return self.num_pattern_sets * (tag_bits + 2 + 1)

    def zero_latency(self) -> "LLBPConfig":
        """The LLBP-0Lat variant of this configuration."""
        return _replace(self, simulate_timing=False)


def _replace(config: LLBPConfig, **changes) -> LLBPConfig:
    import dataclasses

    return dataclasses.replace(config, **changes)
