"""Rolling context register (RCR) and context-ID hashing (§V-C, §V-E3).

The RCR holds the PCs of the most recent context-forming branches.  Two
IDs are derived from it (Fig 8):

* the **current context ID (CCID)** hashes the window of ``W`` branches
  *excluding* the ``D`` most recent ones — it names the context whose
  pattern set should be active right now;
* the **prefetch CID** hashes the most recent ``W`` branches — it names
  the context that will become current after ``D`` more context-forming
  branches, giving the prefetcher a head start of ``D`` branches.

Each PC is shifted left by ``position_shift * position`` before XOR-ing so
repeated addresses (tight loops) do not cancel out (§V-E3).
"""

from __future__ import annotations

from typing import List

from repro.llbp.config import ContextSource, LLBPConfig
from repro.traces.types import BranchType

_CALL_RET = (int(BranchType.CALL), int(BranchType.RET), int(BranchType.IND_CALL))
_UNCOND = (
    int(BranchType.JUMP), int(BranchType.CALL), int(BranchType.RET),
    int(BranchType.IND_JUMP), int(BranchType.IND_CALL),
)


class RollingContextRegister:
    """Shift register of context-forming branch PCs with rolling CID hash."""

    def __init__(self, config: LLBPConfig) -> None:
        self.config = config
        depth = config.context_window + config.prefetch_distance
        self._pcs: List[int] = [0] * depth
        self._mask = (1 << config.cid_bits) - 1
        self._source = config.context_source
        # Rolling accumulators: the raw (unfolded) XOR of the window's
        # position-shifted PCs, updated in O(1) per push — XOR is exactly
        # cancellable, so shifting the whole accumulator and XOR-ing out
        # the term that left reproduces a from-scratch rehash bit for bit.
        self._out_shift = config.position_shift * config.context_window
        self._acc_pf = 0   # window of the W newest entries (prefetch CID)
        self._acc_cur = 0  # window ending D entries before the newest (CCID)
        self.ccid = 0
        self.prefetch_cid = 0
        self._recompute()

    def qualifies(self, branch_type: int) -> bool:
        """Does a branch of this type push into the RCR?"""
        if self._source is ContextSource.ALL:
            return True
        if self._source is ContextSource.CALL_RET:
            return branch_type in _CALL_RET
        return branch_type in _UNCOND

    def push(self, pc: int) -> bool:
        """Record a context-forming branch; returns True if CCID changed."""
        config = self.config
        shift = config.position_shift
        out_shift = self._out_shift
        distance = config.prefetch_distance
        cid_bits = config.cid_bits
        mask = self._mask
        pcs = self._pcs

        # Every entry's position grows by one (<< shift), the entry that
        # falls out of each window is XOR-ed away at its new position
        # (out_shift = shift * W), and the entry rolling in lands at
        # position zero.  The entry leaving the CCID window is the one
        # leaving the register altogether; the one entering it is the one
        # leaving the prefetch window D pushes later.
        value = self._acc_pf = (
            (self._acc_pf << shift)
            ^ ((pcs[distance] >> 2) << out_shift) ^ (pc >> 2))
        self.prefetch_cid = (value ^ (value >> cid_bits)
                             ^ (value >> (2 * cid_bits))) & mask
        old = self.ccid
        if distance:
            value = self._acc_cur = (
                (self._acc_cur << shift)
                ^ ((pcs[0] >> 2) << out_shift) ^ (pcs[-distance] >> 2))
            self.ccid = (value ^ (value >> cid_bits)
                         ^ (value >> (2 * cid_bits))) & mask
        else:
            self.ccid = self.prefetch_cid
        pcs.append(pc)
        pcs.pop(0)
        return self.ccid != old

    def _hash_window(self, start: int) -> int:
        """Hash ``W`` PCs ending ``start`` entries before the newest."""
        return self._fold(self._raw_window(start))

    def _raw_window(self, start: int) -> int:
        config = self.config
        newest = len(self._pcs) - 1 - start
        value = 0
        shift = config.position_shift
        for position in range(config.context_window):
            pc = self._pcs[newest - position]
            value ^= (pc >> 2) << (shift * position)
        return value

    def _fold(self, value: int) -> int:
        cid_bits = self.config.cid_bits
        return (value ^ (value >> cid_bits)
                ^ (value >> (2 * cid_bits))) & self._mask

    def _recompute(self) -> None:
        """Rebuild the accumulators from scratch (init / restore)."""
        self._acc_pf = self._raw_window(0)
        self.prefetch_cid = self._fold(self._acc_pf)
        if self.config.prefetch_distance == 0:
            self._acc_cur = self._acc_pf
            self.ccid = self.prefetch_cid
        else:
            self._acc_cur = self._raw_window(self.config.prefetch_distance)
            self.ccid = self._fold(self._acc_cur)

    def cid_at(self, distance: int) -> int:
        """CID of the context ``distance`` context-forming branches ahead.

        ``cid_at(0)`` is the CCID (active now) and ``cid_at(D)`` is the
        prefetch CID (activates after D more pushes); intermediate
        distances name the contexts activating in between — the
        prefetcher re-issues all of them when recovering from a pipeline
        reset.
        """
        if not 0 <= distance <= self.config.prefetch_distance:
            raise ValueError("distance out of the RCR's range")
        return self._hash_window(self.config.prefetch_distance - distance)

    def snapshot(self) -> List[int]:
        """Copy of the register contents (oldest first), for checkpoints."""
        return list(self._pcs)

    def restore(self, snapshot: List[int]) -> None:
        """Restore a checkpoint taken with :meth:`snapshot` (§V-E2)."""
        if len(snapshot) != len(self._pcs):
            raise ValueError("snapshot depth mismatch")
        self._pcs = list(snapshot)
        self._recompute()
