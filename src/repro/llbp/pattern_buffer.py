"""Pattern buffer (PB): the in-core cache of pattern sets (§V-A).

The PB holds the pattern sets of the current, recently used and
prefetched contexts; it is the only LLBP structure on the prediction
path.  Fills (LLBP -> PB) and dirty writebacks (PB -> LLBP) are counted
for the bandwidth study (Fig 11); each transfer moves one pattern set
(288 bits in the evaluated design).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.llbp.config import LLBPConfig
from repro.llbp.pattern import PatternSet
from repro.llbp.storage import ContextDirectory


class PatternBuffer:
    """Set-associative, LRU-replaced cache of pattern sets, keyed by CID."""

    def __init__(self, config: LLBPConfig) -> None:
        if config.pb_entries % config.pb_ways:
            raise ValueError("pb_entries must divide into pb_ways")
        self.config = config
        self.num_sets = config.pb_entries // config.pb_ways
        self.ways = config.pb_ways
        self._sets: List[Dict[int, PatternSet]] = [dict() for _ in range(self.num_sets)]
        self.fills = 0
        self.writebacks = 0
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return sum(len(s) for s in self._sets)

    def __contains__(self, cid: int) -> bool:
        return cid in self._sets[cid % self.num_sets]

    def get(self, cid: int) -> Optional[PatternSet]:
        """Look up the pattern set for ``cid`` (refreshes LRU on hit)."""
        s = self._sets[cid % self.num_sets]
        ps = s.get(cid)
        if ps is None:
            self.misses += 1
            return None
        self.hits += 1
        del s[cid]
        s[cid] = ps
        return ps

    def peek(self, cid: int) -> Optional[PatternSet]:
        return self._sets[cid % self.num_sets].get(cid)

    def fill(self, cid: int, pattern_set: PatternSet,
             directory: ContextDirectory) -> None:
        """Install a pattern set fetched from LLBP storage.

        A dirty victim is written back to LLBP storage — in this model the
        PB shares the :class:`PatternSet` object with the directory, so a
        writeback is pure accounting (plus dropping sets the directory has
        since evicted).
        """
        s = self._sets[cid % self.num_sets]
        if cid in s:
            return
        if len(s) >= self.ways:
            victim_cid = next(iter(s))
            victim = s.pop(victim_cid)
            if victim.dirty:
                victim.dirty = False
                if victim_cid in directory:
                    self.writebacks += 1
        s[cid] = pattern_set
        self.fills += 1

    def flush(self, directory: ContextDirectory) -> None:
        """Write back and drop everything (used by tests/ablation)."""
        for s in self._sets:
            for cid, ps in s.items():
                if ps.dirty:
                    ps.dirty = False
                    if cid in directory:
                        self.writebacks += 1
            s.clear()
