"""Retry policy: bounded exponential backoff with deterministic jitter.

The policy object carries every fault-tolerance knob the executor needs
— attempt budget, backoff shape, per-job timeout, pool-rebuild budget —
and :func:`backoff_delay` turns (attempt, policy) into a concrete sleep.

Two properties are load-bearing and property-tested:

* **bounded** — no delay ever exceeds ``max_delay`` (a stuck retry loop
  must not turn into an unbounded sleep);
* **monotone non-decreasing** — later attempts never wait *less* than
  earlier ones, jitter included.  Jitter is multiplicative in
  ``[1, 1 + jitter]`` with ``jitter`` clamped to ``[0, 1]``; since the
  uncapped delay doubles between attempts, ``2 * d >= (1 + jitter) * d``
  keeps the jittered sequence monotone before the cap, and capping with
  a constant preserves monotonicity.

Jitter is *deterministic*: it is derived by hashing (key, attempt), not
drawn from a global RNG, so a given job backs off identically across
runs — reruns of a chaos test are reproducible — while different jobs
still spread their retries apart (the point of jitter).
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import warnings
from typing import Optional

#: Environment knobs (all optional; malformed values warn and fall back).
ENV_RETRIES = "REPRO_RETRIES"
ENV_BASE_DELAY = "REPRO_RETRY_BASE_DELAY"
ENV_MAX_DELAY = "REPRO_RETRY_MAX_DELAY"
ENV_JITTER = "REPRO_RETRY_JITTER"
ENV_TIMEOUT = "REPRO_JOB_TIMEOUT"


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """Fault-tolerance knobs for one batch of simulation jobs."""

    #: Total attempts per job (first try included); >= 1.
    max_attempts: int = 3
    #: Backoff before the first retry, in seconds.
    base_delay: float = 0.25
    #: Hard cap on any single backoff sleep, in seconds.
    max_delay: float = 30.0
    #: Multiplicative jitter fraction, clamped to [0, 1].
    jitter: float = 0.5
    #: Per-job wall-clock timeout in seconds; ``None`` disables.
    timeout: Optional[float] = None
    #: Pool re-creations tolerated before degrading to serial execution.
    max_pool_rebuilds: int = 3

    @classmethod
    def from_env(cls) -> "RetryPolicy":
        """Build a policy from ``REPRO_RETRIES`` & friends.

        Like ``REPRO_JOBS``, these are user input reaching deep into a
        run: malformed values must degrade to the default, not raise.
        """
        return cls(
            max_attempts=max(1, _env_int(ENV_RETRIES, cls.max_attempts)),
            base_delay=max(0.0, _env_float(ENV_BASE_DELAY, cls.base_delay)),
            max_delay=max(0.0, _env_float(ENV_MAX_DELAY, cls.max_delay)),
            jitter=_env_float(ENV_JITTER, cls.jitter),
            timeout=_env_timeout(),
        )


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        return int(raw)
    except ValueError:
        warnings.warn(f"{name}={raw!r} is not an integer; using {default}",
                      RuntimeWarning, stacklevel=3)
        return default


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        return float(raw)
    except ValueError:
        warnings.warn(f"{name}={raw!r} is not a number; using {default}",
                      RuntimeWarning, stacklevel=3)
        return default


def _env_timeout() -> Optional[float]:
    value = _env_float(ENV_TIMEOUT, 0.0)
    return value if value > 0 else None


def _unit_jitter(key: object, attempt: int) -> float:
    """Deterministic pseudo-random fraction in [0, 1) from (key, attempt)."""
    digest = hashlib.blake2b(f"{key}|{attempt}".encode(),
                             digest_size=8).digest()
    return int.from_bytes(digest, "big") / float(1 << 64)


def backoff_delay(attempt: int, policy: RetryPolicy,
                  key: object = "") -> float:
    """Seconds to sleep before retry number ``attempt`` (1-based).

    ``key`` (typically the job) decorrelates different jobs' retries;
    the same (key, attempt) always yields the same delay.
    """
    if attempt < 1:
        raise ValueError(f"attempt must be >= 1, got {attempt}")
    jitter = min(1.0, max(0.0, policy.jitter))
    uncapped = policy.base_delay * (2.0 ** (attempt - 1))
    jittered = uncapped * (1.0 + jitter * _unit_jitter(key, attempt))
    return min(policy.max_delay, jittered)
