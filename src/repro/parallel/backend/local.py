"""The historical in-process ``ProcessPoolExecutor`` backend.

:class:`LocalBackend` is a thin adapter over the executor module's
process-global pool state (``executor._get_pool`` / ``_pool_futures`` /
``_discard_pool``), not an owner of a private pool: the pool is shared
across ``run_jobs`` calls, grows lazily, and is torn down only by
``parallel.shutdown()`` — exactly the pre-backend behaviour, so local
runs stay byte-identical (tests monkeypatch ``executor._get_pool`` and
read ``executor._pool_workers``; the adapter resolves both through the
module at call time to keep that surface live).
"""

from __future__ import annotations

from concurrent.futures import Future
from typing import Optional

from repro.parallel.backend import Backend


class LocalBackend(Backend):
    """Run tasks on the module-global process pool."""

    name = "local"

    def __init__(self, max_workers: int) -> None:
        self._max_workers = max(1, int(max_workers))

    def submit(self, task, fault: Optional[str]) -> Future:
        from repro.parallel import executor

        with executor._lock:
            pool = executor._get_pool(self._max_workers)
            future = pool.submit(executor._simulate_task, task, fault, True)
            executor._pool_futures.add(future)
        return future

    def workers(self) -> int:
        return self._max_workers

    def reap(self, done) -> None:
        from repro.parallel import executor

        with executor._lock:
            executor._pool_futures.difference_update(done)

    def reset(self, kill: bool = False) -> None:
        from repro.parallel import executor

        with executor._lock:
            executor._discard_pool(kill=kill)

    # close() stays a no-op: the pool is process-global state owned by
    # executor.shutdown(), and must survive this batch for the next one.
