"""TCP work-queue backend: shard batched tasks across worker processes.

One :class:`TCPBackend` instance is the submitting side of a pull-model
work queue.  It owns a listening socket plus one handler thread per
connected worker (``python -m repro.worker``); workers may be loopback
subprocesses the backend spawns itself (CI, 1-core boxes) or remote
``--listen`` processes the backend dials out to via ``host:port`` specs
(``REPRO_BACKEND_WORKERS`` / ``--workers``).

Wire format (documented for external workers in
``docs/ARCHITECTURE.md``): every frame is a 5-byte header — one kind
byte, ``J`` (UTF-8 JSON) or ``B`` (raw bytes), then a big-endian u32
payload length — followed by the payload.  msgpack would halve header
overhead but is not in the baseline environment, and trace payloads
(the only large frames) are raw binary either way.  Message flow::

    worker  -> {"t": "hello", "pid", "host", "version"}
    backend -> {"t": "welcome", "version"}
    worker  -> {"t": "ready"}                      # pull: worker is idle
    backend -> {"t": "task", "id", "workload", "keys", "instructions",
                "fault", "env"}                    # or "env" probe/"close"
    worker  -> {"t": "trace", "workload", "instructions"}   # store miss
    backend -> {"t": "trace-data", "size"} + one binary frame
    worker  -> {"t": "result", "id", "results", "digests"}  # or "error"

``env`` in the task envelope snapshots the submitter's ``REPRO_*``
knobs (:data:`repro.parallel.backend.ENV_PROPAGATED`) so the worker
computes with the submitter's configuration.  Traces move over the
socket only when the worker's content-addressed store misses — the
store path is derived from (name, seed, instructions, generation), so
a warm worker transfers zero trace bytes.  Results come back as the
runner's canonical JSON encoding plus the same sha256 digests the
checkpoint journal records; the backend re-derives each digest after
decoding and treats a mismatch as a lost worker (never as data).

Failure mapping: a severed connection settles the in-flight future
with :class:`~repro.parallel.backend.WorkerLost`, which the retry layer
treats like a ``BrokenProcessPool`` collateral loss — rescheduled
without burning attempts.  A deadline expiry is *surgical*
(:meth:`TCPBackend.evict` cuts just that worker's connection); the
executor degrades to the local pool only when every worker is gone
past the ``REPRO_BACKEND_GRACE`` rejoin window.
"""

from __future__ import annotations

import itertools
import json
import os
import queue
import socket
import struct
import subprocess
import sys
import threading
import time
import warnings
from concurrent.futures import Future, InvalidStateError
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro import telemetry
from repro.parallel.backend import (Backend, BackendBroken, ENV_WORKERS,
                                    RemoteTaskError, WorkerLost, capture_env,
                                    grace_seconds)

PROTOCOL_VERSION = 1

#: Frame header: kind byte (``J`` JSON / ``B`` binary) + payload length.
_FRAME = struct.Struct("!cI")
KIND_JSON = b"J"
KIND_BIN = b"B"

#: Upper bound on a single frame; a length above this means a corrupt
#: or hostile stream, not a real payload.
MAX_FRAME = 1 << 30


def send_frame(sock: socket.socket, kind: bytes, payload: bytes) -> int:
    """Write one frame; returns bytes put on the wire."""
    sock.sendall(_FRAME.pack(kind, len(payload)) + payload)
    return _FRAME.size + len(payload)


def send_json(sock: socket.socket, message: dict) -> int:
    return send_frame(sock, KIND_JSON,
                      json.dumps(message, separators=(",", ":")).encode())


def recv_exact(sock: socket.socket, size: int) -> bytes:
    chunks = []
    while size:
        chunk = sock.recv(min(size, 1 << 20))
        if not chunk:
            raise ConnectionError("connection closed mid-frame")
        chunks.append(chunk)
        size -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> Tuple[bytes, bytes]:
    kind, length = _FRAME.unpack(recv_exact(sock, _FRAME.size))
    if kind not in (KIND_JSON, KIND_BIN) or length > MAX_FRAME:
        raise ConnectionError(f"bad frame header ({kind!r}, {length})")
    return kind, recv_exact(sock, length)


def recv_json(sock: socket.socket) -> dict:
    kind, payload = recv_frame(sock)
    if kind != KIND_JSON:
        raise ConnectionError("expected a JSON frame")
    try:
        message = json.loads(payload.decode())
    except (UnicodeDecodeError, ValueError) as error:
        raise ConnectionError(f"undecodable JSON frame: {error}") from None
    if not isinstance(message, dict):
        raise ConnectionError("JSON frame is not an object")
    return message


class _Item:
    """One queued unit of work: a task attempt or an env probe."""

    __slots__ = ("kind", "ident", "task", "fault", "env", "names", "future")

    def __init__(self, kind: str, ident: int, future: Future, task=None,
                 fault: Optional[str] = None, env: Optional[dict] = None,
                 names: Sequence[str] = ()) -> None:
        self.kind = kind
        self.ident = ident
        self.future = future
        self.task = task
        self.fault = fault
        self.env = env or {}
        self.names = list(names)


_SHUTDOWN = object()


def _settle_result(future: Future, value) -> None:
    try:
        future.set_result(value)
    except InvalidStateError:
        pass  # already evicted/cancelled by the executor


def _settle_error(future: Future, error: BaseException) -> None:
    try:
        future.set_exception(error)
    except InvalidStateError:
        pass


class TCPBackend(Backend):
    """Submitting side of the TCP work queue (see module docstring)."""

    name = "tcp"

    def __init__(self, spawn: Optional[int] = None,
                 connect: Sequence[str] = (), host: str = "127.0.0.1",
                 port: int = 0, grace: Optional[float] = None,
                 join_timeout: float = 30.0) -> None:
        self.grace = grace_seconds() if grace is None else grace
        self._queue: "queue.Queue" = queue.Queue()
        self._mutex = threading.Lock()
        self._workers_cond = threading.Condition(self._mutex)
        self._conns: Dict[int, socket.socket] = {}
        self._active: Dict[Future, int] = {}
        self._threads: List[threading.Thread] = []
        self._procs: List[subprocess.Popen] = []
        self._closed = False
        self._wid_seq = itertools.count(1)
        self._item_seq = itertools.count(1)

        self._server = socket.create_server((host, port))
        self.port = self._server.getsockname()[1]
        self.host = host
        accept = threading.Thread(target=self._accept_loop,
                                  name="tcp-backend-accept", daemon=True)
        accept.start()
        self._threads.append(accept)

        if connect:
            for spec in connect:
                self._dial(spec)
        else:
            for _ in range(max(1, int(spawn or 1))):
                self._spawn_worker()
        if not self.wait_for_workers(1, timeout=join_timeout):
            self.close(kill=True)
            raise BackendBroken(
                f"no TCP worker joined within {join_timeout}s "
                f"(spawn={spawn!r}, connect={list(connect)!r})")

    @classmethod
    def from_env(cls, default_spawn: int = 1) -> "TCPBackend":
        """Build from ``REPRO_BACKEND_WORKERS``: a loopback worker count
        or a comma-separated ``host:port`` list of listening workers."""
        raw = os.environ.get(ENV_WORKERS, "").strip()
        if not raw:
            return cls(spawn=max(1, default_spawn))
        if ":" in raw:
            specs = [spec.strip() for spec in raw.split(",") if spec.strip()]
            return cls(connect=specs)
        try:
            count = int(raw)
            if count <= 0:
                raise ValueError(raw)
        except ValueError:
            raise BackendBroken(
                f"{ENV_WORKERS}={raw!r} is neither a worker count nor a "
                "host:port list") from None
        return cls(spawn=count)

    # ------------------------------------------------------------------
    # Backend interface
    # ------------------------------------------------------------------

    def submit(self, task, fault: Optional[str]) -> Future:
        if self._closed:
            raise BackendBroken("TCP backend is closed")
        future: Future = Future()
        self._queue.put(_Item("task", next(self._item_seq), future,
                              task=task, fault=fault, env=capture_env()))
        return future

    def workers(self) -> int:
        with self._mutex:
            return len(self._conns)

    def wait_for_workers(self, count: int = 1,
                         timeout: Optional[float] = None) -> bool:
        with self._workers_cond:
            return self._workers_cond.wait_for(
                lambda: self._closed or len(self._conns) >= count,
                timeout=timeout) and not self._closed

    def evict(self, future: Future) -> bool:
        """Sever just the connection running ``future`` (deadline expiry).

        Queued futures are simply cancelled.  Returns ``True`` when the
        eviction was surgical — the executor then skips the pool-rebuild
        recovery it needs for local hung workers.
        """
        with self._mutex:
            wid = self._active.get(future)
            conn = self._conns.get(wid) if wid is not None else None
        if conn is not None:
            _shutdown_socket(conn)
            return True
        return future.cancel() or future.done()

    def close(self, kill: bool = False) -> None:
        with self._workers_cond:
            self._closed = True
            self._workers_cond.notify_all()
            conns = list(self._conns.values())
        self._queue.put(_SHUTDOWN)
        try:
            self._server.close()
        except OSError:
            pass
        deadline = time.monotonic() + (0.5 if kill else 5.0)
        for thread in self._threads:
            thread.join(timeout=max(0.0, deadline - time.monotonic()))
        for conn in conns:
            _shutdown_socket(conn)
        for proc in self._procs:
            if proc.poll() is None:
                proc.terminate()
        for proc in self._procs:
            try:
                proc.wait(timeout=0.2 if kill else 5.0)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=5.0)

    # ------------------------------------------------------------------
    # Test/diagnostic helpers
    # ------------------------------------------------------------------

    def probe_env(self, names: Sequence[str],
                  timeout: float = 30.0) -> Dict[str, Optional[str]]:
        """Ship the submitter's values for ``names`` to a worker exactly
        as a task envelope would, and return what the worker reports
        back after applying them — proves end-to-end knob propagation
        without running a simulation."""
        future: Future = Future()
        env = {name: os.environ.get(name) for name in names}
        self._queue.put(_Item("env", next(self._item_seq), future,
                              env=env, names=names))
        return future.result(timeout=timeout)

    # ------------------------------------------------------------------
    # Connection plumbing
    # ------------------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._closed:
            try:
                conn, _addr = self._server.accept()
            except OSError:
                return  # server socket closed
            self._attach(conn)

    def _attach(self, conn: socket.socket) -> None:
        try:
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass
        thread = threading.Thread(target=self._serve_conn, args=(conn,),
                                  name="tcp-backend-worker", daemon=True)
        thread.start()
        self._threads.append(thread)

    def _dial(self, spec: str) -> None:
        host, _, port = spec.rpartition(":")
        try:
            conn = socket.create_connection((host, int(port)), timeout=10.0)
            conn.settimeout(None)
        except (OSError, ValueError) as error:
            warnings.warn(f"cannot reach TCP worker {spec!r}: {error}",
                          RuntimeWarning, stacklevel=3)
            return
        self._attach(conn)

    def _spawn_worker(self) -> None:
        import repro

        src_root = str(Path(repro.__file__).resolve().parents[1])
        env = dict(os.environ)
        previous = env.get("PYTHONPATH", "")
        env["PYTHONPATH"] = (f"{src_root}{os.pathsep}{previous}"
                             if previous else src_root)
        self._procs.append(subprocess.Popen(
            [sys.executable, "-m", "repro.worker",
             f"{self.host}:{self.port}"],
            env=env, stdin=subprocess.DEVNULL))

    def _next_item(self):
        while True:
            item = self._queue.get()
            if item is _SHUTDOWN:
                return item
            if not item.future.set_running_or_notify_cancel():
                continue  # cancelled while queued
            return item

    def _serve_conn(self, sock: socket.socket) -> None:
        wid: Optional[int] = None
        item: Optional[_Item] = None
        served = 0
        try:
            hello = recv_json(sock)
            if (hello.get("t") != "hello"
                    or hello.get("version") != PROTOCOL_VERSION):
                warnings.warn(
                    f"rejecting TCP worker with bad hello {hello!r}",
                    RuntimeWarning, stacklevel=2)
                return
            send_json(sock, {"t": "welcome", "version": PROTOCOL_VERSION})
            with self._workers_cond:
                if self._closed:
                    return
                wid = next(self._wid_seq)
                self._conns[wid] = sock
                self._workers_cond.notify_all()
            telemetry.emit("backend.worker_join", worker=wid,
                           pid=hello.get("pid"), host=hello.get("host"))
            while True:
                message = recv_json(sock)
                if message.get("t") != "ready":
                    raise ConnectionError(
                        f"expected ready, got {message.get('t')!r}")
                item = self._next_item()
                if item is _SHUTDOWN:
                    self._queue.put(_SHUTDOWN)  # wake sibling handlers
                    item = None
                    try:
                        send_json(sock, {"t": "close"})
                    except OSError:
                        pass
                    return
                if item.kind == "env":
                    send_json(sock, {"t": "env", "id": item.ident,
                                     "names": item.names, "env": item.env})
                    reply = recv_json(sock)
                    if reply.get("t") != "env-data":
                        raise ConnectionError(
                            f"expected env-data, got {reply.get('t')!r}")
                    _settle_result(item.future, reply.get("env") or {})
                    item = None
                    continue
                self._run_remote(sock, wid, item)
                served += 1
                item = None
        except OSError as error:
            if item is not None and item is not _SHUTDOWN:
                _settle_error(item.future, WorkerLost(
                    f"TCP worker {wid or '?'} lost mid-task: {error}"))
        finally:
            if item is not None and item is not _SHUTDOWN:
                with self._mutex:
                    self._active.pop(item.future, None)
            if wid is not None:
                with self._workers_cond:
                    self._conns.pop(wid, None)
                    self._workers_cond.notify_all()
                telemetry.emit("backend.worker_leave", worker=wid,
                               tasks=served)
            _shutdown_socket(sock)
            sock.close()

    def _run_remote(self, sock: socket.socket, wid: int, item: _Item) -> None:
        """Drive one task attempt on one worker connection."""
        task = item.task
        envelope = {"t": "task", "id": item.ident, "workload": task.workload,
                    "keys": [job.key for job in task.jobs],
                    "instructions": task.instructions, "fault": item.fault,
                    "env": item.env}
        with self._mutex:
            self._active[item.future] = wid
        try:
            sent = send_json(sock, envelope)
            telemetry.emit("backend.dispatch", worker=wid,
                           workload=task.workload, keys=task.keys,
                           instructions=task.instructions, bytes=sent)
            start = time.perf_counter()
            transferred = 0
            while True:
                reply = recv_json(sock)
                kind = reply.get("t")
                if kind == "trace":
                    data = self._trace_bytes(reply["workload"],
                                             reply["instructions"])
                    send_json(sock, {"t": "trace-data", "size": len(data)})
                    transferred += send_frame(sock, KIND_BIN, data)
                    telemetry.emit("backend.trace_fetch", worker=wid,
                                   workload=reply["workload"],
                                   instructions=reply["instructions"],
                                   bytes=len(data))
                    continue
                if kind == "result":
                    results = self._decode_results(wid, task, reply)
                    _settle_result(item.future, results)
                    telemetry.emit(
                        "backend.task_done", worker=wid,
                        workload=task.workload, keys=task.keys,
                        seconds=time.perf_counter() - start,
                        bytes=transferred)
                    return
                if kind == "error":
                    _settle_error(item.future, RemoteTaskError(
                        reply.get("kind") or "RemoteTaskError",
                        reply.get("message") or "remote task failed"))
                    return
                raise ConnectionError(f"unexpected reply {kind!r}")
        finally:
            with self._mutex:
                self._active.pop(item.future, None)

    def _decode_results(self, wid: int, task, reply: dict):
        """Decode a result message, re-verifying every digest.

        An undecodable payload or digest mismatch is a transport-level
        failure (the worker is lying or the stream corrupt), not a task
        result: the future fails as a lost worker and the connection is
        torn down so nothing else trusts it.
        """
        from repro.experiments import runner
        from repro.experiments.journal import result_digest

        raw = reply.get("results")
        digests = reply.get("digests")
        try:
            if (not isinstance(raw, list) or not isinstance(digests, list)
                    or len(raw) != len(task.jobs)
                    or len(digests) != len(task.jobs)):
                raise ValueError(f"malformed result for {task.keys}")
            results = [runner._from_json(entry) for entry in raw]
            for result, digest in zip(results, digests):
                if result_digest(result) != digest:
                    raise ValueError(
                        f"digest mismatch for {result.workload}/"
                        f"{result.predictor}")
        except (KeyError, TypeError, ValueError, AttributeError) as error:
            telemetry.emit("backend.digest_mismatch", worker=wid,
                           workload=task.workload, keys=task.keys,
                           error=str(error))
            raise ConnectionError(str(error)) from None
        return results

    @staticmethod
    def _trace_bytes(workload: str, instructions: int) -> bytes:
        """Packed trace bytes for a worker's store miss.

        Prefer the submitter's own packed store file (zero re-encoding);
        fall back to packing the in-memory trace, which also covers
        ``REPRO_TRACE_STORE=0`` submitters feeding store-enabled workers.
        """
        from repro.traces import store as trace_store
        from repro.workloads import catalog

        trace = catalog.generate_workload(workload, instructions)
        path = getattr(trace, "store_path", None)
        if path:
            try:
                return Path(path).read_bytes()
            except OSError:
                pass
        return trace_store.pack_trace(trace)


def _shutdown_socket(sock: socket.socket) -> None:
    try:
        sock.shutdown(socket.SHUT_RDWR)
    except OSError:
        pass
