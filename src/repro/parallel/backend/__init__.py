"""Pluggable execution backends for the parallel executor.

:func:`repro.parallel.executor.run_jobs` drives batched tasks through a
*backend* — the small ``submit/cancel/workers/evict/reset/close``
surface defined by :class:`Backend` here.  Two implementations ship:

* :class:`repro.parallel.backend.local.LocalBackend` — the historical
  in-process ``ProcessPoolExecutor`` path, byte-identical to the
  pre-backend executor (it drives the same module-global pool state in
  ``executor.py``);
* :class:`repro.parallel.backend.tcp.TCPBackend` — a length-prefixed
  JSON work-queue server fed by ``python -m repro.worker`` clients,
  which may be loopback subprocesses (CI, 1-core boxes) or remote
  hosts dialled via ``host:port`` specs.

Selection is by name: ``run_jobs(..., backend="tcp")``, the
``REPRO_BACKEND`` environment variable, or ``--backend`` on the
experiments CLI; ``REPRO_BACKEND_WORKERS`` (CLI ``--workers``) holds
either a loopback worker count or a comma-separated ``host:port`` list.
``local`` is the default and maps to *no* backend object, so the
executor's historical pool path runs untouched.

The failure contract mirrors the retry layer's existing semantics: a
future that fails with :class:`WorkerLost` is collateral damage (a dead
connection), rescheduled without burning the task's attempt budget —
exactly how a ``BrokenProcessPool`` collateral loss is treated — and a
remote backend whose last worker is gone degrades to the local pool
rather than failing the run.

``ENV_PROPAGATED`` lists the ``REPRO_*`` knobs that travel inside every
task envelope, so a remote worker computes with the submitting
process's configuration (engine selection, batching, cache backends)
regardless of its own environment.  Pool workers inherit the whole
environment at fork instead; both paths are pinned by
``tests/parallel/test_backend.py``.
"""

from __future__ import annotations

import os
import warnings
from concurrent.futures import Future
from typing import Dict, Iterable, Optional, Sequence

#: Backend selection: ``local`` (default) or ``tcp``.
ENV_BACKEND = "REPRO_BACKEND"

#: TCP worker spec: a loopback worker count (``"2"``) or a
#: comma-separated ``host:port`` list of listening workers to dial.
ENV_WORKERS = "REPRO_BACKEND_WORKERS"

#: Seconds a remote backend waits for a worker to (re)join before the
#: executor degrades to the local pool.
ENV_GRACE = "REPRO_BACKEND_GRACE"

#: REPRO_* knobs shipped in every task envelope so remote workers
#: compute with the submitter's configuration.  REPRO_CACHE_DIR is
#: deliberately absent — cache paths are host-local; the trace store is
#: shared by content address (fetch-over-socket on miss), results by
#: value.  REPRO_FAULT_HANG_SECONDS rides along so chaos runs stall
#: remote workers deterministically.
ENV_PROPAGATED = ("REPRO_ENGINE", "REPRO_BATCH", "REPRO_TRACE_STORE",
                  "REPRO_RESULT_CACHE", "REPRO_FAULT_HANG_SECONDS")


class WorkerLost(RuntimeError):
    """A worker connection died mid-task (collateral; retry for free)."""


class BackendBroken(RuntimeError):
    """The backend cannot serve at all (e.g. no worker ever joined)."""


class RemoteTaskError(RuntimeError):
    """A task failed *on* a worker; ``kind`` names the original type."""

    def __init__(self, kind: str, message: str) -> None:
        super().__init__(f"{kind}: {message}" if kind else message)
        self.kind = kind or type(self).__name__


def capture_env(names: Iterable[str] = ENV_PROPAGATED) -> Dict[str, Optional[str]]:
    """Snapshot the propagated knobs (``None`` marks "unset")."""
    return {name: os.environ.get(name) for name in names}


def apply_env(env: Dict[str, Optional[str]]) -> None:
    """Apply a task envelope's knob snapshot to this process."""
    for name, value in env.items():
        if value is None:
            os.environ.pop(name, None)
        else:
            os.environ[name] = str(value)


def _probe_env(names: Sequence[str]) -> Dict[str, Optional[str]]:
    """Report this process's values for ``names`` (picklable test probe)."""
    return {name: os.environ.get(name) for name in names}


def grace_seconds() -> float:
    """How long to wait for a remote worker to (re)join (ENV_GRACE)."""
    raw = os.environ.get(ENV_GRACE, "").strip()
    if not raw:
        return 5.0
    try:
        return max(0.0, float(raw))
    except ValueError:
        warnings.warn(f"{ENV_GRACE}={raw!r} is not a number; using 5",
                      RuntimeWarning, stacklevel=2)
        return 5.0


class Backend:
    """Where batched tasks execute; see the module docstring.

    The executor treats the backend as a future factory: ``submit``
    returns a ``concurrent.futures.Future`` resolving to the task's
    ``List[SimulationResult]`` (or raising what the attempt raised —
    :class:`WorkerLost` for a severed connection).  ``workers()`` bounds
    in-flight submissions so deadlines keep measuring execution, not
    queue wait.  ``evict(future)`` handles a deadline expiry surgically
    where possible (cutting one connection) and returns ``False`` when
    only a full ``reset`` (pool rebuild) can recover.
    """

    name = "?"

    #: Seconds the executor waits for workers to (re)join before
    #: degrading; only meaningful for remote backends.
    grace = 0.0

    def submit(self, task, fault: Optional[str]) -> Future:
        """Queue one task attempt; ``fault`` is its chaos assignment."""
        raise NotImplementedError

    def cancel(self, future: Future) -> None:
        """Withdraw a not-yet-running submission (best effort)."""
        future.cancel()

    def workers(self) -> int:
        """Current execution slots (live connections / pool size)."""
        raise NotImplementedError

    def wait_for_workers(self, count: int = 1,
                         timeout: Optional[float] = None) -> bool:
        """Block until ``count`` workers are available (or timeout)."""
        return self.workers() >= count

    def reap(self, done) -> None:
        """Bookkeeping hook after ``wait()`` returns completed futures."""

    def evict(self, future: Future) -> bool:
        """Expel whatever runs ``future`` after a deadline expiry.

        ``True`` means the eviction was surgical (other workers keep
        running); ``False`` asks the executor to ``reset`` instead.
        """
        return False

    def reset(self, kill: bool = False) -> None:
        """Recover from a broken backend (local: rebuild the pool)."""

    def close(self, kill: bool = False) -> None:
        """Release backend resources (remote workers, sockets)."""


def create(name: str, max_workers: int) -> Optional[Backend]:
    """Build the named backend; ``None`` means "use the local path".

    Raises :class:`ValueError` for an unknown name and
    :class:`BackendBroken` when the backend cannot start; ``run_jobs``
    turns either into a warning plus local fallback, matching how other
    malformed ``REPRO_*`` knobs degrade instead of crashing a run.
    """
    if name in ("", "local"):
        return None
    if name == "tcp":
        from repro.parallel.backend.tcp import TCPBackend

        return TCPBackend.from_env(default_spawn=max_workers)
    raise ValueError(f"unknown backend {name!r} (want local or tcp)")


__all__ = [
    "Backend", "BackendBroken", "ENV_BACKEND", "ENV_GRACE", "ENV_PROPAGATED",
    "ENV_WORKERS", "RemoteTaskError", "WorkerLost", "apply_env",
    "capture_env", "create", "grace_seconds",
]
