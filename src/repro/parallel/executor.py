"""Process-pool scheduler for simulation jobs.

The unit of work is a :class:`SimJob` — one (workload, instructions,
predictor-key) triple, exactly the granularity of the on-disk result
cache.  :func:`run_jobs` takes any number of jobs and:

1. deduplicates them (figures share baselines like ``tsl64``);
2. answers what it can from the in-memory and on-disk caches without
   touching the pool;
3. coalesces jobs already in flight from an earlier call instead of
   dispatching them twice;
4. fans the rest across a process pool, where each worker runs the
   ordinary cached runner (so results are written to the shared disk
   cache, atomically, as they complete);
5. seeds the parent's in-memory cache with every result, so subsequent
   serial code (``get_result``) never re-simulates.

Workers inherit ``REPRO_*`` environment knobs from the parent, which is
what keeps parallel results bit-identical to serial runs: the same trace
generation, the same predictor construction, the same engine.
"""

from __future__ import annotations

import os
import threading
import time
import warnings
from concurrent.futures import Future, ProcessPoolExecutor
from typing import Dict, Iterable, List, NamedTuple, Optional, Sequence, Tuple

from repro import telemetry
from repro.sim.results import SimulationResult


class SimJob(NamedTuple):
    """One simulation: a workload/instruction-budget/predictor triple."""

    workload: str
    key: str
    instructions: int


def _worker_count(env: str) -> Optional[int]:
    """Parse a ``REPRO_JOBS`` value; ``None`` means "use the CPU count".

    The variable is user input that reaches this code deep inside a run
    (possibly inside a worker), so a malformed value must degrade, not
    raise: anything non-integer or non-positive warns and falls back.
    """
    env = env.strip()
    if not env:
        return None
    try:
        value = int(env)
    except ValueError:
        warnings.warn(
            f"REPRO_JOBS={env!r} is not an integer; "
            "falling back to the CPU count",
            RuntimeWarning, stacklevel=3)
        return None
    if value <= 0:
        warnings.warn(
            f"REPRO_JOBS={value} is not positive; "
            "falling back to the CPU count",
            RuntimeWarning, stacklevel=3)
        return None
    return value


def default_jobs() -> int:
    """Worker count: REPRO_JOBS if set and valid, else the CPU count."""
    count = _worker_count(os.environ.get("REPRO_JOBS", ""))
    if count is None:
        return os.cpu_count() or 1
    return count


def make_jobs(pairs: Iterable[Tuple[str, str]],
              instructions: Optional[int] = None) -> List[SimJob]:
    """Expand (workload, key) pairs into jobs at the experiment budget."""
    if instructions is None:
        from repro.experiments.common import experiment_instructions

        instructions = experiment_instructions()
    return [SimJob(w, k, instructions) for w, k in pairs]


def _simulate(job: SimJob) -> SimulationResult:
    """Worker entry point: run the cached runner for one job.

    Module-level so it pickles; imports stay inside so the worker pays
    for them once, after the fork/spawn.  Workers inherit
    ``REPRO_TELEMETRY`` with the rest of the environment and write their
    events to their own per-pid JSONL file, which is what makes per-job
    wall time and worker utilization reportable after the run.
    """
    from repro.experiments import runner

    if not telemetry.enabled():
        return runner.get_result(job.workload, job.key, job.instructions)
    start = time.perf_counter()
    result = runner.get_result(job.workload, job.key, job.instructions)
    telemetry.emit("parallel.job", workload=job.workload, key=job.key,
                   instructions=job.instructions,
                   seconds=time.perf_counter() - start)
    return result


# One pool per process, plus the jobs currently submitted to it.  The
# lock guards both; futures stay registered until consumed so concurrent
# run_jobs calls (e.g. threaded test sessions) coalesce duplicates.
_lock = threading.Lock()
_pool: Optional[ProcessPoolExecutor] = None
_pool_workers = 0
_inflight: Dict[SimJob, Future] = {}


def _get_pool(workers: int) -> ProcessPoolExecutor:
    global _pool, _pool_workers
    if _pool is None or _pool_workers < workers:
        if _pool is not None and not _inflight:
            _pool.shutdown(wait=True)
            _pool = None
        if _pool is None:
            _pool = ProcessPoolExecutor(max_workers=workers)
            _pool_workers = workers
    return _pool


def shutdown() -> None:
    """Tear down the worker pool (tests; end of a CLI run)."""
    global _pool, _pool_workers
    with _lock:
        pool, _pool, _pool_workers = _pool, None, 0
        _inflight.clear()
    if pool is not None:
        pool.shutdown(wait=True)


def run_jobs(jobs: Sequence[SimJob],
             max_workers: Optional[int] = None) -> Dict[SimJob, SimulationResult]:
    """Run every job, in parallel where possible; returns job -> result.

    Results are identical to calling ``runner.get_result`` for each job
    serially — the parallel path only changes *where* the simulation
    runs, never what it computes.
    """
    from repro.experiments import runner

    if max_workers is None:
        max_workers = default_jobs()

    telemetry_on = telemetry.enabled()
    batch_start = time.perf_counter() if telemetry_on else 0.0

    def emit_batch(pending: int, dispatched: int, workers: int) -> None:
        if telemetry_on:
            telemetry.emit(
                "parallel.run_jobs", requested=len(jobs), unique=len(unique),
                cache_hits=len(unique) - pending,
                coalesced=pending - dispatched, dispatched=dispatched,
                workers=workers, seconds=time.perf_counter() - batch_start)

    unique: List[SimJob] = list(dict.fromkeys(jobs))
    results: Dict[SimJob, SimulationResult] = {}

    # Cache peek: anything already in the memory or disk cache skips the
    # pool entirely (and gets promoted into the memory cache).
    pending: List[SimJob] = []
    for job in unique:
        cached = runner.peek_result(job.workload, job.key, job.instructions)
        if cached is not None:
            results[job] = cached
        else:
            pending.append(job)

    if not pending:
        emit_batch(pending=0, dispatched=0, workers=0)
        return {job: results[job] for job in jobs}

    if max_workers <= 1 or len(pending) == 1:
        # Serial fallback: no pool spin-up for a single miss or -j 1.
        # _simulate emits the per-job telemetry here too — the "worker"
        # is simply this process.
        for job in pending:
            results[job] = _simulate(job)
        emit_batch(pending=len(pending), dispatched=len(pending), workers=1)
        return {job: results[job] for job in jobs}

    futures: Dict[SimJob, Future] = {}
    owned: List[SimJob] = []
    with _lock:
        workers = min(max_workers, len(pending))
        pool = _get_pool(workers)
        for job in pending:
            future = _inflight.get(job)
            if future is None:
                future = pool.submit(_simulate, job)
                _inflight[job] = future
                owned.append(job)
            futures[job] = future

    try:
        for job in pending:
            result = futures[job].result()
            # Seed the parent's memory cache: the worker wrote the disk
            # cache, but this process should not have to re-read it.
            runner.seed_result(job.workload, job.key, job.instructions,
                               result)
            results[job] = result
    finally:
        with _lock:
            for job in owned:
                if _inflight.get(job) is futures.get(job):
                    del _inflight[job]

    emit_batch(pending=len(pending), dispatched=len(owned), workers=workers)
    return {job: results[job] for job in jobs}
